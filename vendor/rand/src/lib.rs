//! Offline, API-compatible subset of the [`rand`](https://crates.io/crates/rand)
//! crate (0.8 series) covering exactly what the qcp workspace uses:
//!
//! - [`rngs::StdRng`] seeded via [`SeedableRng::seed_from_u64`],
//! - [`Rng::gen_range`] over integer and float ranges (half-open and
//!   inclusive), [`Rng::gen_bool`], [`Rng::gen`],
//! - [`seq::SliceRandom::shuffle`] / [`seq::SliceRandom::choose`].
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — a different
//! stream than upstream `StdRng` (ChaCha12), but the workspace only relies
//! on determinism for a fixed seed, never on specific upstream values.

#![forbid(unsafe_code)]
// Vendored shim: panicking on internal misuse is acceptable here, and the
// code deliberately mirrors upstream idiom rather than workspace policy.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::ops::{Range, RangeInclusive};

/// A low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly from a range.
pub trait SampleUniform: PartialOrd + Copy {
    /// Samples uniformly from `[low, high)`.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
    /// Samples uniformly from `[low, high]`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range: empty range {low}..{high}");
                let span = (high as i128 - low as i128) as u128;
                let v = uniform_u128(rng, span);
                (low as i128 + v as i128) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low <= high, "gen_range: empty range {low}..={high}");
                let span = (high as i128 - low as i128) as u128 + 1;
                let v = uniform_u128(rng, span);
                (low as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Uniform value in `[0, span)` by rejection sampling (span <= 2^64 here,
/// since all supported integer types are at most 64 bits wide).
fn uniform_u128<R: RngCore + ?Sized>(rng: &mut R, span: u128) -> u128 {
    debug_assert!(span > 0 && span <= (1u128 << 64));
    if span == (1u128 << 64) {
        return rng.next_u64() as u128;
    }
    let span64 = span as u64;
    // Rejection zone keeps the distribution exactly uniform.
    let zone = u64::MAX - (u64::MAX % span64 + 1) % span64;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return (v % span64) as u128;
        }
    }
}

impl SampleUniform for f64 {
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        assert!(low < high, "gen_range: empty range {low}..{high}");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        let v = low + unit * (high - low);
        if v < high {
            v
        } else {
            // Guard against rounding up to the excluded endpoint.
            f64::from_bits(high.to_bits() - 1)
        }
    }
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        assert!(low <= high, "gen_range: empty range {low}..={high}");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) - 1) as f64);
        low + unit * (high - low)
    }
}

impl SampleUniform for f32 {
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        f64::sample_half_open(rng, low as f64, high as f64) as f32
    }
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        f64::sample_inclusive(rng, low as f64, high as f64) as f32
    }
}

/// A range argument accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Samples a value uniformly from this range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

/// Types that can be generated from a plain stream of random bits
/// (the `Standard` distribution of upstream `rand`).
pub trait Standard: Sized {
    /// Generates a value from `rng`.
    fn generate<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn generate<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn generate<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn generate<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn generate<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        f64::generate(rng) as f32
    }
}

/// High-level sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples uniformly from `range` (half-open or inclusive).
    fn gen_range<T, Rg>(&mut self, range: Rg) -> T
    where
        T: SampleUniform,
        Rg: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} out of [0, 1]");
        f64::generate(self) < p
    }

    /// Generates a value of type `T` from the standard distribution.
    fn gen<T: Standard>(&mut self) -> T {
        T::generate(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types constructible from a seed, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// The fixed-size seed type.
    type Seed: AsMut<[u8]> + Default;

    /// Creates a generator from a full-entropy seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64` via SplitMix64 expansion.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64 { state };
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic generator (xoshiro256++). Stands in for upstream's
    /// `StdRng`: same trait surface, different (still deterministic) stream.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(&seed[i * 8..i * 8 + 8]);
                *word = u64::from_le_bytes(bytes);
            }
            // All-zero state is a fixed point of xoshiro; nudge it.
            if s.iter().all(|&w| w == 0) {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            StdRng { s }
        }
    }
}

/// Sequence-related helpers, mirroring `rand::seq`.
pub mod seq {
    use super::{Rng, RngCore};

    /// Extension methods on slices, mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Returns a uniformly random element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let w: i32 = rng.gen_range(-5..=5);
            assert!((-5..=5).contains(&w));
            let f: f64 = rng.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_range_covers_all_values() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 4];
        for _ in 0..1000 {
            seen[rng.gen_range(0..4usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..100 {
            assert!(!rng.gen_bool(0.0));
            assert!(rng.gen_bool(1.0));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn next_u64_via_mut_ref() {
        // `&mut StdRng` must itself be usable as an Rng (generic call sites
        // pass `&mut rng` through several layers).
        let mut rng = StdRng::seed_from_u64(5);
        let r = &mut rng;
        let _: usize = r.gen_range(0..10);
    }
}
