//! Offline, API-compatible subset of the
//! [`criterion`](https://crates.io/crates/criterion) crate covering what the
//! qcp benches use: [`Criterion::benchmark_group`], `bench_function` /
//! `bench_with_input` (with `&str` or [`BenchmarkId`] ids),
//! `sample_size`, [`Bencher::iter`], [`black_box`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Measurement is deliberately simple — median of `sample_size` timed
//! batches after a short warm-up — and prints one line per benchmark.
//! When invoked by `cargo test` (cargo passes `--test`), each benchmark
//! body runs exactly once as a smoke check, keeping `cargo test` fast.

#![forbid(unsafe_code)]
// Vendored shim: panicking on internal misuse is acceptable here, and the
// code deliberately mirrors upstream idiom rather than workspace policy.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`], criterion-style.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// How a benchmark run was invoked.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Mode {
    /// Full measurement (`cargo bench`).
    Bench,
    /// One iteration per benchmark (`cargo test` passes `--test`).
    Test,
    /// Compile/list only (`--list`); run nothing.
    List,
}

fn mode_from_args() -> Mode {
    let mut mode = Mode::Bench;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--test" => mode = Mode::Test,
            "--list" => mode = Mode::List,
            _ => {}
        }
    }
    mode
}

/// A benchmark identifier: a function name plus an optional parameter.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    name: String,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// An id made of a name and a parameter value.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            name: name.into(),
            parameter: Some(parameter.to_string()),
        }
    }

    /// An id carrying only a parameter, for single-function groups.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            name: String::new(),
            parameter: Some(parameter.to_string()),
        }
    }

    fn render(&self) -> String {
        match &self.parameter {
            Some(p) if self.name.is_empty() => p.clone(),
            Some(p) => format!("{}/{}", self.name, p),
            None => self.name.clone(),
        }
    }
}

/// Conversion accepted by `bench_function`-style ids (`&str`, `String`,
/// or [`BenchmarkId`]).
pub trait IntoBenchmarkId {
    /// Converts into a [`BenchmarkId`].
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId {
            name: self.to_string(),
            parameter: None,
        }
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId {
            name: self,
            parameter: None,
        }
    }
}

/// Times closures handed to it by a benchmark body.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Calls `routine` repeatedly and records the total elapsed time.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// The top-level benchmark driver.
pub struct Criterion {
    mode: Mode,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            mode: mode_from_args(),
        }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            criterion: self,
        }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkId,
        f: F,
    ) -> &mut Self {
        let name = id.into_benchmark_id().render();
        let sample_size = 10;
        run_benchmark(self.mode, &name, sample_size, f);
        self
    }
}

/// A named collection of benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples to take per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Benchmarks `f` under `id` within this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkId,
        f: F,
    ) -> &mut Self {
        let name = format!("{}/{}", self.name, id.into_benchmark_id().render());
        run_benchmark(self.criterion.mode, &name, self.sample_size, f);
        self
    }

    /// Benchmarks `f` under `id`, passing it `input` by reference.
    pub fn bench_with_input<ID, I, F>(&mut self, id: ID, input: &I, mut f: F) -> &mut Self
    where
        ID: IntoBenchmarkId,
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group.
    pub fn finish(self) {}
}

fn run_benchmark<F: FnMut(&mut Bencher)>(mode: Mode, name: &str, sample_size: usize, mut f: F) {
    match mode {
        Mode::List => {
            println!("{name}: benchmark");
        }
        Mode::Test => {
            let mut b = Bencher {
                iters: 1,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            println!("{name}: ok (test mode)");
        }
        Mode::Bench => {
            // Warm-up and iteration-count calibration: aim for ~25 ms per
            // sample, capped to keep slow placements tractable.
            let mut b = Bencher {
                iters: 1,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            let per_iter = b.elapsed.max(Duration::from_nanos(1));
            let target = Duration::from_millis(25);
            let iters = (target.as_nanos() / per_iter.as_nanos()).clamp(1, 10_000) as u64;

            let mut samples: Vec<Duration> = Vec::with_capacity(sample_size);
            for _ in 0..sample_size {
                let mut b = Bencher {
                    iters,
                    elapsed: Duration::ZERO,
                };
                f(&mut b);
                samples.push(b.elapsed / iters as u32);
            }
            samples.sort_unstable();
            let median = samples[samples.len() / 2];
            let (lo, hi) = (samples[0], samples[samples.len() - 1]);
            println!(
                "{name}: median {} (min {}, max {}, {} samples x {} iters)",
                fmt_duration(median),
                fmt_duration(lo),
                fmt_duration(hi),
                samples.len(),
                iters,
            );
        }
    }
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1_000.0)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1_000_000.0)
    } else {
        format!("{:.2} s", nanos as f64 / 1_000_000_000.0)
    }
}

/// Declares a benchmark group function, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's `main`, criterion-style.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_render_like_criterion() {
        assert_eq!(BenchmarkId::new("exists", 64).render(), "exists/64");
        assert_eq!(BenchmarkId::from_parameter(8).render(), "8");
        assert_eq!("plain".into_benchmark_id().render(), "plain");
    }

    #[test]
    fn bencher_runs_requested_iterations() {
        let mut calls = 0u64;
        let mut b = Bencher {
            iters: 17,
            elapsed: Duration::ZERO,
        };
        b.iter(|| calls += 1);
        assert_eq!(calls, 17);
    }

    #[test]
    fn groups_execute_bodies_in_test_mode() {
        let mut c = Criterion { mode: Mode::Test };
        let mut ran = false;
        let mut group = c.benchmark_group("g");
        group.bench_function("case", |b| b.iter(|| ran = true));
        group.finish();
        assert!(ran);
    }
}
