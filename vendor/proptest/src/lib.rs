//! Offline, API-compatible subset of the
//! [`proptest`](https://crates.io/crates/proptest) crate covering what the
//! qcp workspace uses: the [`proptest!`] test macro with
//! `#![proptest_config(...)]`, `prop_assert!`/`prop_assert_eq!`/
//! `prop_assert_ne!`, [`prop_oneof!`], [`strategy::Strategy`] with
//! `prop_map`/`prop_flat_map`/`prop_filter`/`prop_filter_map`, range and
//! tuple strategies, [`arbitrary::any`], and `prop::collection::vec`.
//!
//! Unlike upstream there is no shrinking: a failing case reports the case
//! number and the deterministic per-test seed instead of a minimal input.
//! Case generation is fully deterministic per (test name, case index), so
//! failures always reproduce.

#![forbid(unsafe_code)]
// Vendored shim: panicking on internal misuse is acceptable here, and the
// code deliberately mirrors upstream idiom rather than workspace policy.
#![allow(clippy::unwrap_used, clippy::expect_used)]

pub mod strategy {
    //! Strategies: composable recipes for generating test values.

    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// How many times a filtered strategy retries before giving up.
    const MAX_REJECTS: usize = 65_536;

    /// A recipe for generating values of type `Value`.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generates one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { source: self, f }
        }

        /// Generates a value, then samples the strategy `f` builds from it.
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { source: self, f }
        }

        /// Keeps only values for which `f` returns `true`.
        fn prop_filter<R, F>(self, reason: R, f: F) -> Filter<Self, F>
        where
            Self: Sized,
            R: Into<String>,
            F: Fn(&Self::Value) -> bool,
        {
            Filter {
                source: self,
                f,
                reason: reason.into(),
            }
        }

        /// Maps values through `f`, retrying whenever it returns `None`.
        fn prop_filter_map<U, R, F>(self, reason: R, f: F) -> FilterMap<Self, F>
        where
            Self: Sized,
            R: Into<String>,
            F: Fn(Self::Value) -> Option<U>,
        {
            FilterMap {
                source: self,
                f,
                reason: reason.into(),
            }
        }

        /// Erases the concrete strategy type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A type-erased strategy.
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            (**self).sample(rng)
        }
    }

    /// Boxes a strategy (used by [`prop_oneof!`](crate::prop_oneof)).
    pub fn boxed<S: Strategy + 'static>(s: S) -> BoxedStrategy<S::Value> {
        Box::new(s)
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        source: S,
        f: F,
    }

    impl<S, F, U> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;
        fn sample(&self, rng: &mut TestRng) -> U {
            (self.f)(self.source.sample(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        source: S,
        f: F,
    }

    impl<S, S2, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;
        fn sample(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.source.sample(rng)).sample(rng)
        }
    }

    /// See [`Strategy::prop_filter`].
    pub struct Filter<S, F> {
        source: S,
        f: F,
        reason: String,
    }

    impl<S, F> Strategy for Filter<S, F>
    where
        S: Strategy,
        F: Fn(&S::Value) -> bool,
    {
        type Value = S::Value;
        fn sample(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..MAX_REJECTS {
                let v = self.source.sample(rng);
                if (self.f)(&v) {
                    return v;
                }
            }
            panic!("strategy rejected too many values: {}", self.reason);
        }
    }

    /// See [`Strategy::prop_filter_map`].
    pub struct FilterMap<S, F> {
        source: S,
        f: F,
        reason: String,
    }

    impl<S, U, F> Strategy for FilterMap<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> Option<U>,
    {
        type Value = U;
        fn sample(&self, rng: &mut TestRng) -> U {
            for _ in 0..MAX_REJECTS {
                if let Some(v) = (self.f)(self.source.sample(rng)) {
                    return v;
                }
            }
            panic!("strategy rejected too many values: {}", self.reason);
        }
    }

    /// Always yields a clone of the given value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Uniform choice between boxed alternative strategies
    /// (the expansion of [`prop_oneof!`](crate::prop_oneof)).
    pub struct Union<T> {
        arms: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Builds a union; panics if `arms` is empty.
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            let i = rng.gen_range(0..self.arms.len());
            self.arms[i].sample(rng)
        }
    }

    impl<T: rand::SampleUniform> Strategy for Range<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            rng.gen_range(self.clone())
        }
    }

    impl<T: rand::SampleUniform> Strategy for RangeInclusive<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            rng.gen_range(self.clone())
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($S:ident/$idx:tt),+) => {
            impl<$($S: Strategy),+> Strategy for ($($S,)+) {
                type Value = ($($S::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A / 0);
    impl_tuple_strategy!(A / 0, B / 1);
    impl_tuple_strategy!(A / 0, B / 1, C / 2);
    impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3);
    impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4);
    impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4, F / 5);
}

pub mod arbitrary {
    //! The `any::<T>()` entry point for default strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::marker::PhantomData;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized {
        /// Generates a value covering the type's whole domain.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.gen()
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool, f64, f32);

    /// The strategy returned by [`any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// Returns the canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    //! Strategies for collections.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::ops::Range;

    /// The strategy returned by [`vec()`](fn@vec).
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Generates a `Vec` whose length is drawn from `size` and whose
    /// elements are drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.clone());
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod test_runner {
    //! The per-test harness driven by the [`proptest!`](crate::proptest) macro.

    use rand::SeedableRng;

    /// The RNG handed to strategies.
    pub type TestRng = rand::rngs::StdRng;

    /// Subset of upstream's run configuration.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of generated cases per test.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    impl ProptestConfig {
        /// A default configuration overriding only the case count.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    /// A failed `prop_assert!` inside a test case body.
    #[derive(Clone, Debug)]
    pub enum TestCaseError {
        /// The assertion message.
        Fail(String),
    }

    impl TestCaseError {
        /// Builds a failure with the given message.
        pub fn fail(reason: impl Into<String>) -> Self {
            TestCaseError::Fail(reason.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                TestCaseError::Fail(reason) => write!(f, "{reason}"),
            }
        }
    }

    /// Deterministic seed for one test case: FNV-1a over the test's full
    /// path, mixed with the case index.
    pub fn case_rng(test_path: &str, case: u32) -> TestRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_path.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng::seed_from_u64(h ^ ((case as u64) << 32 | case as u64))
    }
}

/// Everything a property test file needs, for glob import.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Namespaced access to strategy modules (`prop::collection::vec`, ...).
    pub mod prop {
        pub use crate::collection;
        pub use crate::strategy;
    }
}

/// Defines property tests. Mirrors upstream's syntax:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn my_property(x in 0usize..10, seed in any::<u64>()) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! {
            config = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`].
#[macro_export]
macro_rules! __proptest_body {
    (config = $config:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            let path = concat!(module_path!(), "::", stringify!($name));
            let strategies = ($($strat,)*);
            for case in 0..config.cases {
                let mut rng = $crate::test_runner::case_rng(path, case);
                #[allow(unused_variables, unused_mut)]
                let ($($pat,)*) =
                    $crate::strategy::Strategy::sample(&strategies, &mut rng);
                // The closure exists so `prop_assert!` can early-return a
                // failure without panicking mid-case.
                #[allow(clippy::redundant_closure_call)]
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                if let ::std::result::Result::Err(e) = outcome {
                    panic!(
                        "proptest case {case}/{total} failed for {path}: {e}",
                        total = config.cases,
                    );
                }
            }
        }
    )*};
}

/// Uniform choice between strategies yielding the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::boxed($strat)),+])
    };
}

/// Asserts inside a [`proptest!`] body, failing the case (not panicking)
/// on violation.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Equality assertion counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                $crate::prop_assert!(
                    *l == *r,
                    "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
                    l,
                    r
                );
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        match (&$left, &$right) {
            (l, r) => {
                $crate::prop_assert!(*l == *r, $($fmt)*);
            }
        }
    };
}

/// Inequality assertion counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                $crate::prop_assert!(
                    *l != *r,
                    "assertion failed: `(left != right)`\n  left: `{:?}`\n right: `{:?}`",
                    l,
                    r
                );
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        match (&$left, &$right) {
            (l, r) => {
                $crate::prop_assert!(*l != *r, $($fmt)*);
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..17, y in -2.0f64..2.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-2.0..2.0).contains(&y));
        }

        #[test]
        fn tuples_and_maps(pair in (0usize..5, 0usize..5).prop_map(|(a, b)| (a, a + b))) {
            prop_assert!(pair.1 >= pair.0);
        }

        #[test]
        fn filter_map_retries(v in (0usize..10, 0usize..10)
            .prop_filter_map("distinct", |(a, b)| (a != b).then_some((a, b))))
        {
            prop_assert_ne!(v.0, v.1);
        }

        #[test]
        fn oneof_unions(x in prop_oneof![(0usize..3).prop_map(|v| v), (10usize..13).prop_map(|v| v)]) {
            prop_assert!(x < 3 || (10..13).contains(&x));
        }

        #[test]
        fn flat_map_nests(v in (1usize..5).prop_flat_map(|n| prop::collection::vec(0usize..n, 0..8))) {
            for &x in &v {
                prop_assert!(x < 4);
            }
        }

        #[test]
        fn any_is_deterministic_per_case(seed in any::<u64>()) {
            // No property beyond "it generates" — determinism is covered by
            // case_rng being pure.
            let _ = seed;
        }
    }

    #[test]
    fn case_rng_is_deterministic() {
        use crate::test_runner::case_rng;
        use rand::Rng;
        let mut a = case_rng("m::t", 7);
        let mut b = case_rng("m::t", 7);
        let va: u64 = a.gen();
        let vb: u64 = b.gen();
        assert_eq!(va, vb);
    }
}
