#![allow(clippy::unwrap_used, clippy::expect_used)]
//! Canonicalization-keyed result cache: place the QASM corpus cold, then
//! replay it with relabelled qubits and show every repeat served from the
//! cache by witness remap — same runtimes, microseconds instead of
//! milliseconds.
//!
//! Run with: `cargo run --release --example result_cache`

use std::time::Instant;

use qcp::prelude::*;
use qcp::verify::PlacementCertifier;

fn main() {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/qasm");
    let mut paths: Vec<_> = std::fs::read_dir(&dir)
        .expect("corpus dir")
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "qasm"))
        .collect();
    paths.sort();

    let env = topologies::grid(4, 4, topologies::Delays::default());
    let config = PlacerConfig::with_threshold(env.connectivity_threshold().unwrap())
        .candidates(30)
        .strategy(Strategy::Hybrid);
    let cache = PlacementCache::new(64);

    println!("cold vs warm on grid:4x4 (warm request is a qubit-relabelled repeat):");
    println!(
        "{:<18} {:>7} {:>12} {:>12} {:>9}  outcome",
        "circuit", "qubits", "cold", "warm", "speedup"
    );
    for path in paths {
        let stem = path.file_stem().unwrap().to_string_lossy().into_owned();
        let text = std::fs::read_to_string(&path).unwrap();
        let circuit = qcp::circuit::qasm::parse(&text).unwrap().circuit;
        let n = circuit.qubit_count();
        if n > env.qubit_count() {
            continue;
        }

        let t0 = Instant::now();
        let request = PlaceRequest::new(&circuit, &env).config(config.clone());
        let Ok(cold) = execute_with(&request, Some(&cache), None) else {
            println!("{stem:<18} {n:>7} {:>12} (does not place)", "-");
            continue;
        };
        let cold_t = t0.elapsed();

        // The repeat arrives with its qubits relabelled — an isomorphic,
        // not identical, circuit. Verification is on: the remapped hit is
        // re-certified against the relabelled circuit before returning.
        let relabelled = circuit.map_qubits(n, |q| Qubit::new(n - 1 - q.index()));
        let t1 = Instant::now();
        let warm_request = PlaceRequest::new(&relabelled, &env)
            .config(config.clone())
            .verify(true);
        let warm = execute_with(&warm_request, Some(&cache), Some(&PlacementCertifier))
            .expect("warm repeat places");
        let warm_t = t1.elapsed();

        assert_eq!(warm.outcome.runtime, cold.outcome.runtime);
        assert!(warm.certificate.is_some());
        println!(
            "{stem:<18} {n:>7} {:>9.2} ms {:>9.2} ms {:>8.0}x  {} ({})",
            cold_t.as_secs_f64() * 1e3,
            warm_t.as_secs_f64() * 1e3,
            cold_t.as_secs_f64() / warm_t.as_secs_f64().max(1e-9),
            cold.outcome.runtime,
            warm.cache.wire(),
        );
    }
    println!(
        "\ncache: {} entries, {} hit(s), {} miss(es), {} remapped hit(s)",
        cache.len(),
        cache.hits(),
        cache.misses(),
        cache.remapped()
    );
    assert_eq!(
        cache.hits(),
        cache.remapped(),
        "every repeat was relabelled"
    );
}
