#![allow(clippy::unwrap_used, clippy::expect_used)]
//! Anytime placement: budgeted exact search with a heuristic fallback.
//!
//! Places the 6-qubit QFT on device backends with each strategy and
//! shows what a latency budget buys: `exact` either finishes or fails,
//! `anneal` is instant but approximate, and `hybrid` always returns a
//! valid placement within the budget — falling back to greedy+anneal
//! when the exact search exhausts it.
//!
//! Run with: `cargo run --release --example anytime_strategies`

use std::time::Instant;

use qcp::circuit::library;
use qcp::env::topologies::{self, Delays};
use qcp::prelude::*;

fn main() {
    let circuit = library::qft(6);

    // A device where exact enumeration is comfortable (~hundreds of ms).
    let hh3 = topologies::heavy_hex(3, Delays::default());
    println!(
        "== qft6 on {} ({} qubits) ==",
        hh3.name(),
        hh3.qubit_count()
    );
    for strategy in [Strategy::Exact, Strategy::Anneal, Strategy::Hybrid] {
        run(&hh3, &circuit, strategy, SearchBudget::unlimited());
    }

    // A device where exact enumeration takes *seconds*: give each request
    // a 50 ms deadline. Exact fails it; hybrid degrades gracefully.
    let grid = topologies::grid(8, 8, Delays::default());
    let budget = SearchBudget::from_millis(50);
    println!(
        "\n== qft6 on {} ({} qubits), 50 ms budget ==",
        grid.name(),
        grid.qubit_count()
    );
    for strategy in [Strategy::Exact, Strategy::Hybrid] {
        run(&grid, &circuit, strategy, budget);
    }

    // Node budgets are the deterministic flavour: the same request does
    // exactly the same work on every machine.
    println!("\n== qft6 on {}, 2000-node budget ==", grid.name());
    run(
        &grid,
        &circuit,
        Strategy::Hybrid,
        SearchBudget::nodes(2_000),
    );
}

fn run(env: &Environment, circuit: &Circuit, strategy: Strategy, budget: SearchBudget) {
    let t = env.connectivity_threshold().expect("connected device");
    let config = PlacerConfig::with_threshold(t)
        .strategy(strategy)
        .budget(budget);
    let placer = Placer::new(env, config);
    let started = Instant::now();
    match placer.place(circuit) {
        Ok(outcome) => println!(
            "  {:<6} -> {:<16} runtime {}, {} stage(s), {} swap(s), {:.1} ms",
            strategy.to_string(),
            format!("[{}]", outcome.resolution),
            outcome.runtime,
            outcome.subcircuit_count(),
            outcome.swap_count(),
            started.elapsed().as_secs_f64() * 1e3,
        ),
        Err(e) => println!(
            "  {:<6} -> FAILED after {:.1} ms: {e}",
            strategy.to_string(),
            started.elapsed().as_secs_f64() * 1e3,
        ),
    }
}
