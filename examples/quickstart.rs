#![allow(clippy::unwrap_used, clippy::expect_used)]
//! Quickstart: place the 3-qubit error-correction encoder (paper Fig. 2)
//! onto acetyl chloride (paper Fig. 1) and print what the placer decided.
//!
//! Run with: `cargo run --example quickstart`

use qcp::prelude::*;
use qcp_circuit::library::qec3_encoder;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The physical environment: 3 nuclei with very unequal couplings.
    let env = molecules::acetyl_chloride();
    println!("{env}");

    // The abstract circuit to place.
    let circuit = qec3_encoder();
    println!("{circuit}");

    // Place it. The threshold decides which couplings count as "fast";
    // the minimal connected choice is a good default.
    let threshold = env.connectivity_threshold().expect("molecule is connected");
    let placer = Placer::new(&env, PlacerConfig::with_threshold(threshold));
    let outcome = placer.place(&circuit)?;

    println!(
        "placed in {} subcircuit(s), {} swaps",
        outcome.subcircuit_count(),
        outcome.swap_count()
    );
    let placement = outcome.initial_placement();
    for q in 0..circuit.qubit_count() {
        let v = placement.physical(Qubit::new(q));
        println!("  q{q} -> {} ({})", v, env.nucleus(v).name());
    }
    println!("estimated runtime: {}", outcome.runtime);

    // Compare against the paper's Example 3 mapping (a→M, b→C2, c→C1) to
    // see why placement matters: 770 units instead of 136.
    let example3 = Placement::new(
        vec![
            qcp::env::PhysicalQubit::new(0),
            qcp::env::PhysicalQubit::new(2),
            qcp::env::PhysicalQubit::new(1),
        ],
        env.qubit_count(),
    )?;
    let example3_time =
        qcp::place::cost::placed_runtime(&circuit, &env, &example3, &CostModel::overlapped());
    println!("the paper's Example 3 mapping instead: {example3_time} (5.7x slower)");
    Ok(())
}
