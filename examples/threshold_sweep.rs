#![allow(clippy::unwrap_used, clippy::expect_used)]
//! Threshold sweep (a Table 3 slice): map the 6-qubit QFT onto
//! trans-crotonic acid for each threshold and watch the trade-off between
//! few-but-slow whole placements and many-but-fast subcircuits.
//!
//! Run with: `cargo run --release --example threshold_sweep`

use qcp::prelude::*;
use qcp_circuit::library::qft;
use qcp_place::baselines::place_whole;
use qcp_place::PlaceError;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let env = molecules::trans_crotonic_acid();
    let circuit = qft(6);
    println!(
        "qft6 ({} gates, {} two-qubit) onto {} ({} nuclei)\n",
        circuit.gate_count(),
        circuit.two_qubit_gate_count(),
        env.name(),
        env.qubit_count()
    );

    println!(
        "{:>10}  {:>14}  {:>11}  {:>6}",
        "threshold", "runtime", "subcircuits", "swaps"
    );
    for t in [50.0, 100.0, 200.0, 500.0, 1000.0, 10000.0] {
        let placer = Placer::new(&env, PlacerConfig::with_threshold(Threshold::new(t)));
        match placer.place(&circuit) {
            Ok(outcome) => println!(
                "{:>10}  {:>14}  {:>11}  {:>6}",
                t,
                outcome.runtime.to_string(),
                outcome.subcircuit_count(),
                outcome.swap_count()
            ),
            Err(PlaceError::NoFastInteractions) => {
                println!("{t:>10}  {:>14}", "N/A");
            }
            Err(e) => return Err(e.into()),
        }
    }

    let (_, whole) = place_whole(&circuit, &env, &CostModel::overlapped(), 1e6)?;
    println!("\nbest placement of the circuit as a whole (no swaps): {whole}");
    println!("=> swapping between well-placed subcircuits beats placing everything at once.");
    Ok(())
}
