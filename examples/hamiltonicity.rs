#![allow(clippy::unwrap_used, clippy::expect_used)]
//! The §4 NP-completeness reduction, run forwards: decide Hamiltonicity
//! by asking for a zero-runtime placement of a cycle circuit.
//!
//! Run with: `cargo run --example hamiltonicity`

use qcp::graph::generate;
use qcp::graph::hamiltonian::{has_hamiltonian_cycle, petersen};
use qcp::place::baselines::exhaustive_placement;
use qcp::place::cost::CostModel;
use qcp::place::reduction::{hamiltonian_via_placement, reduction_instance};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cases = vec![
        ("6-cycle".to_string(), generate::ring(6)),
        ("6-chain".to_string(), generate::chain(6)),
        ("Petersen graph".to_string(), petersen()),
        ("2x4 grid".to_string(), generate::grid(2, 4)),
        ("3x3 grid".to_string(), generate::grid(3, 3)),
    ];
    for (name, h) in cases {
        let via_placement = hamiltonian_via_placement(&h);
        let direct = has_hamiltonian_cycle(&h);
        println!("{name}: zero-cost placement exists = {via_placement}, hamiltonian = {direct}");
        assert_eq!(
            via_placement, direct,
            "the reduction must agree with the direct solver"
        );
    }

    // Show the actual instance for the 6-cycle and its optimal runtime.
    let h = generate::ring(6);
    let (env, circuit) = reduction_instance(&h);
    let model = CostModel::overlapped().without_reuse_cap();
    let (placement, runtime) = exhaustive_placement(&circuit, &env, &model, 1e6)?;
    println!("\nreduction instance for the 6-cycle:");
    println!(
        "  circuit: {} two-qubit gates in a qubit cycle",
        circuit.gate_count()
    );
    println!("  optimal placement: {placement}");
    println!(
        "  optimal runtime: {} units (zero iff Hamiltonian)",
        runtime.units()
    );
    Ok(())
}
