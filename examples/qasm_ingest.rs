#![allow(clippy::unwrap_used, clippy::expect_used)]
//! OpenQASM ingestion: parse circuits from the committed corpus under
//! `tests/qasm/`, inspect what the frontend dropped, and place one file
//! across the topology zoo — the external-workload pipeline end-to-end.
//!
//! Run with: `cargo run --release --example qasm_ingest`

use std::path::Path;

use qcp::circuit::qasm;
use qcp::env::topologies::{Delays, TopologySpec};
use qcp::place::batch::BatchPlacer;
use qcp::prelude::*;

fn main() {
    let corpus = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/qasm");

    // Ingest the whole corpus: every file parses, lowers to the NMR
    // basis, and reports what it had to drop (measurements, resets,
    // classical conditions).
    let mut circuits: Vec<(String, Circuit)> = Vec::new();
    let mut paths: Vec<_> = std::fs::read_dir(&corpus)
        .expect("tests/qasm exists")
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|ext| ext == "qasm"))
        .collect();
    paths.sort();
    println!(
        "{:<15} {:>6} {:>6} {:>9} {:>6} {:>9}",
        "file", "qubits", "gates", "couplings", "depth", "warnings"
    );
    for path in &paths {
        let stem = path.file_stem().unwrap().to_string_lossy().into_owned();
        let text = std::fs::read_to_string(path).expect("corpus file readable");
        let parsed = qasm::parse(&text).unwrap_or_else(|e| panic!("{stem}: {e}"));
        println!(
            "{:<15} {:>6} {:>6} {:>9} {:>6} {:>9}",
            stem,
            parsed.circuit.qubit_count(),
            parsed.circuit.gate_count(),
            parsed.circuit.two_qubit_gate_count(),
            parsed.circuit.depth(),
            parsed.warnings.len(),
        );
        circuits.push((stem, parsed.circuit));
    }

    // One file in detail: qft4 on the zoo, exactly as
    // `qcp place --qasm tests/qasm/qft4.qasm --topology <spec>` would.
    let (_, qft4) = circuits
        .iter()
        .find(|(n, _)| n == "qft4")
        .expect("qft4.qasm is part of the corpus");
    println!("\nqft4.qasm across the zoo (hybrid strategy):");
    for spec in ["line:16", "ring:12", "grid:4x4", "heavy_hex:3", "star:9"] {
        let parsed: TopologySpec = spec.parse().expect("valid spec");
        let env = parsed.build(Delays::default());
        let t = env.connectivity_threshold().expect("connected");
        let config = PlacerConfig::with_threshold(t)
            .candidates(30)
            .strategy(Strategy::Hybrid);
        let outcome = Placer::new(&env, config)
            .place(qft4)
            .expect("hybrid always places");
        println!(
            "  {:<12} runtime {:>10}  {} stage(s), {} swap(s) [{}]",
            spec,
            outcome.runtime.to_string(),
            outcome.subcircuit_count(),
            outcome.swap_count(),
            outcome.resolution,
        );
    }

    // And the whole corpus as one named batch on grid:4x4 + heavy-hex.
    let envs: Vec<Environment> = ["grid:4x4", "heavy_hex:3"]
        .iter()
        .map(|s| s.parse::<TopologySpec>().unwrap().build(Delays::default()))
        .collect();
    let config = PlacerConfig::default()
        .candidates(30)
        .strategy(Strategy::Hybrid);
    let report = BatchPlacer::cross_named_auto(&circuits, &envs, &config).run();
    println!("\n{report}");
}
