#![allow(clippy::unwrap_used, clippy::expect_used)]
//! SWAP routing (paper Example 4 / Fig. 3): realize a 7-spin permutation
//! on the chemical-bond graph of trans-crotonic acid with parallel levels
//! of SWAP gates.
//!
//! Run with: `cargo run --example swap_routing`

use qcp::prelude::*;
use qcp_place::router::{route_permutation, verify_schedule, RouterConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let env = molecules::trans_crotonic_acid();
    let bonds = env.bond_graph();
    let names = env.nucleus_names();

    // Example 4's permutation over (M, C1, H1, C2, C3, H2, C4): the value
    // at M must reach C1, C1 -> C2, H1 -> C3, C2 -> C4, C3 -> H2,
    // H2 -> H1, C4 -> M.
    let perm = [1usize, 3, 4, 6, 5, 2, 0];
    let targets: Vec<Option<usize>> = perm.iter().map(|&d| Some(d)).collect();

    println!("routing on the bond graph of {}:", env.name());
    for (v, &d) in perm.iter().enumerate() {
        println!("  value at {} -> {}", names[v], names[d]);
    }

    let schedule = route_permutation(&bonds, &targets, &RouterConfig::default())?;
    assert!(verify_schedule(&bonds, &targets, &schedule));

    println!(
        "\n{} swaps in {} parallel levels:",
        schedule.swap_count(),
        schedule.depth()
    );
    for (i, level) in schedule.levels().iter().enumerate() {
        let swaps: Vec<String> = level
            .iter()
            .map(|&(a, b)| format!("{}<->{}", names[a.index()], names[b.index()]))
            .collect();
        println!("  level {}: {}", i + 1, swaps.join(", "));
    }

    // Cost the swap stage on the real molecule (SWAP = 3 couplings).
    let time = schedule
        .to_schedule()
        .runtime(&env, &CostModel::overlapped());
    println!("\nexecuting this permutation costs {time}");
    Ok(())
}
