#![allow(clippy::unwrap_used, clippy::expect_used)]
//! Define your own physical environment from a text description, place a
//! circuit on it, and export the fast graph for visualization.
//!
//! Run with: `cargo run --example custom_molecule`

use qcp::prelude::*;
use qcp_env::text as env_text;
use qcp_graph::dot::{to_dot, DotOptions};

const MOLECULE: &str = "
# A fictitious 6-spin register: a benzene-like ring of carbons with one
# proton handle. Delays in units of 1/10000 sec per 90-degree rotation.
environment hexane-toy
nucleus C1 5
nucleus C2 5
nucleus C3 5
nucleus C4 5
nucleus C5 5
nucleus H 2
bond C1 C2 60
bond C2 C3 65
bond C3 C4 70
bond C4 C5 62
bond C5 C1 58
bond C1 H 25
coupling C1 C3 420
coupling C2 C4 450
coupling C2 C5 430
coupling C3 C5 460
coupling C2 H 210
coupling C5 H 205
coupling C3 H 900
coupling C4 H 950
coupling C1 C4 480
";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let env = env_text::parse(MOLECULE)?;
    println!("loaded `{}` with {} nuclei", env.name(), env.qubit_count());

    // Where does this molecule become usable?
    let threshold = env.connectivity_threshold().expect("ring is connected");
    println!(
        "connectivity threshold: just above {} units",
        threshold.units().floor()
    );

    // Place a 5-qubit phase estimation on it.
    let circuit = qcp::circuit::library::phase_estimation();
    let placer = Placer::new(&env, PlacerConfig::with_threshold(threshold));
    let outcome = placer.place(&circuit)?;
    println!(
        "phaseest: {} in {} subcircuit(s) with {} swaps",
        outcome.runtime,
        outcome.subcircuit_count(),
        outcome.swap_count()
    );

    // Export the fast graph for graphviz.
    let dot = to_dot(
        &env.fast_graph(threshold),
        &DotOptions::named("hexane_toy")
            .with_labels(env.nucleus_names())
            .with_weights(),
    );
    println!("\nfast graph in DOT (pipe into `dot -Tpng`):\n{dot}");
    Ok(())
}
