#![allow(clippy::unwrap_used, clippy::expect_used)]
//! Scalability (a Table 4 slice): hidden-stage circuits on 1 kHz LNN
//! chains. The placer must rediscover the hidden stages: one subcircuit
//! per stage, connected by SWAP stages.
//!
//! Run with: `cargo run --release --example scalability`

use std::time::Instant;

use qcp::prelude::*;
use qcp_circuit::library::random::staged;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!(
        "{:>7}  {:>7}  {:>7}  {:>12}  {:>15}  {:>14}",
        "qubits", "gates", "stages", "subcircuits", "circuit runtime", "software time"
    );
    for n in [8usize, 16, 32, 64] {
        let workload = staged(n, 2007);
        let env = molecules::lnn_chain_1khz(n);
        let placer = Placer::new(
            &env,
            PlacerConfig::with_threshold(Threshold::new(11.0))
                .candidates(4)
                .lookahead(false)
                .fine_tuning(0),
        );
        let start = Instant::now();
        let outcome = placer.place(&workload.circuit)?;
        let elapsed = start.elapsed();
        println!(
            "{:>7}  {:>7}  {:>7}  {:>12}  {:>15}  {:>13.3}s",
            n,
            workload.circuit.gate_count(),
            workload.stage_count(),
            outcome.subcircuit_count(),
            outcome.runtime.to_string(),
            elapsed.as_secs_f64(),
        );
        assert_eq!(
            outcome.subcircuit_count(),
            workload.stage_count(),
            "the placer must rediscover the hidden stages"
        );
    }
    println!("\nsubcircuit counts match the hidden stages: the tool recovered the structure.");
    Ok(())
}
