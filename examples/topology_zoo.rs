#![allow(clippy::unwrap_used, clippy::expect_used)]
//! Topology zoo: place a suite of benchmark circuits on every device
//! backend — line, ring, grid, heavy-hex, star, and two NMR molecules —
//! and print the per-device results plus the parallel batch report.
//!
//! Run with: `cargo run --release --example topology_zoo`

use qcp::circuit::library;
use qcp::env::topologies::{self, Delays};
use qcp::prelude::*;

fn main() {
    // The circuit suite. Everything fits every backend except the
    // 8-qubit adder on the 7-spin crotonic acid — kept in on purpose to
    // show that one failing request never aborts a batch.
    let circuits: Vec<(&str, Circuit)> = vec![
        ("qec3", library::qec3_encoder()),
        ("qec5", library::qec5_benchmark()),
        ("phaseest", library::phase_estimation()),
        ("qft4", library::qft(4)),
        ("qft6", library::qft(6)),
        ("cat7", library::pseudo_cat(7)),
        ("adder3", library::ripple_adder(3)),
        ("grover5", library::grover_iteration(5)),
    ];

    // The device zoo: synthesized topologies (uniform 1 kHz-processor
    // delays) next to the paper's molecules.
    let delays = Delays::default();
    let envs: Vec<Environment> = vec![
        topologies::line(8, delays),
        topologies::ring(8, delays),
        topologies::grid(3, 3, delays),
        topologies::heavy_hex(3, delays),
        topologies::star(8, delays),
        molecules::trans_crotonic_acid(),
        molecules::histidine(),
    ];

    println!("devices:");
    for env in &envs {
        let g = env.full_graph();
        println!(
            "  {:<22} {:>3} qubits, {:>3} couplings, max degree {}",
            env.name(),
            env.qubit_count(),
            g.edge_count(),
            g.max_degree()
        );
    }

    // Per-device placement table: each circuit placed at the device's
    // connectivity threshold.
    println!(
        "\n{:<10} {:<22} {:>12} {:>7} {:>6}",
        "circuit", "device", "runtime", "stages", "swaps"
    );
    for (name, circuit) in &circuits {
        for env in &envs {
            let t = env
                .connectivity_threshold()
                .expect("zoo devices are connected");
            let placer = Placer::new(env, PlacerConfig::with_threshold(t).candidates(30));
            match placer.place(circuit) {
                Ok(outcome) => println!(
                    "{:<10} {:<22} {:>12} {:>7} {:>6}",
                    name,
                    env.name(),
                    outcome.runtime.to_string(),
                    outcome.subcircuit_count(),
                    outcome.swap_count()
                ),
                Err(e) => println!("{:<10} {:<22} {e}", name, env.name()),
            }
        }
    }

    // The same grid as one parallel batch: all circuits × all devices.
    let suite: Vec<Circuit> = circuits.iter().map(|(_, c)| c.clone()).collect();
    let config = PlacerConfig::default().candidates(30);
    let report = BatchPlacer::cross_auto(&suite, &envs, &config).run();
    println!(
        "\nbatch: {} requests on {} worker(s): {:.2} req/s, {} failed, fingerprint {:016x}",
        report.results.len(),
        report.jobs,
        report.throughput(),
        report.failed(),
        report.outcome_fingerprint()
    );

    // Determinism check: a single-worker rerun produces bit-identical
    // outcomes (only the wall clock may differ).
    let serial = BatchPlacer::cross_auto(&suite, &envs, &config)
        .jobs(1)
        .run();
    assert_eq!(
        report.outcome_fingerprint(),
        serial.outcome_fingerprint(),
        "batch outcomes must not depend on worker count"
    );
    println!("determinism: single-worker rerun matches (fingerprints equal)");
}
