//! Logical qubit identifiers.

use std::fmt;

/// Identifier of a *logical* qubit — a wire of an abstract circuit.
///
/// Logical qubits are mapped onto *physical* qubits (molecule nuclei,
/// represented by `qcp_env::PhysicalQubit`) by a placement. Keeping the two
/// index spaces in distinct newtypes prevents the classic placement bug of
/// indexing an environment table with a circuit wire.
///
/// ```
/// use qcp_circuit::Qubit;
/// let q = Qubit::new(2);
/// assert_eq!(q.index(), 2);
/// assert_eq!(q.to_string(), "q2");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Qubit(u32);

impl Qubit {
    /// Creates a qubit identifier from a dense wire index.
    ///
    /// # Panics
    ///
    /// Panics if `index` exceeds `u32::MAX`.
    #[inline]
    pub fn new(index: usize) -> Self {
        match u32::try_from(index) {
            Ok(i) => Qubit(i),
            Err(_) => panic!("qubit index {index} exceeds u32::MAX"),
        }
    }

    /// Returns the dense wire index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl From<usize> for Qubit {
    fn from(index: usize) -> Self {
        Qubit::new(index)
    }
}

impl From<Qubit> for usize {
    fn from(q: Qubit) -> Self {
        q.index()
    }
}

impl fmt::Display for Qubit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "q{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        assert_eq!(Qubit::new(7).index(), 7);
        assert_eq!(usize::from(Qubit::from(3usize)), 3);
    }

    #[test]
    fn display() {
        assert_eq!(Qubit::new(0).to_string(), "q0");
    }

    #[test]
    fn ord_by_index() {
        assert!(Qubit::new(1) < Qubit::new(4));
    }
}
