//! Error type for circuit construction and parsing.

use std::error::Error;
use std::fmt;

use crate::Qubit;

/// A position in a parsed source text: one-based line and column.
///
/// Both the line-oriented [`text`](crate::text) format and the OpenQASM
/// frontend ([`qasm`](crate::qasm)) report diagnostics through this type,
/// so error messages render identically whichever parser produced them.
/// Columns count Unicode scalar values (characters), not bytes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct SourceSpan {
    /// One-based line number.
    pub line: usize,
    /// One-based column number (in characters).
    pub col: usize,
}

impl SourceSpan {
    /// A span at `line`/`col` (both one-based).
    pub fn new(line: usize, col: usize) -> Self {
        SourceSpan { line, col }
    }

    /// The span of `token` within `line_text`, which must be a subslice of
    /// it, on one-based line `line`.
    ///
    /// Uses pointer arithmetic on the subslice to recover the byte offset,
    /// then counts characters, so callers can split a line however they
    /// like and still report exact columns.
    pub fn of_token(line: usize, line_text: &str, token: &str) -> Self {
        let base = line_text.as_ptr() as usize;
        let tok = token.as_ptr() as usize;
        let mut byte_off = tok.saturating_sub(base).min(line_text.len());
        while !line_text.is_char_boundary(byte_off) {
            byte_off -= 1;
        }
        let col = line_text[..byte_off].chars().count() + 1;
        SourceSpan { line, col }
    }
}

impl fmt::Display for SourceSpan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// Errors returned by circuit construction, validation, and parsing.
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum CircuitError {
    /// A gate referenced a qubit outside the circuit width.
    QubitOutOfRange {
        /// The offending qubit.
        qubit: Qubit,
        /// Declared circuit width.
        width: usize,
    },
    /// Two gates within one level share a qubit.
    LevelConflict {
        /// Zero-based level index.
        level: usize,
        /// The qubit used twice.
        qubit: Qubit,
    },
    /// Text- or QASM-format parse failure.
    Parse {
        /// Where in the source the problem was found.
        span: SourceSpan,
        /// What went wrong.
        message: String,
    },
}

impl CircuitError {
    /// Shorthand for a [`CircuitError::Parse`] at `span`.
    pub fn parse_at(span: SourceSpan, message: impl Into<String>) -> Self {
        CircuitError::Parse {
            span,
            message: message.into(),
        }
    }

    /// The stable wire token for this error, used by the CLI exit-code
    /// taxonomy and the `qcp serve` JSON error bodies (`parse`,
    /// `qubit-out-of-range`, `level-conflict`). Every circuit error is an
    /// *input*-class failure: the request was malformed, not the system.
    pub fn code(&self) -> &'static str {
        match self {
            CircuitError::QubitOutOfRange { .. } => "qubit-out-of-range",
            CircuitError::LevelConflict { .. } => "level-conflict",
            CircuitError::Parse { .. } => "parse",
        }
    }

    /// The source position of a parse failure (`None` for structural
    /// errors that have no source text). Batch ingestion and the server
    /// use this to report `path:line:column` diagnostics without string
    /// matching on [`Display`](fmt::Display) output.
    pub fn span(&self) -> Option<SourceSpan> {
        match self {
            CircuitError::Parse { span, .. } => Some(*span),
            _ => None,
        }
    }
}

impl fmt::Display for CircuitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CircuitError::QubitOutOfRange { qubit, width } => {
                write!(f, "qubit {qubit} out of range for a {width}-qubit circuit")
            }
            CircuitError::LevelConflict { level, qubit } => {
                write!(f, "level {level} uses qubit {qubit} in two gates")
            }
            CircuitError::Parse { span, message } => {
                write!(f, "parse error at {span}: {message}")
            }
        }
    }
}

impl Error for CircuitError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_details() {
        let e = CircuitError::QubitOutOfRange {
            qubit: Qubit::new(9),
            width: 4,
        };
        assert!(e.to_string().contains("q9"));
        let e = CircuitError::Parse {
            span: SourceSpan::new(3, 7),
            message: "bad gate".into(),
        };
        assert_eq!(e.to_string(), "parse error at 3:7: bad gate");
    }

    #[test]
    fn span_of_token_counts_characters() {
        let line = "zz q0 q1 90";
        let tok = &line[6..8];
        assert_eq!(tok, "q1");
        assert_eq!(SourceSpan::of_token(4, line, tok), SourceSpan::new(4, 7));
        // Multi-byte characters before the token still count as one column.
        let line = "zz μ0 q1 90";
        let idx = line.find("q1").unwrap();
        let tok = &line[idx..idx + 2];
        assert_eq!(SourceSpan::of_token(1, line, tok), SourceSpan::new(1, 7));
    }

    #[test]
    fn span_of_token_with_foreign_slice_saturates() {
        // A token that is not a subslice must not panic; it pins to the
        // line start or end instead.
        let span = SourceSpan::of_token(2, "abc", "zzz");
        assert_eq!(span.line, 2);
        assert!(span.col >= 1);
    }

    #[test]
    fn spans_order_by_position() {
        assert!(SourceSpan::new(1, 9) < SourceSpan::new(2, 1));
        assert!(SourceSpan::new(2, 1) < SourceSpan::new(2, 4));
    }

    #[test]
    fn wire_codes_and_spans() {
        let e = CircuitError::parse_at(SourceSpan::new(3, 7), "bad gate");
        assert_eq!(e.code(), "parse");
        assert_eq!(e.span(), Some(SourceSpan::new(3, 7)));
        let e = CircuitError::QubitOutOfRange {
            qubit: Qubit::new(9),
            width: 4,
        };
        assert_eq!(e.code(), "qubit-out-of-range");
        assert_eq!(e.span(), None);
    }

    #[test]
    fn is_send_sync_error() {
        fn assert_traits<T: Error + Send + Sync>() {}
        assert_traits::<CircuitError>();
    }
}
