//! Error type for circuit construction and parsing.

use std::error::Error;
use std::fmt;

use crate::Qubit;

/// Errors returned by circuit construction, validation, and parsing.
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum CircuitError {
    /// A gate referenced a qubit outside the circuit width.
    QubitOutOfRange {
        /// The offending qubit.
        qubit: Qubit,
        /// Declared circuit width.
        width: usize,
    },
    /// Two gates within one level share a qubit.
    LevelConflict {
        /// Zero-based level index.
        level: usize,
        /// The qubit used twice.
        qubit: Qubit,
    },
    /// Text-format parse failure.
    Parse {
        /// One-based line number.
        line: usize,
        /// What went wrong.
        message: String,
    },
}

impl fmt::Display for CircuitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CircuitError::QubitOutOfRange { qubit, width } => {
                write!(f, "qubit {qubit} out of range for a {width}-qubit circuit")
            }
            CircuitError::LevelConflict { level, qubit } => {
                write!(f, "level {level} uses qubit {qubit} in two gates")
            }
            CircuitError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
        }
    }
}

impl Error for CircuitError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_details() {
        let e = CircuitError::QubitOutOfRange {
            qubit: Qubit::new(9),
            width: 4,
        };
        assert!(e.to_string().contains("q9"));
        let e = CircuitError::Parse {
            line: 3,
            message: "bad gate".into(),
        };
        assert!(e.to_string().contains("line 3"));
    }

    #[test]
    fn is_send_sync_error() {
        fn assert_traits<T: Error + Send + Sync>() {}
        assert_traits::<CircuitError>();
    }
}
