//! Pseudo-cat state preparation (Table 2 workload, run on histidine in the
//! 12-qubit benchmarking experiment of Negrevergne et al.).

use crate::{Circuit, Gate, Qubit};

/// Pseudo-cat state preparation on `n` qubits: an initial excitation pulse
/// followed by a CNOT ladder `q0 → q1 → … → q(n−1)` in the NMR basis, plus
/// the final frame cleanup. For `n = 10` this is the 54-gate, 10-qubit
/// circuit of Table 2.
///
/// The interaction graph is a Hamiltonian path, which is what lets the
/// experimentalists (and the placement tool) host the whole circuit along
/// a single chain of chemical bonds inside the 12-spin histidine molecule.
///
/// ```
/// use qcp_circuit::library::pseudo_cat;
/// let c = pseudo_cat(10);
/// assert_eq!(c.qubit_count(), 10);
/// assert_eq!(c.gate_count(), 54);
/// assert_eq!(c.two_qubit_gate_count(), 9);
/// ```
///
/// # Panics
///
/// Panics if `n < 2`.
pub fn pseudo_cat(n: usize) -> Circuit {
    assert!(n >= 2, "a cat state needs at least 2 qubits, got {n}");
    let q = Qubit::new;
    let mut b = Circuit::builder(n);
    // Excitation pulse on the head of the chain.
    b.gate(Gate::ry(q(0), 90.0));
    // CNOT ladder: 5 NMR gates per link.
    for i in 0..n - 1 {
        b.cnot(q(i), q(i + 1));
    }
    // Reference-frame cleanup on every qubit except the two chain ends
    // (free Rz gates; they make the observed state a *pseudo*-pure cat).
    for i in 1..n - 1 {
        b.gate(Gate::rz(q(i), -90.0));
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcp_graph::NodeId;

    #[test]
    fn ten_qubit_cat_matches_table_2() {
        let c = pseudo_cat(10);
        assert_eq!(c.qubit_count(), 10);
        assert_eq!(c.gate_count(), 54); // 1 + 9*5 + 8
        assert_eq!(c.two_qubit_gate_count(), 9);
    }

    #[test]
    fn interaction_graph_is_a_path() {
        let g = pseudo_cat(6).interaction_graph();
        assert_eq!(g.edge_count(), 5);
        for i in 0..5 {
            assert!(g.has_edge(NodeId::new(i), NodeId::new(i + 1)));
        }
        assert!(!g.has_edge(NodeId::new(0), NodeId::new(2)));
    }

    #[test]
    fn minimal_cat() {
        let c = pseudo_cat(2);
        assert_eq!(c.two_qubit_gate_count(), 1);
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn rejects_single_qubit() {
        let _ = pseudo_cat(1);
    }
}
