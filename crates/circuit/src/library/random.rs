//! Random hidden-stage circuits for the scalability study (Table 4).
//!
//! §6's final experiment builds circuits that model computations glued
//! from separately optimized phases: pick a random permutation
//! `p_1 … p_N` of the qubits ("hidden stage"), emit `N·log₂N` random
//! two-qubit gates between `p`-adjacent qubits, re-permute, and repeat
//! `log₂N` times. Every gate is "maximal length" (`T(G) = 3`, the
//! Zhang–Vala–Sastry–Whaley bound). A good placement tool must rediscover
//! the hidden stages: one subcircuit per permutation, connected by SWAP
//! stages.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use crate::{Circuit, Gate, Qubit};

/// A generated hidden-stage circuit plus the ground truth used to build it.
#[derive(Clone, Debug)]
pub struct StagedCircuit {
    /// The generated circuit.
    pub circuit: Circuit,
    /// The hidden permutations, one per stage: `permutations[s][j]` is the
    /// qubit index occupying chain position `j` during stage `s`.
    pub permutations: Vec<Vec<usize>>,
    /// Number of gates emitted per stage.
    pub gates_per_stage: usize,
}

impl StagedCircuit {
    /// Number of hidden stages.
    pub fn stage_count(&self) -> usize {
        self.permutations.len()
    }
}

/// Builds the Table 4 test circuit for `n` qubits (a power of two in the
/// paper; any `n >= 2` is accepted): `log₂N` hidden stages of `N·log₂N`
/// maximal-length gates along a randomly permuted chain.
///
/// Deterministic in `seed`.
///
/// # Panics
///
/// Panics if `n < 2`.
pub fn staged(n: usize, seed: u64) -> StagedCircuit {
    let stages = (n as f64).log2().round().max(1.0) as usize;
    let gates_per_stage = n * stages;
    staged_with(n, stages, gates_per_stage, seed)
}

/// Fully parameterized variant of [`staged`].
///
/// # Panics
///
/// Panics if `n < 2` or `stages == 0`.
pub fn staged_with(n: usize, stages: usize, gates_per_stage: usize, seed: u64) -> StagedCircuit {
    assert!(n >= 2, "need at least 2 qubits, got {n}");
    assert!(stages > 0, "need at least one stage");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = Circuit::builder(n);
    let mut permutations = Vec::with_capacity(stages);
    for stage in 0..stages {
        if stage > 0 {
            // Stages are separately optimized phases glued in sequence;
            // keep their levels from interleaving.
            b.barrier();
        }
        let mut p: Vec<usize> = (0..n).collect();
        p.shuffle(&mut rng);
        for _ in 0..gates_per_stage {
            // Random chain edge (j, j+1) in the permuted order; the paper
            // picks j and couples p_j with p_{j−1} or p_{j+1}, which is the
            // same distribution over chain edges.
            let j = rng.gen_range(0..n - 1);
            let (a, b_) = (Qubit::new(p[j]), Qubit::new(p[j + 1]));
            // Maximal-length two-qubit unitary: T(G) = 3.
            b.gate(Gate::custom2(a, b_, 3.0, "U"));
        }
        permutations.push(p);
    }
    StagedCircuit {
        circuit: b.build(),
        permutations,
        gates_per_stage,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcp_graph::NodeId;

    #[test]
    fn table_4_gate_counts() {
        // N=8: 3 stages of 24 gates = 72; N=16: 4 stages of 64 = 256.
        let c8 = staged(8, 1);
        assert_eq!(c8.stage_count(), 3);
        assert_eq!(c8.circuit.gate_count(), 72);
        let c16 = staged(16, 1);
        assert_eq!(c16.stage_count(), 4);
        assert_eq!(c16.circuit.gate_count(), 256);
    }

    #[test]
    fn all_gates_are_maximal_two_qubit() {
        let s = staged(8, 2);
        for g in s.circuit.gates() {
            assert!(g.is_two_qubit());
            assert_eq!(g.time_weight(), 3.0);
        }
    }

    #[test]
    fn stage_interactions_follow_hidden_chain() {
        let s = staged_with(10, 2, 40, 3);
        // Split the flat gate list back into stages and check each gate
        // couples adjacent elements of that stage's permutation.
        let gates: Vec<_> = s.circuit.gates().cloned().collect();
        assert_eq!(gates.len(), 80);
        for (stage, perm) in s.permutations.iter().enumerate() {
            let mut pos = [0usize; 10];
            for (j, &qi) in perm.iter().enumerate() {
                pos[qi] = j;
            }
            for g in &gates[stage * 40..(stage + 1) * 40] {
                let (a, b) = g.coupling().unwrap();
                assert_eq!(
                    pos[a.index()].abs_diff(pos[b.index()]),
                    1,
                    "gate {g} not chain-adjacent in stage {stage}"
                );
            }
        }
    }

    #[test]
    fn deterministic_in_seed() {
        assert_eq!(staged(8, 5).circuit, staged(8, 5).circuit);
        assert_ne!(staged(8, 5).circuit, staged(8, 6).circuit);
    }

    #[test]
    fn interaction_graph_per_stage_is_subchain() {
        // One stage alone: the interaction graph is a subgraph of a path,
        // i.e. max degree <= 2 and acyclic.
        let s = staged_with(12, 1, 60, 7);
        let g = s.circuit.interaction_graph();
        assert!(g.max_degree() <= 2);
        assert!(g.edge_count() <= 11);
        let _ = NodeId::new(0); // silence unused import in some cfgs
    }
}
