//! Steane [[7,1,3]] code X-type syndrome extraction (Table 3 workloads
//! "steane-x/z1" and "steane-x/z2").
//!
//! The paper takes these from Nielsen–Chuang Figs. 10.16 and 10.17; by the
//! CSS symmetry of the Steane code the same circuits serve as Z-type
//! error correction, which is why the tables name them "steane-x/z".

use crate::{Circuit, Qubit};

/// Which fault-tolerant syndrome-measurement construction to use.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SteaneVariant {
    /// Shor-style measurement with a 3-qubit cat ancilla (one GHZ block
    /// shared across the three stabilizer generators), in the spirit of
    /// N&C Fig. 10.16.
    CatAncilla,
    /// Sequential per-generator measurement: each ancilla is prepared,
    /// coupled to its generator's support, and read out independently, in
    /// the spirit of N&C Fig. 10.17.
    Sequential,
}

/// Supports of the three X-type stabilizer generators of the Steane code,
/// as data-qubit indices (columns of the Hamming(7,4) parity-check
/// matrix).
pub const STEANE_X_GENERATORS: [[usize; 4]; 3] = [[0, 2, 4, 6], [1, 2, 5, 6], [3, 4, 5, 6]];

/// Ten-qubit X-type error-correction circuit for the Steane code: data
/// qubits `q0..q6`, ancillas `q7..q9`.
///
/// ```
/// use qcp_circuit::library::{steane_x, SteaneVariant};
/// let c = steane_x(SteaneVariant::CatAncilla);
/// assert_eq!(c.qubit_count(), 10);
/// ```
pub fn steane_x(variant: SteaneVariant) -> Circuit {
    let q = Qubit::new;
    let anc = [q(7), q(8), q(9)];
    let mut b = Circuit::builder(10);
    match variant {
        SteaneVariant::CatAncilla => {
            // Cat state |000> + |111> on the ancilla block.
            b.hadamard(anc[0]);
            b.cnot(anc[0], anc[1]);
            b.cnot(anc[1], anc[2]);
            // Couple each generator to one cat qubit.
            for (g, generator) in STEANE_X_GENERATORS.iter().enumerate() {
                for &d in generator {
                    b.cnot(anc[g], q(d));
                }
            }
            // Decode the cat before readout.
            b.cnot(anc[1], anc[2]);
            b.cnot(anc[0], anc[1]);
            b.hadamard(anc[0]);
        }
        SteaneVariant::Sequential => {
            // Each ancilla measures one generator independently.
            for (g, generator) in STEANE_X_GENERATORS.iter().enumerate() {
                b.hadamard(anc[g]);
                for &d in generator {
                    b.cnot(anc[g], q(d));
                }
                b.hadamard(anc[g]);
            }
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcp_graph::NodeId;

    #[test]
    fn generators_cover_all_data_qubits() {
        let mut seen = [0usize; 7];
        for g in STEANE_X_GENERATORS {
            for d in g {
                seen[d] += 1;
            }
        }
        assert!(seen.iter().all(|&c| c >= 1));
        assert_eq!(seen[6], 3, "q6 is in all three generators");
    }

    #[test]
    fn cat_variant_shape() {
        let c = steane_x(SteaneVariant::CatAncilla);
        assert_eq!(c.qubit_count(), 10);
        // 12 syndrome CNOTs + 4 cat CNOTs.
        assert_eq!(c.two_qubit_gate_count(), 16);
        let g = c.interaction_graph();
        // Ancilla chain edges exist.
        assert!(g.has_edge(NodeId::new(7), NodeId::new(8)));
        assert!(g.has_edge(NodeId::new(8), NodeId::new(9)));
    }

    #[test]
    fn sequential_variant_shape() {
        let c = steane_x(SteaneVariant::Sequential);
        assert_eq!(c.qubit_count(), 10);
        assert_eq!(c.two_qubit_gate_count(), 12);
        let g = c.interaction_graph();
        // No ancilla-ancilla interactions in the sequential variant.
        assert!(!g.has_edge(NodeId::new(7), NodeId::new(8)));
        assert!(!g.has_edge(NodeId::new(8), NodeId::new(9)));
        // Each ancilla touches exactly its generator's support.
        for (i, generator) in STEANE_X_GENERATORS.iter().enumerate() {
            let a = NodeId::new(7 + i);
            assert_eq!(g.degree(a), 4);
            for &d in generator {
                assert!(g.has_edge(a, NodeId::new(d)));
            }
        }
    }

    #[test]
    fn variants_differ() {
        assert_ne!(
            steane_x(SteaneVariant::CatAncilla),
            steane_x(SteaneVariant::Sequential)
        );
    }
}
