//! Quantum Fourier transform circuits (Table 3 workloads "qft6", "aqft9",
//! "aqft12").

use crate::{Circuit, Qubit};

/// The textbook `n`-qubit quantum Fourier transform (Nielsen–Chuang
/// p. 219) in the NMR basis: for each qubit a Hadamard followed by
/// controlled phases `R_k` with every later qubit, the phase halving with
/// distance. The final qubit-reversal SWAPs are omitted — they are
/// bookkeeping renames tracked classically, as is conventional.
///
/// QFT "is inconvenient for quantum architectures since it contains a
/// 2-qubit gate for every pair of qubits" (§6): its interaction graph is
/// the complete graph `K_n`.
///
/// ```
/// use qcp_circuit::library::qft;
/// let c = qft(6);
/// assert_eq!(c.qubit_count(), 6);
/// assert_eq!(c.two_qubit_gate_count(), 15); // all pairs
/// ```
pub fn qft(n: usize) -> Circuit {
    qft_banded(n, n.max(1) - 1)
}

/// The approximate QFT: controlled phases are kept only between qubits at
/// distance at most `ceil(log2 n)`; more distant phases are below the
/// precision the transform needs and are dropped. This is the circuit
/// family the paper calls "aqft9" and "aqft12" and the reason approximate
/// QFT circuits have `O(n log n)` gates.
pub fn aqft(n: usize) -> Circuit {
    let band = (n.max(2) as f64).log2().ceil() as usize;
    qft_banded(n, band.max(1))
}

/// QFT keeping controlled phases only for qubit distances `<= band`.
pub fn qft_banded(n: usize, band: usize) -> Circuit {
    let q = Qubit::new;
    let mut b = Circuit::builder(n);
    for i in 0..n {
        b.hadamard(q(i));
        for j in i + 1..n {
            let d = j - i;
            if d > band {
                continue;
            }
            // Controlled-R_{d+1}: phase 360 / 2^{d+1} = 180 / 2^d degrees.
            let angle = 180.0 / (1u64 << d) as f64;
            b.cphase(q(j), q(i), angle);
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcp_graph::NodeId;

    #[test]
    fn qft6_touches_every_pair() {
        let c = qft(6);
        let g = c.interaction_graph();
        assert_eq!(g.edge_count(), 15, "K6 has 15 edges");
        assert_eq!(c.two_qubit_gate_count(), 15);
    }

    #[test]
    fn qft_gate_count_formula() {
        // n Hadamards (2 gates each) + C(n,2) cphases (3 gates each).
        for n in 2..8 {
            let c = qft(n);
            let pairs = n * (n - 1) / 2;
            assert_eq!(c.gate_count(), 2 * n + 3 * pairs);
        }
    }

    #[test]
    fn aqft_band_limits_interactions() {
        let c = aqft(9); // band = ceil(log2 9) = 4
        let g = c.interaction_graph();
        for (a, b, _) in g.edges() {
            assert!(a.index().abs_diff(b.index()) <= 4);
        }
        // Distances 1..=4 exist.
        assert!(g.has_edge(NodeId::new(0), NodeId::new(4)));
        assert!(!g.has_edge(NodeId::new(0), NodeId::new(5)));
    }

    #[test]
    fn aqft12_band_is_four() {
        let c = aqft(12);
        let g = c.interaction_graph();
        let two_qubit: usize = c.two_qubit_gate_count();
        // Distances 1..=4: (12-1)+(12-2)+(12-3)+(12-4) = 38 pairs.
        assert_eq!(g.edge_count(), 38);
        assert_eq!(two_qubit, 38);
    }

    #[test]
    fn phase_angles_halve_with_distance() {
        let c = qft(4);
        // Find ZZ gates between q3/q0 (distance 3): angle must be
        // -180/2^3 / 2 = -11.25 degrees (cphase splits the angle).
        let zz: Vec<f64> = c
            .gates()
            .filter_map(|g| match g {
                crate::Gate::Zz { a, b, angle }
                    if a.index().min(b.index()) == 0 && a.index().max(b.index()) == 3 =>
                {
                    Some(*angle)
                }
                _ => None,
            })
            .collect();
        assert_eq!(zz, vec![-180.0 / 8.0 / 2.0]);
    }

    #[test]
    fn tiny_qfts() {
        assert_eq!(qft(1).two_qubit_gate_count(), 0);
        assert_eq!(qft(2).two_qubit_gate_count(), 1);
    }
}
