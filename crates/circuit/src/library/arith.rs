//! Arithmetic circuits — the building blocks of modular exponentiation.
//!
//! §6 motivates the hidden-stage experiment with Shor's algorithm:
//! "modular exponentiation itself can be broken into a number of simpler
//! arithmetic circuits" that are optimized separately and glued together.
//! This module provides such a block: a ripple-carry adder in the
//! CDKM (Cuccaro–Draper–Kutin–Moulton) style, expressed in the NMR basis
//! through the builder's CNOT/Toffoli expansions.

use crate::{Circuit, CircuitBuilder, Gate, Qubit};

/// Appends a Toffoli (CCNOT) with controls `c1`, `c2` and target `t`,
/// decomposed into two-qubit couplings and pulses. The decomposition uses
/// five two-qubit interactions — within the known coupling-count bounds —
/// over the pairs `(c1,t)`, `(c2,t)`, `(c1,c2)`.
fn toffoli(b: &mut CircuitBuilder, c1: Qubit, c2: Qubit, t: Qubit) {
    // Phase-style decomposition: conjugate the target into the phase
    // basis, apply controlled-phase ladder, return.
    b.gate(Gate::ry(t, 90.0));
    b.cphase(c1, t, 90.0);
    b.cphase(c2, t, 90.0);
    b.cphase(c1, c2, 90.0);
    b.cphase(c1, t, -90.0);
    b.cphase(c2, t, 90.0);
    b.gate(Gate::ry(t, -90.0));
}

/// An `n`-bit ripple-carry adder on `2n + 2` qubits: register `a` on
/// qubits `0..n`, register `b` on `n..2n`, carry-in ancilla `2n`, carry
/// out `2n + 1`. Interactions are local to neighbouring bit triples, so
/// the circuit maps well onto chain-like architectures — exactly the kind
/// of separately-optimized phase the staged experiment models.
///
/// ```
/// use qcp_circuit::library::ripple_adder;
/// let c = ripple_adder(3);
/// assert_eq!(c.qubit_count(), 8);
/// assert!(c.two_qubit_gate_count() > 0);
/// ```
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn ripple_adder(n: usize) -> Circuit {
    assert!(n > 0, "adder needs at least one bit");
    let q = Qubit::new;
    let a = |i: usize| q(i);
    let b_ = |i: usize| q(n + i);
    let cin = q(2 * n);
    let cout = q(2 * n + 1);
    let mut b = Circuit::builder(2 * n + 2);

    // MAJ ladder.
    for i in 0..n {
        let carry = if i == 0 { cin } else { a(i - 1) };
        b.cnot(a(i), b_(i));
        b.cnot(a(i), carry);
        toffoli(&mut b, carry, b_(i), a(i));
    }
    // Carry out.
    b.cnot(a(n - 1), cout);
    // UMA ladder (unwind).
    for i in (0..n).rev() {
        let carry = if i == 0 { cin } else { a(i - 1) };
        toffoli(&mut b, carry, b_(i), a(i));
        b.cnot(a(i), carry);
        b.cnot(carry, b_(i));
    }
    b.build()
}

/// Grover iteration on `n` qubits: the phase oracle marking the all-ones
/// state followed by the diffusion operator, both built from controlled
/// phases chained along the register. One iteration; repeat ~`√2ⁿ` times
/// for search.
///
/// ```
/// use qcp_circuit::library::grover_iteration;
/// let c = grover_iteration(4);
/// assert_eq!(c.qubit_count(), 4);
/// ```
///
/// # Panics
///
/// Panics if `n < 2`.
pub fn grover_iteration(n: usize) -> Circuit {
    assert!(n >= 2, "grover needs at least 2 qubits, got {n}");
    let q = Qubit::new;
    let mut b = Circuit::builder(n);
    // Oracle: multi-controlled phase via a chain of controlled phases
    // (linearized ladder, suitable for sparse architectures).
    for i in 0..n - 1 {
        b.cphase(q(i), q(i + 1), 180.0 / (1 << i.min(6)) as f64);
    }
    // Diffusion: H^n, multi-controlled phase ladder, H^n.
    for i in 0..n {
        b.hadamard(q(i));
    }
    for i in (0..n - 1).rev() {
        b.cphase(q(i), q(i + 1), -180.0 / (1 << i.min(6)) as f64);
    }
    for i in 0..n {
        b.hadamard(q(i));
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcp_graph::traversal::is_connected;

    #[test]
    fn adder_shape() {
        for n in 1..4 {
            let c = ripple_adder(n);
            assert_eq!(c.qubit_count(), 2 * n + 2);
            assert!(c.gate_count() > 0);
            // Interaction graph connected except possibly the unused
            // carry-out of tiny adders.
            let g = c.interaction_graph();
            assert!(g.edge_count() >= 3 * n);
        }
    }

    #[test]
    fn adder_interactions_are_triple_local() {
        // Every coupling involves qubits of the same or adjacent bit
        // positions (plus the carries): max interaction-graph degree stays
        // bounded regardless of n.
        let c = ripple_adder(5);
        let g = c.interaction_graph();
        assert!(g.max_degree() <= 7, "degree {} too large", g.max_degree());
    }

    #[test]
    fn grover_shape() {
        let c = grover_iteration(5);
        let g = c.interaction_graph();
        // Chain-shaped interactions: degree <= 2, connected.
        assert!(g.max_degree() <= 2);
        assert!(is_connected(&g));
        assert_eq!(c.two_qubit_gate_count(), 2 * 4);
    }

    #[test]
    #[should_panic(expected = "at least one bit")]
    fn empty_adder_rejected() {
        let _ = ripple_adder(0);
    }

    #[test]
    fn toffoli_uses_five_couplings() {
        let mut b = Circuit::builder(3);
        toffoli(&mut b, Qubit::new(0), Qubit::new(1), Qubit::new(2));
        let c = b.build();
        assert_eq!(c.two_qubit_gate_count(), 5);
    }
}
