//! Benchmark circuits from the paper's evaluation (§6).
//!
//! | Constructor | Paper workload | Qubits | Gates |
//! |---|---|---|---|
//! | [`qec3_encoder`] | 3-qubit error-correction encoder, Fig. 2 (Table 1/2) | 3 | 9 |
//! | [`qec5_benchmark`] | 5-qubit error-correction benchmark (Table 2) | 5 | 25 |
//! | [`pseudo_cat`] | pseudo-cat state preparation (Table 2) | 10 | 54 |
//! | [`phase_estimation`] | "phaseest" (Table 3) | 5 | 46 |
//! | [`qft`] | "qft6" (Table 3) | n | — |
//! | [`aqft`] | "aqft9"/"aqft12" (Table 3) | n | — |
//! | [`steane_x`] | "steane-x/z1", "steane-x/z2" (Table 3) | 10 | — |
//! | [`random::staged`] | hidden-stage scalability circuits (Table 4) | n | n·log²n |
//!
//! All circuits are expressed in the NMR basis (`Rx`/`Ry`/`Rz`/`ZZ`) with
//! the paper's time weights, so a `ZZ(90)` costs one coupling unit and
//! `Rz` gates are free.

mod arith;
mod cat;
mod phaseest;
mod qec;
mod qft;
pub mod random;
mod steane;

pub use arith::{grover_iteration, ripple_adder};
pub use cat::pseudo_cat;
pub use phaseest::phase_estimation;
pub use qec::{qec3_encoder, qec5_benchmark};
pub use qft::{aqft, qft};
pub use steane::{steane_x, SteaneVariant};

use crate::Circuit;

/// Looks up a benchmark circuit by the name used in the paper's tables.
///
/// Recognized names: `qec3`, `qec5`, `cat10`, `phaseest`, `qft6`, `aqft9`,
/// `aqft12`, `steane-x1`, `steane-x2` (and `steane-z1`/`steane-z2`, which
/// by the symmetry noted in §6 are the same circuits), plus the extension
/// workloads `adder3` and `grover5`.
pub fn named(name: &str) -> Option<Circuit> {
    match name {
        "qec3" => Some(qec3_encoder()),
        "qec5" => Some(qec5_benchmark()),
        "cat10" => Some(pseudo_cat(10)),
        "phaseest" => Some(phase_estimation()),
        "qft6" => Some(qft(6)),
        "aqft9" => Some(aqft(9)),
        "aqft12" => Some(aqft(12)),
        "adder3" => Some(ripple_adder(3)),
        "grover5" => Some(grover_iteration(5)),
        "steane-x1" | "steane-z1" => Some(steane_x(SteaneVariant::CatAncilla)),
        "steane-x2" | "steane-z2" => Some(steane_x(SteaneVariant::Sequential)),
        _ => None,
    }
}

/// All table workload names accepted by [`named`], in table order.
pub const NAMES: &[&str] = &[
    "qec3",
    "qec5",
    "cat10",
    "phaseest",
    "qft6",
    "aqft9",
    "aqft12",
    "steane-x1",
    "steane-x2",
    "adder3",
    "grover5",
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_resolves_all_names() {
        for name in NAMES {
            let c = named(name).unwrap_or_else(|| panic!("missing circuit {name}"));
            assert!(c.gate_count() > 0, "{name} is empty");
        }
        assert!(named("nonsense").is_none());
    }

    #[test]
    fn steane_z_aliases_x() {
        assert_eq!(named("steane-z1"), named("steane-x1"));
        assert_eq!(named("steane-z2"), named("steane-x2"));
    }

    #[test]
    fn table2_gate_and_qubit_counts_match_paper() {
        // Table 2 rows: (circuit, gates, qubits).
        let qec3 = qec3_encoder();
        assert_eq!((qec3.gate_count(), qec3.qubit_count()), (9, 3));
        let qec5 = qec5_benchmark();
        assert_eq!((qec5.gate_count(), qec5.qubit_count()), (25, 5));
        let cat = pseudo_cat(10);
        assert_eq!((cat.gate_count(), cat.qubit_count()), (54, 10));
    }
}
