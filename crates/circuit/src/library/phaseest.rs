//! The 5-qubit phase-estimation circuit (Table 3 workload "phaseest").

use crate::{Circuit, Qubit};

/// Five-qubit quantum phase estimation: four counting qubits `q0..q3`
/// estimate the eigenphase of a unitary acting on the target `q4`.
///
/// Structure: Hadamards on the counting register, controlled powers
/// `c-U^{2^k}` realized as controlled phases onto the target, then the
/// inverse QFT on the counting register. The interaction graph is dense —
/// a star into the target plus all counting pairs — so no molecular bond
/// graph can host the whole circuit at once. That is what makes
/// "phaseest" a good stress test for the multi-workspace placement of §5:
/// Table 3 shows it split into as many as 8 subcircuits at tight
/// thresholds.
///
/// ```
/// use qcp_circuit::library::phase_estimation;
/// let c = phase_estimation();
/// assert_eq!(c.qubit_count(), 5);
/// assert_eq!(c.gate_count(), 46);
/// ```
pub fn phase_estimation() -> Circuit {
    let q = Qubit::new;
    let target = q(4);
    let mut b = Circuit::builder(5);
    // Superpose the counting register.
    for i in 0..4 {
        b.hadamard(q(i));
    }
    // Controlled-U^{2^k}: eigenphase kick-back as a controlled phase of
    // 360 / 2^{k+1} degrees.
    for k in 0..4 {
        let angle = 360.0 / (1u64 << (k + 1)) as f64;
        b.cphase(q(k), target, angle);
    }
    // Inverse QFT on q0..q3 (reverse order, negated phases).
    for i in (0..4).rev() {
        for j in ((i + 1)..4).rev() {
            let d = j - i;
            let angle = -180.0 / (1u64 << d) as f64;
            b.cphase(q(j), q(i), angle);
        }
        b.hadamard(q(i));
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcp_graph::NodeId;

    #[test]
    fn shape() {
        let c = phase_estimation();
        assert_eq!(c.qubit_count(), 5);
        assert_eq!(c.gate_count(), 46);
        // 4 controlled powers + 6 inverse-QFT phases.
        assert_eq!(c.two_qubit_gate_count(), 10);
    }

    #[test]
    fn interaction_graph_is_complete() {
        // Star into q4 plus K4 on the counting register = K5.
        let g = phase_estimation().interaction_graph();
        assert_eq!(g.edge_count(), 10);
        for i in 0..5 {
            for j in i + 1..5 {
                assert!(
                    g.has_edge(NodeId::new(i), NodeId::new(j)),
                    "missing ({i},{j})"
                );
            }
        }
    }

    #[test]
    fn target_interactions_come_first() {
        let c = phase_estimation();
        let first_pair = c.gates().find_map(crate::gate::Gate::coupling).unwrap();
        assert_eq!(first_pair.1.index(), 4);
    }
}
