//! Error-correction benchmark circuits (Tables 1 and 2).

use crate::{Circuit, Gate, Qubit};

/// The encoding part of the 3-qubit quantum error-correcting code, exactly
/// as in Fig. 2 of the paper (taken there from Laforest et al.): nine gates
/// on qubits `a = q0`, `b = q1`, `c = q2` —
///
/// ```text
/// a: Ry(90) ── ZZ(90) ── Rz(-90)
/// b:          ZZ(90) ── Rz(90) ── ZZ(90) ── Rz(90) ─ Ry(90)
/// c:  Ry(90) ───────────────────  ZZ(90) ── Rz(-90)
/// ```
///
/// The two-qubit gate order (`ZZ_ab` then `ZZ_bc`) and the placement of
/// the free `Rz` gates reproduce the runtime trace of Table 1: the mapping
/// `a→M, b→C2, c→C1` into acetyl chloride costs 770 delay units, the
/// optimal `a→C2, b→C1, c→M` costs 136.
///
/// ```
/// use qcp_circuit::library::qec3_encoder;
/// let c = qec3_encoder();
/// assert_eq!(c.gate_count(), 9);
/// assert_eq!(c.two_qubit_gate_count(), 2);
/// ```
pub fn qec3_encoder() -> Circuit {
    let q = Qubit::new;
    let (a, b, c) = (q(0), q(1), q(2));
    // Explicit levels (rather than ASAP levelization) so the flattened
    // gate order is exactly the Table 1 column order:
    // Ya90, ZZab90, Yc90, ZZbc90, Yb90 with the free Rz gates in between.
    #[allow(clippy::expect_used)]
    let encoder = Circuit::from_levels(
        3,
        [
            vec![Gate::ry(a, 90.0)],
            vec![Gate::zz(a, b, 90.0)],
            vec![Gate::rz(a, -90.0), Gate::rz(b, 90.0), Gate::ry(c, 90.0)],
            vec![Gate::zz(b, c, 90.0)],
            vec![Gate::rz(b, 90.0), Gate::rz(c, -90.0)],
            vec![Gate::ry(b, 90.0)],
        ],
    )
    .expect("invariant: the Figure 2 levels are disjoint");
    encoder
}

/// The 5-qubit error-correction benchmark (Table 2; modelled on the
/// five-qubit code experiment of Knill–Laflamme–Martinez–Negrevergne run on
/// trans-crotonic acid): 25 gates on 5 qubits.
///
/// Its interactions `{(0,1), (1,2), (2,3), (1,4)}` form a caterpillar tree
/// that embeds as a whole along the chemical bonds of trans-crotonic acid,
/// which is why the placement tool needs only a single workspace for it
/// (the Table 2 claim).
pub fn qec5_benchmark() -> Circuit {
    let q = Qubit::new;
    let mut b = Circuit::builder(5);
    b
        // Spread the logical state along the coupling tree.
        .gate(Gate::ry(q(0), 90.0))
        .gate(Gate::zz(q(0), q(1), 90.0))
        .gate(Gate::rz(q(0), -90.0))
        .gate(Gate::rz(q(1), 90.0))
        .gate(Gate::ry(q(2), 90.0))
        .gate(Gate::zz(q(1), q(2), 90.0))
        .gate(Gate::rz(q(1), -90.0))
        .gate(Gate::ry(q(3), 90.0))
        .gate(Gate::zz(q(2), q(3), 90.0))
        .gate(Gate::rz(q(3), 90.0))
        .gate(Gate::ry(q(4), 90.0))
        .gate(Gate::zz(q(1), q(4), 90.0))
        .gate(Gate::rz(q(4), -90.0))
        // Phase-refocusing round back down the tree.
        .gate(Gate::ry(q(1), 90.0))
        .gate(Gate::zz(q(1), q(2), -90.0))
        .gate(Gate::rz(q(2), 90.0))
        .gate(Gate::ry(q(2), -90.0))
        .gate(Gate::zz(q(2), q(3), -90.0))
        .gate(Gate::rz(q(3), -90.0))
        .gate(Gate::ry(q(3), 90.0))
        .gate(Gate::zz(q(0), q(1), -90.0))
        .gate(Gate::rz(q(0), 90.0))
        .gate(Gate::ry(q(0), -90.0))
        .gate(Gate::ry(q(4), 90.0))
        .gate(Gate::rz(q(1), 90.0));
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcp_graph::NodeId;

    #[test]
    fn qec3_matches_figure_2() {
        let c = qec3_encoder();
        assert_eq!(c.qubit_count(), 3);
        assert_eq!(c.gate_count(), 9);
        assert_eq!(c.two_qubit_gate_count(), 2);
        // Interaction chain a-b-c.
        let g = c.interaction_graph();
        assert_eq!(g.edge_count(), 2);
        assert!(g.has_edge(NodeId::new(0), NodeId::new(1)));
        assert!(g.has_edge(NodeId::new(1), NodeId::new(2)));
        assert!(!g.has_edge(NodeId::new(0), NodeId::new(2)));
    }

    #[test]
    fn qec3_costed_gate_order_matches_table_1() {
        // Ignoring free Rz gates, the sequence must be:
        // Ya90, ZZab90, Yc90, ZZbc90, Yb90 (columns of Table 1).
        let c = qec3_encoder();
        let costed: Vec<String> = c
            .gates()
            .filter(|g| !g.is_free())
            .map(ToString::to_string)
            .collect();
        assert_eq!(
            costed,
            vec![
                "Ry(90) q0",
                "ZZ(90) q0 q1",
                "Ry(90) q2",
                "ZZ(90) q1 q2",
                "Ry(90) q1"
            ]
        );
    }

    #[test]
    fn qec5_matches_table_2_row() {
        let c = qec5_benchmark();
        assert_eq!(c.qubit_count(), 5);
        assert_eq!(c.gate_count(), 25);
        assert_eq!(c.two_qubit_gate_count(), 7);
        // Interactions form the caterpillar {01, 12, 23, 14}.
        let g = c.interaction_graph();
        let mut pairs: Vec<(usize, usize)> =
            g.edges().map(|(a, b, _)| (a.index(), b.index())).collect();
        pairs.sort_unstable();
        assert_eq!(pairs, vec![(0, 1), (1, 2), (1, 4), (2, 3)]);
    }

    #[test]
    fn qec5_interaction_graph_is_a_tree() {
        let g = qec5_benchmark().interaction_graph();
        assert_eq!(g.edge_count(), g.node_count() - 1);
        assert!(qcp_graph::traversal::is_connected(&g));
    }
}
