//! A small line-oriented text format for circuits.
//!
//! The format is one header line followed by one line per level; gates
//! within a level are separated by `;`. Blank lines and `#` comments are
//! ignored.
//!
//! ```text
//! qubits 3
//! ry q0 90
//! zz q0 q1 90 ; rz q2 -90
//! swap q1 q2
//! u1 q0 1.5 pulse
//! u2 q0 q2 3 entangler
//! ```
//!
//! ```
//! use qcp_circuit::text;
//! let c = text::parse("qubits 2\nry q0 90\nzz q0 q1 90\n")?;
//! assert_eq!(c.gate_count(), 2);
//! let round = text::parse(&text::to_text(&c))?;
//! assert_eq!(round, c);
//! # Ok::<(), qcp_circuit::CircuitError>(())
//! ```

use crate::{Circuit, CircuitError, Gate, Qubit, Result, SourceSpan};

/// Parsers in this crate refuse circuits wider than this, so a header
/// like `qubits 99999999999` is a parse error instead of an allocation
/// the size of the address space.
pub(crate) const MAX_QUBITS: usize = 1 << 20;

/// Serializes a circuit in the text format (one line per level).
pub fn to_text(circuit: &Circuit) -> String {
    let mut out = format!("qubits {}\n", circuit.qubit_count());
    for level in circuit.levels() {
        let line: Vec<String> = level.gates().iter().map(gate_to_text).collect();
        out.push_str(&line.join(" ; "));
        out.push('\n');
    }
    out
}

fn gate_to_text(g: &Gate) -> String {
    match g {
        Gate::Rx { qubit, angle } => format!("rx {qubit} {angle}"),
        Gate::Ry { qubit, angle } => format!("ry {qubit} {angle}"),
        Gate::Rz { qubit, angle } => format!("rz {qubit} {angle}"),
        Gate::Zz { a, b, angle } => format!("zz {a} {b} {angle}"),
        Gate::Swap { a, b } => format!("swap {a} {b}"),
        Gate::Custom1 {
            qubit,
            weight,
            name,
        } => format!("u1 {qubit} {weight} {name}"),
        Gate::Custom2 { a, b, weight, name } => format!("u2 {a} {b} {weight} {name}"),
    }
}

/// Parses a circuit from the text format.
///
/// # Errors
///
/// Returns [`CircuitError::Parse`] with a one-based line *and column*
/// ([`SourceSpan`]) on malformed input, and the usual construction errors
/// if gates do not fit the declared width or collide within a level.
pub fn parse(input: &str) -> Result<Circuit> {
    let mut width: Option<usize> = None;
    let mut levels: Vec<Vec<Gate>> = Vec::new();
    for (ln, raw) in input.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let lineno = ln + 1;
        if width.is_none() {
            let mut parts = line.split_whitespace();
            match (parts.next(), parts.next(), parts.next()) {
                (Some("qubits"), Some(n), None) => {
                    let parsed = n.parse::<usize>().ok().filter(|&n| n <= MAX_QUBITS);
                    let n = parsed.ok_or_else(|| {
                        CircuitError::parse_at(
                            SourceSpan::of_token(lineno, raw, n),
                            format!("invalid qubit count `{n}` (max {MAX_QUBITS})"),
                        )
                    })?;
                    width = Some(n);
                }
                _ => {
                    return Err(CircuitError::parse_at(
                        SourceSpan::of_token(lineno, raw, line),
                        "expected header `qubits N`",
                    ))
                }
            }
            continue;
        }
        let mut level = Vec::new();
        for chunk in line.split(';') {
            let trimmed = chunk.trim();
            if trimmed.is_empty() {
                continue;
            }
            level.push(parse_gate(trimmed, raw, lineno)?);
        }
        levels.push(level);
    }
    let width = width.ok_or(CircuitError::Parse {
        span: SourceSpan::new(input.lines().count().max(1), 1),
        message: "missing header `qubits N`".into(),
    })?;
    Circuit::from_levels(width, levels)
}

/// Parses one gate. `raw` is the full source line `text` was cut from, so
/// errors can point at the exact offending token.
fn parse_gate(text: &str, raw: &str, line: usize) -> Result<Gate> {
    let err = |tok: &str, message: String| {
        CircuitError::parse_at(SourceSpan::of_token(line, raw, tok), message)
    };
    let tokens: Vec<&str> = text.split_whitespace().collect();
    let parse_qubit = |tok: &str| -> Result<Qubit> {
        let idx = tok
            .strip_prefix('q')
            .and_then(|s| s.parse::<usize>().ok())
            .filter(|&i| i < MAX_QUBITS)
            .ok_or_else(|| err(tok, format!("invalid qubit `{tok}`")))?;
        Ok(Qubit::new(idx))
    };
    let parse_num = |tok: &str| -> Result<f64> {
        tok.parse::<f64>()
            .ok()
            .filter(|v| v.is_finite())
            .ok_or_else(|| err(tok, format!("invalid number `{tok}`")))
    };
    match tokens.as_slice() {
        ["rx", q, a] => Ok(Gate::rx(parse_qubit(q)?, parse_num(a)?)),
        ["ry", q, a] => Ok(Gate::ry(parse_qubit(q)?, parse_num(a)?)),
        ["rz", q, a] => Ok(Gate::rz(parse_qubit(q)?, parse_num(a)?)),
        ["zz", a, b, ang] => {
            let (qa, qb) = (parse_qubit(a)?, parse_qubit(b)?);
            if qa == qb {
                return Err(err(b, format!("zz needs distinct qubits, got {qa} twice")));
            }
            Ok(Gate::zz(qa, qb, parse_num(ang)?))
        }
        ["swap", a, b] => {
            let (qa, qb) = (parse_qubit(a)?, parse_qubit(b)?);
            if qa == qb {
                return Err(err(
                    b,
                    format!("swap needs distinct qubits, got {qa} twice"),
                ));
            }
            Ok(Gate::swap(qa, qb))
        }
        ["u1", q, w, name] => {
            let w = parse_num(w)?;
            if w < 0.0 {
                return Err(err(tokens[2], format!("invalid weight `{w}`")));
            }
            Ok(Gate::custom1(parse_qubit(q)?, w, *name))
        }
        ["u2", a, b, w, name] => {
            let (qa, qb) = (parse_qubit(a)?, parse_qubit(b)?);
            if qa == qb {
                return Err(err(b, format!("u2 needs distinct qubits, got {qa} twice")));
            }
            let w = parse_num(w)?;
            if w < 0.0 {
                return Err(err(tokens[3], format!("invalid weight `{w}`")));
            }
            Ok(Gate::custom2(qa, qb, w, *name))
        }
        _ => Err(err(text, format!("unrecognized gate `{text}`"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_every_gate_kind() {
        let src = "qubits 4\n\
                   rx q0 90 ; ry q1 -45.5\n\
                   rz q2 180\n\
                   zz q0 q3 22.5\n\
                   swap q1 q2\n\
                   u1 q0 1.5 pulse\n\
                   u2 q2 q3 3 entangler\n";
        let c = parse(src).unwrap();
        assert_eq!(c.gate_count(), 7);
        assert_eq!(c.depth(), 6);
        let again = parse(&to_text(&c)).unwrap();
        assert_eq!(again, c);
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let c = parse("# header comment\n\nqubits 2\nry q0 90 # inline\n").unwrap();
        assert_eq!(c.gate_count(), 1);
    }

    #[test]
    fn missing_header_is_error() {
        let err = parse("ry q0 90\n").unwrap_err();
        assert!(matches!(
            err,
            CircuitError::Parse {
                span: SourceSpan { line: 1, .. },
                ..
            }
        ));
        let err = parse("").unwrap_err();
        assert!(matches!(err, CircuitError::Parse { .. }));
    }

    #[test]
    fn bad_tokens_are_reported_with_line_and_column() {
        let err = parse("qubits 2\nry q0 90\nfrobnicate q0\n").unwrap_err();
        match err {
            CircuitError::Parse { span, message } => {
                assert_eq!(span, SourceSpan::new(3, 1));
                assert!(message.contains("frobnicate"));
            }
            other => panic!("unexpected {other:?}"),
        }
        // The column points at the offending token, not the line start.
        let err = parse("qubits 2\nry q0 bogus\n").unwrap_err();
        assert_eq!(
            err.to_string(),
            "parse error at 2:7: invalid number `bogus`"
        );
        // Tokens after a `;` separator still get exact columns.
        let err = parse("qubits 3\nry q0 90 ; rz qX 5\n").unwrap_err();
        assert_eq!(err.to_string(), "parse error at 2:15: invalid qubit `qX`");
    }

    #[test]
    fn header_errors_point_at_the_count() {
        let err = parse("qubits lots\n").unwrap_err();
        assert_eq!(
            err.to_string(),
            "parse error at 1:8: invalid qubit count `lots` (max 1048576)"
        );
    }

    #[test]
    fn absurd_width_is_rejected_not_allocated() {
        let err = parse("qubits 99999999999999\nry q0 90\n").unwrap_err();
        assert!(matches!(err, CircuitError::Parse { .. }));
        let err = parse("qubits 2\nry q99999999999999 90\n").unwrap_err();
        assert!(matches!(err, CircuitError::Parse { .. }));
    }

    #[test]
    fn non_finite_numbers_are_parse_errors() {
        for bad in ["NaN", "inf", "-inf"] {
            let err = parse(&format!("qubits 2\nry q0 {bad}\n")).unwrap_err();
            assert!(
                matches!(err, CircuitError::Parse { .. }),
                "{bad} must be rejected"
            );
        }
    }

    #[test]
    fn duplicate_qubit_in_two_qubit_gate() {
        let err = parse("qubits 2\nzz q1 q1 90\n").unwrap_err();
        assert!(matches!(
            err,
            CircuitError::Parse {
                span: SourceSpan { line: 2, .. },
                ..
            }
        ));
    }

    #[test]
    fn out_of_range_qubit_bubbles_up() {
        let err = parse("qubits 1\nry q1 90\n").unwrap_err();
        assert!(matches!(err, CircuitError::QubitOutOfRange { .. }));
    }

    #[test]
    fn level_structure_preserved() {
        let c = parse("qubits 3\nry q0 90 ; ry q1 90\nzz q0 q1 90\n").unwrap();
        assert_eq!(c.depth(), 2);
        assert_eq!(c.levels()[0].len(), 2);
        // Level conflict caught.
        let err = parse("qubits 3\nry q0 90 ; zz q0 q1 90\n").unwrap_err();
        assert!(matches!(err, CircuitError::LevelConflict { .. }));
    }

    #[test]
    fn fractional_angles_roundtrip_exactly() {
        let c = parse("qubits 2\nzz q0 q1 5.625\n").unwrap();
        let text = to_text(&c);
        assert!(text.contains("5.625"));
        assert_eq!(parse(&text).unwrap(), c);
    }
}
