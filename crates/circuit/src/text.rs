//! A small line-oriented text format for circuits.
//!
//! The format is one header line followed by one line per level; gates
//! within a level are separated by `;`. Blank lines and `#` comments are
//! ignored.
//!
//! ```text
//! qubits 3
//! ry q0 90
//! zz q0 q1 90 ; rz q2 -90
//! swap q1 q2
//! u1 q0 1.5 pulse
//! u2 q0 q2 3 entangler
//! ```
//!
//! ```
//! use qcp_circuit::text;
//! let c = text::parse("qubits 2\nry q0 90\nzz q0 q1 90\n")?;
//! assert_eq!(c.gate_count(), 2);
//! let round = text::parse(&text::to_text(&c))?;
//! assert_eq!(round, c);
//! # Ok::<(), qcp_circuit::CircuitError>(())
//! ```

use crate::{Circuit, CircuitError, Gate, Qubit, Result};

/// Serializes a circuit in the text format (one line per level).
pub fn to_text(circuit: &Circuit) -> String {
    let mut out = format!("qubits {}\n", circuit.qubit_count());
    for level in circuit.levels() {
        let line: Vec<String> = level.gates().iter().map(gate_to_text).collect();
        out.push_str(&line.join(" ; "));
        out.push('\n');
    }
    out
}

fn gate_to_text(g: &Gate) -> String {
    match g {
        Gate::Rx { qubit, angle } => format!("rx {qubit} {angle}"),
        Gate::Ry { qubit, angle } => format!("ry {qubit} {angle}"),
        Gate::Rz { qubit, angle } => format!("rz {qubit} {angle}"),
        Gate::Zz { a, b, angle } => format!("zz {a} {b} {angle}"),
        Gate::Swap { a, b } => format!("swap {a} {b}"),
        Gate::Custom1 {
            qubit,
            weight,
            name,
        } => format!("u1 {qubit} {weight} {name}"),
        Gate::Custom2 { a, b, weight, name } => format!("u2 {a} {b} {weight} {name}"),
    }
}

/// Parses a circuit from the text format.
///
/// # Errors
///
/// Returns [`CircuitError::Parse`] with a one-based line number on
/// malformed input, and the usual construction errors if gates do not fit
/// the declared width or collide within a level.
pub fn parse(input: &str) -> Result<Circuit> {
    let mut width: Option<usize> = None;
    let mut levels: Vec<Vec<Gate>> = Vec::new();
    for (ln, raw) in input.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let lineno = ln + 1;
        if width.is_none() {
            let mut parts = line.split_whitespace();
            match (parts.next(), parts.next(), parts.next()) {
                (Some("qubits"), Some(n), None) => {
                    let n: usize = n.parse().map_err(|_| CircuitError::Parse {
                        line: lineno,
                        message: format!("invalid qubit count `{n}`"),
                    })?;
                    width = Some(n);
                }
                _ => {
                    return Err(CircuitError::Parse {
                        line: lineno,
                        message: "expected header `qubits N`".into(),
                    })
                }
            }
            continue;
        }
        let mut level = Vec::new();
        for chunk in line.split(';') {
            let chunk = chunk.trim();
            if chunk.is_empty() {
                continue;
            }
            level.push(parse_gate(chunk, lineno)?);
        }
        levels.push(level);
    }
    let width = width.ok_or(CircuitError::Parse {
        line: input.lines().count().max(1),
        message: "missing header `qubits N`".into(),
    })?;
    Circuit::from_levels(width, levels)
}

fn parse_gate(text: &str, line: usize) -> Result<Gate> {
    let err = |message: String| CircuitError::Parse { line, message };
    let tokens: Vec<&str> = text.split_whitespace().collect();
    let parse_qubit = |tok: &str| -> Result<Qubit> {
        let idx = tok
            .strip_prefix('q')
            .and_then(|s| s.parse::<usize>().ok())
            .ok_or_else(|| err(format!("invalid qubit `{tok}`")))?;
        Ok(Qubit::new(idx))
    };
    let parse_num = |tok: &str| -> Result<f64> {
        tok.parse::<f64>()
            .map_err(|_| err(format!("invalid number `{tok}`")))
    };
    match tokens.as_slice() {
        ["rx", q, a] => Ok(Gate::rx(parse_qubit(q)?, parse_num(a)?)),
        ["ry", q, a] => Ok(Gate::ry(parse_qubit(q)?, parse_num(a)?)),
        ["rz", q, a] => Ok(Gate::rz(parse_qubit(q)?, parse_num(a)?)),
        ["zz", a, b, ang] => {
            let (qa, qb) = (parse_qubit(a)?, parse_qubit(b)?);
            if qa == qb {
                return Err(err(format!("zz needs distinct qubits, got {qa} twice")));
            }
            Ok(Gate::zz(qa, qb, parse_num(ang)?))
        }
        ["swap", a, b] => {
            let (qa, qb) = (parse_qubit(a)?, parse_qubit(b)?);
            if qa == qb {
                return Err(err(format!("swap needs distinct qubits, got {qa} twice")));
            }
            Ok(Gate::swap(qa, qb))
        }
        ["u1", q, w, name] => {
            let w = parse_num(w)?;
            if !(w.is_finite() && w >= 0.0) {
                return Err(err(format!("invalid weight `{w}`")));
            }
            Ok(Gate::custom1(parse_qubit(q)?, w, *name))
        }
        ["u2", a, b, w, name] => {
            let (qa, qb) = (parse_qubit(a)?, parse_qubit(b)?);
            if qa == qb {
                return Err(err(format!("u2 needs distinct qubits, got {qa} twice")));
            }
            let w = parse_num(w)?;
            if !(w.is_finite() && w >= 0.0) {
                return Err(err(format!("invalid weight `{w}`")));
            }
            Ok(Gate::custom2(qa, qb, w, *name))
        }
        _ => Err(err(format!("unrecognized gate `{text}`"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_every_gate_kind() {
        let src = "qubits 4\n\
                   rx q0 90 ; ry q1 -45.5\n\
                   rz q2 180\n\
                   zz q0 q3 22.5\n\
                   swap q1 q2\n\
                   u1 q0 1.5 pulse\n\
                   u2 q2 q3 3 entangler\n";
        let c = parse(src).unwrap();
        assert_eq!(c.gate_count(), 7);
        assert_eq!(c.depth(), 6);
        let again = parse(&to_text(&c)).unwrap();
        assert_eq!(again, c);
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let c = parse("# header comment\n\nqubits 2\nry q0 90 # inline\n").unwrap();
        assert_eq!(c.gate_count(), 1);
    }

    #[test]
    fn missing_header_is_error() {
        let err = parse("ry q0 90\n").unwrap_err();
        assert!(matches!(err, CircuitError::Parse { line: 1, .. }));
        let err = parse("").unwrap_err();
        assert!(matches!(err, CircuitError::Parse { .. }));
    }

    #[test]
    fn bad_tokens_are_reported_with_line() {
        let err = parse("qubits 2\nry q0 90\nfrobnicate q0\n").unwrap_err();
        match err {
            CircuitError::Parse { line, message } => {
                assert_eq!(line, 3);
                assert!(message.contains("frobnicate"));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn duplicate_qubit_in_two_qubit_gate() {
        let err = parse("qubits 2\nzz q1 q1 90\n").unwrap_err();
        assert!(matches!(err, CircuitError::Parse { line: 2, .. }));
    }

    #[test]
    fn out_of_range_qubit_bubbles_up() {
        let err = parse("qubits 1\nry q1 90\n").unwrap_err();
        assert!(matches!(err, CircuitError::QubitOutOfRange { .. }));
    }

    #[test]
    fn level_structure_preserved() {
        let c = parse("qubits 3\nry q0 90 ; ry q1 90\nzz q0 q1 90\n").unwrap();
        assert_eq!(c.depth(), 2);
        assert_eq!(c.levels()[0].len(), 2);
        // Level conflict caught.
        let err = parse("qubits 3\nry q0 90 ; zz q0 q1 90\n").unwrap_err();
        assert!(matches!(err, CircuitError::LevelConflict { .. }));
    }

    #[test]
    fn fractional_angles_roundtrip_exactly() {
        let c = parse("qubits 2\nzz q0 q1 5.625\n").unwrap();
        let text = to_text(&c);
        assert!(text.contains("5.625"));
        assert_eq!(parse(&text).unwrap(), c);
    }
}
