//! Quantum circuit intermediate representation for circuit placement.
//!
//! Circuits here follow Definition 2 of Maslov–Falconer–Mosca's *Quantum
//! Circuit Placement*: a circuit on `n` logical qubits is a finite sequence
//! of *levels*, each level a set of one- and two-qubit gates on disjoint
//! qubits, and every gate `G` carries a time weight `T(G)` measuring how
//! long it occupies the interaction it uses (in multiples of a 90° pulse:
//! `T(R_y(90°)) = 1`, `T(R_z) = 0` because frame changes are free in
//! liquid-state NMR, `T(ZZ(90°)) = 1`, `T(SWAP) = 3`).
//!
//! The crate provides:
//!
//! * [`Gate`], [`Qubit`], [`Time`] — the core vocabulary;
//! * [`Circuit`] and [`CircuitBuilder`] — levelled circuits with ASAP
//!   levelization and NMR convenience constructors (`cnot`, `hadamard`,
//!   `cphase` are expanded into the `R_x/R_y/R_z/ZZ` basis exactly as an
//!   NMR compiler would);
//! * [`text`] — a small line-oriented serialization format;
//! * [`qasm`] — an OpenQASM 2.0 frontend ([`qasm::parse`],
//!   [`Circuit::from_qasm`], [`Circuit::to_qasm`]): hand-rolled lexer +
//!   recursive-descent parser over the `qelib1.inc` standard gates, with
//!   custom `gate` definitions inlined at parse time and a lowering pass
//!   onto the NMR basis above;
//! * [`library`] — every benchmark circuit used in the paper's evaluation
//!   (Tables 1–4): the 3-qubit error-correction encoder of Fig. 2, the
//!   5-qubit error-correction benchmark, phase estimation, (approximate)
//!   QFT, Steane-code syndrome extraction, pseudo-cat state preparation,
//!   and the random hidden-stage circuits of the scalability study.
//!
//! # Example
//!
//! ```
//! use qcp_circuit::{Circuit, Gate, Qubit};
//!
//! let mut b = Circuit::builder(2);
//! b.gate(Gate::ry(Qubit::new(0), 90.0));
//! b.gate(Gate::zz(Qubit::new(0), Qubit::new(1), 90.0));
//! let c = b.build();
//! assert_eq!(c.gate_count(), 2);
//! assert_eq!(c.two_qubit_gate_count(), 1);
//! ```

#![forbid(unsafe_code)]
// Unit tests may unwrap freely; library code must not (workspace lints).
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]
#![warn(missing_docs)]

mod circuit;
mod error;
mod gate;
pub mod library;
pub mod qasm;
mod qubit;
pub mod text;
mod time;

pub use circuit::{Circuit, CircuitBuilder, Level};
pub use error::{CircuitError, SourceSpan};
pub use gate::Gate;
pub use qubit::Qubit;
pub use time::Time;

/// Convenience result alias used throughout the crate.
pub type Result<T, E = CircuitError> = std::result::Result<T, E>;
