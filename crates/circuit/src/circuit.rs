//! Levelled circuits and the ASAP-levelizing builder.

use std::fmt;

use qcp_graph::Graph;

use crate::{CircuitError, Gate, Qubit, Result};

/// One logic level: a set of gates acting on pairwise disjoint qubits
/// (Definition 2).
#[derive(Clone, Debug, Default, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Level(Vec<Gate>);

impl Level {
    /// The gates of this level.
    pub fn gates(&self) -> &[Gate] {
        &self.0
    }

    /// Number of gates in the level.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Returns `true` if the level holds no gates.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl<'a> IntoIterator for &'a Level {
    type Item = &'a Gate;
    type IntoIter = std::slice::Iter<'a, Gate>;
    fn into_iter(self) -> Self::IntoIter {
        self.0.iter()
    }
}

/// A quantum circuit: `n` logical qubits and a sequence of levels.
///
/// Construct one with [`Circuit::builder`] (gates are levelized as soon as
/// possible), [`Circuit::from_gates`] (same, in one call), or
/// [`Circuit::from_levels`] (explicit levels, validated).
///
/// ```
/// use qcp_circuit::{Circuit, Gate, Qubit};
/// let q = Qubit::new;
/// let c = Circuit::from_gates(3, [
///     Gate::ry(q(0), 90.0),
///     Gate::ry(q(2), 90.0),   // disjoint: same level as the first
///     Gate::zz(q(0), q(1), 90.0),
/// ])?;
/// assert_eq!(c.depth(), 2);
/// # Ok::<(), qcp_circuit::CircuitError>(())
/// ```
#[derive(Clone, Debug, Default, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Circuit {
    n_qubits: usize,
    levels: Vec<Level>,
}

impl Circuit {
    /// An empty circuit on `n_qubits` qubits.
    pub fn empty(n_qubits: usize) -> Self {
        Circuit {
            n_qubits,
            levels: Vec::new(),
        }
    }

    /// Starts building a circuit on `n_qubits` qubits with ASAP
    /// levelization.
    pub fn builder(n_qubits: usize) -> CircuitBuilder {
        CircuitBuilder {
            n_qubits,
            levels: Vec::new(),
            next_free: vec![0; n_qubits],
        }
    }

    /// Builds a circuit from a gate sequence, levelizing greedily: each
    /// gate lands in the earliest level after the previous uses of its
    /// qubits.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::QubitOutOfRange`] if a gate uses a qubit
    /// `>= n_qubits`.
    pub fn from_gates(n_qubits: usize, gates: impl IntoIterator<Item = Gate>) -> Result<Self> {
        let mut b = Circuit::builder(n_qubits);
        for g in gates {
            b.try_gate(g)?;
        }
        Ok(b.build())
    }

    /// Builds a circuit from explicit levels.
    ///
    /// # Errors
    ///
    /// * [`CircuitError::QubitOutOfRange`] if a gate uses a qubit `>= n_qubits`;
    /// * [`CircuitError::LevelConflict`] if two gates in one level share a
    ///   qubit.
    pub fn from_levels(
        n_qubits: usize,
        levels: impl IntoIterator<Item = Vec<Gate>>,
    ) -> Result<Self> {
        let mut out = Vec::new();
        for (li, level) in levels.into_iter().enumerate() {
            let mut used = vec![false; n_qubits];
            for g in &level {
                let (a, b) = g.qubits();
                for q in [Some(a), b].into_iter().flatten() {
                    if q.index() >= n_qubits {
                        return Err(CircuitError::QubitOutOfRange {
                            qubit: q,
                            width: n_qubits,
                        });
                    }
                    if used[q.index()] {
                        return Err(CircuitError::LevelConflict {
                            level: li,
                            qubit: q,
                        });
                    }
                    used[q.index()] = true;
                }
            }
            out.push(Level(level));
        }
        Ok(Circuit {
            n_qubits,
            levels: out,
        })
    }

    /// Number of logical qubits (circuit width).
    #[inline]
    pub fn qubit_count(&self) -> usize {
        self.n_qubits
    }

    /// The levels in execution order.
    #[inline]
    pub fn levels(&self) -> &[Level] {
        &self.levels
    }

    /// Number of levels (circuit depth).
    #[inline]
    pub fn depth(&self) -> usize {
        self.levels.len()
    }

    /// Iterates over all gates in execution order (level by level).
    pub fn gates(&self) -> impl Iterator<Item = &Gate> {
        self.levels.iter().flat_map(|l| l.gates().iter())
    }

    /// Total number of gates (free `Rz` gates included, matching the gate
    /// counts of the paper's Table 2).
    pub fn gate_count(&self) -> usize {
        self.levels.iter().map(Level::len).sum()
    }

    /// Number of two-qubit gates.
    pub fn two_qubit_gate_count(&self) -> usize {
        self.gates().filter(|g| g.is_two_qubit()).count()
    }

    /// The *interaction graph*: one node per logical qubit, an edge for
    /// every pair of qubits that share at least one two-qubit gate.
    ///
    /// This is the pattern graph handed to the monomorphism search in the
    /// basic placement stage (§5.1).
    pub fn interaction_graph(&self) -> Graph {
        let mut g = Graph::new(self.n_qubits);
        for gate in self.gates() {
            if let Some((a, b)) = gate.coupling() {
                let (na, nb) = (
                    qcp_graph::NodeId::new(a.index()),
                    qcp_graph::NodeId::new(b.index()),
                );
                if !g.has_edge(na, nb) {
                    // Gate qubits were range-checked when pushed and the
                    // guard above rules out duplicates, so this cannot fail.
                    let _ = g.add_edge(na, nb, 1.0);
                }
            }
        }
        g
    }

    /// Qubits that appear in at least one gate.
    pub fn active_qubits(&self) -> Vec<Qubit> {
        let mut used = vec![false; self.n_qubits];
        for g in self.gates() {
            let (a, b) = g.qubits();
            used[a.index()] = true;
            if let Some(b) = b {
                used[b.index()] = true;
            }
        }
        (0..self.n_qubits)
            .filter(|&i| used[i])
            .map(Qubit::new)
            .collect()
    }

    /// Concatenates another circuit (same width) after this one, level by
    /// level.
    ///
    /// # Panics
    ///
    /// Panics if widths differ.
    pub fn extend(&mut self, other: &Circuit) {
        assert_eq!(
            self.n_qubits, other.n_qubits,
            "cannot concatenate circuits of different widths"
        );
        self.levels.extend(other.levels.iter().cloned());
    }

    /// Returns the sub-circuit consisting of levels `range` (e.g. `2..5`).
    pub fn level_slice(&self, range: std::ops::Range<usize>) -> Circuit {
        Circuit {
            n_qubits: self.n_qubits,
            levels: self.levels[range].to_vec(),
        }
    }

    /// Returns a copy with every gate's qubits remapped through `f`
    /// (useful for embedding a circuit into a wider register).
    ///
    /// # Panics
    ///
    /// Panics if `f` maps any qubit outside `new_width` or collapses a
    /// two-qubit gate.
    pub fn map_qubits(&self, new_width: usize, mut f: impl FnMut(Qubit) -> Qubit) -> Circuit {
        let levels = self
            .levels
            .iter()
            .map(|l| {
                Level(
                    l.gates()
                        .iter()
                        .map(|g| {
                            let h = g.map_qubits(&mut f);
                            assert!(
                                h.max_qubit_index() < new_width,
                                "map_qubits target out of range"
                            );
                            h
                        })
                        .collect(),
                )
            })
            .collect();
        Circuit {
            n_qubits: new_width,
            levels,
        }
    }
}

impl fmt::Display for Circuit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "circuit on {} qubits, {} levels:",
            self.n_qubits,
            self.levels.len()
        )?;
        for (i, level) in self.levels.iter().enumerate() {
            let gates: Vec<String> = level.gates().iter().map(Gate::to_string).collect();
            writeln!(f, "  L{i}: {}", gates.join(" ; "))?;
        }
        Ok(())
    }
}

/// Incremental circuit builder with ASAP levelization and NMR-basis
/// convenience expansions.
///
/// The builder assigns each pushed gate to the earliest level in which all
/// of its qubits are free; this reproduces the levelled circuits the paper
/// assumes as input ("levelization helps to reduce the overall runtime").
#[derive(Clone, Debug)]
pub struct CircuitBuilder {
    n_qubits: usize,
    levels: Vec<Vec<Gate>>,
    /// For each qubit, the first level index at which it is free.
    next_free: Vec<usize>,
}

impl CircuitBuilder {
    /// Circuit width under construction.
    pub fn qubit_count(&self) -> usize {
        self.n_qubits
    }

    /// Pushes a gate, ASAP-levelized.
    ///
    /// # Panics
    ///
    /// Panics if the gate uses a qubit outside the circuit width. Use
    /// [`try_gate`](CircuitBuilder::try_gate) for a fallible version.
    pub fn gate(&mut self, gate: Gate) -> &mut Self {
        if let Err(e) = self.try_gate(gate) {
            panic!("gate qubits must fit the declared width: {e}");
        }
        self
    }

    /// Pushes a gate, ASAP-levelized.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::QubitOutOfRange`] if the gate uses a qubit
    /// `>= qubit_count()`.
    pub fn try_gate(&mut self, gate: Gate) -> Result<&mut Self> {
        let (a, b) = gate.qubits();
        for q in [Some(a), b].into_iter().flatten() {
            if q.index() >= self.n_qubits {
                return Err(CircuitError::QubitOutOfRange {
                    qubit: q,
                    width: self.n_qubits,
                });
            }
        }
        let mut level = self.next_free[a.index()];
        if let Some(b) = b {
            level = level.max(self.next_free[b.index()]);
        }
        if level == self.levels.len() {
            self.levels.push(Vec::new());
        }
        self.levels[level].push(gate.clone());
        self.next_free[a.index()] = level + 1;
        if let Some(b) = b {
            self.next_free[b.index()] = level + 1;
        }
        Ok(self)
    }

    /// Pushes several gates in order.
    ///
    /// # Panics
    ///
    /// As [`gate`](CircuitBuilder::gate).
    pub fn gates(&mut self, gates: impl IntoIterator<Item = Gate>) -> &mut Self {
        for g in gates {
            self.gate(g);
        }
        self
    }

    /// Inserts a barrier: subsequent gates start strictly after everything
    /// pushed so far.
    pub fn barrier(&mut self) -> &mut Self {
        let depth = self.levels.len();
        for f in &mut self.next_free {
            *f = depth;
        }
        self
    }

    /// Pushes a Hadamard on `q`, expanded into the NMR basis as
    /// `Ry(90)` followed by a free `Rz(180)` (equal up to global phase).
    pub fn hadamard(&mut self, q: Qubit) -> &mut Self {
        self.gate(Gate::ry(q, 90.0));
        self.gate(Gate::rz(q, 180.0));
        self
    }

    /// Pushes a CNOT with control `c` and target `t`, expanded into the
    /// standard NMR sequence: `Ry_t(-90) · [ZZ(-90), Rz_c(90), Rz_t(90)] ·
    /// Ry_t(90)` — one coupling plus two pulses plus free frame changes
    /// (§2: "`ZZ(π/2)` is equivalent to CNOT up to single qubit
    /// rotations").
    pub fn cnot(&mut self, c: Qubit, t: Qubit) -> &mut Self {
        self.gate(Gate::ry(t, -90.0));
        self.gate(Gate::zz(c, t, -90.0));
        self.gate(Gate::rz(c, 90.0));
        self.gate(Gate::rz(t, 90.0));
        self.gate(Gate::ry(t, 90.0));
        self
    }

    /// Pushes a controlled-phase of `angle` degrees between `a` and `b`,
    /// expanded as `ZZ(-angle/2)` plus free `Rz(angle/2)` on both qubits.
    pub fn cphase(&mut self, a: Qubit, b: Qubit, angle: f64) -> &mut Self {
        self.gate(Gate::zz(a, b, -angle / 2.0));
        self.gate(Gate::rz(a, angle / 2.0));
        self.gate(Gate::rz(b, angle / 2.0));
        self
    }

    /// Finishes the build, dropping empty levels.
    pub fn build(self) -> Circuit {
        let levels = self
            .levels
            .into_iter()
            .filter(|l| !l.is_empty())
            .map(Level)
            .collect::<Vec<_>>();
        Circuit {
            n_qubits: self.n_qubits,
            levels,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(i: usize) -> Qubit {
        Qubit::new(i)
    }

    #[test]
    fn asap_levelization_packs_disjoint_gates() {
        let c = Circuit::from_gates(
            4,
            [
                Gate::ry(q(0), 90.0),
                Gate::ry(q(1), 90.0),
                Gate::zz(q(2), q(3), 90.0),
                Gate::zz(q(0), q(1), 90.0),
            ],
        )
        .unwrap();
        assert_eq!(c.depth(), 2);
        assert_eq!(c.levels()[0].len(), 3);
        assert_eq!(c.levels()[1].len(), 1);
    }

    #[test]
    fn dependent_gates_serialize() {
        let c = Circuit::from_gates(
            2,
            [
                Gate::ry(q(0), 90.0),
                Gate::zz(q(0), q(1), 90.0),
                Gate::ry(q(0), 90.0),
            ],
        )
        .unwrap();
        assert_eq!(c.depth(), 3);
    }

    #[test]
    fn from_levels_validates_conflicts() {
        let err = Circuit::from_levels(2, [vec![Gate::ry(q(0), 90.0), Gate::zz(q(0), q(1), 90.0)]])
            .unwrap_err();
        assert_eq!(
            err,
            CircuitError::LevelConflict {
                level: 0,
                qubit: q(0)
            }
        );
    }

    #[test]
    fn from_levels_validates_range() {
        let err = Circuit::from_levels(2, [vec![Gate::ry(q(5), 90.0)]]).unwrap_err();
        assert!(matches!(err, CircuitError::QubitOutOfRange { .. }));
    }

    #[test]
    fn builder_rejects_out_of_range() {
        let mut b = Circuit::builder(1);
        assert!(b.try_gate(Gate::ry(q(1), 90.0)).is_err());
    }

    #[test]
    fn gate_counts() {
        let mut b = Circuit::builder(3);
        b.cnot(q(0), q(1));
        b.hadamard(q(2));
        let c = b.build();
        assert_eq!(c.gate_count(), 7); // 5 for CNOT + 2 for H
        assert_eq!(c.two_qubit_gate_count(), 1);
    }

    #[test]
    fn interaction_graph_dedups_pairs() {
        let c = Circuit::from_gates(
            3,
            [
                Gate::zz(q(0), q(1), 90.0),
                Gate::zz(q(1), q(0), 90.0),
                Gate::zz(q(1), q(2), 90.0),
            ],
        )
        .unwrap();
        let g = c.interaction_graph();
        assert_eq!(g.edge_count(), 2);
    }

    #[test]
    fn active_qubits_skips_idle_wires() {
        let c = Circuit::from_gates(5, [Gate::zz(q(1), q(3), 90.0)]).unwrap();
        assert_eq!(c.active_qubits(), vec![q(1), q(3)]);
    }

    #[test]
    fn barrier_forces_new_level() {
        let mut b = Circuit::builder(2);
        b.gate(Gate::ry(q(0), 90.0));
        b.barrier();
        b.gate(Gate::ry(q(1), 90.0));
        let c = b.build();
        assert_eq!(c.depth(), 2);
    }

    #[test]
    fn extend_concatenates() {
        let mut a = Circuit::from_gates(2, [Gate::ry(q(0), 90.0)]).unwrap();
        let b = Circuit::from_gates(2, [Gate::ry(q(1), 90.0)]).unwrap();
        a.extend(&b);
        assert_eq!(a.depth(), 2);
        assert_eq!(a.gate_count(), 2);
    }

    #[test]
    fn map_qubits_widens() {
        let c = Circuit::from_gates(2, [Gate::zz(q(0), q(1), 90.0)]).unwrap();
        let w = c.map_qubits(4, |x| Qubit::new(x.index() + 2));
        assert_eq!(w.qubit_count(), 4);
        assert_eq!(w.gates().next().unwrap().coupling(), Some((q(2), q(3))));
    }

    #[test]
    fn display_lists_levels() {
        let c = Circuit::from_gates(2, [Gate::ry(q(0), 90.0), Gate::zz(q(0), q(1), 90.0)]).unwrap();
        let s = c.to_string();
        assert!(s.contains("L0: Ry(90) q0"));
        assert!(s.contains("L1: ZZ(90) q0 q1"));
    }

    #[test]
    fn level_slice_extracts_range() {
        let c = Circuit::from_gates(
            2,
            [
                Gate::ry(q(0), 90.0),
                Gate::zz(q(0), q(1), 90.0),
                Gate::ry(q(1), 90.0),
            ],
        )
        .unwrap();
        let s = c.level_slice(1..3);
        assert_eq!(s.depth(), 2);
        assert_eq!(s.gate_count(), 2);
    }
}
