//! Time quantities.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// The paper's delay unit: 10⁻⁴ seconds (Example 1 measures all delays "in
/// terms of 1/10000 sec").
pub const UNITS_PER_SECOND: f64 = 10_000.0;

/// A non-negative span of time, stored in the paper's delay units
/// (1 unit = 0.1 ms).
///
/// Circuit runtimes, gate operating times, and environment weights all use
/// this type; [`Time::seconds`] converts for display, matching the units of
/// the paper's tables.
///
/// ```
/// use qcp_circuit::Time;
/// let t = Time::from_units(136.0);
/// assert_eq!(t.seconds(), 0.0136);
/// assert_eq!(t.to_string(), "0.0136 sec");
/// ```
#[derive(Clone, Copy, PartialEq, PartialOrd, Debug, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Time(f64);

impl Time {
    /// The zero duration.
    pub const ZERO: Time = Time(0.0);

    /// Creates a time from delay units (1 unit = 10⁻⁴ s).
    ///
    /// # Panics
    ///
    /// Panics if `units` is NaN or negative.
    #[inline]
    pub fn from_units(units: f64) -> Self {
        assert!(
            !units.is_nan() && units >= 0.0,
            "time must be a non-negative number, got {units}"
        );
        Time(units)
    }

    /// Creates a time from seconds.
    ///
    /// # Panics
    ///
    /// Panics if `seconds` is NaN or negative.
    #[inline]
    pub fn from_seconds(seconds: f64) -> Self {
        Time::from_units(seconds * UNITS_PER_SECOND)
    }

    /// The value in delay units.
    #[inline]
    pub fn units(self) -> f64 {
        self.0
    }

    /// The value in seconds.
    #[inline]
    pub fn seconds(self) -> f64 {
        self.0 / UNITS_PER_SECOND
    }

    /// Component-wise maximum.
    #[inline]
    #[must_use]
    pub fn max(self, other: Time) -> Time {
        Time(self.0.max(other.0))
    }

    /// Total ordering (`f64::total_cmp`); `Time` never holds NaN, so this
    /// agrees with `PartialOrd`.
    #[inline]
    pub fn total_cmp(&self, other: &Time) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }

    /// Returns `true` if this time is exactly zero.
    #[inline]
    pub fn is_zero(self) -> bool {
        self.0 == 0.0
    }
}

impl Add for Time {
    type Output = Time;
    fn add(self, rhs: Time) -> Time {
        Time(self.0 + rhs.0)
    }
}

impl AddAssign for Time {
    fn add_assign(&mut self, rhs: Time) {
        self.0 += rhs.0;
    }
}

impl Sub for Time {
    type Output = Time;
    /// Saturating subtraction: durations never go negative.
    fn sub(self, rhs: Time) -> Time {
        Time((self.0 - rhs.0).max(0.0))
    }
}

impl Mul<f64> for Time {
    type Output = Time;
    fn mul(self, rhs: f64) -> Time {
        Time::from_units(self.0 * rhs)
    }
}

impl Div<f64> for Time {
    type Output = Time;
    fn div(self, rhs: f64) -> Time {
        Time::from_units(self.0 / rhs)
    }
}

impl Sum for Time {
    fn sum<I: Iterator<Item = Time>>(iter: I) -> Time {
        iter.fold(Time::ZERO, Add::add)
    }
}

impl fmt::Display for Time {
    /// Formats in seconds with four decimals, like the paper's tables
    /// (`.0136 sec` style, with a leading zero).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.4} sec", self.seconds())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        let t = Time::from_seconds(0.0779);
        assert!((t.units() - 779.0).abs() < 1e-9);
        assert!((Time::from_units(5170.0).seconds() - 0.517).abs() < 1e-12);
    }

    #[test]
    fn arithmetic() {
        let a = Time::from_units(10.0);
        let b = Time::from_units(3.0);
        assert_eq!((a + b).units(), 13.0);
        assert_eq!((a - b).units(), 7.0);
        assert_eq!((b - a).units(), 0.0, "subtraction saturates");
        assert_eq!((a * 2.5).units(), 25.0);
        assert_eq!((a / 4.0).units(), 2.5);
        assert_eq!(a.max(b), a);
        let total: Time = [a, b, b].into_iter().sum();
        assert_eq!(total.units(), 16.0);
    }

    #[test]
    fn ordering() {
        assert!(Time::from_units(1.0) < Time::from_units(2.0));
        assert_eq!(
            Time::from_units(1.0).total_cmp(&Time::from_units(1.0)),
            std::cmp::Ordering::Equal
        );
    }

    #[test]
    fn display_matches_paper_style() {
        assert_eq!(Time::from_units(136.0).to_string(), "0.0136 sec");
        assert_eq!(Time::from_units(770.0).to_string(), "0.0770 sec");
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn rejects_nan() {
        let _ = Time::from_units(f64::NAN);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn rejects_negative() {
        let _ = Time::from_units(-1.0);
    }

    #[test]
    fn zero_is_zero() {
        assert!(Time::ZERO.is_zero());
        assert!(!Time::from_units(0.1).is_zero());
    }
}
