//! Expression AST, parameter values, and gate-definition templates.
//!
//! Two design points matter here:
//!
//! * **Gate definitions are inlined at parse time.** A [`GateDef`] body is
//!   flattened to a [`TemplateOp`] list over *native* gates only — applying
//!   a composite gate inside another definition splices the callee's
//!   template with its parameter expressions substituted, so applying a
//!   gate at the top level never recurses.
//! * **Parameter values track π symbolically.** A [`Value`] is
//!   `num / den · π^pi`, with multiplication and division kept exact. This
//!   lets [`Circuit::to_qasm`](crate::Circuit::to_qasm) emit angles as
//!   `<degrees>*pi/180` and get the *bit-identical* degree value back when
//!   re-parsed: the conversion is `num * (180/den)` with `den = 180`, and
//!   `180/180 == 1.0` exactly. Plain radian literals in external files take
//!   the ordinary (correctly-rounded) `×180/π` path.

use std::f64::consts::PI;

/// Binary operators of the OpenQASM expression grammar.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Pow,
}

/// Unary math functions allowed in parameter expressions.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum MathFn {
    Sin,
    Cos,
    Tan,
    Exp,
    Ln,
    Sqrt,
}

impl MathFn {
    /// Resolves a function name (`sin`, `cos`, …).
    pub fn named(name: &str) -> Option<MathFn> {
        Some(match name {
            "sin" => MathFn::Sin,
            "cos" => MathFn::Cos,
            "tan" => MathFn::Tan,
            "exp" => MathFn::Exp,
            "ln" => MathFn::Ln,
            "sqrt" => MathFn::Sqrt,
            _ => return None,
        })
    }

    fn apply(self, x: f64) -> f64 {
        match self {
            MathFn::Sin => x.sin(),
            MathFn::Cos => x.cos(),
            MathFn::Tan => x.tan(),
            MathFn::Exp => x.exp(),
            MathFn::Ln => x.ln(),
            MathFn::Sqrt => x.sqrt(),
        }
    }
}

/// A parameter expression. `Param(i)` refers to the `i`-th formal
/// parameter of the enclosing gate definition (never present at the top
/// level — applications substitute arguments before evaluation).
#[derive(Clone, Debug, PartialEq)]
pub(crate) enum Expr {
    Int(u64),
    Real(f64),
    Pi,
    Param(usize),
    Neg(Box<Expr>),
    Bin(BinOp, Box<Expr>, Box<Expr>),
    Call(MathFn, Box<Expr>),
}

impl Expr {
    /// Replaces every `Param(i)` with `args[i]` (used when a composite
    /// gate application is spliced into the enclosing definition).
    pub fn substitute(&self, args: &[Expr]) -> Expr {
        match self {
            Expr::Param(i) => args[*i].clone(),
            Expr::Neg(e) => Expr::Neg(Box::new(e.substitute(args))),
            Expr::Bin(op, a, b) => Expr::Bin(
                *op,
                Box::new(a.substitute(args)),
                Box::new(b.substitute(args)),
            ),
            Expr::Call(f, e) => Expr::Call(*f, Box::new(e.substitute(args))),
            leaf => leaf.clone(),
        }
    }

    /// Evaluates the expression with `env` supplying parameter values.
    ///
    /// # Errors
    ///
    /// A message (the caller attaches the span) when the result is not a
    /// finite number.
    pub fn eval(&self, env: &[Value]) -> Result<Value, String> {
        let v = self.eval_inner(env);
        if v.as_f64().is_finite() {
            Ok(v)
        } else {
            Err("parameter expression does not evaluate to a finite number".into())
        }
    }

    fn eval_inner(&self, env: &[Value]) -> Value {
        match self {
            Expr::Int(n) => Value::number(*n as f64),
            Expr::Real(x) => Value::number(*x),
            Expr::Pi => Value {
                num: 1.0,
                den: 1.0,
                pi: 1,
            },
            Expr::Param(i) => env[*i],
            Expr::Neg(e) => {
                let v = e.eval_inner(env);
                Value { num: -v.num, ..v }
            }
            Expr::Bin(op, a, b) => {
                let (a, b) = (a.eval_inner(env), b.eval_inner(env));
                match op {
                    BinOp::Mul => Value {
                        num: a.num * b.num,
                        den: a.den * b.den,
                        pi: a.pi + b.pi,
                    },
                    BinOp::Div => Value {
                        num: a.num * b.den,
                        den: a.den * b.num,
                        pi: a.pi - b.pi,
                    },
                    BinOp::Add => Value::number(a.as_f64() + b.as_f64()),
                    BinOp::Sub => Value::number(a.as_f64() - b.as_f64()),
                    BinOp::Pow => Value::number(a.as_f64().powf(b.as_f64())),
                }
            }
            Expr::Call(f, e) => Value::number(f.apply(e.eval_inner(env).as_f64())),
        }
    }
}

/// A parameter value: `num / den · π^pi`, kept in factored form so that
/// multiplying and dividing by π and by integers stays exact (see the
/// module docs).
#[derive(Clone, Copy, Debug, PartialEq)]
pub(crate) struct Value {
    num: f64,
    den: f64,
    pi: i32,
}

impl Value {
    /// A plain number (denominator 1, no π factor).
    pub fn number(x: f64) -> Value {
        Value {
            num: x,
            den: 1.0,
            pi: 0,
        }
    }

    /// Collapses to a plain `f64` (the value in radians when the
    /// expression denotes an angle).
    pub fn as_f64(self) -> f64 {
        let base = self.num / self.den;
        match self.pi {
            0 => base,
            p => base * PI.powi(p),
        }
    }

    /// The value interpreted as radians, converted to degrees.
    ///
    /// For single-π expressions (`x*pi/180`) the conversion cancels the π
    /// factor symbolically: `num * (180/den)`, which is exact whenever
    /// `den` divides 180 in binary floating point — in particular for the
    /// `*pi/180` form [`Circuit::to_qasm`](crate::Circuit::to_qasm) emits.
    pub fn degrees(self) -> f64 {
        if self.pi == 1 {
            self.num * (180.0 / self.den)
        } else {
            self.as_f64() * (180.0 / PI)
        }
    }
}

/// One operation inside a flattened gate-definition body. Qubits are
/// indices into the definition's formal argument list; parameters are
/// expressions over the definition's formal parameters.
#[derive(Clone, Debug)]
pub(crate) enum TemplateOp {
    /// A native-gate application.
    Gate {
        /// Which native gate.
        native: NativeGate,
        /// Parameter expressions (arity fixed by `native`).
        params: Vec<Expr>,
        /// Formal-argument indices (pairwise distinct).
        qubits: Vec<usize>,
    },
    /// A barrier over a subset of the formal arguments.
    Barrier {
        /// Formal-argument indices.
        qubits: Vec<usize>,
    },
}

/// A user- or prelude-defined gate, flattened to native operations.
#[derive(Clone, Debug)]
pub(crate) struct GateDef {
    /// Number of formal parameters.
    pub n_params: usize,
    /// Number of formal qubit arguments.
    pub n_qubits: usize,
    /// The inlined body.
    pub template: Vec<TemplateOp>,
}

/// The gates the lowering pass understands directly. Everything else —
/// user definitions and the composite `qelib1` gates — is inlined down to
/// these at parse time.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum NativeGate {
    /// `U(θ,φ,λ)` / `u3` / `u`.
    U3,
    /// `u2(φ,λ) = U(π/2,φ,λ)`.
    U2,
    /// `u1(λ)` / `p(λ)` — a frame change.
    U1,
    Rx,
    Ry,
    Rz,
    /// `id` — lowered to nothing.
    Id,
    /// `u0(γ)` — an identity wait cycle; lowered to nothing.
    U0,
    X,
    Y,
    Z,
    H,
    S,
    Sdg,
    T,
    Tdg,
    Sx,
    Sxdg,
    /// `CX` / `cx`.
    Cx,
    Cz,
    /// `cp(λ)` / `cu1(λ)` — controlled phase.
    Cp,
    Swap,
    /// `rzz(θ)` — maps 1:1 onto the NMR `ZZ` coupling.
    Rzz,
}

impl NativeGate {
    /// Resolves a native gate name to `(gate, n_params, n_qubits)`.
    pub fn named(name: &str) -> Option<(NativeGate, usize, usize)> {
        Some(match name {
            "U" | "u3" | "u" => (NativeGate::U3, 3, 1),
            "u2" => (NativeGate::U2, 2, 1),
            "u1" | "p" => (NativeGate::U1, 1, 1),
            "rx" => (NativeGate::Rx, 1, 1),
            "ry" => (NativeGate::Ry, 1, 1),
            "rz" => (NativeGate::Rz, 1, 1),
            "id" => (NativeGate::Id, 0, 1),
            "u0" => (NativeGate::U0, 1, 1),
            "x" => (NativeGate::X, 0, 1),
            "y" => (NativeGate::Y, 0, 1),
            "z" => (NativeGate::Z, 0, 1),
            "h" => (NativeGate::H, 0, 1),
            "s" => (NativeGate::S, 0, 1),
            "sdg" => (NativeGate::Sdg, 0, 1),
            "t" => (NativeGate::T, 0, 1),
            "tdg" => (NativeGate::Tdg, 0, 1),
            "sx" => (NativeGate::Sx, 0, 1),
            "sxdg" => (NativeGate::Sxdg, 0, 1),
            "CX" | "cx" => (NativeGate::Cx, 0, 2),
            "cz" => (NativeGate::Cz, 0, 2),
            "cp" | "cu1" => (NativeGate::Cp, 1, 2),
            "swap" => (NativeGate::Swap, 0, 2),
            "rzz" => (NativeGate::Rzz, 1, 2),
            _ => return None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn eval(e: &Expr) -> Value {
        e.eval(&[]).unwrap()
    }

    #[test]
    fn degree_emission_form_is_exact() {
        // The `to_qasm` form: deg*pi/180 must round-trip bit-exactly.
        for deg in [90.0, -45.5, 5.625, 0.3, 123.456789, -359.9999] {
            let e = Expr::Bin(
                BinOp::Div,
                Box::new(Expr::Bin(
                    BinOp::Mul,
                    Box::new(Expr::Real(deg)),
                    Box::new(Expr::Pi),
                )),
                Box::new(Expr::Int(180)),
            );
            let v = eval(&e);
            assert_eq!(v.degrees(), deg, "degrees must survive exactly");
            assert!((v.as_f64() - deg.to_radians()).abs() < 1e-12);
        }
    }

    #[test]
    fn plain_radians_convert_approximately() {
        let v = eval(&Expr::Real(std::f64::consts::FRAC_PI_2));
        assert!((v.degrees() - 90.0).abs() < 1e-9);
    }

    #[test]
    fn arithmetic_and_functions() {
        // pi/2 + pi/2 == pi (collapses on addition).
        let half_pi = Expr::Bin(BinOp::Div, Box::new(Expr::Pi), Box::new(Expr::Int(2)));
        let sum = Expr::Bin(
            BinOp::Add,
            Box::new(half_pi.clone()),
            Box::new(half_pi.clone()),
        );
        assert!((eval(&sum).as_f64() - PI).abs() < 1e-15);
        // sin(pi/2) == 1.
        let s = Expr::Call(MathFn::Sin, Box::new(half_pi));
        assert!((eval(&s).as_f64() - 1.0).abs() < 1e-15);
        // 2^10 == 1024.
        let p = Expr::Bin(BinOp::Pow, Box::new(Expr::Int(2)), Box::new(Expr::Int(10)));
        assert_eq!(eval(&p).as_f64(), 1024.0);
    }

    #[test]
    fn division_by_zero_is_an_error_not_a_panic() {
        let e = Expr::Bin(BinOp::Div, Box::new(Expr::Int(1)), Box::new(Expr::Int(0)));
        assert!(e.eval(&[]).is_err());
        let e = Expr::Call(MathFn::Ln, Box::new(Expr::Int(0)));
        assert!(e.eval(&[]).is_err());
    }

    #[test]
    fn substitution_replaces_params() {
        // Param(0)/2 with arg pi → pi/2.
        let body = Expr::Bin(BinOp::Div, Box::new(Expr::Param(0)), Box::new(Expr::Int(2)));
        let inlined = body.substitute(&[Expr::Pi]);
        assert_eq!(
            inlined,
            Expr::Bin(BinOp::Div, Box::new(Expr::Pi), Box::new(Expr::Int(2)))
        );
        assert!((eval(&inlined).as_f64() - PI / 2.0).abs() < 1e-15);
    }

    #[test]
    fn params_evaluate_exactly_through_env() {
        // crz(x) lowers through u1(x/2): a degree-carrying Value divided
        // by an integer must stay exact.
        let arg = eval(&Expr::Bin(
            BinOp::Div,
            Box::new(Expr::Bin(
                BinOp::Mul,
                Box::new(Expr::Real(45.0)),
                Box::new(Expr::Pi),
            )),
            Box::new(Expr::Int(180)),
        ));
        let body = Expr::Bin(BinOp::Div, Box::new(Expr::Param(0)), Box::new(Expr::Int(2)));
        assert_eq!(body.eval(&[arg]).unwrap().degrees(), 22.5);
    }

    #[test]
    fn native_registry_arities() {
        assert_eq!(NativeGate::named("U"), Some((NativeGate::U3, 3, 1)));
        assert_eq!(NativeGate::named("cx"), Some((NativeGate::Cx, 0, 2)));
        assert_eq!(NativeGate::named("rzz"), Some((NativeGate::Rzz, 1, 2)));
        assert_eq!(NativeGate::named("ccx"), None); // composite, via prelude
    }
}
