//! OpenQASM 2.0 frontend: ingest the workload class the placement
//! literature actually benchmarks on.
//!
//! The pipeline is a hand-rolled lexer, a recursive-descent
//! parser covering `qreg`/`creg`, the `qelib1.inc` standard gates, custom
//! `gate` definitions (inlined at parse time), `barrier`, and the
//! classical constructs (`measure`, `reset`, `if` — accepted and dropped
//! with a [`Warning`] list), followed by a lowering pass that decomposes
//! every gate onto the crate's NMR basis (`cx`/`cz` → `ZZ` plus
//! rotations, `u1`/`u2`/`u3` → `Rx`/`Ry`/`Rz`, composite library gates via
//! their definitions) and greedily ASAP-schedules the result into
//! [`Circuit`] levels — preserving the interaction multigraph the placer
//! consumes.
//!
//! ```
//! use qcp_circuit::qasm;
//!
//! let bell = qasm::parse(r#"
//!     OPENQASM 2.0;
//!     include "qelib1.inc";
//!     qreg q[2];
//!     creg c[2];
//!     h q[0];
//!     cx q[0], q[1];
//!     measure q -> c;
//! "#)?;
//! assert_eq!(bell.circuit.qubit_count(), 2);
//! assert_eq!(bell.circuit.two_qubit_gate_count(), 1); // the CX coupling
//! assert_eq!(bell.warnings.len(), 1);                 // the dropped measure
//! # Ok::<(), qcp_circuit::CircuitError>(())
//! ```
//!
//! # Round-tripping
//!
//! [`Circuit::to_qasm`] serializes a circuit back to OpenQASM. Angles are
//! emitted as `<degrees>*pi/180` and evaluated with a symbolic π factor,
//! so the degree values the crate stores survive the radian detour
//! bit-exactly; opaque [`Gate::Custom1`]/[`Gate::Custom2`] gates travel
//! through `opaque` declarations under the `qcp_c1_`/`qcp_c2_` naming
//! convention. The round-trip is exact — `qasm::parse(&c.to_qasm())?
//! .circuit == c` — for every circuit without gate-less levels whose
//! custom-gate names use only identifier characters (`[A-Za-z0-9_]`;
//! other characters are sanitized to `_` on emission, so such names
//! come back altered and may collide). Level structures that ASAP
//! levelization would not reproduce (the hand-levelled paper circuits,
//! say) are emitted with `barrier` statements pinning their levels.

mod ast;
mod lexer;
mod lower;
mod parser;

use std::fmt;
use std::fmt::Write as _;

use crate::{Circuit, Gate, Result, SourceSpan};

/// A construct the frontend accepted but could not represent (measures,
/// resets, classical conditions, unknown opaque gates).
#[derive(Clone, Debug, PartialEq)]
pub struct Warning {
    /// Where the dropped construct sits in the source.
    pub span: SourceSpan,
    /// What was dropped and why.
    pub message: String,
}

impl fmt::Display for Warning {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.span, self.message)
    }
}

/// One declared `qreg`, mapped onto a contiguous block of circuit wires.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Register {
    /// Register name.
    pub name: String,
    /// Number of qubits.
    pub size: usize,
    /// First circuit wire of the block (registers concatenate in
    /// declaration order).
    pub offset: usize,
    /// Where the register is declared (the name token of the `qreg`
    /// statement).
    pub span: SourceSpan,
}

impl Register {
    /// Renders global wire `index` in register notation (`name[i]`), or
    /// `None` if the wire lies outside this register's block.
    #[must_use]
    pub fn wire_name(&self, index: usize) -> Option<String> {
        (index >= self.offset && index < self.offset + self.size)
            .then(|| format!("{}[{}]", self.name, index - self.offset))
    }
}

/// One `barrier` statement, as written in the source. Barriers only
/// constrain ASAP levelization during lowering — they are not
/// represented in the resulting [`Circuit`] — so static analysis of the
/// barriers themselves (e.g. redundancy checks) works off this record.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BarrierStmt {
    /// Where the `barrier` keyword sits in the source.
    pub span: SourceSpan,
    /// Global wire indices the barrier spans (a bare `barrier;` covers
    /// every declared qubit). Sorted, deduplicated.
    pub qubits: Vec<usize>,
    /// How many circuit operations (gate/custom applications, not
    /// barriers) precede this barrier in the flat, inlined program.
    /// Two barriers with equal `ops_before` are adjacent in the source
    /// with no operation between them.
    pub ops_before: usize,
}

/// The result of parsing an OpenQASM 2.0 program.
#[derive(Clone, Debug)]
pub struct QasmCircuit {
    /// The lowered, ASAP-levelized circuit.
    pub circuit: Circuit,
    /// Constructs that were accepted but dropped, in source order.
    pub warnings: Vec<Warning>,
    /// The declared quantum registers (wire layout of
    /// [`circuit`](QasmCircuit::circuit)).
    pub registers: Vec<Register>,
    /// The `barrier` statements of the program, in source order (they
    /// constrain levelization but are not part of the circuit itself).
    pub barriers: Vec<BarrierStmt>,
}

impl QasmCircuit {
    /// Renders global wire `index` in declared-register notation
    /// (`name[i]`), falling back to the bare index when the wire lies
    /// outside every register (unreachable for parser output).
    #[must_use]
    pub fn wire_name(&self, index: usize) -> String {
        self.registers
            .iter()
            .find_map(|r| r.wire_name(index))
            .unwrap_or_else(|| format!("q{index}"))
    }
}

/// Parses an OpenQASM 2.0 program and lowers it to a [`Circuit`].
///
/// # Errors
///
/// [`crate::CircuitError::Parse`] with an exact line/column on any
/// lexical, syntactic, or semantic problem (unknown gates, arity
/// mismatches, register overflows, non-finite parameters, …). Arbitrary
/// input never panics.
pub fn parse(source: &str) -> Result<QasmCircuit> {
    let program = parser::parse_program(source)?;
    let circuit = lower::lower(&program)?;
    Ok(QasmCircuit {
        circuit,
        warnings: program.warnings,
        registers: program.registers,
        barriers: program.barriers,
    })
}

impl Circuit {
    /// Parses an OpenQASM 2.0 program, discarding the warning list (use
    /// [`qasm::parse`](parse) to keep it).
    ///
    /// # Errors
    ///
    /// As [`qasm::parse`](parse).
    pub fn from_qasm(source: &str) -> Result<Circuit> {
        Ok(parse(source)?.circuit)
    }

    /// Serializes the circuit as an OpenQASM 2.0 program over one
    /// register `q[n]`.
    ///
    /// Rotations become `rx`/`ry`/`rz`, couplings become `rzz`, swaps
    /// `swap`; opaque custom gates are declared `opaque qcp_c1_<name>(w)`
    /// (resp. `qcp_c2_`) with the time weight as the parameter, which
    /// [`parse`] maps back onto [`Gate::Custom1`]/[`Gate::Custom2`].
    /// Angles are emitted as `<degrees>*pi/180` so they re-parse
    /// bit-exactly, and level structures that ASAP levelization would
    /// not reproduce are pinned with `barrier` statements — re-parsing
    /// gives back an equal circuit, with two lossy exceptions:
    /// gate-less levels are dropped, and custom-gate names are
    /// sanitized to identifier characters (non-`[A-Za-z0-9_]` become
    /// `_`, so such names come back altered and may collide).
    pub fn to_qasm(&self) -> String {
        let mut out = String::from("OPENQASM 2.0;\ninclude \"qelib1.inc\";\n");
        if self.qubit_count() > 0 {
            let _ = writeln!(out, "qreg q[{}];", self.qubit_count());
        }
        // Opaque declarations, in first-use order, one per (kind, name).
        let mut declared: Vec<(bool, String)> = Vec::new();
        for gate in self.gates() {
            let (two, name) = match gate {
                Gate::Custom1 { name, .. } => (false, sanitize(name)),
                Gate::Custom2 { name, .. } => (true, sanitize(name)),
                _ => continue,
            };
            let key = (two, name);
            if !declared.contains(&key) {
                let (prefix, args) = if key.0 {
                    (parser::CUSTOM2_PREFIX, "a,b")
                } else {
                    (parser::CUSTOM1_PREFIX, "a")
                };
                let _ = writeln!(out, "opaque {prefix}{}(w) {args};", key.1);
                declared.push(key);
            }
        }
        // A circuit whose levels ASAP levelization would not reproduce
        // (e.g. the hand-levelled paper circuits) gets a `barrier q;`
        // between levels, pinning the exact level structure; ASAP-built
        // circuits re-parse identically without them. (Gate-less levels
        // are not representable and are dropped either way.)
        #[allow(clippy::expect_used)]
        let asap = Circuit::from_gates(self.qubit_count(), self.gates().cloned())
            .expect("invariant: existing gates fit their own circuit");
        let pin_levels = asap != *self;
        for (li, level) in self.levels().iter().enumerate() {
            if pin_levels && li > 0 {
                out.push_str("barrier q;\n");
            }
            for gate in level.gates() {
                match gate {
                    Gate::Rx { qubit, angle } => {
                        let _ = writeln!(out, "rx({angle}*pi/180) q[{}];", qubit.index());
                    }
                    Gate::Ry { qubit, angle } => {
                        let _ = writeln!(out, "ry({angle}*pi/180) q[{}];", qubit.index());
                    }
                    Gate::Rz { qubit, angle } => {
                        let _ = writeln!(out, "rz({angle}*pi/180) q[{}];", qubit.index());
                    }
                    Gate::Zz { a, b, angle } => {
                        let _ = writeln!(
                            out,
                            "rzz({angle}*pi/180) q[{}], q[{}];",
                            a.index(),
                            b.index()
                        );
                    }
                    Gate::Swap { a, b } => {
                        let _ = writeln!(out, "swap q[{}], q[{}];", a.index(), b.index());
                    }
                    Gate::Custom1 {
                        qubit,
                        weight,
                        name,
                    } => {
                        let _ = writeln!(
                            out,
                            "{}{}({weight}) q[{}];",
                            parser::CUSTOM1_PREFIX,
                            sanitize(name),
                            qubit.index()
                        );
                    }
                    Gate::Custom2 { a, b, weight, name } => {
                        let _ = writeln!(
                            out,
                            "{}{}({weight}) q[{}], q[{}];",
                            parser::CUSTOM2_PREFIX,
                            sanitize(name),
                            a.index(),
                            b.index()
                        );
                    }
                }
            }
        }
        out
    }
}

/// Maps a custom-gate name onto OpenQASM identifier characters.
fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{library, Qubit};

    fn q(i: usize) -> Qubit {
        Qubit::new(i)
    }

    #[test]
    fn roundtrip_every_gate_kind_exactly() {
        let c = Circuit::from_gates(
            4,
            [
                Gate::rx(q(0), 90.0),
                Gate::ry(q(1), -45.5),
                Gate::rz(q(2), 5.625),
                Gate::zz(q(0), q(3), 22.5),
                Gate::swap(q(1), q(2)),
                Gate::custom1(q(0), 1.5, "pulse"),
                Gate::custom2(q(2), q(3), 3.0, "entangler"),
                Gate::rx(q(1), 0.123456789012345),
            ],
        )
        .unwrap();
        let text = c.to_qasm();
        let back = parse(&text).unwrap();
        assert_eq!(back.circuit, c, "round-trip must be exact:\n{text}");
        assert!(back.warnings.is_empty());
    }

    #[test]
    fn roundtrip_library_circuits_exactly() {
        for name in library::NAMES {
            let c = library::named(name).unwrap();
            let back = Circuit::from_qasm(&c.to_qasm()).unwrap_or_else(|e| panic!("{name}: {e}"));
            assert_eq!(back, c, "library circuit {name} must round-trip");
        }
    }

    #[test]
    fn bell_program_end_to_end() {
        let src = r#"
            OPENQASM 2.0;
            include "qelib1.inc";
            qreg q[2];
            creg c[2];
            h q[0];
            cx q[0], q[1];
            measure q[0] -> c[0];
            measure q[1] -> c[1];
        "#;
        let parsed = parse(src).unwrap();
        assert_eq!(parsed.circuit.qubit_count(), 2);
        assert_eq!(parsed.circuit.two_qubit_gate_count(), 1);
        assert_eq!(parsed.warnings.len(), 2);
        assert_eq!(parsed.registers.len(), 1);
        assert_eq!(parsed.registers[0].name, "q");
        // The warning display carries the span.
        assert!(parsed.warnings[0].to_string().contains("measurement"));
    }

    #[test]
    fn from_qasm_discards_warnings_but_keeps_errors() {
        assert!(Circuit::from_qasm("OPENQASM 2.0;\nqreg q[1];\n").is_ok());
        let err = Circuit::from_qasm("OPENQASM 2.0;\nqreg q[1];\nnope q[0];\n").unwrap_err();
        assert!(err.to_string().contains("nope"));
    }

    #[test]
    fn custom_names_are_sanitized() {
        let c = Circuit::from_gates(1, [Gate::custom1(q(0), 2.0, "my gate!")]).unwrap();
        let text = c.to_qasm();
        assert!(text.contains("qcp_c1_my_gate_"), "{text}");
        let back = parse(&text).unwrap().circuit;
        // The sanitized name is what survives.
        assert!(matches!(
            back.gates().next().unwrap(),
            Gate::Custom1 { name, .. } if name == "my_gate_"
        ));
    }

    #[test]
    fn non_asap_levels_are_pinned_with_barriers() {
        // A gate parked later than ASAP would put it: level 1 on an
        // otherwise idle qubit.
        let c = Circuit::from_levels(2, [vec![Gate::ry(q(0), 90.0)], vec![Gate::ry(q(1), 90.0)]])
            .unwrap();
        let text = c.to_qasm();
        assert!(text.contains("barrier q;"), "{text}");
        assert_eq!(parse(&text).unwrap().circuit, c);
        // ASAP-built circuits stay barrier-free.
        let c = Circuit::from_gates(2, [Gate::ry(q(0), 90.0), Gate::ry(q(1), 90.0)]).unwrap();
        assert!(!c.to_qasm().contains("barrier"));
    }

    #[test]
    fn empty_and_idle_circuits_roundtrip() {
        let empty = Circuit::empty(0);
        assert_eq!(parse(&empty.to_qasm()).unwrap().circuit, empty);
        let idle = Circuit::empty(5);
        assert_eq!(parse(&idle.to_qasm()).unwrap().circuit, idle);
    }
}
