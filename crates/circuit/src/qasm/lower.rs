//! Lowering: flat OpenQASM operations → the NMR-basis [`Circuit`].
//!
//! Every native gate decomposes onto the crate's `Rx`/`Ry`/`Rz`/`ZZ`/
//! `SWAP` vocabulary exactly as the paper's compiler would (§2: "`ZZ(π/2)`
//! is equivalent to CNOT up to single qubit rotations"), and the resulting
//! gate stream is greedily ASAP-levelized — each gate lands in the
//! earliest level after the previous uses of its qubits, with `barrier`
//! forcing a synchronization point on its qubit subset. The interaction
//! multigraph the placer consumes is therefore exactly the one the QASM
//! two-qubit gates describe.

use crate::qasm::ast::NativeGate;
use crate::qasm::parser::{FlatOp, Program};
use crate::{Circuit, Gate, Qubit, Result};

/// Lowers a parsed program to a levelled circuit.
pub(crate) fn lower(program: &Program) -> Result<Circuit> {
    let n = program.n_qubits;
    let mut lv = Leveler::new(n);
    for op in &program.ops {
        match op {
            FlatOp::Gate {
                native,
                params,
                qubits,
            } => {
                let q = |i: usize| Qubit::new(qubits[i]);
                let deg = |i: usize| params[i].degrees();
                match native {
                    NativeGate::Id | NativeGate::U0 => {}
                    NativeGate::U3 => lv.u3(q(0), deg(0), deg(1), deg(2)),
                    NativeGate::U2 => lv.u3(q(0), 90.0, deg(0), deg(1)),
                    NativeGate::U1 => lv.u3(q(0), 0.0, 0.0, deg(0)),
                    NativeGate::Rx => lv.push(Gate::rx(q(0), deg(0))),
                    NativeGate::Ry => lv.push(Gate::ry(q(0), deg(0))),
                    NativeGate::Rz => lv.push(Gate::rz(q(0), deg(0))),
                    NativeGate::X => lv.push(Gate::rx(q(0), 180.0)),
                    NativeGate::Y => lv.push(Gate::ry(q(0), 180.0)),
                    NativeGate::Z => lv.push(Gate::rz(q(0), 180.0)),
                    NativeGate::H => {
                        lv.push(Gate::ry(q(0), 90.0));
                        lv.push(Gate::rz(q(0), 180.0));
                    }
                    NativeGate::S => lv.push(Gate::rz(q(0), 90.0)),
                    NativeGate::Sdg => lv.push(Gate::rz(q(0), -90.0)),
                    NativeGate::T => lv.push(Gate::rz(q(0), 45.0)),
                    NativeGate::Tdg => lv.push(Gate::rz(q(0), -45.0)),
                    NativeGate::Sx => lv.push(Gate::rx(q(0), 90.0)),
                    NativeGate::Sxdg => lv.push(Gate::rx(q(0), -90.0)),
                    NativeGate::Cx => lv.cnot(q(0), q(1)),
                    NativeGate::Cz => lv.cphase(q(0), q(1), 180.0),
                    NativeGate::Cp => lv.cphase(q(0), q(1), deg(0)),
                    NativeGate::Swap => lv.push(Gate::swap(q(0), q(1))),
                    NativeGate::Rzz => lv.push(Gate::zz(q(0), q(1), deg(0))),
                }
            }
            FlatOp::Custom {
                name,
                weight,
                qubits,
            } => match qubits.as_slice() {
                [a] => lv.push(Gate::custom1(Qubit::new(*a), *weight, name.clone())),
                [a, b] => lv.push(Gate::custom2(
                    Qubit::new(*a),
                    Qubit::new(*b),
                    *weight,
                    name.clone(),
                )),
                _ => unreachable!("parser only emits 1- and 2-qubit customs"),
            },
            FlatOp::Barrier { qubits } => lv.barrier(qubits),
        }
    }
    Circuit::from_levels(n, lv.levels)
}

/// ASAP levelizer with per-qubit-subset barriers (the crate's
/// [`CircuitBuilder`](crate::CircuitBuilder) only has a global barrier).
struct Leveler {
    levels: Vec<Vec<Gate>>,
    next_free: Vec<usize>,
}

impl Leveler {
    fn new(n: usize) -> Self {
        Leveler {
            levels: Vec::new(),
            next_free: vec![0; n],
        }
    }

    fn push(&mut self, gate: Gate) {
        let (a, b) = gate.qubits();
        let mut level = self.next_free[a.index()];
        if let Some(b) = b {
            level = level.max(self.next_free[b.index()]);
        }
        if level == self.levels.len() {
            self.levels.push(Vec::new());
        }
        self.levels[level].push(gate);
        self.next_free[a.index()] = level + 1;
        if let Some(b) = b {
            self.next_free[b.index()] = level + 1;
        }
    }

    /// `U(θ,φ,λ) = Rz(φ)·Ry(θ)·Rz(λ)` up to global phase; zero-angle
    /// factors are skipped so `u1(λ)` costs exactly one free `Rz`.
    fn u3(&mut self, q: Qubit, theta: f64, phi: f64, lambda: f64) {
        if lambda != 0.0 {
            self.push(Gate::rz(q, lambda));
        }
        if theta != 0.0 {
            self.push(Gate::ry(q, theta));
        }
        if phi != 0.0 {
            self.push(Gate::rz(q, phi));
        }
    }

    /// The standard NMR CNOT sequence (one coupling, two pulses, two free
    /// frame changes) — identical to `CircuitBuilder::cnot`.
    fn cnot(&mut self, c: Qubit, t: Qubit) {
        self.push(Gate::ry(t, -90.0));
        self.push(Gate::zz(c, t, -90.0));
        self.push(Gate::rz(c, 90.0));
        self.push(Gate::rz(t, 90.0));
        self.push(Gate::ry(t, 90.0));
    }

    /// Controlled-phase of `angle` degrees — identical to
    /// `CircuitBuilder::cphase`.
    fn cphase(&mut self, a: Qubit, b: Qubit, angle: f64) {
        self.push(Gate::zz(a, b, -angle / 2.0));
        self.push(Gate::rz(a, angle / 2.0));
        self.push(Gate::rz(b, angle / 2.0));
    }

    /// Barrier over a qubit subset: every listed qubit becomes free only
    /// at the latest busy level among them.
    fn barrier(&mut self, qubits: &[usize]) {
        let sync = qubits.iter().map(|&q| self.next_free[q]).max().unwrap_or(0);
        for &q in qubits {
            self.next_free[q] = sync;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::qasm;

    fn circuit(src: &str) -> Circuit {
        qasm::parse(src).unwrap().circuit
    }

    #[test]
    fn cx_matches_builder_cnot() {
        let c = circuit("OPENQASM 2.0;\nqreg q[2];\nCX q[0], q[1];\n");
        let mut b = Circuit::builder(2);
        b.cnot(Qubit::new(0), Qubit::new(1));
        assert_eq!(c, b.build());
    }

    #[test]
    fn h_matches_builder_hadamard() {
        let c = circuit("OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[1];\nh q[0];\n");
        let mut b = Circuit::builder(1);
        b.hadamard(Qubit::new(0));
        assert_eq!(c, b.build());
    }

    #[test]
    fn cz_and_cp_match_builder_cphase() {
        let c = circuit("OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[2];\ncz q[0], q[1];\n");
        let mut b = Circuit::builder(2);
        b.cphase(Qubit::new(0), Qubit::new(1), 180.0);
        assert_eq!(c, b.build());

        let c = circuit(
            "OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[2];\ncp(90*pi/180) q[0], q[1];\n",
        );
        let mut b = Circuit::builder(2);
        b.cphase(Qubit::new(0), Qubit::new(1), 90.0);
        assert_eq!(c, b.build());
    }

    #[test]
    fn u_family_lowering() {
        // u1 is a single free Rz.
        let c = circuit("OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[1];\nu1(pi) q[0];\n");
        assert_eq!(c.gate_count(), 1);
        assert!(matches!(c.gates().next().unwrap(), Gate::Rz { .. }));
        // u2(φ,λ) always carries the Ry(90).
        let c = circuit("OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[1];\nu2(0,pi) q[0];\n");
        assert_eq!(c.gate_count(), 2);
        // Full u3.
        let c = circuit(
            "OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[1];\nu3(pi/2,pi/2,pi/2) q[0];\n",
        );
        assert_eq!(c.gate_count(), 3);
        // id and u0 lower to nothing.
        let c =
            circuit("OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[1];\nid q[0];\nu0(1) q[0];\n");
        assert_eq!(c.gate_count(), 0);
    }

    #[test]
    fn swap_and_rzz_map_one_to_one() {
        let c = circuit(
            "OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[2];\nswap q[0], q[1];\nrzz(90*pi/180) q[0], q[1];\n",
        );
        let gates: Vec<&Gate> = c.gates().collect();
        assert_eq!(gates.len(), 2);
        assert!(matches!(gates[0], Gate::Swap { .. }));
        assert!(matches!(gates[1], Gate::Zz { angle, .. } if *angle == 90.0));
    }

    #[test]
    fn asap_levelization_packs_disjoint_gates() {
        let c = circuit(
            "OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[4];\n\
             rz(1) q[0];\nrz(1) q[1];\nrzz(1) q[2], q[3];\n",
        );
        assert_eq!(c.depth(), 1);
    }

    #[test]
    fn barrier_splits_levels_per_subset() {
        // Without the barrier the two x gates share level 0.
        let free =
            circuit("OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[2];\nx q[0];\nx q[1];\n");
        assert_eq!(free.depth(), 1);
        let walled = circuit(
            "OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[2];\nx q[0];\nbarrier q;\nx q[1];\n",
        );
        assert_eq!(walled.depth(), 2);
        // A barrier on an untouched subset does not move others.
        let partial = circuit(
            "OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[3];\nx q[0];\nbarrier q[1], q[2];\nx q[1];\n",
        );
        assert_eq!(partial.depth(), 1);
    }

    #[test]
    fn interaction_graph_comes_from_two_qubit_gates() {
        let c = circuit(
            "OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[3];\ncx q[0], q[1];\ncx q[1], q[2];\n",
        );
        let g = c.interaction_graph();
        assert_eq!(g.edge_count(), 2);
        assert_eq!(c.two_qubit_gate_count(), 2);
    }
}
