//! Tokenizer for OpenQASM 2.0 source text.
//!
//! Produces a flat token list with a [`SourceSpan`] per token; the parser
//! never looks at raw text again, so every diagnostic downstream points at
//! an exact line and column. Comments (`//` and `/* … */`) and whitespace
//! are skipped here.

use crate::{CircuitError, Result, SourceSpan};

/// One lexed token.
#[derive(Clone, Debug, PartialEq)]
pub(crate) struct Token {
    /// What the token is.
    pub kind: Tok,
    /// Where its first character sits in the source.
    pub span: SourceSpan,
}

/// Token kinds of the OpenQASM 2.0 grammar.
#[derive(Clone, Debug, PartialEq)]
pub(crate) enum Tok {
    /// Identifier or keyword (`qreg`, `cx`, `pi`, …).
    Ident(String),
    /// Unsigned integer literal.
    Int(u64),
    /// Real literal (`1.5`, `0.2e-3`).
    Real(f64),
    /// String literal (only used by `include`).
    Str(String),
    Semi,
    Comma,
    LParen,
    RParen,
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    /// `->` (measurement target).
    Arrow,
    /// `==` (classical condition).
    EqEq,
    Plus,
    Minus,
    Star,
    Slash,
    Caret,
}

impl Tok {
    /// Human-readable rendering for "expected X, found Y" diagnostics.
    pub fn describe(&self) -> String {
        match self {
            Tok::Ident(s) => format!("`{s}`"),
            Tok::Int(n) => format!("`{n}`"),
            Tok::Real(x) => format!("`{x}`"),
            Tok::Str(s) => format!("\"{s}\""),
            Tok::Semi => "`;`".into(),
            Tok::Comma => "`,`".into(),
            Tok::LParen => "`(`".into(),
            Tok::RParen => "`)`".into(),
            Tok::LBrace => "`{`".into(),
            Tok::RBrace => "`}`".into(),
            Tok::LBracket => "`[`".into(),
            Tok::RBracket => "`]`".into(),
            Tok::Arrow => "`->`".into(),
            Tok::EqEq => "`==`".into(),
            Tok::Plus => "`+`".into(),
            Tok::Minus => "`-`".into(),
            Tok::Star => "`*`".into(),
            Tok::Slash => "`/`".into(),
            Tok::Caret => "`^`".into(),
        }
    }
}

/// Tokenizes `source`.
///
/// # Errors
///
/// [`CircuitError::Parse`] on characters outside the grammar, malformed
/// numbers, unterminated strings or block comments.
pub(crate) fn lex(source: &str) -> Result<Vec<Token>> {
    Lexer {
        chars: source.chars().collect(),
        pos: 0,
        line: 1,
        col: 1,
    }
    .run()
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: usize,
    col: usize,
}

impl Lexer {
    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<char> {
        self.chars.get(self.pos + 1).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn span(&self) -> SourceSpan {
        SourceSpan::new(self.line, self.col)
    }

    fn error(&self, span: SourceSpan, message: impl Into<String>) -> CircuitError {
        CircuitError::parse_at(span, message)
    }

    fn run(mut self) -> Result<Vec<Token>> {
        let mut out = Vec::new();
        while let Some(c) = self.peek() {
            let span = self.span();
            match c {
                ' ' | '\t' | '\r' | '\n' => {
                    self.bump();
                }
                '/' if self.peek2() == Some('/') => {
                    while let Some(c) = self.peek() {
                        if c == '\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                '/' if self.peek2() == Some('*') => {
                    self.bump();
                    self.bump();
                    loop {
                        match (self.peek(), self.peek2()) {
                            (Some('*'), Some('/')) => {
                                self.bump();
                                self.bump();
                                break;
                            }
                            (Some(_), _) => {
                                self.bump();
                            }
                            (None, _) => return Err(self.error(span, "unterminated block comment")),
                        }
                    }
                }
                c if c.is_ascii_alphabetic() || c == '_' => {
                    let mut ident = String::new();
                    while let Some(c) = self.peek() {
                        if c.is_ascii_alphanumeric() || c == '_' {
                            ident.push(c);
                            self.bump();
                        } else {
                            break;
                        }
                    }
                    out.push(Token {
                        kind: Tok::Ident(ident),
                        span,
                    });
                }
                c if c.is_ascii_digit()
                    || (c == '.' && self.peek2().is_some_and(|d| d.is_ascii_digit())) =>
                {
                    out.push(self.number(span)?);
                }
                '"' => {
                    self.bump();
                    let mut s = String::new();
                    loop {
                        match self.peek() {
                            Some('"') => {
                                self.bump();
                                break;
                            }
                            Some('\n') | None => {
                                return Err(self.error(span, "unterminated string literal"))
                            }
                            Some(c) => {
                                s.push(c);
                                self.bump();
                            }
                        }
                    }
                    out.push(Token {
                        kind: Tok::Str(s),
                        span,
                    });
                }
                '-' if self.peek2() == Some('>') => {
                    self.bump();
                    self.bump();
                    out.push(Token {
                        kind: Tok::Arrow,
                        span,
                    });
                }
                '=' if self.peek2() == Some('=') => {
                    self.bump();
                    self.bump();
                    out.push(Token {
                        kind: Tok::EqEq,
                        span,
                    });
                }
                _ => {
                    let kind = match c {
                        ';' => Tok::Semi,
                        ',' => Tok::Comma,
                        '(' => Tok::LParen,
                        ')' => Tok::RParen,
                        '{' => Tok::LBrace,
                        '}' => Tok::RBrace,
                        '[' => Tok::LBracket,
                        ']' => Tok::RBracket,
                        '+' => Tok::Plus,
                        '-' => Tok::Minus,
                        '*' => Tok::Star,
                        '/' => Tok::Slash,
                        '^' => Tok::Caret,
                        other => {
                            return Err(self.error(span, format!("unexpected character `{other}`")))
                        }
                    };
                    self.bump();
                    out.push(Token { kind, span });
                }
            }
        }
        Ok(out)
    }

    /// Lexes an integer or real literal starting at the current position.
    fn number(&mut self, span: SourceSpan) -> Result<Token> {
        let mut text = String::new();
        let mut is_real = false;
        while let Some(c) = self.peek() {
            if c.is_ascii_digit() {
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        if self.peek() == Some('.') {
            is_real = true;
            text.push('.');
            self.bump();
            while let Some(c) = self.peek() {
                if c.is_ascii_digit() {
                    text.push(c);
                    self.bump();
                } else {
                    break;
                }
            }
        }
        if matches!(self.peek(), Some('e' | 'E')) {
            // Only an exponent when followed by digits (with optional sign);
            // otherwise the `e` starts the next identifier token.
            let next = self.peek2();
            let digit_after_sign = matches!(next, Some('+' | '-'))
                && self
                    .chars
                    .get(self.pos + 2)
                    .is_some_and(char::is_ascii_digit);
            if next.is_some_and(|c| c.is_ascii_digit()) || digit_after_sign {
                is_real = true;
                text.push('e');
                self.bump();
                if let Some(sign @ ('+' | '-')) = self.peek() {
                    text.push(sign);
                    self.bump();
                }
                while let Some(c) = self.peek() {
                    if c.is_ascii_digit() {
                        text.push(c);
                        self.bump();
                    } else {
                        break;
                    }
                }
            }
        }
        let kind = if is_real {
            let value: f64 = text
                .parse()
                .map_err(|_| self.error(span, format!("malformed number `{text}`")))?;
            Tok::Real(value)
        } else {
            let value: u64 = text
                .parse()
                .map_err(|_| self.error(span, format!("integer literal `{text}` out of range")))?;
            Tok::Int(value)
        };
        Ok(Token { kind, span })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_a_representative_line() {
        let toks = kinds("rx(-pi/2) q[0];");
        assert_eq!(
            toks,
            vec![
                Tok::Ident("rx".into()),
                Tok::LParen,
                Tok::Minus,
                Tok::Ident("pi".into()),
                Tok::Slash,
                Tok::Int(2),
                Tok::RParen,
                Tok::Ident("q".into()),
                Tok::LBracket,
                Tok::Int(0),
                Tok::RBracket,
                Tok::Semi,
            ]
        );
    }

    #[test]
    fn numbers_int_real_exponent() {
        assert_eq!(
            kinds("3 3.5 .5 2e3 1.5e-2"),
            vec![
                Tok::Int(3),
                Tok::Real(3.5),
                Tok::Real(0.5),
                Tok::Real(2e3),
                Tok::Real(1.5e-2),
            ]
        );
        // `e` not followed by digits starts an identifier instead.
        assert_eq!(kinds("2eggs"), vec![Tok::Int(2), Tok::Ident("eggs".into())]);
    }

    #[test]
    fn comments_and_strings() {
        let toks = kinds("// header\ninclude \"qelib1.inc\"; /* mid */ qreg");
        assert_eq!(
            toks,
            vec![
                Tok::Ident("include".into()),
                Tok::Str("qelib1.inc".into()),
                Tok::Semi,
                Tok::Ident("qreg".into()),
            ]
        );
    }

    #[test]
    fn spans_track_lines_and_columns() {
        let toks = lex("h q;\n  cx q[0], q[1];").unwrap();
        assert_eq!(toks[0].span, SourceSpan::new(1, 1));
        assert_eq!(toks[1].span, SourceSpan::new(1, 3));
        let cx = toks.iter().find(|t| t.kind == Tok::Ident("cx".into()));
        assert_eq!(cx.unwrap().span, SourceSpan::new(2, 3));
    }

    #[test]
    fn arrow_and_equality() {
        assert_eq!(
            kinds("measure q -> c; if (c == 1)"),
            vec![
                Tok::Ident("measure".into()),
                Tok::Ident("q".into()),
                Tok::Arrow,
                Tok::Ident("c".into()),
                Tok::Semi,
                Tok::Ident("if".into()),
                Tok::LParen,
                Tok::Ident("c".into()),
                Tok::EqEq,
                Tok::Int(1),
                Tok::RParen,
            ]
        );
    }

    #[test]
    fn bad_inputs_error_with_spans() {
        let err = lex("h q; @").unwrap_err();
        assert_eq!(
            err.to_string(),
            "parse error at 1:6: unexpected character `@`"
        );
        assert!(lex("\"unterminated").is_err());
        assert!(lex("/* never closed").is_err());
        assert!(lex("99999999999999999999999999").is_err());
    }
}
