//! Recursive-descent parser for OpenQASM 2.0.
//!
//! The parser resolves registers, inlines every composite gate (user
//! `gate` definitions and the `qelib1.inc` standard library) down to the
//! native set of [`NativeGate`]s *at parse time*, and emits a flat,
//! broadcast-expanded operation list ([`FlatOp`]) for the lowering pass.
//! Measurements, resets, and classically-conditioned operations are
//! accepted, dropped, and reported in the warning list — the placement
//! pipeline only cares about the unitary interaction structure.

use std::collections::HashMap;
use std::sync::{Arc, OnceLock};

use crate::qasm::ast::{BinOp, Expr, GateDef, MathFn, NativeGate, TemplateOp, Value};
use crate::qasm::lexer::{lex, Tok, Token};
use crate::qasm::{BarrierStmt, Register, Warning};
use crate::text::MAX_QUBITS;
use crate::{CircuitError, Result, SourceSpan};

/// Cap on the flat operation list: broadcast over registers and gate
/// inlining amplify the input, so an explicit bound keeps adversarial
/// files (huge registers, towers of nested definitions) from exhausting
/// memory instead of erroring.
const MAX_OPS: usize = 1 << 22;

/// Cap on one definition's flattened template, for the same reason.
const MAX_TEMPLATE_OPS: usize = 1 << 16;

/// Maximum expression nesting depth (guards the recursive descent
/// against `((((…` stack overflows on adversarial input).
const MAX_EXPR_DEPTH: usize = 64;

/// Prefixes that route an `opaque` gate application onto the circuit
/// IR's opaque [`Gate::Custom1`](crate::Gate::Custom1) /
/// [`Gate::Custom2`](crate::Gate::Custom2) gates, with the single
/// parameter read as the time weight. `Circuit::to_qasm` emits these.
pub(crate) const CUSTOM1_PREFIX: &str = "qcp_c1_";
/// See [`CUSTOM1_PREFIX`].
pub(crate) const CUSTOM2_PREFIX: &str = "qcp_c2_";

/// The composite gates of `qelib1.inc`, expressed over the natively
/// lowered set (see [`NativeGate`]). Parsed once per process and shared.
const QELIB1_COMPOSITES: &str = r#"
gate cy a,b { sdg b; cx a,b; s b; }
gate ch a,b { h b; sdg b; cx a,b; h b; t b; cx a,b; t b; h b; s b; x b; s a; }
gate ccx a,b,c { h c; cx b,c; tdg c; cx a,c; t c; cx b,c; tdg c; cx a,c; t b; t c; h c; cx a,b; t a; tdg b; cx a,b; }
gate cswap a,b,c { cx c,b; ccx a,b,c; cx c,b; }
gate crx(theta) a,b { u1(pi/2) b; cx a,b; u3(-theta/2,0,0) b; cx a,b; u3(theta/2,-pi/2,0) b; }
gate cry(theta) a,b { ry(theta/2) b; cx a,b; ry(-theta/2) b; cx a,b; }
gate crz(lambda) a,b { rz(lambda/2) b; cx a,b; rz(-lambda/2) b; cx a,b; }
gate cu3(theta,phi,lambda) c,t { u1((lambda+phi)/2) c; u1((lambda-phi)/2) t; cx c,t; u3(-theta/2,0,-(phi+lambda)/2) t; cx c,t; u3(theta/2,phi,0) t; }
gate rxx(theta) a,b { h a; h b; rzz(theta) a,b; h a; h b; }
"#;

// The prelude is a compile-time constant exercised by every parser test;
// failing to lex or parse it is a build defect, not a runtime condition.
#[allow(clippy::expect_used)]
fn prelude_defs() -> &'static HashMap<String, Arc<GateDef>> {
    static PRELUDE: OnceLock<HashMap<String, Arc<GateDef>>> = OnceLock::new();
    PRELUDE.get_or_init(|| {
        let tokens = lex(QELIB1_COMPOSITES).expect("prelude lexes");
        let mut parser = Parser::new(tokens, HashMap::new());
        parser.run(false).expect("prelude parses");
        parser.defs
    })
}

/// One fully resolved operation: registers broadcast, composite gates
/// inlined, parameters evaluated.
#[derive(Clone, Debug)]
pub(crate) enum FlatOp {
    /// A native-gate application on global qubit indices.
    Gate {
        /// Which native gate.
        native: NativeGate,
        /// Evaluated parameters (arity fixed by `native`).
        params: Vec<Value>,
        /// Global qubit indices, pairwise distinct.
        qubits: Vec<usize>,
    },
    /// An opaque custom gate (the `qcp_c1_`/`qcp_c2_` convention).
    Custom {
        /// Name with the routing prefix stripped.
        name: String,
        /// Time weight in 90°-pulse units (finite, non-negative).
        weight: f64,
        /// Global qubit indices (one or two, distinct).
        qubits: Vec<usize>,
    },
    /// A barrier over a set of global qubit indices (empty = all).
    Barrier {
        /// Global qubit indices.
        qubits: Vec<usize>,
    },
}

/// A parsed, resolved, inlined OpenQASM program, ready for lowering.
#[derive(Clone, Debug, Default)]
pub(crate) struct Program {
    /// Total qubit count (all `qreg`s concatenated in declaration order).
    pub n_qubits: usize,
    /// The declared quantum registers.
    pub registers: Vec<Register>,
    /// The flat operation list, in source order.
    pub ops: Vec<FlatOp>,
    /// Dropped-construct warnings, in source order.
    pub warnings: Vec<Warning>,
    /// Barrier statements with spans and flat-op positions, for static
    /// analysis (barriers are consumed by levelization, not lowered).
    pub barriers: Vec<BarrierStmt>,
}

/// Lexes and parses a full OpenQASM 2.0 program.
pub(crate) fn parse_program(source: &str) -> Result<Program> {
    let tokens = lex(source)?;
    let mut parser = Parser::new(tokens, prelude_defs().clone());
    parser.run(true)?;
    Ok(Program {
        n_qubits: parser.n_qubits,
        registers: parser.qregs,
        ops: parser.ops,
        warnings: parser.warnings,
        barriers: parser.barriers,
    })
}

/// How one qubit argument of an application resolved.
#[derive(Clone, Copy, Debug)]
enum ArgRef {
    /// A whole register: `(offset, size)`.
    Whole(usize, usize),
    /// A single indexed qubit (global index).
    One(usize),
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    defs: HashMap<String, Arc<GateDef>>,
    opaques: HashMap<String, (usize, usize)>,
    qregs: Vec<Register>,
    cregs: HashMap<String, usize>,
    n_qubits: usize,
    ops: Vec<FlatOp>,
    warnings: Vec<Warning>,
    barriers: Vec<BarrierStmt>,
    gate_ops: usize,
}

impl Parser {
    fn new(tokens: Vec<Token>, defs: HashMap<String, Arc<GateDef>>) -> Self {
        Parser {
            tokens,
            pos: 0,
            defs,
            opaques: HashMap::new(),
            qregs: Vec::new(),
            cregs: HashMap::new(),
            n_qubits: 0,
            ops: Vec::new(),
            warnings: Vec::new(),
            barriers: Vec::new(),
            gate_ops: 0,
        }
    }

    // --- token plumbing ---

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn bump(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn here(&self) -> SourceSpan {
        self.peek().map_or_else(
            || self.tokens.last().map_or(SourceSpan::new(1, 1), |t| t.span),
            |t| t.span,
        )
    }

    fn err(&self, span: SourceSpan, message: impl Into<String>) -> CircuitError {
        CircuitError::parse_at(span, message)
    }

    fn expect(&mut self, want: &Tok, what: &str) -> Result<SourceSpan> {
        match self.bump() {
            Some(t) if t.kind == *want => Ok(t.span),
            Some(t) => Err(self.err(
                t.span,
                format!("expected {what}, found {}", t.kind.describe()),
            )),
            None => Err(self.err(self.here(), format!("expected {what}, found end of file"))),
        }
    }

    fn expect_ident(&mut self, what: &str) -> Result<(String, SourceSpan)> {
        match self.bump() {
            Some(Token {
                kind: Tok::Ident(name),
                span,
            }) => Ok((name, span)),
            Some(t) => Err(self.err(
                t.span,
                format!("expected {what}, found {}", t.kind.describe()),
            )),
            None => Err(self.err(self.here(), format!("expected {what}, found end of file"))),
        }
    }

    fn expect_int(&mut self, what: &str) -> Result<(u64, SourceSpan)> {
        match self.bump() {
            Some(Token {
                kind: Tok::Int(n),
                span,
            }) => Ok((n, span)),
            Some(t) => Err(self.err(
                t.span,
                format!("expected {what}, found {}", t.kind.describe()),
            )),
            None => Err(self.err(self.here(), format!("expected {what}, found end of file"))),
        }
    }

    // --- top level ---

    fn run(&mut self, expect_header: bool) -> Result<()> {
        if expect_header {
            let (kw, span) = self.expect_ident("`OPENQASM 2.0;` header")?;
            if kw != "OPENQASM" {
                return Err(self.err(
                    span,
                    format!("expected `OPENQASM 2.0;` header, found `{kw}`"),
                ));
            }
            match self.bump() {
                Some(Token {
                    kind: Tok::Real(v),
                    span,
                }) => {
                    // Exact comparison on purpose: the only valid spelling
                    // is the literal `2.0` (or integer `2` below).
                    if v != 2.0 {
                        return Err(self.err(span, format!("unsupported OPENQASM version `{v}`")));
                    }
                }
                Some(Token {
                    kind: Tok::Int(2), ..
                }) => {}
                Some(t) => {
                    return Err(self.err(
                        t.span,
                        format!("unsupported OPENQASM version {}", t.kind.describe()),
                    ))
                }
                None => return Err(self.err(span, "expected a version after OPENQASM")),
            }
            self.expect(&Tok::Semi, "`;` after the OPENQASM header")?;
        }
        while self.peek().is_some() {
            self.statement()?;
        }
        Ok(())
    }

    fn statement(&mut self) -> Result<()> {
        let (name, span) = self.expect_ident("a statement")?;
        match name.as_str() {
            "OPENQASM" => Err(self.err(span, "OPENQASM header must be the first statement")),
            "include" => {
                let t = self.bump();
                match t {
                    Some(Token {
                        kind: Tok::Str(path),
                        span,
                    }) => {
                        if path != "qelib1.inc" {
                            return Err(self.err(
                                span,
                                format!(
                                    "cannot include `{path}`: only \"qelib1.inc\" is available"
                                ),
                            ));
                        }
                        // The qelib1 gates are preloaded; the include is a no-op.
                        self.expect(&Tok::Semi, "`;` after include")?;
                        Ok(())
                    }
                    Some(t) => Err(self.err(
                        t.span,
                        format!(
                            "expected a file string after include, found {}",
                            t.kind.describe()
                        ),
                    )),
                    None => Err(self.err(span, "expected a file string after include")),
                }
            }
            "qreg" => self.reg_decl(true),
            "creg" => self.reg_decl(false),
            "gate" => self.gate_def(),
            "opaque" => self.opaque_decl(),
            "barrier" => {
                let qubits = self.barrier_args()?;
                self.push_op(FlatOp::Barrier { qubits }, span)
            }
            "measure" => {
                self.measure(span)?;
                Ok(())
            }
            "reset" => {
                self.reset(span)?;
                Ok(())
            }
            "if" => self.if_statement(span),
            _ => self.application(&name, span),
        }
    }

    fn reg_decl(&mut self, quantum: bool) -> Result<()> {
        let (name, span) = self.expect_ident("a register name")?;
        self.expect(&Tok::LBracket, "`[` in register declaration")?;
        let (size, size_span) = self.expect_int("a register size")?;
        self.expect(&Tok::RBracket, "`]` in register declaration")?;
        self.expect(&Tok::Semi, "`;` after register declaration")?;
        if size == 0 {
            return Err(self.err(size_span, "register size must be at least 1"));
        }
        if self.qregs.iter().any(|r| r.name == name) || self.cregs.contains_key(&name) {
            return Err(self.err(span, format!("register `{name}` is already declared")));
        }
        let size = usize::try_from(size).unwrap_or(usize::MAX);
        if quantum {
            if self.n_qubits.saturating_add(size) > MAX_QUBITS {
                return Err(self.err(
                    size_span,
                    format!("program exceeds the {MAX_QUBITS}-qubit limit"),
                ));
            }
            self.qregs.push(Register {
                name,
                size,
                offset: self.n_qubits,
                span,
            });
            self.n_qubits += size;
        } else {
            if size > MAX_QUBITS {
                return Err(self.err(
                    size_span,
                    format!("register exceeds the {MAX_QUBITS}-bit limit"),
                ));
            }
            self.cregs.insert(name, size);
        }
        Ok(())
    }

    // --- gate definitions ---

    fn gate_def(&mut self) -> Result<()> {
        let (name, name_span) = self.expect_ident("a gate name")?;
        self.check_fresh_gate_name(&name, name_span)?;

        let params = self.ident_list_in_parens()?;
        let mut param_idx = HashMap::new();
        for (i, (p, span)) in params.iter().enumerate() {
            if param_idx.insert(p.clone(), i).is_some() {
                return Err(self.err(*span, format!("duplicate parameter `{p}`")));
            }
        }
        let mut args = vec![self.expect_ident("a qubit argument")?];
        while self.peek().map(|t| &t.kind) == Some(&Tok::Comma) {
            self.bump();
            args.push(self.expect_ident("a qubit argument")?);
        }
        let mut arg_idx = HashMap::new();
        for (i, (a, span)) in args.iter().enumerate() {
            if arg_idx.insert(a.clone(), i).is_some() {
                return Err(self.err(*span, format!("duplicate qubit argument `{a}`")));
            }
        }
        self.expect(&Tok::LBrace, "`{` opening the gate body")?;

        let mut template: Vec<TemplateOp> = Vec::new();
        loop {
            match self.peek() {
                Some(Token {
                    kind: Tok::RBrace, ..
                }) => {
                    self.bump();
                    break;
                }
                Some(_) => {
                    let (stmt, span) = self.expect_ident("a gate-body statement")?;
                    if stmt == "barrier" {
                        let qubits = self.formal_args(&arg_idx)?;
                        template.push(TemplateOp::Barrier { qubits });
                        continue;
                    }
                    // A gate application over the formal arguments.
                    let exprs = self.expr_list_in_parens(Some(&param_idx))?;
                    let qubits = self.formal_args(&arg_idx)?;
                    if qubits.is_empty() {
                        return Err(self.err(span, format!("`{stmt}` needs qubit arguments")));
                    }
                    for (i, a) in qubits.iter().enumerate() {
                        if qubits[..i].contains(a) {
                            return Err(self.err(
                                span,
                                format!("`{stmt}` is applied to the same qubit twice"),
                            ));
                        }
                    }
                    self.splice_into_template(&mut template, &stmt, span, exprs, &qubits)?;
                    if template.len() > MAX_TEMPLATE_OPS {
                        return Err(self.err(
                            name_span,
                            format!(
                                "gate `{name}` expands to more than {MAX_TEMPLATE_OPS} operations"
                            ),
                        ));
                    }
                }
                None => return Err(self.err(self.here(), "unterminated gate body")),
            }
        }
        self.defs.insert(
            name,
            Arc::new(GateDef {
                n_params: params.len(),
                n_qubits: args.len(),
                template,
            }),
        );
        Ok(())
    }

    /// Appends the application of `callee` (native or previously defined)
    /// to a template under construction, inlining composite callees.
    fn splice_into_template(
        &self,
        template: &mut Vec<TemplateOp>,
        callee: &str,
        span: SourceSpan,
        exprs: Vec<Expr>,
        qubits: &[usize],
    ) -> Result<()> {
        if let Some((native, n_params, n_qubits)) = NativeGate::named(callee) {
            self.check_arity(callee, span, n_params, exprs.len(), n_qubits, qubits.len())?;
            template.push(TemplateOp::Gate {
                native,
                params: exprs,
                qubits: qubits.to_vec(),
            });
            return Ok(());
        }
        if let Some(def) = self.defs.get(callee) {
            self.check_arity(
                callee,
                span,
                def.n_params,
                exprs.len(),
                def.n_qubits,
                qubits.len(),
            )?;
            for op in &def.template {
                template.push(match op {
                    TemplateOp::Gate {
                        native,
                        params,
                        qubits: formals,
                    } => TemplateOp::Gate {
                        native: *native,
                        params: params.iter().map(|e| e.substitute(&exprs)).collect(),
                        qubits: formals.iter().map(|&f| qubits[f]).collect(),
                    },
                    TemplateOp::Barrier { qubits: formals } => TemplateOp::Barrier {
                        qubits: formals.iter().map(|&f| qubits[f]).collect(),
                    },
                });
            }
            return Ok(());
        }
        Err(self.err(span, format!("unknown gate `{callee}` in gate body")))
    }

    fn check_fresh_gate_name(&self, name: &str, span: SourceSpan) -> Result<()> {
        if NativeGate::named(name).is_some()
            || self.defs.contains_key(name)
            || self.opaques.contains_key(name)
        {
            return Err(self.err(span, format!("gate `{name}` is already defined")));
        }
        Ok(())
    }

    fn check_arity(
        &self,
        name: &str,
        span: SourceSpan,
        want_params: usize,
        got_params: usize,
        want_qubits: usize,
        got_qubits: usize,
    ) -> Result<()> {
        if want_params != got_params {
            return Err(self.err(
                span,
                format!("gate `{name}` takes {want_params} parameter(s), got {got_params}"),
            ));
        }
        if want_qubits != got_qubits {
            return Err(self.err(
                span,
                format!("gate `{name}` acts on {want_qubits} qubit(s), got {got_qubits}"),
            ));
        }
        Ok(())
    }

    fn opaque_decl(&mut self) -> Result<()> {
        let (name, span) = self.expect_ident("an opaque gate name")?;
        self.check_fresh_gate_name(&name, span)?;
        let params = self.ident_list_in_parens()?;
        let mut n_args = 1;
        self.expect_ident("a qubit argument")?;
        while self.peek().map(|t| &t.kind) == Some(&Tok::Comma) {
            self.bump();
            self.expect_ident("a qubit argument")?;
            n_args += 1;
        }
        self.expect(&Tok::Semi, "`;` after opaque declaration")?;
        self.opaques.insert(name, (params.len(), n_args));
        Ok(())
    }

    /// Parses `(a, b, …)` of identifiers; absent parens mean an empty list.
    fn ident_list_in_parens(&mut self) -> Result<Vec<(String, SourceSpan)>> {
        let mut out = Vec::new();
        if self.peek().map(|t| &t.kind) != Some(&Tok::LParen) {
            return Ok(out);
        }
        self.bump();
        if self.peek().map(|t| &t.kind) == Some(&Tok::RParen) {
            self.bump();
            return Ok(out);
        }
        loop {
            out.push(self.expect_ident("a parameter name")?);
            match self.bump() {
                Some(Token {
                    kind: Tok::Comma, ..
                }) => {}
                Some(Token {
                    kind: Tok::RParen, ..
                }) => break,
                Some(t) => {
                    return Err(self.err(
                        t.span,
                        format!("expected `,` or `)`, found {}", t.kind.describe()),
                    ))
                }
                None => return Err(self.err(self.here(), "unterminated parameter list")),
            }
        }
        Ok(out)
    }

    /// Parses formal qubit arguments (`a, b`) inside a gate body, ending
    /// at `;` (consumed).
    fn formal_args(&mut self, arg_idx: &HashMap<String, usize>) -> Result<Vec<usize>> {
        let mut out = Vec::new();
        loop {
            let (name, span) = self.expect_ident("a qubit argument")?;
            let idx = *arg_idx
                .get(&name)
                .ok_or_else(|| self.err(span, format!("unknown qubit argument `{name}`")))?;
            out.push(idx);
            match self.bump() {
                Some(Token {
                    kind: Tok::Comma, ..
                }) => {}
                Some(Token {
                    kind: Tok::Semi, ..
                }) => break,
                Some(t) => {
                    return Err(self.err(
                        t.span,
                        format!("expected `,` or `;`, found {}", t.kind.describe()),
                    ))
                }
                None => return Err(self.err(self.here(), "unterminated argument list")),
            }
        }
        Ok(out)
    }

    // --- applications ---

    fn application(&mut self, name: &str, span: SourceSpan) -> Result<()> {
        let exprs = self.expr_list_in_parens(None)?;
        let args = self.qarg_list()?;

        // Evaluate parameters once; they are shared by every broadcast slot.
        let mut values = Vec::with_capacity(exprs.len());
        for e in &exprs {
            values.push(self.eval_param(e, &[], span)?);
        }

        if let Some((native, n_params, n_qubits)) = NativeGate::named(name) {
            self.check_arity(name, span, n_params, values.len(), n_qubits, args.len())?;
            for qubits in self.broadcast(&args, span)? {
                self.check_distinct(name, span, &qubits)?;
                self.push_op(
                    FlatOp::Gate {
                        native,
                        params: values.clone(),
                        qubits,
                    },
                    span,
                )?;
            }
            return Ok(());
        }
        if let Some(def) = self.defs.get(name).cloned() {
            self.check_arity(
                name,
                span,
                def.n_params,
                values.len(),
                def.n_qubits,
                args.len(),
            )?;
            for qubits in self.broadcast(&args, span)? {
                self.check_distinct(name, span, &qubits)?;
                for op in &def.template {
                    let flat = match op {
                        TemplateOp::Gate {
                            native,
                            params,
                            qubits: formals,
                        } => {
                            let mut evaled = Vec::with_capacity(params.len());
                            for e in params {
                                evaled.push(self.eval_param(e, &values, span)?);
                            }
                            FlatOp::Gate {
                                native: *native,
                                params: evaled,
                                qubits: formals.iter().map(|&f| qubits[f]).collect(),
                            }
                        }
                        TemplateOp::Barrier { qubits: formals } => FlatOp::Barrier {
                            qubits: formals.iter().map(|&f| qubits[f]).collect(),
                        },
                    };
                    self.push_op(flat, span)?;
                }
            }
            return Ok(());
        }
        if let Some(&(n_params, n_qubits)) = self.opaques.get(name) {
            self.check_arity(name, span, n_params, values.len(), n_qubits, args.len())?;
            let custom = if let Some(stripped) = name.strip_prefix(CUSTOM1_PREFIX) {
                (n_params == 1 && n_qubits == 1).then(|| stripped.to_string())
            } else if let Some(stripped) = name.strip_prefix(CUSTOM2_PREFIX) {
                (n_params == 1 && n_qubits == 2).then(|| stripped.to_string())
            } else {
                None
            };
            match custom {
                Some(stripped) => {
                    let weight = values[0].as_f64();
                    if !(weight.is_finite() && weight >= 0.0) {
                        return Err(self.err(
                            span,
                            format!("custom gate `{name}` needs a finite non-negative weight"),
                        ));
                    }
                    for qubits in self.broadcast(&args, span)? {
                        self.check_distinct(name, span, &qubits)?;
                        self.push_op(
                            FlatOp::Custom {
                                name: stripped.clone(),
                                weight,
                                qubits,
                            },
                            span,
                        )?;
                    }
                }
                None => self.warn(
                    span,
                    format!("opaque gate `{name}` has unknown semantics; dropped"),
                ),
            }
            return Ok(());
        }
        Err(self.err(span, format!("unknown gate `{name}`")))
    }

    /// Evaluates one parameter expression, requiring both the radian
    /// value and its degree conversion to be finite (a finite radian
    /// value near `f64::MAX` would overflow when scaled to degrees and
    /// panic in the gate constructors otherwise).
    fn eval_param(&self, e: &Expr, env: &[Value], span: SourceSpan) -> Result<Value> {
        let v = e.eval(env).map_err(|m| self.err(span, m))?;
        if !v.degrees().is_finite() {
            return Err(self.err(
                span,
                "parameter expression does not evaluate to a finite number",
            ));
        }
        Ok(v)
    }

    fn check_distinct(&self, name: &str, span: SourceSpan, qubits: &[usize]) -> Result<()> {
        for (i, q) in qubits.iter().enumerate() {
            if qubits[..i].contains(q) {
                return Err(self.err(
                    span,
                    format!("gate `{name}` is applied to the same qubit twice"),
                ));
            }
        }
        Ok(())
    }

    fn push_op(&mut self, op: FlatOp, span: SourceSpan) -> Result<()> {
        if self.ops.len() >= MAX_OPS {
            return Err(self.err(
                span,
                format!("program expands to more than {MAX_OPS} operations"),
            ));
        }
        match &op {
            FlatOp::Barrier { qubits } => {
                let mut qubits = qubits.clone();
                qubits.sort_unstable();
                qubits.dedup();
                self.barriers.push(BarrierStmt {
                    span,
                    qubits,
                    ops_before: self.gate_ops,
                });
            }
            FlatOp::Gate { .. } | FlatOp::Custom { .. } => self.gate_ops += 1,
        }
        self.ops.push(op);
        Ok(())
    }

    fn warn(&mut self, span: SourceSpan, message: String) {
        self.warnings.push(Warning { span, message });
    }

    /// Expands register broadcast: every whole-register argument must have
    /// the same length `L`, indexed arguments are repeated, and the
    /// application becomes `L` (or 1) concrete operations.
    fn broadcast(&self, args: &[ArgRef], span: SourceSpan) -> Result<Vec<Vec<usize>>> {
        let mut len: Option<usize> = None;
        for a in args {
            if let ArgRef::Whole(_, size) = a {
                match len {
                    None => len = Some(*size),
                    Some(l) if l == *size => {}
                    Some(l) => {
                        return Err(self.err(
                            span,
                            format!("register size mismatch in broadcast: {l} vs {size}"),
                        ))
                    }
                }
            }
        }
        let n = len.unwrap_or(1);
        Ok((0..n)
            .map(|i| {
                args.iter()
                    .map(|a| match a {
                        ArgRef::Whole(offset, _) => offset + i,
                        ArgRef::One(q) => *q,
                    })
                    .collect()
            })
            .collect())
    }

    /// Parses the qubit arguments of a top-level application, ending at
    /// `;` (consumed).
    fn qarg_list(&mut self) -> Result<Vec<ArgRef>> {
        let mut out = Vec::new();
        loop {
            out.push(self.qarg()?);
            match self.bump() {
                Some(Token {
                    kind: Tok::Comma, ..
                }) => {}
                Some(Token {
                    kind: Tok::Semi, ..
                }) => break,
                Some(t) => {
                    return Err(self.err(
                        t.span,
                        format!("expected `,` or `;`, found {}", t.kind.describe()),
                    ))
                }
                None => return Err(self.err(self.here(), "unterminated argument list")),
            }
        }
        Ok(out)
    }

    /// Parses one quantum argument: `name` or `name[i]`.
    fn qarg(&mut self) -> Result<ArgRef> {
        let (name, span) = self.expect_ident("a register argument")?;
        let reg = self
            .qregs
            .iter()
            .find(|r| r.name == name)
            .ok_or_else(|| self.err(span, format!("unknown quantum register `{name}`")))?;
        let (offset, size) = (reg.offset, reg.size);
        if self.peek().map(|t| &t.kind) == Some(&Tok::LBracket) {
            self.bump();
            let (idx, idx_span) = self.expect_int("a qubit index")?;
            self.expect(&Tok::RBracket, "`]` after the qubit index")?;
            let idx = usize::try_from(idx).unwrap_or(usize::MAX);
            if idx >= size {
                return Err(self.err(
                    idx_span,
                    format!("index {idx} out of range for `{name}[{size}]`"),
                ));
            }
            Ok(ArgRef::One(offset + idx))
        } else {
            Ok(ArgRef::Whole(offset, size))
        }
    }

    /// Parses one classical argument: `name` or `name[i]` over a `creg`.
    fn carg(&mut self) -> Result<()> {
        let (name, span) = self.expect_ident("a classical register")?;
        let size = *self
            .cregs
            .get(&name)
            .ok_or_else(|| self.err(span, format!("unknown classical register `{name}`")))?;
        if self.peek().map(|t| &t.kind) == Some(&Tok::LBracket) {
            self.bump();
            let (idx, idx_span) = self.expect_int("a bit index")?;
            self.expect(&Tok::RBracket, "`]` after the bit index")?;
            if usize::try_from(idx).unwrap_or(usize::MAX) >= size {
                return Err(self.err(
                    idx_span,
                    format!("index {idx} out of range for `{name}[{size}]`"),
                ));
            }
        }
        Ok(())
    }

    // --- dropped constructs ---

    fn measure(&mut self, span: SourceSpan) -> Result<()> {
        self.qarg()?;
        self.expect(&Tok::Arrow, "`->` in measurement")?;
        self.carg()?;
        self.expect(&Tok::Semi, "`;` after measurement")?;
        self.warn(
            span,
            "measurement dropped (placement is unitary-only)".into(),
        );
        Ok(())
    }

    fn reset(&mut self, span: SourceSpan) -> Result<()> {
        self.qarg()?;
        self.expect(&Tok::Semi, "`;` after reset")?;
        self.warn(span, "reset dropped (placement is unitary-only)".into());
        Ok(())
    }

    fn if_statement(&mut self, span: SourceSpan) -> Result<()> {
        self.expect(&Tok::LParen, "`(` after if")?;
        let (name, name_span) = self.expect_ident("a classical register")?;
        if !self.cregs.contains_key(&name) {
            return Err(self.err(name_span, format!("unknown classical register `{name}`")));
        }
        self.expect(&Tok::EqEq, "`==` in if condition")?;
        self.expect_int("a comparison value")?;
        self.expect(&Tok::RParen, "`)` closing the if condition")?;
        // Parse the conditioned operation normally, then drop whatever it
        // produced: the placer has no classical control flow.
        let ops_before = self.ops.len();
        let warns_before = self.warnings.len();
        let (inner, inner_span) = self.expect_ident("a quantum operation after if")?;
        match inner.as_str() {
            "measure" => self.measure(inner_span)?,
            "reset" => self.reset(inner_span)?,
            "if" | "barrier" | "gate" | "qreg" | "creg" | "include" | "opaque" => {
                return Err(self.err(
                    inner_span,
                    format!("`{inner}` cannot be classically conditioned"),
                ))
            }
            _ => self.application(&inner, inner_span)?,
        }
        self.ops.truncate(ops_before);
        self.warnings.truncate(warns_before);
        self.warn(
            span,
            "classically-conditioned operation dropped (placement is unitary-only)".into(),
        );
        Ok(())
    }

    /// Top-level barrier arguments: `;` alone means every qubit.
    fn barrier_args(&mut self) -> Result<Vec<usize>> {
        if self.peek().map(|t| &t.kind) == Some(&Tok::Semi) {
            self.bump();
            return Ok((0..self.n_qubits).collect());
        }
        let args = self.qarg_list()?;
        let mut qubits = Vec::new();
        for a in args {
            match a {
                ArgRef::Whole(offset, size) => qubits.extend(offset..offset + size),
                ArgRef::One(q) => qubits.push(q),
            }
        }
        Ok(qubits)
    }

    // --- expressions ---

    /// Parses `(e1, e2, …)`; absent parens mean an empty list. `params`
    /// supplies formal-parameter resolution inside gate bodies.
    fn expr_list_in_parens(
        &mut self,
        params: Option<&HashMap<String, usize>>,
    ) -> Result<Vec<Expr>> {
        let mut out = Vec::new();
        if self.peek().map(|t| &t.kind) != Some(&Tok::LParen) {
            return Ok(out);
        }
        self.bump();
        if self.peek().map(|t| &t.kind) == Some(&Tok::RParen) {
            self.bump();
            return Ok(out);
        }
        loop {
            out.push(self.expr(params, 0)?);
            match self.bump() {
                Some(Token {
                    kind: Tok::Comma, ..
                }) => {}
                Some(Token {
                    kind: Tok::RParen, ..
                }) => break,
                Some(t) => {
                    return Err(self.err(
                        t.span,
                        format!("expected `,` or `)`, found {}", t.kind.describe()),
                    ))
                }
                None => return Err(self.err(self.here(), "unterminated parameter list")),
            }
        }
        Ok(out)
    }

    fn expr(&mut self, params: Option<&HashMap<String, usize>>, depth: usize) -> Result<Expr> {
        if depth > MAX_EXPR_DEPTH {
            return Err(self.err(self.here(), "expression nesting too deep"));
        }
        let mut lhs = self.term(params, depth + 1)?;
        loop {
            let op = match self.peek().map(|t| &t.kind) {
                Some(Tok::Plus) => BinOp::Add,
                Some(Tok::Minus) => BinOp::Sub,
                _ => break,
            };
            self.bump();
            let rhs = self.term(params, depth + 1)?;
            lhs = Expr::Bin(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn term(&mut self, params: Option<&HashMap<String, usize>>, depth: usize) -> Result<Expr> {
        if depth > MAX_EXPR_DEPTH {
            return Err(self.err(self.here(), "expression nesting too deep"));
        }
        let mut lhs = self.unary(params, depth + 1)?;
        loop {
            let op = match self.peek().map(|t| &t.kind) {
                Some(Tok::Star) => BinOp::Mul,
                Some(Tok::Slash) => BinOp::Div,
                _ => break,
            };
            self.bump();
            let rhs = self.unary(params, depth + 1)?;
            lhs = Expr::Bin(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn unary(&mut self, params: Option<&HashMap<String, usize>>, depth: usize) -> Result<Expr> {
        if depth > MAX_EXPR_DEPTH {
            return Err(self.err(self.here(), "expression nesting too deep"));
        }
        if self.peek().map(|t| &t.kind) == Some(&Tok::Minus) {
            self.bump();
            return Ok(Expr::Neg(Box::new(self.unary(params, depth + 1)?)));
        }
        let base = self.atom(params, depth + 1)?;
        if self.peek().map(|t| &t.kind) == Some(&Tok::Caret) {
            self.bump();
            let exp = self.unary(params, depth + 1)?;
            return Ok(Expr::Bin(BinOp::Pow, Box::new(base), Box::new(exp)));
        }
        Ok(base)
    }

    fn atom(&mut self, params: Option<&HashMap<String, usize>>, depth: usize) -> Result<Expr> {
        match self.bump() {
            Some(Token {
                kind: Tok::Int(n), ..
            }) => Ok(Expr::Int(n)),
            Some(Token {
                kind: Tok::Real(x), ..
            }) => Ok(Expr::Real(x)),
            Some(Token {
                kind: Tok::LParen, ..
            }) => {
                let e = self.expr(params, depth + 1)?;
                self.expect(&Tok::RParen, "`)` closing the expression")?;
                Ok(e)
            }
            Some(Token {
                kind: Tok::Ident(name),
                span,
            }) => {
                if name == "pi" {
                    return Ok(Expr::Pi);
                }
                if let Some(f) = MathFn::named(&name) {
                    self.expect(&Tok::LParen, "`(` after a function name")?;
                    let arg = self.expr(params, depth + 1)?;
                    self.expect(&Tok::RParen, "`)` closing the function call")?;
                    return Ok(Expr::Call(f, Box::new(arg)));
                }
                if let Some(idx) = params.and_then(|p| p.get(&name)) {
                    return Ok(Expr::Param(*idx));
                }
                Err(self.err(span, format!("unknown identifier `{name}` in expression")))
            }
            Some(t) => Err(self.err(
                t.span,
                format!("expected an expression, found {}", t.kind.describe()),
            )),
            None => Err(self.err(self.here(), "expected an expression, found end of file")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_ok(src: &str) -> Program {
        parse_program(src).unwrap()
    }

    fn parse_err(src: &str) -> String {
        parse_program(src).unwrap_err().to_string()
    }

    #[test]
    fn minimal_program() {
        let p = parse_ok("OPENQASM 2.0;\nqreg q[2];\nCX q[0], q[1];\n");
        assert_eq!(p.n_qubits, 2);
        assert_eq!(p.ops.len(), 1);
        assert!(matches!(
            &p.ops[0],
            FlatOp::Gate {
                native: NativeGate::Cx,
                qubits,
                ..
            } if qubits == &[0, 1]
        ));
    }

    #[test]
    fn registers_concatenate_in_order() {
        let p = parse_ok("OPENQASM 2.0;\nqreg a[2];\nqreg b[3];\nCX a[1], b[2];\n");
        assert_eq!(p.n_qubits, 5);
        assert_eq!(p.registers.len(), 2);
        assert_eq!(p.registers[1].offset, 2);
        assert!(matches!(
            &p.ops[0],
            FlatOp::Gate { qubits, .. } if qubits == &[1, 4]
        ));
    }

    #[test]
    fn broadcast_over_whole_registers() {
        let p = parse_ok("OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[3];\nh q;\n");
        assert_eq!(p.ops.len(), 3);
        let p =
            parse_ok("OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg a[2];\nqreg b[2];\ncx a, b;\n");
        assert_eq!(p.ops.len(), 2);
        assert!(matches!(&p.ops[1], FlatOp::Gate { qubits, .. } if qubits == &[1, 3]));
        // Mixed: the indexed argument repeats.
        let p = parse_ok(
            "OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg a[2];\nqreg b[2];\ncx a[0], b;\n",
        );
        assert!(matches!(&p.ops[0], FlatOp::Gate { qubits, .. } if qubits == &[0, 2]));
        assert!(matches!(&p.ops[1], FlatOp::Gate { qubits, .. } if qubits == &[0, 3]));
        assert!(parse_err(
            "OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg a[2];\nqreg b[3];\ncx a, b;\n"
        )
        .contains("size mismatch"));
    }

    #[test]
    fn custom_gates_inline_at_parse_time() {
        let p = parse_ok(
            "OPENQASM 2.0;\ninclude \"qelib1.inc\";\n\
             gate majority a,b,c { cx c,b; cx c,a; ccx a,b,c; }\n\
             qreg q[3];\nmajority q[0], q[1], q[2];\n",
        );
        // 2 cx + ccx (15 native ops) = 17 flat ops.
        assert_eq!(p.ops.len(), 17);
    }

    #[test]
    fn qelib_composites_resolve() {
        for app in [
            "cy q[0], q[1];",
            "ch q[0], q[1];",
            "ccx q[0], q[1], q[2];",
            "cswap q[0], q[1], q[2];",
            "crx(pi/4) q[0], q[1];",
            "cry(pi/4) q[0], q[1];",
            "crz(pi/4) q[0], q[1];",
            "cu3(pi/4, 0, pi) q[0], q[1];",
            "rxx(pi/2) q[0], q[1];",
            "cp(pi/4) q[0], q[1];",
            "cu1(pi/4) q[0], q[1];",
        ] {
            let src = format!("OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[3];\n{app}\n");
            let p = parse_program(&src).unwrap_or_else(|e| panic!("{app}: {e}"));
            assert!(!p.ops.is_empty(), "{app} produced no ops");
        }
    }

    #[test]
    fn params_reach_inlined_bodies_exactly() {
        let p = parse_ok(
            "OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[2];\ncrz(90*pi/180) q[0], q[1];\n",
        );
        // crz(λ) = rz(λ/2) t; cx; rz(-λ/2) t; cx — four template ops.
        assert_eq!(p.ops.len(), 4);
        let FlatOp::Gate { native, params, .. } = &p.ops[0] else {
            panic!("expected a gate");
        };
        assert_eq!(*native, NativeGate::Rz);
        assert_eq!(params[0].degrees(), 45.0);
    }

    #[test]
    fn dropped_constructs_warn_but_parse() {
        let p = parse_ok(
            "OPENQASM 2.0;\ninclude \"qelib1.inc\";\n\
             qreg q[2]; creg c[2];\n\
             h q[0];\nmeasure q[0] -> c[0];\nreset q[1];\nif (c == 1) x q[1];\n",
        );
        assert_eq!(p.warnings.len(), 3);
        assert!(p.warnings[0].message.contains("measurement"));
        assert!(p.warnings[1].message.contains("reset"));
        assert!(p.warnings[2].message.contains("conditioned"));
        // Only the h survives (1 op: H).
        assert_eq!(p.ops.len(), 1);
    }

    #[test]
    fn opaque_custom_convention() {
        let p = parse_ok(
            "OPENQASM 2.0;\nqreg q[2];\n\
             opaque qcp_c1_pulse(w) a;\nopaque qcp_c2_ent(w) a,b;\nopaque mystery a;\n\
             qcp_c1_pulse(1.5) q[0];\nqcp_c2_ent(3) q[0], q[1];\nmystery q[1];\n",
        );
        assert_eq!(p.ops.len(), 2);
        assert!(matches!(
            &p.ops[0],
            FlatOp::Custom { name, weight, qubits } if name == "pulse" && *weight == 1.5 && qubits == &[0]
        ));
        assert!(matches!(
            &p.ops[1],
            FlatOp::Custom { name, weight, qubits } if name == "ent" && *weight == 3.0 && qubits == &[0, 1]
        ));
        assert_eq!(p.warnings.len(), 1);
        assert!(p.warnings[0].message.contains("mystery"));
    }

    #[test]
    fn errors_carry_spans() {
        assert_eq!(
            parse_err("OPENQASM 2.0;\nqreg q[2];\nbogus q[0];\n"),
            "parse error at 3:1: unknown gate `bogus`"
        );
        assert_eq!(
            parse_err("OPENQASM 2.0;\nqreg q[2];\nCX q[0], q[5];\n"),
            "parse error at 3:12: index 5 out of range for `q[2]`"
        );
        assert!(parse_err("qreg q[1];").contains("OPENQASM"));
        assert!(parse_err("OPENQASM 3.0;\n").contains("unsupported"));
        assert!(parse_err("OPENQASM 2.0;\ninclude \"other.inc\";").contains("other.inc"));
        assert!(parse_err("OPENQASM 2.0;\nqreg q[0];").contains("at least 1"));
        assert!(parse_err("OPENQASM 2.0;\nqreg q[2]; qreg q[2];").contains("already declared"));
        assert!(
            parse_err("OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[2];\ncx q[0], q[0];")
                .contains("same qubit twice")
        );
        assert!(parse_err("OPENQASM 2.0;\nqreg q[99999999];").contains("limit"));
    }

    #[test]
    fn aliasing_natives_and_redefinition_rejected() {
        assert!(parse_err("OPENQASM 2.0;\ngate h a { U(0,0,0) a; }").contains("already defined"));
        assert!(
            parse_err("OPENQASM 2.0;\ngate f a { U(0,0,0) a; }\ngate f a { U(0,0,0) a; }")
                .contains("already defined")
        );
        assert!(parse_err("OPENQASM 2.0;\ngate f a { g a; }").contains("unknown gate `g`"));
        assert!(parse_err("OPENQASM 2.0;\ngate f a,b { CX a,a; }").contains("same qubit twice"));
    }

    #[test]
    fn expression_grammar() {
        let p = parse_ok(
            "OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[1];\n\
             rz(2*pi - pi/2) q[0];\nrz(-ln(exp(1))) q[0];\nrz(2^3 * 0.25) q[0];\n\
             rz(sqrt(4)) q[0];\nrz(cos(0)) q[0];\nrz(tan(0)) q[0];\nrz(sin(0)) q[0];\n",
        );
        let deg = |i: usize| match &p.ops[i] {
            FlatOp::Gate { params, .. } => params[0].as_f64(),
            other => panic!("unexpected {other:?}"),
        };
        assert!((deg(0) - 1.5 * std::f64::consts::PI).abs() < 1e-12);
        assert!((deg(1) + 1.0).abs() < 1e-12);
        assert_eq!(deg(2), 2.0);
        assert_eq!(deg(3), 2.0);
        assert_eq!(deg(4), 1.0);
        assert_eq!(deg(5), 0.0);
    }

    #[test]
    fn deep_expressions_error_not_overflow() {
        let mut src = String::from("OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[1];\nrz(");
        src.push_str(&"(".repeat(5_000));
        src.push('1');
        src.push_str(&")".repeat(5_000));
        src.push_str(") q[0];\n");
        assert!(parse_err(&src).contains("nesting too deep"));
    }

    #[test]
    fn barriers_parse_at_top_level_and_in_bodies() {
        let p = parse_ok(
            "OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[3];\n\
             barrier q;\nbarrier q[0], q[2];\nbarrier;\n\
             gate wall a,b { h a; barrier a,b; h b; }\nwall q[0], q[1];\n",
        );
        let barriers: Vec<&FlatOp> = p
            .ops
            .iter()
            .filter(|o| matches!(o, FlatOp::Barrier { .. }))
            .collect();
        assert_eq!(barriers.len(), 4);
        assert!(matches!(barriers[0], FlatOp::Barrier { qubits } if qubits == &[0, 1, 2]));
        assert!(matches!(barriers[1], FlatOp::Barrier { qubits } if qubits == &[0, 2]));
        assert!(matches!(barriers[2], FlatOp::Barrier { qubits } if qubits == &[0, 1, 2]));
        assert!(matches!(barriers[3], FlatOp::Barrier { qubits } if qubits == &[0, 1]));
    }

    #[test]
    fn version_2_int_accepted() {
        let p = parse_ok("OPENQASM 2;\nqreg q[1];\n");
        assert_eq!(p.n_qubits, 1);
    }
}
