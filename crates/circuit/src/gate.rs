//! Gates and their time weights.

use std::fmt;

use crate::Qubit;

/// A one- or two-qubit gate in the NMR-flavoured basis of §2.
///
/// Every gate carries a *time weight* `T(G)` (see
/// [`time_weight`](Gate::time_weight)): the number of 90°-pulse units the
/// gate occupies on the interaction it uses. The actual operating time on
/// hardware is `W(v_i, v_j) · T(G)` where `W` comes from the physical
/// environment (Definition 3 of the paper).
///
/// Rotation angles are in degrees, matching the paper's notation
/// (`Ry(90)`, `ZZ(90)`, …). Negative angles are allowed; weights use the
/// absolute value.
#[derive(Clone, PartialEq, Debug)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Gate {
    /// Rotation about the X axis by `angle` degrees (an RF pulse).
    Rx {
        /// Target qubit.
        qubit: Qubit,
        /// Rotation angle in degrees.
        angle: f64,
    },
    /// Rotation about the Y axis by `angle` degrees (an RF pulse).
    Ry {
        /// Target qubit.
        qubit: Qubit,
        /// Rotation angle in degrees.
        angle: f64,
    },
    /// Rotation about the Z axis — free in liquid-state NMR (implemented by
    /// a change of the rotating reference frame), hence `T = 0`.
    Rz {
        /// Target qubit.
        qubit: Qubit,
        /// Rotation angle in degrees.
        angle: f64,
    },
    /// The Ising coupling gate `ZZ(angle)` — the drift-Hamiltonian
    /// evolution that implements two-qubit interactions in NMR.
    Zz {
        /// First interacting qubit.
        a: Qubit,
        /// Second interacting qubit.
        b: Qubit,
        /// Rotation angle in degrees.
        angle: f64,
    },
    /// A full state swap; costs three maximal-length couplings (`T = 3`),
    /// the bound of Zhang–Vala–Sastry–Whaley for any two-qubit unitary.
    Swap {
        /// First swapped qubit.
        a: Qubit,
        /// Second swapped qubit.
        b: Qubit,
    },
    /// An opaque single-qubit gate with an explicit time weight.
    Custom1 {
        /// Target qubit.
        qubit: Qubit,
        /// Time weight in 90°-pulse units; must be finite and `>= 0`.
        weight: f64,
        /// Display name.
        name: String,
    },
    /// An opaque two-qubit gate with an explicit time weight.
    Custom2 {
        /// First interacting qubit.
        a: Qubit,
        /// Second interacting qubit.
        b: Qubit,
        /// Time weight in 90°-pulse units; must be finite and `>= 0`.
        weight: f64,
        /// Display name.
        name: String,
    },
}

impl Gate {
    fn check_angle(angle: f64) {
        assert!(angle.is_finite(), "gate angle must be finite, got {angle}");
    }

    fn check_pair(a: Qubit, b: Qubit) {
        assert!(
            a != b,
            "two-qubit gate needs distinct qubits, got {a} twice"
        );
    }

    /// `Rx(angle°)` on `qubit`.
    ///
    /// # Panics
    ///
    /// Panics if `angle` is not finite.
    pub fn rx(qubit: Qubit, angle: f64) -> Gate {
        Self::check_angle(angle);
        Gate::Rx { qubit, angle }
    }

    /// `Ry(angle°)` on `qubit`.
    ///
    /// # Panics
    ///
    /// Panics if `angle` is not finite.
    pub fn ry(qubit: Qubit, angle: f64) -> Gate {
        Self::check_angle(angle);
        Gate::Ry { qubit, angle }
    }

    /// `Rz(angle°)` on `qubit` (free in NMR).
    ///
    /// # Panics
    ///
    /// Panics if `angle` is not finite.
    pub fn rz(qubit: Qubit, angle: f64) -> Gate {
        Self::check_angle(angle);
        Gate::Rz { qubit, angle }
    }

    /// `ZZ(angle°)` coupling between `a` and `b`.
    ///
    /// # Panics
    ///
    /// Panics if `angle` is not finite or `a == b`.
    pub fn zz(a: Qubit, b: Qubit, angle: f64) -> Gate {
        Self::check_angle(angle);
        Self::check_pair(a, b);
        Gate::Zz { a, b, angle }
    }

    /// A SWAP between `a` and `b`.
    ///
    /// # Panics
    ///
    /// Panics if `a == b`.
    pub fn swap(a: Qubit, b: Qubit) -> Gate {
        Self::check_pair(a, b);
        Gate::Swap { a, b }
    }

    /// An opaque single-qubit gate with explicit `weight`.
    ///
    /// # Panics
    ///
    /// Panics if `weight` is negative or not finite.
    pub fn custom1(qubit: Qubit, weight: f64, name: impl Into<String>) -> Gate {
        assert!(
            weight.is_finite() && weight >= 0.0,
            "weight must be finite and >= 0"
        );
        Gate::Custom1 {
            qubit,
            weight,
            name: name.into(),
        }
    }

    /// An opaque two-qubit gate with explicit `weight`.
    ///
    /// # Panics
    ///
    /// Panics if `weight` is negative/not finite or `a == b`.
    pub fn custom2(a: Qubit, b: Qubit, weight: f64, name: impl Into<String>) -> Gate {
        assert!(
            weight.is_finite() && weight >= 0.0,
            "weight must be finite and >= 0"
        );
        Self::check_pair(a, b);
        Gate::Custom2 {
            a,
            b,
            weight,
            name: name.into(),
        }
    }

    /// The time weight `T(G)` in 90°-pulse units.
    ///
    /// Footnote 3 of the paper: `T(Rx(180)) = 2 · T(Rx(90))` — weights
    /// scale linearly with the rotation angle. `Rz` is free; `SWAP` costs
    /// three maximal couplings.
    pub fn time_weight(&self) -> f64 {
        match self {
            Gate::Rx { angle, .. } | Gate::Ry { angle, .. } => angle.abs() / 90.0,
            Gate::Rz { .. } => 0.0,
            Gate::Zz { angle, .. } => angle.abs() / 90.0,
            Gate::Swap { .. } => 3.0,
            Gate::Custom1 { weight, .. } | Gate::Custom2 { weight, .. } => *weight,
        }
    }

    /// The qubits the gate acts on (one or two entries).
    pub fn qubits(&self) -> (Qubit, Option<Qubit>) {
        match *self {
            Gate::Rx { qubit, .. }
            | Gate::Ry { qubit, .. }
            | Gate::Rz { qubit, .. }
            | Gate::Custom1 { qubit, .. } => (qubit, None),
            Gate::Zz { a, b, .. } | Gate::Swap { a, b } | Gate::Custom2 { a, b, .. } => {
                (a, Some(b))
            }
        }
    }

    /// Returns the interacting pair for two-qubit gates, `None` otherwise.
    pub fn coupling(&self) -> Option<(Qubit, Qubit)> {
        match self.qubits() {
            (a, Some(b)) => Some((a, b)),
            _ => None,
        }
    }

    /// Returns `true` for two-qubit gates.
    #[inline]
    pub fn is_two_qubit(&self) -> bool {
        matches!(
            self,
            Gate::Zz { .. } | Gate::Swap { .. } | Gate::Custom2 { .. }
        )
    }

    /// Returns `true` if the gate takes no time at all (e.g. `Rz`).
    #[inline]
    pub fn is_free(&self) -> bool {
        self.time_weight() == 0.0
    }

    /// Largest qubit index used, for sizing circuits.
    pub fn max_qubit_index(&self) -> usize {
        match self.qubits() {
            (a, Some(b)) => a.index().max(b.index()),
            (a, None) => a.index(),
        }
    }

    /// Returns `true` if the gate is diagonal in the computational basis
    /// (`Rz` and `ZZ` rotations) — all such gates mutually commute.
    pub fn is_diagonal(&self) -> bool {
        matches!(self, Gate::Rz { .. } | Gate::Zz { .. })
    }

    /// Conservative commutation test: two gates are known to commute when
    /// their qubit supports are disjoint, or when both are diagonal
    /// (`Rz`/`ZZ`). Anything else is reported as non-commuting.
    ///
    /// This enables the gate-commutation transformation the paper lists
    /// as further research (§7: "using gate commutation … to transform an
    /// instance of the circuit placement problem into a possibly more
    /// favorable one").
    pub fn commutes_with(&self, other: &Gate) -> bool {
        let (a1, b1) = self.qubits();
        let (a2, b2) = other.qubits();
        let overlap = a1 == a2 || Some(a1) == b2 || b1 == Some(a2) || (b1.is_some() && b1 == b2);
        if !overlap {
            return true;
        }
        self.is_diagonal() && other.is_diagonal()
    }

    /// Returns a copy of the gate with its qubits remapped through `f`.
    ///
    /// # Panics
    ///
    /// Panics if `f` maps the two qubits of a two-qubit gate to the same
    /// qubit.
    pub fn map_qubits(&self, mut f: impl FnMut(Qubit) -> Qubit) -> Gate {
        let mut g = self.clone();
        match &mut g {
            Gate::Rx { qubit, .. }
            | Gate::Ry { qubit, .. }
            | Gate::Rz { qubit, .. }
            | Gate::Custom1 { qubit, .. } => *qubit = f(*qubit),
            Gate::Zz { a, b, .. } | Gate::Swap { a, b } | Gate::Custom2 { a, b, .. } => {
                *a = f(*a);
                *b = f(*b);
                assert!(a != b, "map_qubits collapsed a two-qubit gate");
            }
        }
        g
    }
}

impl fmt::Display for Gate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Gate::Rx { qubit, angle } => write!(f, "Rx({angle}) {qubit}"),
            Gate::Ry { qubit, angle } => write!(f, "Ry({angle}) {qubit}"),
            Gate::Rz { qubit, angle } => write!(f, "Rz({angle}) {qubit}"),
            Gate::Zz { a, b, angle } => write!(f, "ZZ({angle}) {a} {b}"),
            Gate::Swap { a, b } => write!(f, "SWAP {a} {b}"),
            Gate::Custom1 {
                qubit,
                weight,
                name,
            } => write!(f, "{name}[T={weight}] {qubit}"),
            Gate::Custom2 { a, b, weight, name } => write!(f, "{name}[T={weight}] {a} {b}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(i: usize) -> Qubit {
        Qubit::new(i)
    }

    #[test]
    fn time_weights_follow_footnote_3() {
        assert_eq!(Gate::ry(q(0), 90.0).time_weight(), 1.0);
        assert_eq!(Gate::rx(q(0), 180.0).time_weight(), 2.0);
        assert_eq!(Gate::rx(q(0), -90.0).time_weight(), 1.0);
        assert_eq!(Gate::rz(q(0), 90.0).time_weight(), 0.0);
        assert_eq!(Gate::zz(q(0), q(1), 90.0).time_weight(), 1.0);
        assert_eq!(Gate::zz(q(0), q(1), 45.0).time_weight(), 0.5);
        assert_eq!(Gate::swap(q(0), q(1)).time_weight(), 3.0);
        assert_eq!(Gate::custom2(q(0), q(1), 3.0, "u").time_weight(), 3.0);
    }

    #[test]
    fn qubit_accessors() {
        let g = Gate::zz(q(2), q(5), 90.0);
        assert_eq!(g.qubits(), (q(2), Some(q(5))));
        assert_eq!(g.coupling(), Some((q(2), q(5))));
        assert!(g.is_two_qubit());
        assert_eq!(g.max_qubit_index(), 5);

        let g = Gate::ry(q(3), 90.0);
        assert_eq!(g.qubits(), (q(3), None));
        assert_eq!(g.coupling(), None);
        assert!(!g.is_two_qubit());
    }

    #[test]
    fn free_gates() {
        assert!(Gate::rz(q(0), 37.5).is_free());
        assert!(!Gate::ry(q(0), 1.0).is_free());
        assert!(Gate::custom1(q(0), 0.0, "tag").is_free());
    }

    #[test]
    fn map_qubits_relabels() {
        let g = Gate::zz(q(0), q(1), 90.0);
        let h = g.map_qubits(|x| Qubit::new(x.index() + 10));
        assert_eq!(h.coupling(), Some((q(10), q(11))));
    }

    #[test]
    #[should_panic(expected = "distinct qubits")]
    fn zz_rejects_same_qubit() {
        let _ = Gate::zz(q(1), q(1), 90.0);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn rx_rejects_nan_angle() {
        let _ = Gate::rx(q(0), f64::NAN);
    }

    #[test]
    #[should_panic(expected = "collapsed")]
    fn map_qubits_detects_collapse() {
        let g = Gate::swap(q(0), q(1));
        let _ = g.map_qubits(|_| q(3));
    }

    #[test]
    fn commutation_rules() {
        // Disjoint supports always commute.
        assert!(Gate::ry(q(0), 90.0).commutes_with(&Gate::rx(q(1), 90.0)));
        assert!(Gate::zz(q(0), q(1), 90.0).commutes_with(&Gate::zz(q(2), q(3), 90.0)));
        assert!(Gate::zz(q(0), q(1), 90.0).commutes_with(&Gate::ry(q(2), 90.0)));
        // Diagonal gates commute even when overlapping.
        assert!(Gate::zz(q(0), q(1), 90.0).commutes_with(&Gate::zz(q(1), q(2), 90.0)));
        assert!(Gate::rz(q(0), 45.0).commutes_with(&Gate::zz(q(0), q(1), 90.0)));
        assert!(Gate::rz(q(0), 45.0).commutes_with(&Gate::rz(q(0), 90.0)));
        // Overlapping non-diagonal gates are conservatively non-commuting.
        assert!(!Gate::ry(q(0), 90.0).commutes_with(&Gate::zz(q(0), q(1), 90.0)));
        assert!(!Gate::rx(q(1), 90.0).commutes_with(&Gate::ry(q(1), 90.0)));
        assert!(!Gate::swap(q(0), q(1)).commutes_with(&Gate::zz(q(1), q(2), 90.0)));
        // Symmetry.
        assert!(Gate::zz(q(0), q(1), 90.0).commutes_with(&Gate::rz(q(1), 30.0)));
        assert!(Gate::rz(q(1), 30.0).commutes_with(&Gate::zz(q(0), q(1), 90.0)));
    }

    #[test]
    fn diagonal_classification() {
        assert!(Gate::rz(q(0), 10.0).is_diagonal());
        assert!(Gate::zz(q(0), q(1), 10.0).is_diagonal());
        assert!(!Gate::ry(q(0), 10.0).is_diagonal());
        assert!(!Gate::swap(q(0), q(1)).is_diagonal());
        assert!(!Gate::custom2(q(0), q(1), 3.0, "u").is_diagonal());
    }

    #[test]
    fn display_forms() {
        assert_eq!(Gate::ry(q(0), 90.0).to_string(), "Ry(90) q0");
        assert_eq!(Gate::zz(q(0), q(1), -90.0).to_string(), "ZZ(-90) q0 q1");
        assert_eq!(Gate::swap(q(2), q(3)).to_string(), "SWAP q2 q3");
    }
}
