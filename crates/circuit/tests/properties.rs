//! Property-based tests for the circuit IR.

use proptest::prelude::*;

use qcp_circuit::{library, text, Circuit, Gate, Qubit};

/// Strategy producing an arbitrary gate on `n` qubits.
fn arb_gate(n: usize) -> impl Strategy<Value = Gate> {
    let angle = -360.0f64..360.0;
    let q = 0..n;
    prop_oneof![
        (q.clone(), angle.clone()).prop_map(|(i, a)| Gate::rx(Qubit::new(i), a)),
        (q.clone(), angle.clone()).prop_map(|(i, a)| Gate::ry(Qubit::new(i), a)),
        (q.clone(), angle.clone()).prop_map(|(i, a)| Gate::rz(Qubit::new(i), a)),
        (q.clone(), q.clone(), angle).prop_filter_map("distinct", |(i, j, a)| {
            (i != j).then(|| Gate::zz(Qubit::new(i), Qubit::new(j), a))
        }),
        (q.clone(), q.clone()).prop_filter_map("distinct", |(i, j)| {
            (i != j).then(|| Gate::swap(Qubit::new(i), Qubit::new(j)))
        }),
        (q.clone(), 0.0f64..5.0).prop_map(|(i, w)| Gate::custom1(Qubit::new(i), w, "u")),
        (q.clone(), q, 0.0f64..5.0).prop_filter_map("distinct", |(i, j, w)| {
            (i != j).then(|| Gate::custom2(Qubit::new(i), Qubit::new(j), w, "g"))
        }),
    ]
}

fn arb_circuit() -> impl Strategy<Value = Circuit> {
    (2usize..8).prop_flat_map(|n| {
        prop::collection::vec(arb_gate(n), 0..40)
            .prop_map(move |gates| Circuit::from_gates(n, gates).expect("gates fit width"))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn levels_always_disjoint(c in arb_circuit()) {
        for (li, level) in c.levels().iter().enumerate() {
            let mut used = vec![false; c.qubit_count()];
            for g in level {
                let (a, b) = g.qubits();
                for q in [Some(a), b].into_iter().flatten() {
                    prop_assert!(!used[q.index()], "level {li} reuses {q}");
                    used[q.index()] = true;
                }
            }
        }
    }

    #[test]
    fn levelization_preserves_per_qubit_order(c in arb_circuit()) {
        // Rebuilding from the flattened gate list must keep each qubit's
        // gate subsequence unchanged (levelization only commutes gates on
        // disjoint qubits).
        let gates: Vec<Gate> = c.gates().cloned().collect();
        let rebuilt = Circuit::from_gates(c.qubit_count(), gates.clone()).unwrap();
        for q in 0..c.qubit_count() {
            let seq = |cc: &Circuit| -> Vec<Gate> {
                cc.gates()
                    .filter(|g| {
                        let (a, b) = g.qubits();
                        a.index() == q || b.is_some_and(|b| b.index() == q)
                    })
                    .cloned()
                    .collect()
            };
            prop_assert_eq!(seq(&c), seq(&rebuilt));
        }
    }

    #[test]
    fn depth_never_exceeds_gate_count(c in arb_circuit()) {
        prop_assert!(c.depth() <= c.gate_count());
    }

    #[test]
    fn text_roundtrip(c in arb_circuit()) {
        let s = text::to_text(&c);
        let back = text::parse(&s).unwrap();
        prop_assert_eq!(back, c);
    }

    #[test]
    fn interaction_graph_edges_match_couplings(c in arb_circuit()) {
        let g = c.interaction_graph();
        for gate in c.gates() {
            if let Some((a, b)) = gate.coupling() {
                prop_assert!(g.has_edge(
                    qcp_graph::NodeId::new(a.index()),
                    qcp_graph::NodeId::new(b.index())
                ));
            }
        }
        // And no spurious edges.
        let mut pairs = std::collections::HashSet::new();
        for gate in c.gates() {
            if let Some((a, b)) = gate.coupling() {
                let (x, y) = (a.index().min(b.index()), a.index().max(b.index()));
                pairs.insert((x, y));
            }
        }
        prop_assert_eq!(g.edge_count(), pairs.len());
    }

    #[test]
    fn time_weights_nonnegative(c in arb_circuit()) {
        for g in c.gates() {
            prop_assert!(g.time_weight() >= 0.0);
        }
    }

    #[test]
    fn staged_circuits_have_expected_shape(n in 2usize..12, seed in any::<u64>()) {
        let s = library::random::staged(n, seed);
        let expect_stages = (n as f64).log2().round().max(1.0) as usize;
        prop_assert_eq!(s.stage_count(), expect_stages);
        prop_assert_eq!(s.circuit.gate_count(), expect_stages * s.gates_per_stage);
        // Permutations are bijections.
        for p in &s.permutations {
            let mut seen = vec![false; n];
            for &x in p {
                prop_assert!(!seen[x]);
                seen[x] = true;
            }
        }
    }

    #[test]
    fn qft_interaction_band(n in 2usize..10) {
        let band = (n as f64).log2().ceil() as usize;
        let c = library::aqft(n);
        for (a, b, _) in c.interaction_graph().edges() {
            prop_assert!(a.index().abs_diff(b.index()) <= band.max(1));
        }
    }
}
