#![allow(clippy::unwrap_used, clippy::expect_used)]
//! Property-based tests for the circuit IR.

use proptest::prelude::*;

use qcp_circuit::{library, qasm, text, Circuit, Gate, Qubit};

/// Strategy producing an arbitrary gate on `n` qubits.
fn arb_gate(n: usize) -> impl Strategy<Value = Gate> {
    let angle = -360.0f64..360.0;
    let q = 0..n;
    prop_oneof![
        (q.clone(), angle.clone()).prop_map(|(i, a)| Gate::rx(Qubit::new(i), a)),
        (q.clone(), angle.clone()).prop_map(|(i, a)| Gate::ry(Qubit::new(i), a)),
        (q.clone(), angle.clone()).prop_map(|(i, a)| Gate::rz(Qubit::new(i), a)),
        (q.clone(), q.clone(), angle).prop_filter_map("distinct", |(i, j, a)| {
            (i != j).then(|| Gate::zz(Qubit::new(i), Qubit::new(j), a))
        }),
        (q.clone(), q.clone()).prop_filter_map("distinct", |(i, j)| {
            (i != j).then(|| Gate::swap(Qubit::new(i), Qubit::new(j)))
        }),
        (q.clone(), 0.0f64..5.0).prop_map(|(i, w)| Gate::custom1(Qubit::new(i), w, "u")),
        (q.clone(), q, 0.0f64..5.0).prop_filter_map("distinct", |(i, j, w)| {
            (i != j).then(|| Gate::custom2(Qubit::new(i), Qubit::new(j), w, "g"))
        }),
    ]
}

fn arb_circuit() -> impl Strategy<Value = Circuit> {
    (2usize..8).prop_flat_map(|n| {
        prop::collection::vec(arb_gate(n), 0..40)
            .prop_map(move |gates| Circuit::from_gates(n, gates).expect("gates fit width"))
    })
}

/// A valid program whose prefixes and mutations feed the structured
/// no-panic fuzz below (ASCII, so byte truncation is char-safe).
const QASM_SEED: &str = "OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[4];\ncreg c[4];\n\
    gate foo(a) x,y { cx x,y; rz(a/2) x; barrier x,y; }\n\
    opaque qcp_c1_pulse(w) a;\n\
    h q[0];\ncx q[0], q[1];\nfoo(pi/2) q[2], q[3];\nqcp_c1_pulse(1.5) q[1];\n\
    barrier q;\nmeasure q -> c;\nreset q[0];\nif (c == 3) x q[2];\n";

/// Grammar fragments for the mutated tail.
const QASM_TOKENS: &[&str] = &[
    "qreg ",
    "creg ",
    "q",
    "[",
    "]",
    "[2]",
    ";",
    "(",
    ")",
    "{",
    "}",
    ",",
    " ",
    "\n",
    "pi",
    "0.5",
    "2",
    "-",
    "+",
    "*",
    "/",
    "^",
    "9999999999999",
    "1e400",
    "gate ",
    "opaque ",
    "barrier ",
    "measure ",
    "reset ",
    "if ",
    "==",
    "->",
    "cx ",
    "u3",
    "foo",
    "include ",
    "\"qelib1.inc\"",
    "\"",
    "e",
    "_",
    "qubits ",
    "zz ",
    "swap ",
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn levels_always_disjoint(c in arb_circuit()) {
        for (li, level) in c.levels().iter().enumerate() {
            let mut used = vec![false; c.qubit_count()];
            for g in level {
                let (a, b) = g.qubits();
                for q in [Some(a), b].into_iter().flatten() {
                    prop_assert!(!used[q.index()], "level {li} reuses {q}");
                    used[q.index()] = true;
                }
            }
        }
    }

    #[test]
    fn levelization_preserves_per_qubit_order(c in arb_circuit()) {
        // Rebuilding from the flattened gate list must keep each qubit's
        // gate subsequence unchanged (levelization only commutes gates on
        // disjoint qubits).
        let gates: Vec<Gate> = c.gates().cloned().collect();
        let rebuilt = Circuit::from_gates(c.qubit_count(), gates.clone()).unwrap();
        for q in 0..c.qubit_count() {
            let seq = |cc: &Circuit| -> Vec<Gate> {
                cc.gates()
                    .filter(|g| {
                        let (a, b) = g.qubits();
                        a.index() == q || b.is_some_and(|b| b.index() == q)
                    })
                    .cloned()
                    .collect()
            };
            prop_assert_eq!(seq(&c), seq(&rebuilt));
        }
    }

    #[test]
    fn depth_never_exceeds_gate_count(c in arb_circuit()) {
        prop_assert!(c.depth() <= c.gate_count());
    }

    #[test]
    fn text_roundtrip(c in arb_circuit()) {
        let s = text::to_text(&c);
        let back = text::parse(&s).unwrap();
        prop_assert_eq!(back, c);
    }

    #[test]
    fn qasm_roundtrip(c in arb_circuit()) {
        // Exact: angles survive the degree→radian→degree detour through
        // the `*pi/180` emission form, custom gates through the opaque
        // convention, and ASAP-built level structures re-levelize
        // identically.
        let s = c.to_qasm();
        let back = qasm::parse(&s).unwrap();
        prop_assert_eq!(&back.circuit, &c, "qasm source:\n{}", s);
        prop_assert!(back.warnings.is_empty());
    }

    #[test]
    fn parsers_never_panic_on_arbitrary_bytes(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        let input = String::from_utf8_lossy(&bytes).into_owned();
        // Ok or Err both fine — reaching the next line is the property.
        let _ = text::parse(&input);
        let _ = qasm::parse(&input);
    }

    #[test]
    fn parsers_never_panic_on_mutated_programs(
        cut in 0usize..QASM_SEED.len(),
        picks in prop::collection::vec(0usize..QASM_TOKENS.len(), 0..24),
    ) {
        // Structured fuzz: truncate a valid program mid-token and graft a
        // random tail of grammar fragments, driving the parser through
        // states random bytes rarely reach.
        let mut src = QASM_SEED[..cut].to_string();
        for p in picks {
            src.push_str(QASM_TOKENS[p]);
        }
        let _ = qasm::parse(&src);
        let _ = text::parse(&src);
    }

    #[test]
    fn interaction_graph_edges_match_couplings(c in arb_circuit()) {
        let g = c.interaction_graph();
        for gate in c.gates() {
            if let Some((a, b)) = gate.coupling() {
                prop_assert!(g.has_edge(
                    qcp_graph::NodeId::new(a.index()),
                    qcp_graph::NodeId::new(b.index())
                ));
            }
        }
        // And no spurious edges.
        let mut pairs = std::collections::HashSet::new();
        for gate in c.gates() {
            if let Some((a, b)) = gate.coupling() {
                let (x, y) = (a.index().min(b.index()), a.index().max(b.index()));
                pairs.insert((x, y));
            }
        }
        prop_assert_eq!(g.edge_count(), pairs.len());
    }

    #[test]
    fn time_weights_nonnegative(c in arb_circuit()) {
        for g in c.gates() {
            prop_assert!(g.time_weight() >= 0.0);
        }
    }

    #[test]
    fn staged_circuits_have_expected_shape(n in 2usize..12, seed in any::<u64>()) {
        let s = library::random::staged(n, seed);
        let expect_stages = (n as f64).log2().round().max(1.0) as usize;
        prop_assert_eq!(s.stage_count(), expect_stages);
        prop_assert_eq!(s.circuit.gate_count(), expect_stages * s.gates_per_stage);
        // Permutations are bijections.
        for p in &s.permutations {
            let mut seen = vec![false; n];
            for &x in p {
                prop_assert!(!seen[x]);
                seen[x] = true;
            }
        }
    }

    #[test]
    fn qft_interaction_band(n in 2usize..10) {
        let band = (n as f64).log2().ceil() as usize;
        let c = library::aqft(n);
        for (a, b, _) in c.interaction_graph().edges() {
            prop_assert!(a.index().abs_diff(b.index()) <= band.max(1));
        }
    }
}

#[test]
fn library_circuits_roundtrip_both_formats() {
    for name in library::NAMES {
        let c = library::named(name).unwrap();
        let text_back =
            text::parse(&text::to_text(&c)).unwrap_or_else(|e| panic!("{name} text: {e}"));
        assert_eq!(text_back, c, "{name} must round-trip through text");
        let qasm_back = qasm::parse(&c.to_qasm()).unwrap_or_else(|e| panic!("{name} qasm: {e}"));
        assert_eq!(qasm_back.circuit, c, "{name} must round-trip through qasm");
        assert!(qasm_back.warnings.is_empty(), "{name} warns unexpectedly");
    }
}
