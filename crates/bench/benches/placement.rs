#![allow(clippy::unwrap_used, clippy::expect_used)]
//! Criterion benches for the placement pipeline — one group per paper
//! table.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use qcp_circuit::library;
use qcp_env::{molecules, Threshold};
use qcp_place::baselines::exhaustive_placement;
use qcp_place::cost::CostModel;
use qcp_place::{Placer, PlacerConfig};

/// Table 1/2 workloads: the experimentally executed circuits.
fn bench_tables_1_2(c: &mut Criterion) {
    let mut group = c.benchmark_group("tables/1-2");

    let acetyl = molecules::acetyl_chloride();
    let qec3 = library::qec3_encoder();
    group.bench_function("exhaustive/qec3-acetyl", |b| {
        b.iter(|| exhaustive_placement(&qec3, &acetyl, &CostModel::overlapped(), 1e4).unwrap());
    });
    group.bench_function("placer/qec3-acetyl", |b| {
        let placer = Placer::new(&acetyl, PlacerConfig::with_threshold(Threshold::new(100.0)));
        b.iter(|| placer.place(&qec3).unwrap());
    });

    let crotonic = molecules::trans_crotonic_acid();
    let qec5 = library::qec5_benchmark();
    group.bench_function("placer/qec5-crotonic", |b| {
        let t = crotonic.connectivity_threshold().unwrap();
        let placer = Placer::new(&crotonic, PlacerConfig::with_threshold(t));
        b.iter(|| placer.place(&qec5).unwrap());
    });

    let histidine = molecules::histidine();
    let cat = library::pseudo_cat(10);
    group.bench_function("placer/cat10-histidine", |b| {
        let t = histidine.connectivity_threshold().unwrap();
        let placer = Placer::new(
            &histidine,
            PlacerConfig::with_threshold(t)
                .candidates(50)
                .lookahead(false),
        );
        b.iter(|| placer.place(&cat).unwrap());
    });
    group.finish();
}

/// Table 3 workloads: the threshold sweep (one representative cell per
/// threshold for qft6 on trans-crotonic acid).
fn bench_table_3(c: &mut Criterion) {
    let mut group = c.benchmark_group("tables/3");
    let env = molecules::trans_crotonic_acid();
    let qft6 = library::qft(6);
    for t in [100.0, 500.0, 10000.0] {
        group.bench_with_input(BenchmarkId::new("qft6-crotonic", t as u64), &t, |b, &t| {
            let placer = Placer::new(
                &env,
                PlacerConfig::with_threshold(Threshold::new(t)).candidates(100),
            );
            b.iter(|| placer.place(&qft6).unwrap());
        });
    }
    let histidine = molecules::histidine();
    let phaseest = library::phase_estimation();
    group.bench_function("phaseest-histidine-500", |b| {
        let placer = Placer::new(
            &histidine,
            PlacerConfig::with_threshold(Threshold::new(500.0)).candidates(100),
        );
        b.iter(|| placer.place(&phaseest).unwrap());
    });
    group.finish();
}

/// Table 4 workloads: scalability over LNN chains (the paper's "software
/// runtime" column measured properly).
fn bench_table_4(c: &mut Criterion) {
    let mut group = c.benchmark_group("tables/4");
    group.sample_size(10);
    for n in [8usize, 16, 32, 64, 128] {
        let staged = library::random::staged(n, 2007);
        let env = molecules::lnn_chain_1khz(n);
        group.bench_with_input(BenchmarkId::new("staged-chain", n), &n, |b, _| {
            let placer = Placer::new(
                &env,
                PlacerConfig::with_threshold(Threshold::new(11.0))
                    .candidates(4)
                    .lookahead(false)
                    .fine_tuning(0),
            );
            b.iter(|| placer.place(&staged.circuit).unwrap());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_tables_1_2, bench_table_3, bench_table_4);
criterion_main!(benches);
