#![allow(clippy::unwrap_used, clippy::expect_used)]
//! Criterion benches for the VF2 monomorphism search — the paper's stated
//! bottleneck ("the bottleneck of the entire implementation is the
//! efficiency of computing a solution to the subgraph monomorphism
//! problem", §5.3).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

use qcp_env::molecules;
use qcp_graph::generate;
use qcp_graph::vf2::MonomorphismFinder;

fn bench_paths_into_chains(c: &mut Criterion) {
    let mut group = c.benchmark_group("vf2/path-into-chain");
    for n in [16usize, 64, 256, 1024] {
        let pattern = generate::chain(n / 2);
        let target = generate::chain(n);
        group.bench_with_input(BenchmarkId::new("exists", n), &n, |b, _| {
            b.iter(|| MonomorphismFinder::new(&pattern, &target).exists());
        });
    }
    group.finish();
}

fn bench_interactions_into_molecules(c: &mut Criterion) {
    let mut group = c.benchmark_group("vf2/molecules");
    // The cat-state chain into the histidine bond graph (Table 2 row 3).
    let histidine = molecules::histidine();
    let pattern = generate::chain(10);
    let target = histidine.bond_graph();
    group.bench_function("cat10-into-histidine", |b| {
        b.iter(|| {
            MonomorphismFinder::new(&pattern, &target)
                .limit(100)
                .find_all()
        });
    });
    // The qec5 caterpillar into the crotonic bond graph (Table 2 row 2).
    let crotonic = molecules::trans_crotonic_acid();
    let pattern = qcp_circuit::library::qec5_benchmark().interaction_graph();
    let target2 = crotonic.bond_graph();
    group.bench_function("qec5-into-crotonic", |b| {
        b.iter(|| {
            MonomorphismFinder::new(&pattern, &target2)
                .limit(100)
                .find_all()
        });
    });
    group.finish();
}

fn bench_grid_ring_targets(c: &mut Criterion) {
    // The cases tracked in BENCH_PLACE.json (see the `perf` binary): the
    // bitset/CSR rework is required to keep these ≥2× faster than the
    // pre-CSR implementation.
    let mut group = c.benchmark_group("vf2/grid-ring");
    let grid66 = generate::grid(6, 6);
    let cases = [
        ("chain8-into-grid6x6", generate::chain(8), &grid66),
        ("ring8-into-grid6x6", generate::ring(8), &grid66),
    ];
    for (name, pattern, target) in &cases {
        group.bench_function(*name, |b| {
            b.iter(|| {
                MonomorphismFinder::new(pattern, target)
                    .limit(100)
                    .find_all()
            });
        });
    }
    let ring24 = generate::ring(24);
    let chain12 = generate::chain(12);
    group.bench_function("chain12-into-ring24", |b| {
        b.iter(|| {
            MonomorphismFinder::new(&chain12, &ring24)
                .limit(100)
                .find_all()
        });
    });
    group.finish();
}

fn bench_enumeration_caps(c: &mut Criterion) {
    let mut group = c.benchmark_group("vf2/enumeration");
    let mut rng = StdRng::seed_from_u64(3);
    let pattern = generate::random_tree(6, &mut rng);
    let target = generate::grid(5, 5);
    for k in [1usize, 10, 100, 1000] {
        group.bench_with_input(BenchmarkId::new("k", k), &k, |b, &k| {
            b.iter(|| {
                MonomorphismFinder::new(&pattern, &target)
                    .limit(k)
                    .find_all()
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_paths_into_chains,
    bench_interactions_into_molecules,
    bench_grid_ring_targets,
    bench_enumeration_caps
);
criterion_main!(benches);
