#![allow(clippy::unwrap_used, clippy::expect_used)]
//! Criterion benches for the SWAP router (§5.2): depth/throughput of the
//! recursive-bisection router vs the sequential baseline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

use qcp_env::molecules;
use qcp_graph::generate;
use qcp_place::router::{route_permutation, route_sequential, RouterConfig};

fn targets_for(n: usize, seed: u64) -> Vec<Option<usize>> {
    let mut rng = StdRng::seed_from_u64(seed);
    generate::random_permutation(n, &mut rng)
        .into_iter()
        .map(Some)
        .collect()
}

fn bench_chains(c: &mut Criterion) {
    let mut group = c.benchmark_group("router/chain");
    for n in [8usize, 32, 128, 512] {
        let g = generate::chain(n);
        let t = targets_for(n, 42);
        group.bench_with_input(BenchmarkId::new("bisection", n), &n, |b, _| {
            b.iter(|| route_permutation(&g, &t, &RouterConfig::default()).unwrap());
        });
        if n <= 128 {
            group.bench_with_input(BenchmarkId::new("sequential", n), &n, |b, _| {
                b.iter(|| route_sequential(&g, &t).unwrap());
            });
        }
    }
    group.finish();
}

fn bench_molecule_graphs(c: &mut Criterion) {
    let mut group = c.benchmark_group("router/molecules");
    let cases = [
        ("crotonic", molecules::trans_crotonic_acid().bond_graph()),
        ("histidine", molecules::histidine().bond_graph()),
    ];
    for (name, g) in cases {
        let t = targets_for(g.node_count(), 7);
        group.bench_function(BenchmarkId::new("bisection", name), |b| {
            b.iter(|| route_permutation(&g, &t, &RouterConfig::default()).unwrap());
        });
    }
    group.finish();
}

fn bench_grids_and_trees(c: &mut Criterion) {
    let mut group = c.benchmark_group("router/topologies");
    let mut rng = StdRng::seed_from_u64(11);
    let cases = vec![
        ("grid-6x6".to_string(), generate::grid(6, 6)),
        (
            "tree-36".to_string(),
            generate::bounded_degree_tree(36, 3, &mut rng),
        ),
        ("ring-36".to_string(), generate::ring(36)),
    ];
    for (name, g) in cases {
        let t = targets_for(g.node_count(), 13);
        group.bench_function(BenchmarkId::new("bisection", name), |b| {
            b.iter(|| route_permutation(&g, &t, &RouterConfig::default()).unwrap());
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_chains,
    bench_molecule_graphs,
    bench_grids_and_trees
);
criterion_main!(benches);
