//! The paper's experiments (§3 Example 3, §6 Tables 2–4, Figures 1–3, the
//! §4 reduction, and the design-choice ablations).

use std::time::Instant;

use qcp_circuit::library::{self, SteaneVariant};
use qcp_circuit::{Circuit, Time};
use qcp_env::{molecules, Environment, Threshold};
use qcp_graph::dot::{to_dot, DotOptions};
use qcp_place::baselines::{place_whole, search_space_size};
use qcp_place::cost::{CostEngine, CostModel, Schedule};
use qcp_place::router::{route_permutation, route_sequential, RouterConfig};
use qcp_place::{PlaceError, Placement, Placer, PlacerConfig};

use crate::table::{fmt_seconds, Table};

/// The threshold grid of Table 3.
pub const THRESHOLDS: [f64; 6] = [50.0, 100.0, 200.0, 500.0, 1000.0, 10000.0];

// ---------------------------------------------------------------------
// Table 1 / Example 3
// ---------------------------------------------------------------------

/// One snapshot of the `time[]` array after a costed gate (a column of
/// Table 1).
#[derive(Clone, Debug)]
pub struct Table1Column {
    /// Display name of the costed gate.
    pub gate: String,
    /// Busy times of qubits (a, b, c) in delay units.
    pub abc: (f64, f64, f64),
}

/// Result of the Table 1 experiment.
#[derive(Clone, Debug)]
pub struct Table1 {
    /// The runtime trace of the paper's example mapping a→M, b→C2, c→C1.
    pub trace: Vec<Table1Column>,
    /// Runtime of the example mapping (770 units in the paper).
    pub example_runtime: Time,
    /// Optimal runtime over all 6 assignments (136 units).
    pub optimal_runtime: Time,
    /// The optimal assignment as nucleus names for (a, b, c).
    pub optimal_assignment: [String; 3],
}

/// Reproduces Table 1: the runtime dynamic program trace of the Fig. 2
/// encoder on acetyl chloride under the mapping `a→M, b→C2, c→C1`, plus
/// the exhaustive optimum.
pub fn table1() -> Table1 {
    let env = molecules::acetyl_chloride();
    let circuit = library::qec3_encoder();
    let model = CostModel::overlapped();
    // a→M(0), b→C2(2), c→C1(1).
    let example = Placement::new(
        vec![
            qcp_env::PhysicalQubit::new(0),
            qcp_env::PhysicalQubit::new(2),
            qcp_env::PhysicalQubit::new(1),
        ],
        3,
    )
    .expect("valid mapping");

    let mut engine = CostEngine::new(&env, model);
    let mut trace = Vec::new();
    let schedule = Schedule::from_placed_circuit(&circuit, &example);
    let mut gate_names: Vec<String> = circuit
        .gates()
        .filter(|g| !g.is_free())
        .map(ToString::to_string)
        .collect();
    gate_names.reverse();
    for level in schedule.levels() {
        engine.apply_level(level);
        if level.iter().any(|g| g.weight > 0.0) {
            let t = engine.times();
            trace.push(Table1Column {
                gate: gate_names.pop().unwrap_or_default(),
                abc: (t[0], t[2], t[1]),
            });
        }
    }
    let example_runtime = engine.makespan();

    let (best_placement, optimal_runtime) =
        qcp_place::baselines::exhaustive_placement(&circuit, &env, &model, 1e4)
            .expect("6 assignments");
    let names = env.nucleus_names();
    let optimal_assignment = [
        names[best_placement.as_slice()[0].index()].clone(),
        names[best_placement.as_slice()[1].index()].clone(),
        names[best_placement.as_slice()[2].index()].clone(),
    ];
    Table1 {
        trace,
        example_runtime,
        optimal_runtime,
        optimal_assignment,
    }
}

/// Renders [`table1`] in the paper's layout.
pub fn table1_text() -> String {
    let t1 = table1();
    let mut t = Table::new(
        ["time[]"]
            .into_iter()
            .chain(t1.trace.iter().map(|c| c.gate.as_str())),
    );
    let row = |label: &str, pick: fn(&(f64, f64, f64)) -> f64, t1: &Table1| -> Vec<String> {
        [label.to_string()]
            .into_iter()
            .chain(t1.trace.iter().map(|c| format!("{}", pick(&c.abc))))
            .collect::<Vec<_>>()
    };
    t.row(row("a", |x| x.0, &t1));
    t.row(row("b", |x| x.1, &t1));
    t.row(row("c", |x| x.2, &t1));
    format!(
        "Table 1: cost of {{a→M, b→C2, c→C1}} mapping\n{}\nruntime of example mapping: {} ({} units)\noptimal mapping a→{}, b→{}, c→{}: {} ({} units)\n",
        t.render(),
        fmt_seconds(t1.example_runtime),
        t1.example_runtime.units(),
        t1.optimal_assignment[0],
        t1.optimal_assignment[1],
        t1.optimal_assignment[2],
        fmt_seconds(t1.optimal_runtime),
        t1.optimal_runtime.units(),
    )
}

// ---------------------------------------------------------------------
// Table 2
// ---------------------------------------------------------------------

/// One row of Table 2.
#[derive(Clone, Debug)]
pub struct Table2Row {
    /// Circuit description.
    pub circuit: String,
    /// Gate count.
    pub gates: usize,
    /// Circuit width.
    pub qubits: usize,
    /// Environment name.
    pub environment: String,
    /// Environment size.
    pub env_qubits: usize,
    /// Estimated runtime of the placed circuit.
    pub runtime: Time,
    /// Number of subcircuits the tool chose (1 in every paper row).
    pub subcircuits: usize,
    /// `m!/(m-n)!`.
    pub search_space: f64,
}

/// Reproduces Table 2: re-places the three experimentally executed
/// circuits and reports runtime and search-space size.
pub fn table2() -> Vec<Table2Row> {
    let cases: [(&str, Circuit, Environment); 3] = [
        (
            "error correction encoding",
            library::qec3_encoder(),
            molecules::acetyl_chloride(),
        ),
        (
            "5 bit error correction",
            library::qec5_benchmark(),
            molecules::trans_crotonic_acid(),
        ),
        (
            "pseudo-cat state preparation",
            library::pseudo_cat(10),
            molecules::histidine(),
        ),
    ];
    cases
        .into_iter()
        .map(|(name, circuit, env)| {
            let threshold = env
                .connectivity_threshold()
                .expect("library molecules are connected");
            let placer = Placer::new(
                &env,
                PlacerConfig::with_threshold(threshold)
                    .candidates(100)
                    .fine_tuning(3),
            );
            let outcome = placer.place(&circuit).expect("library circuits place");
            Table2Row {
                circuit: name.to_string(),
                gates: circuit.gate_count(),
                qubits: circuit.qubit_count(),
                environment: env.name().to_string(),
                env_qubits: env.qubit_count(),
                runtime: outcome.runtime,
                subcircuits: outcome.subcircuit_count(),
                search_space: search_space_size(circuit.qubit_count(), env.qubit_count()),
            }
        })
        .collect()
}

/// Renders [`table2`] in the paper's layout.
pub fn table2_text() -> String {
    let mut t = Table::new([
        "circuit",
        "# gates",
        "# qubits",
        "environment",
        "env qubits",
        "est. runtime",
        "workspaces",
        "search space",
    ]);
    for r in table2() {
        t.row([
            r.circuit.clone(),
            r.gates.to_string(),
            r.qubits.to_string(),
            r.environment.clone(),
            r.env_qubits.to_string(),
            fmt_seconds(r.runtime),
            r.subcircuits.to_string(),
            format!("{}", r.search_space),
        ]);
    }
    format!(
        "Table 2: mapping experimentally constructed circuits\n{}",
        t.render()
    )
}

// ---------------------------------------------------------------------
// Table 3
// ---------------------------------------------------------------------

/// One cell of Table 3: runtime and subcircuit count, or N/A.
#[derive(Clone, Debug)]
pub enum Table3Cell {
    /// Successful placement.
    Placed {
        /// Total runtime.
        runtime: Time,
        /// Number of subcircuits.
        subcircuits: usize,
    },
    /// The threshold disallows all interactions.
    NotAvailable,
}

impl Table3Cell {
    /// Paper-style rendering: `.2237 sec (5)` or `N/A`.
    pub fn render(&self) -> String {
        match self {
            Table3Cell::Placed {
                runtime,
                subcircuits,
            } => {
                format!("{} ({subcircuits})", fmt_seconds(*runtime))
            }
            Table3Cell::NotAvailable => "N/A".to_string(),
        }
    }
}

/// One row of Table 3: a circuit on one molecule across the threshold grid.
#[derive(Clone, Debug)]
pub struct Table3Row {
    /// Environment name.
    pub environment: String,
    /// Circuit name.
    pub circuit: String,
    /// One cell per threshold in [`THRESHOLDS`].
    pub cells: Vec<Table3Cell>,
    /// The whole-circuit (no SWAPs) optimum — the paper's last column.
    pub whole: Option<Time>,
}

/// The (molecule, circuit) pairs of Table 3, in paper order.
pub fn table3_cases() -> Vec<(Environment, &'static str)> {
    vec![
        (molecules::boc_glycine_fluoride(), "phaseest"),
        (molecules::pentafluoro_iron(), "phaseest"),
        (molecules::trans_crotonic_acid(), "phaseest"),
        (molecules::trans_crotonic_acid(), "qft6"),
        (molecules::histidine(), "phaseest"),
        (molecules::histidine(), "qft6"),
        (molecules::histidine(), "aqft9"),
        (molecules::histidine(), "steane-x1"),
        (molecules::histidine(), "steane-x2"),
        (molecules::histidine(), "aqft12"),
    ]
}

/// Places one circuit on one molecule at one threshold (one Table 3 cell).
pub fn table3_cell(env: &Environment, circuit: &Circuit, threshold: f64) -> Table3Cell {
    let config = PlacerConfig::with_threshold(Threshold::new(threshold))
        .candidates(100)
        .lookahead(true)
        .fine_tuning(2);
    let placer = Placer::new(env, config);
    match placer.place(circuit) {
        Ok(outcome) => Table3Cell::Placed {
            runtime: outcome.runtime,
            subcircuits: outcome.subcircuit_count(),
        },
        Err(PlaceError::NoFastInteractions) => Table3Cell::NotAvailable,
        Err(e) => panic!("unexpected placement failure: {e}"),
    }
}

/// Reproduces Table 3: the threshold sweep over molecules × circuits.
pub fn table3() -> Vec<Table3Row> {
    table3_cases()
        .into_iter()
        .map(|(env, name)| {
            let circuit = library::named(name).expect("known circuit");
            let cells = THRESHOLDS
                .iter()
                .map(|&t| table3_cell(&env, &circuit, t))
                .collect();
            let whole = place_whole(&circuit, &env, &CostModel::overlapped(), 50_000.0)
                .ok()
                .map(|(_, t)| t);
            Table3Row {
                environment: env.name().to_string(),
                circuit: name.to_string(),
                cells,
                whole,
            }
        })
        .collect()
}

/// Renders [`table3`] in the paper's layout.
pub fn table3_text() -> String {
    let mut t = Table::new(
        ["environment", "circuit"]
            .into_iter()
            .map(String::from)
            .chain(THRESHOLDS.iter().map(|t| format!("T={t}")))
            .chain(["whole (no swaps)".to_string()]),
    );
    for r in table3() {
        t.row(
            [r.environment.clone(), r.circuit.clone()]
                .into_iter()
                .chain(r.cells.iter().map(Table3Cell::render))
                .chain([r.whole.map_or_else(|| "N/A".to_string(), fmt_seconds)]),
        );
    }
    format!(
        "Table 3: placement of potentially interesting circuits for different Threshold values\n{}",
        t.render()
    )
}

// ---------------------------------------------------------------------
// Table 4
// ---------------------------------------------------------------------

/// One row of Table 4.
#[derive(Clone, Debug)]
pub struct Table4Row {
    /// Number of qubits (chain length).
    pub qubits: usize,
    /// Number of gates (`N · log²N`).
    pub gates: usize,
    /// Hidden stages used to generate the circuit.
    pub hidden_stages: usize,
    /// Subcircuits the placer produced (should equal `hidden_stages`).
    pub subcircuits: usize,
    /// Placed circuit runtime.
    pub circuit_runtime: Time,
    /// Wall-clock software runtime of the placement call.
    pub software_runtime: std::time::Duration,
}

/// Runs one Table 4 row: an `n`-qubit 1 kHz LNN chain with the standard
/// hidden-stage circuit.
pub fn table4_row(n: usize, seed: u64) -> Table4Row {
    let staged = library::random::staged(n, seed);
    let env = molecules::lnn_chain_1khz(n);
    let config = PlacerConfig::with_threshold(Threshold::new(11.0))
        .candidates(4)
        .lookahead(false)
        .fine_tuning(0);
    let placer = Placer::new(&env, config);
    let start = Instant::now();
    let outcome = placer.place(&staged.circuit).expect("chain circuits place");
    let software_runtime = start.elapsed();
    Table4Row {
        qubits: n,
        gates: staged.circuit.gate_count(),
        hidden_stages: staged.stage_count(),
        subcircuits: outcome.subcircuit_count(),
        circuit_runtime: outcome.runtime,
        software_runtime,
    }
}

/// Reproduces Table 4 for chain lengths up to `max_n` (powers of two from
/// 8), using `seed`.
pub fn table4(max_n: usize, seed: u64) -> Vec<Table4Row> {
    let mut rows = Vec::new();
    let mut n = 8usize;
    while n <= max_n {
        rows.push(table4_row(n, seed));
        n *= 2;
    }
    rows
}

/// Renders [`table4`] in the paper's layout.
pub fn table4_text(max_n: usize, seed: u64) -> String {
    let mut t = Table::new([
        "# of qubits",
        "# of gates",
        "hidden stages",
        "# of subcircuits",
        "circuit runtime",
        "software runtime",
    ]);
    for r in table4(max_n, seed) {
        t.row([
            r.qubits.to_string(),
            r.gates.to_string(),
            r.hidden_stages.to_string(),
            r.subcircuits.to_string(),
            format!("{:.3} sec", r.circuit_runtime.seconds()),
            format!("{:.2} sec", r.software_runtime.as_secs_f64()),
        ]);
    }
    format!(
        "Table 4: performance test for circuit placement over chains\n{}",
        t.render()
    )
}

// ---------------------------------------------------------------------
// Figures
// ---------------------------------------------------------------------

/// Figure 1: the acetyl chloride environment — weight table and DOT graph.
pub fn figure1_text() -> String {
    let env = molecules::acetyl_chloride();
    let names = env.nucleus_names();
    let mut t = Table::new(
        [""].into_iter()
            .map(String::from)
            .chain(names.iter().cloned()),
    );
    for (i, row_name) in names.iter().enumerate() {
        t.row(
            [row_name.clone()]
                .into_iter()
                .chain((0..env.qubit_count()).map(|j| {
                    format!(
                        "{}",
                        env.weight_units(
                            qcp_env::PhysicalQubit::new(i),
                            qcp_env::PhysicalQubit::new(j)
                        )
                    )
                })),
        );
    }
    let dot = to_dot(
        &env.bond_graph(),
        &DotOptions::named("acetyl_chloride")
            .with_labels(names)
            .with_weights(),
    );
    format!(
        "Figure 1: acetyl chloride delays (units of 1/10000 sec; diagonal = 90° pulse)\n{}\nbond graph (fastest interactions):\n{}",
        t.render(),
        dot
    )
}

/// Figure 2: the 3-qubit error-correction encoder in NMR pulses.
pub fn figure2_text() -> String {
    let c = library::qec3_encoder();
    format!(
        "Figure 2: encoding part of the 3-qubit error correcting code\n{}\ntext format:\n{}",
        c,
        qcp_circuit::text::to_text(&c)
    )
}

/// Figure 3 / Example 4: the swap schedule realizing the paper's 7-spin
/// permutation on trans-crotonic acid, with the water/air state printed
/// after every level.
pub fn figure3_text() -> String {
    let env = molecules::trans_crotonic_acid();
    let graph = env.bond_graph();
    let names = env.nucleus_names();
    // Example 4 permutation: M→C1, C1→C2, H1→C3, C2→C4, C3→H2, H2→H1, C4→M
    // over nucleus order (M, C1, H1, C2, C3, H2, C4).
    let perm = [1usize, 3, 4, 6, 5, 2, 0];
    let targets: Vec<Option<usize>> = perm.iter().map(|&d| Some(d)).collect();
    let schedule =
        route_permutation(&graph, &targets, &RouterConfig::default()).expect("bond graph routes");

    let bisection = qcp_graph::bisection::balanced_connected_bisection(&graph).expect("connected");
    let left_names: Vec<&str> = bisection
        .left
        .iter()
        .map(|v| names[v.index()].as_str())
        .collect();
    let right_names: Vec<&str> = bisection
        .right
        .iter()
        .map(|v| names[v.index()].as_str())
        .collect();

    // Water/air: a value is Water if its destination is in G2 (the
    // larger/right half), Air otherwise; follow values as they move.
    let in_right: Vec<bool> = {
        let mut f = vec![false; 7];
        for v in &bisection.right {
            f[v.index()] = true;
        }
        f
    };
    let mut holder: Vec<usize> = (0..7).collect(); // value index at vertex
    let render_state = |holder: &[usize]| -> String {
        holder
            .iter()
            .map(|&val| if in_right[perm[val]] { "Water" } else { "Air" })
            .collect::<Vec<_>>()
            .join("–")
    };
    let mut out = format!(
        "Figure 3: routing Example 4's permutation on trans-crotonic acid\ncut: G1 = {{{}}}, G2 = {{{}}} (s = {:.2})\ninitial state ({}): {}\n",
        left_names.join(", "),
        right_names.join(", "),
        bisection.ratio(),
        names.join(", "),
        render_state(&holder),
    );
    for (i, level) in schedule.levels().iter().enumerate() {
        let swaps: Vec<String> = level
            .iter()
            .map(|&(a, b)| format!("{}↔{}", names[a.index()], names[b.index()]))
            .collect();
        for &(a, b) in level {
            holder.swap(a.index(), b.index());
        }
        out.push_str(&format!(
            "step {}: swap {}  →  {}\n",
            i + 1,
            swaps.join(", "),
            render_state(&holder)
        ));
    }
    out.push_str(&format!(
        "total: {} swaps in {} parallel levels\n",
        schedule.swap_count(),
        schedule.depth()
    ));
    out
}

// ---------------------------------------------------------------------
// §4 reduction demo
// ---------------------------------------------------------------------

/// Renders the NP-completeness reduction demo: Hamiltonicity via
/// placement on a family of graphs.
pub fn reduction_text() -> String {
    use qcp_graph::generate;
    use qcp_graph::hamiltonian::{has_hamiltonian_cycle, petersen};
    use qcp_place::reduction::hamiltonian_via_placement;

    let cases: Vec<(String, qcp_graph::Graph)> = vec![
        ("C6 (ring)".into(), generate::ring(6)),
        ("P6 (chain)".into(), generate::chain(6)),
        ("K5 (complete)".into(), generate::complete(5)),
        ("star(6)".into(), generate::star(6)),
        ("grid 2x4".into(), generate::grid(2, 4)),
        ("grid 3x3".into(), generate::grid(3, 3)),
        ("Petersen".into(), petersen()),
    ];
    let mut t = Table::new([
        "graph",
        "zero-cost placement",
        "hamiltonian (direct)",
        "agree",
    ]);
    for (name, g) in cases {
        let via = hamiltonian_via_placement(&g);
        let direct = has_hamiltonian_cycle(&g);
        t.row([
            name,
            via.to_string(),
            direct.to_string(),
            (via == direct).to_string(),
        ]);
    }
    format!(
        "§4 reduction: a zero-runtime placement of the cycle circuit exists iff the graph is Hamiltonian\n{}",
        t.render()
    )
}

// ---------------------------------------------------------------------
// Ablations
// ---------------------------------------------------------------------

/// One ablation row: a placer configuration and its outcome.
#[derive(Clone, Debug)]
pub struct AblationRow {
    /// Configuration label.
    pub config: String,
    /// Workload label.
    pub workload: String,
    /// Total runtime.
    pub runtime: Time,
    /// Subcircuit count.
    pub subcircuits: usize,
    /// SWAP count.
    pub swaps: usize,
}

/// Ablates the design choices of §5: lookahead, fine tuning, and the
/// leaf–target override, on the qft6/crotonic and phaseest/histidine
/// workloads.
pub fn ablation() -> Vec<AblationRow> {
    let workloads: Vec<(&str, Environment, Circuit, f64)> = vec![
        (
            "qft6@crotonic",
            molecules::trans_crotonic_acid(),
            library::qft(6),
            200.0,
        ),
        (
            "phaseest@histidine",
            molecules::histidine(),
            library::phase_estimation(),
            500.0,
        ),
        (
            "steane-x1@histidine",
            molecules::histidine(),
            library::steane_x(SteaneVariant::CatAncilla),
            500.0,
        ),
    ];
    let configs: Vec<(&str, PlacerConfig)> = vec![
        (
            "full (lookahead+finetune+leaf)",
            PlacerConfig::default().candidates(60),
        ),
        (
            "greedy (no lookahead)",
            PlacerConfig::default().candidates(60).lookahead(false),
        ),
        (
            "no fine tuning",
            PlacerConfig::default().candidates(60).fine_tuning(0),
        ),
        (
            "k=1 (first monomorphism)",
            PlacerConfig::default().candidates(1),
        ),
        ("no leaf override", {
            let mut c = PlacerConfig::default().candidates(60);
            c.router = RouterConfig {
                leaf_override: false,
            };
            c
        }),
        (
            "commutation-aware (§7 ext.)",
            PlacerConfig::default()
                .candidates(60)
                .commutation_aware(true),
        ),
        (
            "workspace cap 12 (§7 ext.)",
            PlacerConfig::default()
                .candidates(60)
                .max_workspace_gates(12),
        ),
    ];
    let mut rows = Vec::new();
    for (wname, env, circuit, threshold) in &workloads {
        for (cname, config) in &configs {
            let mut cfg = config.clone();
            cfg.threshold = Threshold::new(*threshold);
            let placer = Placer::new(env, cfg);
            let outcome = placer.place(circuit).expect("ablation workloads place");
            rows.push(AblationRow {
                config: cname.to_string(),
                workload: wname.to_string(),
                runtime: outcome.runtime,
                subcircuits: outcome.subcircuit_count(),
                swaps: outcome.swap_count(),
            });
        }
    }
    rows
}

/// Renders [`ablation`].
pub fn ablation_text() -> String {
    let mut t = Table::new([
        "workload",
        "configuration",
        "runtime",
        "workspaces",
        "swaps",
    ]);
    for r in ablation() {
        t.row([
            r.workload.clone(),
            r.config.clone(),
            fmt_seconds(r.runtime),
            r.subcircuits.to_string(),
            r.swaps.to_string(),
        ]);
    }
    format!("Ablation of §5 design choices\n{}", t.render())
}

/// Compares the recursive-bisection router against the sequential
/// baseline on random permutations over the library molecules.
pub fn router_comparison_text(seed: u64) -> String {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    let mut rng = StdRng::seed_from_u64(seed);
    let mut t = Table::new([
        "graph",
        "n",
        "bisection depth",
        "bisection swaps",
        "sequential depth",
        "sequential swaps",
    ]);
    let mut graphs: Vec<(String, qcp_graph::Graph)> = vec![
        (
            "crotonic bonds".into(),
            molecules::trans_crotonic_acid().bond_graph(),
        ),
        (
            "histidine bonds".into(),
            molecules::histidine().bond_graph(),
        ),
    ];
    for n in [8usize, 16, 32] {
        graphs.push((format!("chain-{n}"), qcp_graph::generate::chain(n)));
    }
    for (name, g) in graphs {
        let n = g.node_count();
        let perm = qcp_graph::generate::random_permutation(n, &mut rng);
        let targets: Vec<Option<usize>> = perm.iter().map(|&d| Some(d)).collect();
        let par = route_permutation(&g, &targets, &RouterConfig::default()).expect("routes");
        let seq = route_sequential(&g, &targets).expect("routes");
        t.row([
            name,
            n.to_string(),
            par.depth().to_string(),
            par.swap_count().to_string(),
            seq.depth().to_string(),
            seq.swap_count().to_string(),
        ]);
    }
    format!(
        "Router comparison (random permutations, seed {seed})\n{}",
        t.render()
    )
}

// ---------------------------------------------------------------------
// Anytime strategies (exact vs hybrid under a latency budget)
// ---------------------------------------------------------------------

/// One row of the strategy comparison: a workload placed by one strategy
/// under one budget.
#[derive(Clone, Debug)]
pub struct StrategyRow {
    /// Workload label (`circuit@device`).
    pub workload: String,
    /// Strategy label (with its budget, e.g. `hybrid/50ms`).
    pub strategy: String,
    /// `Ok(resolution)` or the failure text.
    pub outcome: Result<String, String>,
    /// Physical runtime of the placed circuit, when placed.
    pub runtime: Option<Time>,
    /// Subcircuit count, when placed.
    pub subcircuits: Option<usize>,
    /// Wall-clock placement latency.
    pub latency: std::time::Duration,
}

/// Compares exact, budgeted-exact, hybrid, and anneal on device
/// topologies where exact enumeration blows past an interactive budget
/// (`grid:8x8`, `heavy_hex:5`): the EXPERIMENTS.md success-rate /
/// latency table.
pub fn strategies(budget_ms: u64) -> Vec<StrategyRow> {
    use qcp_env::topologies::{self, Delays};
    use qcp_place::{SearchBudget, Strategy};

    let workloads: Vec<(String, Environment, Circuit)> = vec![
        (
            "qft6@grid:8x8".into(),
            topologies::grid(8, 8, Delays::default()),
            library::qft(6),
        ),
        (
            "qft6@heavy_hex:5".into(),
            topologies::heavy_hex(5, Delays::default()),
            library::qft(6),
        ),
        (
            "qec5@grid:8x8".into(),
            topologies::grid(8, 8, Delays::default()),
            library::qec5_benchmark(),
        ),
        (
            "cat10@heavy_hex:5".into(),
            topologies::heavy_hex(5, Delays::default()),
            library::pseudo_cat(10),
        ),
    ];
    let budget = SearchBudget::from_millis(budget_ms);
    let configs: Vec<(String, Strategy, SearchBudget)> = vec![
        ("exact".into(), Strategy::Exact, SearchBudget::unlimited()),
        (format!("exact/{budget_ms}ms"), Strategy::Exact, budget),
        (format!("hybrid/{budget_ms}ms"), Strategy::Hybrid, budget),
        ("anneal".into(), Strategy::Anneal, SearchBudget::unlimited()),
    ];
    let mut rows = Vec::new();
    for (wname, env, circuit) in &workloads {
        let t = env.connectivity_threshold().expect("connected devices");
        for (cname, strategy, budget) in &configs {
            let config = PlacerConfig::with_threshold(t)
                .strategy(*strategy)
                .budget(*budget);
            let placer = Placer::new(env, config);
            let started = Instant::now();
            let outcome = placer.place(circuit);
            let latency = started.elapsed();
            rows.push(match outcome {
                Ok(o) => StrategyRow {
                    workload: wname.clone(),
                    strategy: cname.clone(),
                    outcome: Ok(o.resolution.to_string()),
                    runtime: Some(o.runtime),
                    subcircuits: Some(o.subcircuit_count()),
                    latency,
                },
                Err(e) => StrategyRow {
                    workload: wname.clone(),
                    strategy: cname.clone(),
                    outcome: Err(e.to_string()),
                    runtime: None,
                    subcircuits: None,
                    latency,
                },
            });
        }
    }
    rows
}

/// Renders [`strategies`].
pub fn strategies_text(budget_ms: u64) -> String {
    let mut t = Table::new([
        "workload", "strategy", "outcome", "runtime", "stages", "latency",
    ]);
    for r in strategies(budget_ms) {
        t.row([
            r.workload.clone(),
            r.strategy.clone(),
            match &r.outcome {
                Ok(res) => res.clone(),
                Err(e) if e.contains("budget") => "FAILED (budget)".into(),
                Err(_) => "FAILED".into(),
            },
            r.runtime.map_or("-".into(), fmt_seconds),
            r.subcircuits.map_or("-".into(), |s| s.to_string()),
            format!("{:.1} ms", r.latency.as_secs_f64() * 1e3),
        ]);
    }
    format!(
        "Anytime strategies at a {budget_ms} ms budget (latency is machine-dependent)\n{}",
        t.render()
    )
}
