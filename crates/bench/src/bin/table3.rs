#![allow(clippy::unwrap_used, clippy::expect_used)]
//! Regenerates Table 3: the threshold sweep over molecules × circuits.
//!
//! This is the heaviest table; run with `--release`.

fn main() {
    print!("{}", qcp_bench::experiments::table3_text());
}
