#![allow(clippy::unwrap_used, clippy::expect_used)]
//! Regenerates Figure 2: the 3-qubit error-correction encoder.

fn main() {
    print!("{}", qcp_bench::experiments::figure2_text());
}
