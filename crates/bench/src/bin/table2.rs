#![allow(clippy::unwrap_used, clippy::expect_used)]
//! Regenerates Table 2: re-placing the experimentally executed circuits.

fn main() {
    print!("{}", qcp_bench::experiments::table2_text());
}
