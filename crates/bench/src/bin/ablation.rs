#![allow(clippy::unwrap_used, clippy::expect_used)]
//! Ablates the §5 design choices (lookahead, fine tuning, candidate cap,
//! leaf override) and compares the two routers.

fn main() {
    print!("{}", qcp_bench::experiments::ablation_text());
    println!();
    print!("{}", qcp_bench::experiments::router_comparison_text(2007));
}
