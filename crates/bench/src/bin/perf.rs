#![allow(clippy::unwrap_used, clippy::expect_used)]
//! `perf` — runs the hot-path suites and writes `BENCH_PLACE.json`, or
//! gates a fresh run against the committed baseline.
//!
//! ```console
//! $ cargo run --release -p qcp_bench --bin perf             # full run
//! $ cargo run --release -p qcp_bench --bin perf -- --quick  # CI smoke
//! $ cargo run --release -p qcp_bench --bin perf -- \
//!       --baseline BENCH_PLACE.json --out BENCH_PLACE.json  # with speedups
//! $ cargo run --release -p qcp_bench --bin perf -- \
//!       compare BENCH_PLACE.json bench-place-ci.json \
//!       --max-slowdown 1.25                     # CI regression gate
//! ```
//!
//! `compare` exits non-zero when any shared case slowed down by more
//! than the configured factor; cases present in only one file (quick and
//! full runs size some suites differently) and cases under the
//! `--min-ns` noise floor are skipped.

use qcp_bench::perf;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("compare") {
        run_compare(&args[1..]);
        return;
    }
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = flag_value(&args, "--out").unwrap_or_else(|| "BENCH_PLACE.json".to_string());
    let baseline = match flag_value(&args, "--baseline") {
        Some(path) => read_medians(&path),
        None => Default::default(),
    };

    let cases = perf::run_suites(quick);
    for c in &cases {
        let speedup = baseline
            .get(c.name)
            .map(|&b| {
                format!(
                    "  ({:.2}x vs baseline)",
                    b as f64 / c.median_ns.max(1) as f64
                )
            })
            .unwrap_or_default();
        println!(
            "{}: median {} ns ({} samples x {} iters){speedup}",
            c.name, c.median_ns, c.samples, c.iters
        );
    }
    let json = perf::to_json(&cases, quick, &baseline);
    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("perf: cannot write {out_path}: {e}");
        std::process::exit(1);
    }
    println!("wrote {out_path}");
}

/// `perf compare <baseline.json> <current.json> [--max-slowdown f]
/// [--min-ns n]`: the CI perf-regression gate.
fn run_compare(args: &[String]) {
    let split = args
        .iter()
        .position(|a| a.starts_with("--"))
        .unwrap_or(args.len());
    let positional: Vec<&String> = args[..split].iter().collect();
    let flagged: Vec<String> = args[split..].to_vec();
    let [baseline_path, current_path] = positional[..] else {
        eprintln!(
            "usage: perf compare <baseline.json> <current.json> \
             [--max-slowdown 1.25] [--min-ns 1000] [--max-scaling-ratio 1.10]"
        );
        std::process::exit(2);
    };
    let max_slowdown: f64 = flag_value(&flagged, "--max-slowdown")
        .map_or(1.25, |v| v.parse().expect("--max-slowdown needs a number"));
    let min_ns: u64 = flag_value(&flagged, "--min-ns")
        .map_or(1_000, |v| v.parse().expect("--min-ns needs an integer"));
    // Gate on per-case minima (falling back to medians for old files):
    // load only ever inflates a sample, so minima are stable across
    // shared CI runners where medians flake.
    let baseline = read_metric(baseline_path, perf::parse_gate_metric);
    let current = read_metric(current_path, perf::parse_gate_metric);
    let cmp = perf::compare(&baseline, &current, max_slowdown, min_ns);
    print!("{}", cmp.render());
    // Batch scaling honesty: on a multi-core host the jobs4 runs must
    // actually beat (or at least match) jobs1; on a single-core host the
    // ratios are reported but not asserted — 4 workers there time thread
    // overhead by construction.
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let max_ratio: f64 = flag_value(&flagged, "--max-scaling-ratio").map_or(1.10, |v| {
        v.parse().expect("--max-scaling-ratio needs a number")
    });
    let scaling = perf::scaling_check(&current, cores, max_ratio);
    print!("{}", scaling.render());
    let regressions = cmp.regressions().len();
    let not_scaling = scaling.violations().len();
    if regressions > 0 || not_scaling > 0 {
        eprintln!(
            "perf compare: FAILED ({regressions} regression(s), {not_scaling} scaling violation(s))"
        );
        std::process::exit(1);
    }
    println!("perf compare: ok");
}

fn read_medians(path: &str) -> std::collections::BTreeMap<String, u64> {
    read_metric(path, perf::parse_medians)
}

fn read_metric(
    path: &str,
    parse: impl Fn(&str) -> std::collections::BTreeMap<String, u64>,
) -> std::collections::BTreeMap<String, u64> {
    match std::fs::read_to_string(path) {
        Ok(text) => parse(&text),
        Err(e) => {
            eprintln!("perf: cannot read {path}: {e}");
            std::process::exit(1);
        }
    }
}

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}
