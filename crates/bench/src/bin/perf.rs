//! `perf` — runs the hot-path suites and writes `BENCH_PLACE.json`.
//!
//! ```console
//! $ cargo run --release -p qcp_bench --bin perf             # full run
//! $ cargo run --release -p qcp_bench --bin perf -- --quick  # CI smoke
//! $ cargo run --release -p qcp_bench --bin perf -- \
//!       --baseline BENCH_PLACE.json --out BENCH_PLACE.json  # with speedups
//! ```

use qcp_bench::perf;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = flag_value(&args, "--out").unwrap_or_else(|| "BENCH_PLACE.json".to_string());
    let baseline = match flag_value(&args, "--baseline") {
        Some(path) => match std::fs::read_to_string(&path) {
            Ok(text) => perf::parse_medians(&text),
            Err(e) => {
                eprintln!("perf: cannot read baseline {path}: {e}");
                std::process::exit(1);
            }
        },
        None => Default::default(),
    };

    let cases = perf::run_suites(quick);
    for c in &cases {
        let speedup = baseline
            .get(c.name)
            .map(|&b| {
                format!(
                    "  ({:.2}x vs baseline)",
                    b as f64 / c.median_ns.max(1) as f64
                )
            })
            .unwrap_or_default();
        println!(
            "{}: median {} ns ({} samples x {} iters){speedup}",
            c.name, c.median_ns, c.samples, c.iters
        );
    }
    let json = perf::to_json(&cases, quick, &baseline);
    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("perf: cannot write {out_path}: {e}");
        std::process::exit(1);
    }
    println!("wrote {out_path}");
}

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}
