#![allow(clippy::unwrap_used, clippy::expect_used)]
//! Regenerates Table 4: the scalability study over LNN chains.
//!
//! By default runs chain lengths 8..=256; pass `--full` for 512 and 1024
//! (run with `--release`). An optional numeric argument sets the seed.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let full = args.iter().any(|a| a == "--full");
    let seed = args
        .iter()
        .find_map(|a| a.parse::<u64>().ok())
        .unwrap_or(2007);
    let max_n = if full { 1024 } else { 256 };
    print!("{}", qcp_bench::experiments::table4_text(max_n, seed));
}
