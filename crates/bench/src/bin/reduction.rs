//! Demonstrates the §4 NP-completeness reduction.

fn main() {
    print!("{}", qcp_bench::experiments::reduction_text());
}
