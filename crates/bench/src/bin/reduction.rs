#![allow(clippy::unwrap_used, clippy::expect_used)]
//! Demonstrates the §4 NP-completeness reduction.

fn main() {
    print!("{}", qcp_bench::experiments::reduction_text());
}
