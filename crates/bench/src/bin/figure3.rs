#![allow(clippy::unwrap_used, clippy::expect_used)]
//! Regenerates Figure 3 / Example 4: routing the 7-spin permutation on
//! trans-crotonic acid with the water/air narrative.

fn main() {
    print!("{}", qcp_bench::experiments::figure3_text());
}
