#![allow(clippy::unwrap_used, clippy::expect_used)]
//! Regenerates Table 1 / Example 3: the runtime trace of the 3-qubit
//! encoder on acetyl chloride and the optimal mapping.

fn main() {
    print!("{}", qcp_bench::experiments::table1_text());
}
