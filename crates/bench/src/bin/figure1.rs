#![allow(clippy::unwrap_used, clippy::expect_used)]
//! Regenerates Figure 1: the acetyl chloride environment.

fn main() {
    print!("{}", qcp_bench::experiments::figure1_text());
}
