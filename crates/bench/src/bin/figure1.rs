//! Regenerates Figure 1: the acetyl chloride environment.

fn main() {
    print!("{}", qcp_bench::experiments::figure1_text());
}
