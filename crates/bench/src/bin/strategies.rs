#![allow(clippy::unwrap_used, clippy::expect_used)]
//! Compares the anytime placement strategies (exact, budgeted exact,
//! hybrid, anneal) on large device topologies — the EXPERIMENTS.md
//! strategy table.
//!
//! ```console
//! $ cargo run --release -p qcp_bench --bin strategies          # 50 ms budget
//! $ cargo run --release -p qcp_bench --bin strategies -- 200   # custom budget
//! ```

fn main() {
    let budget_ms = std::env::args().nth(1).map_or(50, |a| {
        a.parse().expect("budget must be a millisecond count")
    });
    print!("{}", qcp_bench::experiments::strategies_text(budget_ms));
}
