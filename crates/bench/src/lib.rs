//! Experiment harness regenerating every table and figure of the paper.
//!
//! Each experiment is a function returning structured rows plus a
//! formatted table; the `table1` … `table4`, `figure1` … `figure3`,
//! `reduction`, and `ablation` binaries print them, and the Criterion
//! benches time the underlying placement runs.
//!
//! See `EXPERIMENTS.md` at the workspace root for paper-vs-measured
//! comparisons.

pub mod experiments;
pub mod perf;
pub mod table;
