//! Experiment harness regenerating every table and figure of the paper.
//!
//! Each experiment is a function returning structured rows plus a
//! formatted table; the `table1` … `table4`, `figure1` … `figure3`,
//! `reduction`, and `ablation` binaries print them, and the Criterion
//! benches time the underlying placement runs.
//!
//! See `EXPERIMENTS.md` at the workspace root for paper-vs-measured
//! comparisons.

#![forbid(unsafe_code)]
// Bench-harness support crate: it exists to feed the experiment binaries
// and Criterion benches, where aborting on a malformed experiment is the
// right behaviour — so the workspace unwrap/expect denies are relaxed
// crate-wide (the placement library crates keep them).
#![allow(clippy::unwrap_used, clippy::expect_used)]

pub mod experiments;
pub mod perf;
pub mod table;
