//! Machine-readable performance baseline (`perf` binary).
//!
//! Times the hot-path suites (subgraph monomorphism, SWAP routing,
//! whole-circuit placement), the Table 4 chain workloads end-to-end, and
//! the 32-request topology-zoo batch at 1 and 4 workers, and renders the
//! medians as JSON (`BENCH_PLACE.json` at the workspace root). Future
//! PRs re-run the binary with `--baseline` pointing at the committed
//! file to get per-case speedup factors, giving the repo a perf
//! trajectory instead of one-off criterion printouts.
//!
//! Measurement mirrors the vendored criterion shim: calibrate an
//! iteration count against a per-sample time budget, take a handful of
//! samples, report the median nanoseconds per iteration. `--quick` is the
//! CI smoke mode: smaller budgets, fewer samples, the 256-qubit chain
//! replaced by its 64-qubit sibling, and the 32-request batch zoo
//! shrunk to 8 requests.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::hint::black_box;
use std::time::{Duration, Instant};

use qcp_circuit::library;
use qcp_env::topologies::{self, Delays};
use qcp_env::{molecules, Threshold};
use qcp_graph::vf2::MonomorphismFinder;
use qcp_graph::{generate, Graph};
use qcp_place::router::{route_permutation, RouterConfig};
use qcp_place::{BatchPlacer, Placer, PlacerConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// One timed case.
#[derive(Clone, Debug)]
pub struct PerfCase {
    /// Suite the case belongs to (`mono`, `router`, `place`, `e2e`,
    /// `batch`).
    pub suite: &'static str,
    /// Unique case name, prefixed by its suite.
    pub name: &'static str,
    /// Median nanoseconds per iteration.
    pub median_ns: u64,
    /// Number of timed samples.
    pub samples: usize,
    /// Iterations per sample.
    pub iters: u64,
}

fn measure(quick: bool, mut f: impl FnMut()) -> (u64, usize, u64) {
    // Calibration run doubles as warm-up.
    let start = Instant::now();
    f();
    let once = start.elapsed().max(Duration::from_nanos(1));
    let budget = if quick {
        Duration::from_millis(5)
    } else {
        Duration::from_millis(40)
    };
    let iters = (budget.as_nanos() / once.as_nanos()).clamp(1, 20_000) as u64;
    let samples = match (quick, once >= Duration::from_millis(200)) {
        (true, true) => 1,
        (true, false) => 3,
        (false, true) => 3,
        (false, false) => 9,
    };
    let mut medians: Vec<u64> = Vec::with_capacity(samples);
    for _ in 0..samples {
        let start = Instant::now();
        for _ in 0..iters {
            f();
        }
        medians.push((start.elapsed().as_nanos() / u128::from(iters)) as u64);
    }
    medians.sort_unstable();
    (medians[medians.len() / 2], samples, iters)
}

/// Runs every suite and returns the timed cases in a stable order.
pub fn run_suites(quick: bool) -> Vec<PerfCase> {
    let mut out = Vec::new();
    let mut case = |suite: &'static str, name: &'static str, f: &mut dyn FnMut()| {
        let (median_ns, samples, iters) = measure(quick, f);
        out.push(PerfCase {
            suite,
            name,
            median_ns,
            samples,
            iters,
        });
    };

    // --- monomorphism suite (the paper's stated bottleneck, §5.3) ---
    let grid66 = generate::grid(6, 6);
    let grid55 = generate::grid(5, 5);
    let chain8 = generate::chain(8);
    let ring8 = generate::ring(8);
    let chain12 = generate::chain(12);
    let ring24 = generate::ring(24);
    let chain128 = generate::chain(128);
    let chain256 = generate::chain(256);
    let mut rng = StdRng::seed_from_u64(3);
    let tree6 = generate::random_tree(6, &mut rng);
    let histidine = molecules::histidine().bond_graph();
    let cat10 = generate::chain(10);
    let crotonic = molecules::trans_crotonic_acid().bond_graph();
    let qec5 = library::qec5_benchmark().interaction_graph();

    let mono: [(&'static str, &Graph, &Graph, Option<usize>); 7] = [
        ("mono/chain8-into-grid6x6", &chain8, &grid66, Some(100)),
        ("mono/ring8-into-grid6x6", &ring8, &grid66, Some(100)),
        ("mono/chain12-into-ring24", &chain12, &ring24, Some(100)),
        ("mono/tree6-into-grid5x5", &tree6, &grid55, Some(100)),
        ("mono/chain128-into-chain256", &chain128, &chain256, None),
        ("mono/cat10-into-histidine", &cat10, &histidine, Some(100)),
        ("mono/qec5-into-crotonic", &qec5, &crotonic, Some(100)),
    ];
    for (name, pattern, target, limit) in mono {
        case("mono", name, &mut || match limit {
            Some(k) => {
                black_box(MonomorphismFinder::new(pattern, target).limit(k).find_all());
            }
            None => {
                black_box(MonomorphismFinder::new(pattern, target).exists());
            }
        });
    }

    // --- router suite ---
    let router_graphs: [(&'static str, Graph); 4] = [
        ("router/chain32", generate::chain(32)),
        ("router/grid6x6", generate::grid(6, 6)),
        ("router/crotonic-bonds", crotonic.clone()),
        ("router/histidine-bonds", histidine.clone()),
    ];
    for (name, graph) in &router_graphs {
        let mut rng = StdRng::seed_from_u64(7);
        let perm = generate::random_permutation(graph.node_count(), &mut rng);
        let targets: Vec<Option<usize>> = perm.into_iter().map(Some).collect();
        case("router", name, &mut || {
            black_box(
                route_permutation(graph, &targets, &RouterConfig::default())
                    .expect("connected graphs route"),
            );
        });
    }

    // --- placement suite (full pipeline on the paper's workloads) ---
    struct PlaceCase {
        name: &'static str,
        env: qcp_env::Environment,
        circuit: qcp_circuit::Circuit,
        threshold: Threshold,
    }
    let place_cases = [
        PlaceCase {
            name: "place/qec3-acetyl",
            env: molecules::acetyl_chloride(),
            circuit: library::qec3_encoder(),
            threshold: Threshold::new(100.0),
        },
        PlaceCase {
            name: "place/qec5-crotonic",
            env: molecules::trans_crotonic_acid(),
            circuit: library::qec5_benchmark(),
            threshold: molecules::trans_crotonic_acid()
                .connectivity_threshold()
                .expect("connected"),
        },
        PlaceCase {
            name: "place/phaseest-crotonic-t200",
            env: molecules::trans_crotonic_acid(),
            circuit: library::phase_estimation(),
            threshold: Threshold::new(200.0),
        },
        PlaceCase {
            name: "place/qft6-histidine-t500",
            env: molecules::histidine(),
            circuit: library::qft(6),
            threshold: Threshold::new(500.0),
        },
    ];
    for pc in &place_cases {
        let placer = Placer::new(&pc.env, PlacerConfig::with_threshold(pc.threshold));
        case("place", pc.name, &mut || {
            black_box(placer.place(&pc.circuit).expect("workloads place"));
        });
    }

    // --- Table 4 end-to-end (staged chains; includes environment build) ---
    case("e2e", "e2e/chain64-staged", &mut || {
        black_box(crate::experiments::table4_row(64, 2007));
    });
    if !quick {
        case("e2e", "e2e/chain256-staged", &mut || {
            black_box(crate::experiments::table4_row(256, 2007));
        });
    }

    // --- batch throughput (topology zoo: 8 circuits × 4 backends = 32
    // requests across grid / heavy-hex / molecule environments; quick
    // mode shrinks to a cheap 4 × 2 = 8-request zoo, mirroring the
    // chain256 → chain64 substitution above) ---
    let mut zoo_circuits: Vec<qcp_circuit::Circuit> = vec![
        library::qec3_encoder(),
        library::qec5_benchmark(),
        library::phase_estimation(),
        library::qft(4),
    ];
    let mut zoo_envs = vec![
        topologies::grid(4, 4, Delays::default()),
        topologies::heavy_hex(3, Delays::default()),
    ];
    if !quick {
        zoo_circuits.extend([
            library::qft(5),
            library::qft(6),
            library::pseudo_cat(7),
            library::grover_iteration(5),
        ]);
        zoo_envs.extend([molecules::trans_crotonic_acid(), molecules::histidine()]);
    }
    let zoo_size = zoo_circuits.len() * zoo_envs.len();
    let zoo_config = PlacerConfig::default().candidates(30);
    let zoo = |jobs: usize| {
        BatchPlacer::cross_auto(&zoo_circuits, &zoo_envs, &zoo_config)
            .jobs(jobs)
            .run()
    };
    // Determinism gate before timing: worker count must not change a
    // single outcome bit.
    {
        let serial = zoo(1);
        let parallel = zoo(4);
        assert_eq!(serial.results.len(), zoo_size);
        assert_eq!(serial.failed(), 0, "zoo workloads must all place");
        assert_eq!(
            serial.outcome_fingerprint(),
            parallel.outcome_fingerprint(),
            "batch outcomes must be identical across job counts"
        );
    }
    let (name1, name4) = if quick {
        ("batch/zoo8-jobs1", "batch/zoo8-jobs4")
    } else {
        ("batch/zoo32-jobs1", "batch/zoo32-jobs4")
    };
    case("batch", name1, &mut || {
        black_box(zoo(1));
    });
    case("batch", name4, &mut || {
        black_box(zoo(4));
    });

    out
}

/// Renders the cases as JSON, one case object per line. When `baseline`
/// has a median for a case (keyed by name), the object also carries
/// `baseline_ns` and `speedup` (baseline / current).
pub fn to_json(cases: &[PerfCase], quick: bool, baseline: &BTreeMap<String, u64>) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"schema\": 1,\n");
    s.push_str("  \"tool\": \"qcp_bench perf\",\n");
    let _ = writeln!(
        s,
        "  \"mode\": \"{}\",",
        if quick { "quick" } else { "full" }
    );
    s.push_str("  \"unit\": \"ns/iter (median)\",\n");
    s.push_str("  \"cases\": [\n");
    for (i, c) in cases.iter().enumerate() {
        let _ = write!(
            s,
            "    {{\"suite\": \"{}\", \"name\": \"{}\", \"median_ns\": {}, \"samples\": {}, \"iters\": {}",
            c.suite, c.name, c.median_ns, c.samples, c.iters
        );
        if let Some(&base) = baseline.get(c.name) {
            let speedup = base as f64 / c.median_ns.max(1) as f64;
            let _ = write!(s, ", \"baseline_ns\": {base}, \"speedup\": {speedup:.2}");
        }
        s.push_str(if i + 1 == cases.len() { "}\n" } else { "},\n" });
    }
    s.push_str("  ]\n}\n");
    s
}

/// Extracts `name → median_ns` from a previously written JSON file.
///
/// The parser is deliberately minimal: it understands exactly the
/// line-per-case layout [`to_json`] produces (each line carrying a
/// `"name"` and a `"median_ns"` field), which keeps the workspace free of
/// a JSON dependency.
pub fn parse_medians(json: &str) -> BTreeMap<String, u64> {
    let mut out = BTreeMap::new();
    for line in json.lines() {
        let Some(name) = field_str(line, "name") else {
            continue;
        };
        let Some(median) = field_u64(line, "median_ns") else {
            continue;
        };
        out.insert(name.to_string(), median);
    }
    out
}

fn field_str<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\": \"");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    let end = rest.find('"')?;
    Some(&rest[..end])
}

fn field_u64(line: &str, key: &str) -> Option<u64> {
    let pat = format!("\"{key}\": ");
    let start = line.find(&pat)? + pat.len();
    let digits: String = line[start..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect();
    digits.parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_cases() -> Vec<PerfCase> {
        vec![
            PerfCase {
                suite: "mono",
                name: "mono/a",
                median_ns: 120,
                samples: 7,
                iters: 100,
            },
            PerfCase {
                suite: "router",
                name: "router/b",
                median_ns: 3400,
                samples: 3,
                iters: 10,
            },
        ]
    }

    #[test]
    fn json_roundtrips_medians() {
        let json = to_json(&sample_cases(), false, &BTreeMap::new());
        let medians = parse_medians(&json);
        assert_eq!(medians.get("mono/a"), Some(&120));
        assert_eq!(medians.get("router/b"), Some(&3400));
    }

    #[test]
    fn baseline_adds_speedup() {
        let mut base = BTreeMap::new();
        base.insert("mono/a".to_string(), 240u64);
        let json = to_json(&sample_cases(), true, &base);
        assert!(json.contains("\"baseline_ns\": 240"));
        assert!(json.contains("\"speedup\": 2.00"));
        assert!(json.contains("\"mode\": \"quick\""));
        // router/b has no baseline entry, so no speedup field on its line.
        let router_line = json.lines().find(|l| l.contains("router/b")).unwrap();
        assert!(!router_line.contains("speedup"));
    }

    #[test]
    fn measure_reports_sane_medians() {
        let (ns, samples, iters) = measure(true, || {
            black_box((0..100).sum::<u64>());
        });
        assert!(ns > 0);
        assert!(samples >= 1 && iters >= 1);
    }
}
