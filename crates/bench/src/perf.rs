//! Machine-readable performance baseline (`perf` binary).
//!
//! Times the hot-path suites (subgraph monomorphism, SWAP routing,
//! whole-circuit placement), the Table 4 chain workloads end-to-end, the
//! 32-request topology-zoo batch at 1 and 4 workers, and the OpenQASM
//! ingestion path (parse+lower, and a full `--qasm`-style parse-and-place
//! round), and renders the
//! medians as JSON (`BENCH_PLACE.json` at the workspace root). Future
//! PRs re-run the binary with `--baseline` pointing at the committed
//! file to get per-case speedup factors, giving the repo a perf
//! trajectory instead of one-off criterion printouts.
//!
//! Measurement mirrors the vendored criterion shim: calibrate an
//! iteration count against a per-sample time budget, take a handful of
//! samples, report the median nanoseconds per iteration. `--quick` is the
//! CI smoke mode: smaller budgets, fewer samples, the 256-qubit chain
//! replaced by its 64-qubit sibling, and the 32-request batch zoo
//! shrunk to 8 requests.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::hint::black_box;
use std::time::{Duration, Instant};

use qcp_circuit::library;
use qcp_env::topologies::{self, Delays};
use qcp_env::{molecules, Threshold};
use qcp_graph::vf2::MonomorphismFinder;
use qcp_graph::{generate, Graph};
use qcp_place::router::{route_permutation, RouterConfig};
use qcp_place::{
    execute, execute_with, BatchPlacer, CanonicalCircuit, PlaceRequest, PlacementCache, Placer,
    PlacerConfig, Resolution, SearchBudget, Strategy,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// One timed case.
#[derive(Clone, Debug)]
pub struct PerfCase {
    /// Suite the case belongs to (`mono`, `router`, `place`, `e2e`,
    /// `batch`, `strategy`, `exact-par`, `ingest`, `cache`).
    pub suite: &'static str,
    /// Unique case name, prefixed by its suite.
    pub name: &'static str,
    /// Median nanoseconds per iteration.
    pub median_ns: u64,
    /// Minimum nanoseconds per iteration across the samples. External
    /// load only ever *adds* time, so the minimum is the noise-robust
    /// estimator the CI regression gate compares.
    pub min_ns: u64,
    /// Number of timed samples.
    pub samples: usize,
    /// Iterations per sample.
    pub iters: u64,
}

fn measure(quick: bool, mut f: impl FnMut()) -> (u64, u64, usize, u64) {
    // Calibration run doubles as warm-up.
    let start = Instant::now();
    f();
    let once = start.elapsed().max(Duration::from_nanos(1));
    let budget = if quick {
        Duration::from_millis(5)
    } else {
        Duration::from_millis(40)
    };
    let iters = (budget.as_nanos() / once.as_nanos()).clamp(1, 20_000) as u64;
    // Several samples everywhere: the regression gate compares the
    // per-case *minimum*, which needs a handful of attempts to touch the
    // noise floor on a shared runner (a lone sample cannot estimate it).
    let samples = match (quick, once >= Duration::from_millis(200)) {
        (true, true) => 3,
        (true, false) => 5,
        (false, true) => 3,
        (false, false) => 9,
    };
    let mut medians: Vec<u64> = Vec::with_capacity(samples);
    for _ in 0..samples {
        let start = Instant::now();
        for _ in 0..iters {
            f();
        }
        medians.push((start.elapsed().as_nanos() / u128::from(iters)) as u64);
    }
    medians.sort_unstable();
    let mut min = medians[0];
    if iters == 1 {
        // The calibration run is a full single iteration too — a free
        // extra sample for the heavy cases, where every sample counts
        // toward a stable minimum.
        min = min.min(once.as_nanos() as u64);
    }
    (medians[medians.len() / 2], min, samples, iters)
}

/// Runs every suite and returns the timed cases in a stable order.
pub fn run_suites(quick: bool) -> Vec<PerfCase> {
    let mut out = Vec::new();
    let mut case = |suite: &'static str, name: &'static str, f: &mut dyn FnMut()| {
        let (median_ns, min_ns, samples, iters) = measure(quick, f);
        out.push(PerfCase {
            suite,
            name,
            median_ns,
            min_ns,
            samples,
            iters,
        });
    };

    // --- monomorphism suite (the paper's stated bottleneck, §5.3) ---
    let grid66 = generate::grid(6, 6);
    let grid55 = generate::grid(5, 5);
    let chain8 = generate::chain(8);
    let ring8 = generate::ring(8);
    let chain12 = generate::chain(12);
    let ring24 = generate::ring(24);
    let chain128 = generate::chain(128);
    let chain256 = generate::chain(256);
    let mut rng = StdRng::seed_from_u64(3);
    let tree6 = generate::random_tree(6, &mut rng);
    let histidine = molecules::histidine().bond_graph();
    let cat10 = generate::chain(10);
    let crotonic = molecules::trans_crotonic_acid().bond_graph();
    let qec5 = library::qec5_benchmark().interaction_graph();

    let mono: [(&'static str, &Graph, &Graph, Option<usize>); 7] = [
        ("mono/chain8-into-grid6x6", &chain8, &grid66, Some(100)),
        ("mono/ring8-into-grid6x6", &ring8, &grid66, Some(100)),
        ("mono/chain12-into-ring24", &chain12, &ring24, Some(100)),
        ("mono/tree6-into-grid5x5", &tree6, &grid55, Some(100)),
        ("mono/chain128-into-chain256", &chain128, &chain256, None),
        ("mono/cat10-into-histidine", &cat10, &histidine, Some(100)),
        ("mono/qec5-into-crotonic", &qec5, &crotonic, Some(100)),
    ];
    for (name, pattern, target, limit) in mono {
        case("mono", name, &mut || match limit {
            Some(k) => {
                black_box(MonomorphismFinder::new(pattern, target).limit(k).find_all());
            }
            None => {
                black_box(MonomorphismFinder::new(pattern, target).exists());
            }
        });
    }

    // --- router suite ---
    let router_graphs: [(&'static str, Graph); 4] = [
        ("router/chain32", generate::chain(32)),
        ("router/grid6x6", generate::grid(6, 6)),
        ("router/crotonic-bonds", crotonic.clone()),
        ("router/histidine-bonds", histidine.clone()),
    ];
    for (name, graph) in &router_graphs {
        let mut rng = StdRng::seed_from_u64(7);
        let perm = generate::random_permutation(graph.node_count(), &mut rng);
        let targets: Vec<Option<usize>> = perm.into_iter().map(Some).collect();
        case("router", name, &mut || {
            black_box(
                route_permutation(graph, &targets, &RouterConfig::default())
                    .expect("connected graphs route"),
            );
        });
    }

    // --- placement suite (full pipeline on the paper's workloads) ---
    struct PlaceCase {
        name: &'static str,
        env: qcp_env::Environment,
        circuit: qcp_circuit::Circuit,
        threshold: Threshold,
    }
    let place_cases = [
        PlaceCase {
            name: "place/qec3-acetyl",
            env: molecules::acetyl_chloride(),
            circuit: library::qec3_encoder(),
            threshold: Threshold::new(100.0),
        },
        PlaceCase {
            name: "place/qec5-crotonic",
            env: molecules::trans_crotonic_acid(),
            circuit: library::qec5_benchmark(),
            threshold: molecules::trans_crotonic_acid()
                .connectivity_threshold()
                .expect("connected"),
        },
        PlaceCase {
            name: "place/phaseest-crotonic-t200",
            env: molecules::trans_crotonic_acid(),
            circuit: library::phase_estimation(),
            threshold: Threshold::new(200.0),
        },
        PlaceCase {
            name: "place/qft6-histidine-t500",
            env: molecules::histidine(),
            circuit: library::qft(6),
            threshold: Threshold::new(500.0),
        },
    ];
    for pc in &place_cases {
        let placer = Placer::new(&pc.env, PlacerConfig::with_threshold(pc.threshold));
        case("place", pc.name, &mut || {
            black_box(placer.place(&pc.circuit).expect("workloads place"));
        });
    }

    // --- Table 4 end-to-end (staged chains; includes environment build) ---
    case("e2e", "e2e/chain64-staged", &mut || {
        black_box(crate::experiments::table4_row(64, 2007));
    });
    if !quick {
        case("e2e", "e2e/chain256-staged", &mut || {
            black_box(crate::experiments::table4_row(256, 2007));
        });
    }

    // --- batch throughput (topology zoo: 8 circuits × 4 backends = 32
    // requests across grid / heavy-hex / molecule environments; quick
    // mode shrinks to a cheap 4 × 2 = 8-request zoo, mirroring the
    // chain256 → chain64 substitution above) ---
    let mut zoo_circuits: Vec<qcp_circuit::Circuit> = vec![
        library::qec3_encoder(),
        library::qec5_benchmark(),
        library::phase_estimation(),
        library::qft(4),
    ];
    let mut zoo_envs = vec![
        topologies::grid(4, 4, Delays::default()),
        topologies::heavy_hex(3, Delays::default()),
    ];
    if !quick {
        zoo_circuits.extend([
            library::qft(5),
            library::qft(6),
            library::pseudo_cat(7),
            library::grover_iteration(5),
        ]);
        zoo_envs.extend([molecules::trans_crotonic_acid(), molecules::histidine()]);
    }
    let zoo_size = zoo_circuits.len() * zoo_envs.len();
    let zoo_config = PlacerConfig::default().candidates(30);
    let zoo = |jobs: usize| {
        BatchPlacer::cross_auto(&zoo_circuits, &zoo_envs, &zoo_config)
            .jobs(jobs)
            .run()
    };
    // Determinism gate before timing: worker count must not change a
    // single outcome bit.
    {
        let serial = zoo(1);
        let parallel = zoo(4);
        assert_eq!(serial.results.len(), zoo_size);
        assert_eq!(serial.failed(), 0, "zoo workloads must all place");
        assert_eq!(
            serial.outcome_fingerprint(),
            parallel.outcome_fingerprint(),
            "batch outcomes must be identical across job counts"
        );
    }
    let (name1, name4) = if quick {
        ("batch/zoo8-jobs1", "batch/zoo8-jobs4")
    } else {
        ("batch/zoo32-jobs1", "batch/zoo32-jobs4")
    };
    case("batch", name1, &mut || {
        black_box(zoo(1));
    });
    case("batch", name4, &mut || {
        black_box(zoo(4));
    });

    // --- anytime strategies (identical cases in quick and full mode, so
    // the CI regression gate covers them; see `compare`) ---
    let hh3 = topologies::heavy_hex(3, Delays::default());
    let grid88 = topologies::grid(8, 8, Delays::default());
    let qft6 = library::qft(6);
    let qec5 = library::qec5_benchmark();
    let strat_config = |env: &qcp_env::Environment, strategy: Strategy, budget: SearchBudget| {
        PlacerConfig::with_threshold(env.connectivity_threshold().expect("connected"))
            .strategy(strategy)
            .budget(budget)
    };
    // The node-budgeted hybrid must really exercise the fallback chain —
    // pin the resolution before timing it.
    let hybrid_budget = SearchBudget::nodes(2_000);
    {
        let placer = Placer::new(&hh3, strat_config(&hh3, Strategy::Hybrid, hybrid_budget));
        let outcome = placer.place(&qft6).expect("hybrid always places");
        assert_eq!(
            outcome.resolution,
            Resolution::BudgetExhausted,
            "hybrid case must fall back, or it times the exact path twice"
        );
    }
    struct StrategyCase {
        name: &'static str,
        env: qcp_env::Environment,
        circuit: qcp_circuit::Circuit,
        strategy: Strategy,
        budget: SearchBudget,
    }
    let strategy_cases = [
        StrategyCase {
            name: "strategy/exact-qft6-heavyhex3",
            env: hh3.clone(),
            circuit: qft6.clone(),
            strategy: Strategy::Exact,
            budget: SearchBudget::unlimited(),
        },
        StrategyCase {
            name: "strategy/anneal-qft6-heavyhex3",
            env: hh3.clone(),
            circuit: qft6.clone(),
            strategy: Strategy::Anneal,
            budget: SearchBudget::unlimited(),
        },
        StrategyCase {
            name: "strategy/hybrid2k-qft6-heavyhex3",
            env: hh3,
            circuit: qft6,
            strategy: Strategy::Hybrid,
            budget: hybrid_budget,
        },
        StrategyCase {
            name: "strategy/exact-qec5-grid8x8",
            env: grid88.clone(),
            circuit: qec5.clone(),
            strategy: Strategy::Exact,
            budget: SearchBudget::unlimited(),
        },
        StrategyCase {
            name: "strategy/anneal-qec5-grid8x8",
            env: grid88,
            circuit: qec5,
            strategy: Strategy::Anneal,
            budget: SearchBudget::unlimited(),
        },
    ];
    for sc in &strategy_cases {
        let placer = Placer::new(&sc.env, strat_config(&sc.env, sc.strategy, sc.budget));
        case("strategy", sc.name, &mut || {
            black_box(placer.place(&sc.circuit).expect("strategy workloads place"));
        });
    }

    // --- parallel exact search (identical cases in quick and full mode):
    // the headline symmetry-pruned exact workload at 1 and 4 search
    // workers. The `-jobs1`/`-jobs4` suffixes feed the same scaling gate
    // as the batch zoo (enforced only on multi-core hosts); the jobs1
    // case is the regression anchor for the orbit-pruned search itself.
    {
        let grid88 = topologies::grid(8, 8, Delays::default());
        let qft6 = library::qft(6);
        let exact_config = |jobs: usize| {
            PlacerConfig::with_threshold(grid88.connectivity_threshold().expect("connected"))
                .strategy(Strategy::Exact)
                .search_jobs(jobs)
        };
        // Determinism gate before timing: the parallel search must
        // return the sequential answer bit-for-bit.
        {
            let seq = Placer::new(&grid88, exact_config(1))
                .place(&qft6)
                .expect("exact qft6@grid8x8 places");
            let par = Placer::new(&grid88, exact_config(4))
                .place(&qft6)
                .expect("exact qft6@grid8x8 places");
            assert_eq!(
                seq.runtime.units().to_bits(),
                par.runtime.units().to_bits(),
                "exact search must be worker-count independent"
            );
        }
        let placer1 = Placer::new(&grid88, exact_config(1));
        case("exact-par", "exact-par/qft6-grid8x8-jobs1", &mut || {
            black_box(placer1.place(&qft6).expect("exact qft6@grid8x8 places"));
        });
        let placer4 = Placer::new(&grid88, exact_config(4));
        case("exact-par", "exact-par/qft6-grid8x8-jobs4", &mut || {
            black_box(placer4.place(&qft6).expect("exact qft6@grid8x8 places"));
        });
    }

    // --- OpenQASM ingestion (identical cases in quick and full mode so
    // the regression gate covers the frontend): parse+lower of the
    // largest committed corpus file, and the whole `--qasm` place path —
    // source text in, placement out ---
    const RANDOM_CNOT12: &str = include_str!("../../../tests/qasm/random_cnot12.qasm");
    const QFT4: &str = include_str!("../../../tests/qasm/qft4.qasm");
    case("ingest", "ingest/parse-random_cnot12", &mut || {
        black_box(qcp_circuit::qasm::parse(RANDOM_CNOT12).expect("corpus parses"));
    });
    {
        let grid44 = topologies::grid(4, 4, Delays::default());
        let config =
            PlacerConfig::with_threshold(grid44.connectivity_threshold().expect("connected"))
                .candidates(30)
                .strategy(Strategy::Hybrid);
        let placer = Placer::new(&grid44, config);
        case("ingest", "ingest/place-qasm-qft4-grid4x4", &mut || {
            let circuit = qcp_circuit::qasm::parse(QFT4)
                .expect("corpus parses")
                .circuit;
            black_box(placer.place(&circuit).expect("corpus places"));
        });
    }

    // --- canonicalization-keyed result cache (identical cases in quick
    // and full mode): the canonicalization pass on the densest corpus
    // circuit, then the same placement problem cold (cache bypassed
    // every iteration) vs warm (every iteration after the first is a
    // hit) — the committed numbers back EXPERIMENTS.md's cold/warm
    // table, and the warm case is the one serve answers from ---
    {
        let cnot12 = qcp_circuit::qasm::parse(RANDOM_CNOT12)
            .expect("corpus parses")
            .circuit;
        case("cache", "cache/canonicalize-random_cnot12", &mut || {
            black_box(CanonicalCircuit::of(&cnot12));
        });

        let grid44 = topologies::grid(4, 4, Delays::default());
        let config =
            PlacerConfig::with_threshold(grid44.connectivity_threshold().expect("connected"))
                .candidates(30)
                .strategy(Strategy::Hybrid);
        let qft4 = qcp_circuit::qasm::parse(QFT4)
            .expect("corpus parses")
            .circuit;
        {
            let config = config.clone();
            case("cache", "cache/place-qft4-grid4x4-cold", &mut || {
                let request = PlaceRequest::new(&qft4, &grid44).config(config.clone());
                black_box(execute(&request).expect("corpus places"));
            });
        }
        {
            let cache = PlacementCache::new(64);
            case("cache", "cache/place-qft4-grid4x4-warm", &mut || {
                let request = PlaceRequest::new(&qft4, &grid44).config(config.clone());
                let report = execute_with(&request, Some(&cache), None).expect("corpus places");
                black_box(report);
            });
        }
    }

    out
}

/// One row of a baseline-vs-current comparison (the CI regression gate).
#[derive(Clone, Debug)]
pub struct CompareRow {
    /// Case name (shared between the two files).
    pub name: String,
    /// Gate metric (min ns/iter, or median for old files) in the
    /// baseline file.
    pub baseline_ns: u64,
    /// Gate metric in the current file.
    pub current_ns: u64,
    /// `current / baseline` (> 1 means slower than the baseline).
    pub ratio: f64,
}

/// The result of comparing a current perf run against a committed
/// baseline.
#[derive(Clone, Debug)]
pub struct Comparison {
    /// Rows for every case present in both files and above the noise
    /// floor, in baseline order.
    pub rows: Vec<CompareRow>,
    /// Cases skipped (missing on either side, or below the floor).
    pub skipped: usize,
    /// Slowdown factor above which a case counts as a regression.
    pub max_slowdown: f64,
}

impl Comparison {
    /// The regressed rows (ratio above the configured slowdown).
    pub fn regressions(&self) -> Vec<&CompareRow> {
        self.rows
            .iter()
            .filter(|r| r.ratio > self.max_slowdown)
            .collect()
    }

    /// `true` when no compared case regressed.
    pub fn passed(&self) -> bool {
        self.regressions().is_empty()
    }

    /// Human-readable table plus verdict line.
    pub fn render(&self) -> String {
        let mut s = String::new();
        for r in &self.rows {
            let verdict = if r.ratio > self.max_slowdown {
                "REGRESSED"
            } else {
                "ok"
            };
            let _ = writeln!(
                s,
                "{:<36} {:>12} -> {:>12} ns  ({:>5.2}x)  {}",
                r.name, r.baseline_ns, r.current_ns, r.ratio, verdict
            );
        }
        let _ = writeln!(
            s,
            "{} case(s) compared, {} skipped, {} regression(s) at >{:.0}% slowdown",
            self.rows.len(),
            self.skipped,
            self.regressions().len(),
            (self.max_slowdown - 1.0) * 100.0
        );
        s
    }
}

/// Compares the current run against a baseline (both as
/// [`parse_gate_metric`] maps): a case regresses when
/// `current > baseline * max_slowdown`. Cases present in only one file
/// are skipped (quick and full runs legitimately carry different
/// workload sizes for some suites), as are cases whose baseline value
/// is below `min_baseline_ns` — sub-microsecond timings are timer noise
/// on shared CI runners.
pub fn compare(
    baseline: &BTreeMap<String, u64>,
    current: &BTreeMap<String, u64>,
    max_slowdown: f64,
    min_baseline_ns: u64,
) -> Comparison {
    let mut rows = Vec::new();
    let mut skipped = 0usize;
    for (name, &base) in baseline {
        let Some(&cur) = current.get(name) else {
            skipped += 1;
            continue;
        };
        if base < min_baseline_ns {
            skipped += 1;
            continue;
        }
        rows.push(CompareRow {
            name: name.clone(),
            baseline_ns: base,
            current_ns: cur,
            ratio: cur as f64 / base as f64,
        });
    }
    skipped += current
        .keys()
        .filter(|n| !baseline.contains_key(*n))
        .count();
    Comparison {
        rows,
        skipped,
        max_slowdown,
    }
}

/// One batch scaling pair: the same workload timed at 1 and 4 workers.
#[derive(Clone, Debug)]
pub struct ScalingRow {
    /// Shared case prefix (the name minus its `-jobsN` suffix).
    pub name: String,
    /// Nanoseconds per iteration at 1 worker.
    pub jobs1_ns: u64,
    /// Nanoseconds per iteration at 4 workers.
    pub jobs4_ns: u64,
    /// `jobs4 / jobs1` — below 1.0 means the workers actually help.
    pub ratio: f64,
}

/// Result of the batch scaling honesty gate (see [`scaling_check`]).
#[derive(Clone, Debug)]
pub struct ScalingCheck {
    /// Every `-jobs1`/`-jobs4` pair found in the run.
    pub rows: Vec<ScalingRow>,
    /// The core count the verdict was made under.
    pub cores: usize,
    /// Largest acceptable `jobs4 / jobs1` ratio when the gate is armed.
    pub max_ratio: f64,
    /// `false` on a single-core host: the ratios are still reported,
    /// but thread overhead is the *expected* outcome there, so nothing
    /// is asserted.
    pub enforced: bool,
}

impl ScalingCheck {
    /// The rows that violate the ratio bound (always empty when the
    /// gate is not enforced).
    pub fn violations(&self) -> Vec<&ScalingRow> {
        if !self.enforced {
            return Vec::new();
        }
        self.rows
            .iter()
            .filter(|r| r.ratio > self.max_ratio)
            .collect()
    }

    /// `true` when the gate holds (vacuously on single-core hosts).
    pub fn passed(&self) -> bool {
        self.violations().is_empty()
    }

    /// Human-readable ratio table plus verdict line.
    pub fn render(&self) -> String {
        let mut s = String::new();
        for r in &self.rows {
            let verdict = if self.enforced && r.ratio > self.max_ratio {
                "NOT SCALING"
            } else {
                "ok"
            };
            let _ = writeln!(
                s,
                "{:<36} jobs1 {:>12} ns, jobs4 {:>12} ns  ({:>5.2}x)  {}",
                r.name, r.jobs1_ns, r.jobs4_ns, r.ratio, verdict
            );
        }
        if self.enforced {
            let _ = writeln!(
                s,
                "scaling gate: {} pair(s) at <= {:.2}x on {} cores, {} violation(s)",
                self.rows.len(),
                self.max_ratio,
                self.cores,
                self.violations().len()
            );
        } else {
            let _ = writeln!(
                s,
                "scaling gate: skipped ({} pair(s) reported; single-core host times \
                 thread overhead, not scaling)",
                self.rows.len()
            );
        }
        s
    }
}

/// The batch scaling honesty gate: pairs every `<case>-jobs1` metric
/// with its `<case>-jobs4` sibling and, when the host actually has
/// cores to scale onto (`cores > 1`), requires
/// `jobs4 <= jobs1 * max_ratio`. On a single-core host the pairs are
/// reported but nothing is asserted — there, 4 workers measure thread
/// overhead by construction, and gating on it would institutionalize a
/// misleading baseline (the ROADMAP's perf-honesty problem).
pub fn scaling_check(
    current: &BTreeMap<String, u64>,
    cores: usize,
    max_ratio: f64,
) -> ScalingCheck {
    let mut rows = Vec::new();
    for (name, &ns1) in current {
        let Some(prefix) = name.strip_suffix("-jobs1") else {
            continue;
        };
        let Some(&ns4) = current.get(&format!("{prefix}-jobs4")) else {
            continue;
        };
        rows.push(ScalingRow {
            name: prefix.to_string(),
            jobs1_ns: ns1,
            jobs4_ns: ns4,
            ratio: ns4 as f64 / ns1.max(1) as f64,
        });
    }
    ScalingCheck {
        rows,
        cores,
        max_ratio,
        enforced: cores > 1,
    }
}

/// Renders the cases as JSON, one case object per line. When `baseline`
/// has a median for a case (keyed by name), the object also carries
/// `baseline_ns` and `speedup` (baseline / current).
pub fn to_json(cases: &[PerfCase], quick: bool, baseline: &BTreeMap<String, u64>) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"schema\": 1,\n");
    s.push_str("  \"tool\": \"qcp_bench perf\",\n");
    let _ = writeln!(
        s,
        "  \"mode\": \"{}\",",
        if quick { "quick" } else { "full" }
    );
    s.push_str("  \"unit\": \"ns/iter (median)\",\n");
    s.push_str("  \"cases\": [\n");
    for (i, c) in cases.iter().enumerate() {
        let _ = write!(
            s,
            "    {{\"suite\": \"{}\", \"name\": \"{}\", \"median_ns\": {}, \"min_ns\": {}, \"samples\": {}, \"iters\": {}",
            c.suite, c.name, c.median_ns, c.min_ns, c.samples, c.iters
        );
        if let Some(&base) = baseline.get(c.name) {
            let speedup = base as f64 / c.median_ns.max(1) as f64;
            let _ = write!(s, ", \"baseline_ns\": {base}, \"speedup\": {speedup:.2}");
        }
        s.push_str(if i + 1 == cases.len() { "}\n" } else { "},\n" });
    }
    s.push_str("  ]\n}\n");
    s
}

/// Extracts `name → median_ns` from a previously written JSON file.
///
/// The parser is deliberately minimal: it understands exactly the
/// line-per-case layout [`to_json`] produces (each line carrying a
/// `"name"` and a `"median_ns"` field), which keeps the workspace free of
/// a JSON dependency.
pub fn parse_medians(json: &str) -> BTreeMap<String, u64> {
    let mut out = BTreeMap::new();
    for line in json.lines() {
        let Some(name) = field_str(line, "name") else {
            continue;
        };
        let Some(median) = field_u64(line, "median_ns") else {
            continue;
        };
        out.insert(name.to_string(), median);
    }
    out
}

/// Extracts `name → min_ns` (falling back to `median_ns` for files
/// written before the minimum was recorded). This is the map the CI
/// regression gate compares: external load only ever inflates a sample,
/// so minima are far more stable across runs and machines than medians.
pub fn parse_gate_metric(json: &str) -> BTreeMap<String, u64> {
    let mut out = BTreeMap::new();
    for line in json.lines() {
        let Some(name) = field_str(line, "name") else {
            continue;
        };
        let Some(value) = field_u64(line, "min_ns").or_else(|| field_u64(line, "median_ns")) else {
            continue;
        };
        out.insert(name.to_string(), value);
    }
    out
}

fn field_str<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\": \"");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    let end = rest.find('"')?;
    Some(&rest[..end])
}

fn field_u64(line: &str, key: &str) -> Option<u64> {
    let pat = format!("\"{key}\": ");
    let start = line.find(&pat)? + pat.len();
    let digits: String = line[start..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect();
    digits.parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_cases() -> Vec<PerfCase> {
        vec![
            PerfCase {
                suite: "mono",
                name: "mono/a",
                median_ns: 120,
                min_ns: 100,
                samples: 7,
                iters: 100,
            },
            PerfCase {
                suite: "router",
                name: "router/b",
                median_ns: 3400,
                min_ns: 3000,
                samples: 3,
                iters: 10,
            },
        ]
    }

    #[test]
    fn json_roundtrips_medians_and_minima() {
        let json = to_json(&sample_cases(), false, &BTreeMap::new());
        let medians = parse_medians(&json);
        assert_eq!(medians.get("mono/a"), Some(&120));
        assert_eq!(medians.get("router/b"), Some(&3400));
        let gate = parse_gate_metric(&json);
        assert_eq!(gate.get("mono/a"), Some(&100));
        assert_eq!(gate.get("router/b"), Some(&3000));
        // Files written before min_ns existed fall back to the median.
        let legacy = "{\"name\": \"mono/a\", \"median_ns\": 777}";
        assert_eq!(parse_gate_metric(legacy).get("mono/a"), Some(&777));
    }

    #[test]
    fn baseline_adds_speedup() {
        let mut base = BTreeMap::new();
        base.insert("mono/a".to_string(), 240u64);
        let json = to_json(&sample_cases(), true, &base);
        assert!(json.contains("\"baseline_ns\": 240"));
        assert!(json.contains("\"speedup\": 2.00"));
        assert!(json.contains("\"mode\": \"quick\""));
        // router/b has no baseline entry, so no speedup field on its line.
        let router_line = json.lines().find(|l| l.contains("router/b")).unwrap();
        assert!(!router_line.contains("speedup"));
    }

    #[test]
    fn scaling_gate_skipped_on_single_core() {
        let mut cur = BTreeMap::new();
        cur.insert("batch/zoo32-jobs1".to_string(), 1_000_000u64);
        cur.insert("batch/zoo32-jobs4".to_string(), 2_200_000u64); // overhead
        let check = scaling_check(&cur, 1, 1.10);
        assert_eq!(check.rows.len(), 1);
        assert!((check.rows[0].ratio - 2.2).abs() < 1e-9);
        assert!(!check.enforced);
        assert!(check.passed(), "single core must not gate on overhead");
        assert!(check.render().contains("skipped"));
    }

    #[test]
    fn scaling_gate_armed_on_multi_core() {
        let mut cur = BTreeMap::new();
        cur.insert("batch/zoo32-jobs1".to_string(), 1_000_000u64);
        cur.insert("batch/zoo32-jobs4".to_string(), 2_200_000u64); // violation
        cur.insert("batch/zoo8-jobs1".to_string(), 400_000u64);
        cur.insert("batch/zoo8-jobs4".to_string(), 150_000u64); // scales
        cur.insert("place/qft6-grid".to_string(), 3_000_000u64); // unpaired
        let check = scaling_check(&cur, 4, 1.10);
        assert_eq!(check.rows.len(), 2);
        assert!(check.enforced);
        assert!(!check.passed());
        let bad: Vec<&str> = check.violations().iter().map(|r| r.name.as_str()).collect();
        assert_eq!(bad, ["batch/zoo32"]);
        assert!(check.render().contains("NOT SCALING"));
    }

    #[test]
    fn scaling_gate_ignores_orphan_jobs1() {
        let mut cur = BTreeMap::new();
        cur.insert("batch/zoo8-jobs1".to_string(), 400_000u64);
        let check = scaling_check(&cur, 8, 1.10);
        assert!(check.rows.is_empty());
        assert!(check.passed());
    }

    #[test]
    fn compare_flags_only_real_regressions() {
        let mut base = BTreeMap::new();
        base.insert("mono/a".to_string(), 1_000_000u64);
        base.insert("place/b".to_string(), 2_000_000u64);
        base.insert("tiny/noise".to_string(), 50u64); // below the floor
        base.insert("gone/c".to_string(), 1_000u64); // not in current
        let mut cur = BTreeMap::new();
        cur.insert("mono/a".to_string(), 1_200_000u64); // 1.20x: ok
        cur.insert("place/b".to_string(), 2_600_000u64); // 1.30x: regression
        cur.insert("tiny/noise".to_string(), 5_000u64); // skipped (floor)
        cur.insert("new/d".to_string(), 77u64); // not in baseline

        let cmp = compare(&base, &cur, 1.25, 1_000);
        assert_eq!(cmp.rows.len(), 2);
        assert_eq!(cmp.skipped, 3);
        assert!(!cmp.passed());
        let regressed: Vec<&str> = cmp.regressions().iter().map(|r| r.name.as_str()).collect();
        assert_eq!(regressed, ["place/b"]);
        let text = cmp.render();
        assert!(text.contains("REGRESSED"), "{text}");
        assert!(text.contains("1 regression(s)"), "{text}");

        let lenient = compare(&base, &cur, 1.5, 1_000);
        assert!(lenient.passed());
    }

    #[test]
    fn measure_reports_sane_medians() {
        // `black_box` every loop index so release codegen cannot
        // const-fold the whole workload to zero time (a 0 ns median
        // would fail the sanity assertions below).
        let (ns, min_ns, samples, iters) = measure(true, || {
            let mut acc = 0u64;
            for i in 0..1_000u64 {
                acc = acc.wrapping_add(black_box(i));
            }
            black_box(acc);
        });
        assert!(ns > 0);
        assert!(min_ns > 0 && min_ns <= ns);
        assert!(samples >= 1 && iters >= 1);
    }
}
