//! Minimal plain-text table formatting for the experiment binaries.

/// A simple left-padded text table.
#[derive(Clone, Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(header: impl IntoIterator<Item = impl Into<String>>) -> Self {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (shorter rows are padded with empty cells).
    pub fn row(&mut self, cells: impl IntoIterator<Item = impl Into<String>>) -> &mut Self {
        self.rows.push(cells.into_iter().map(Into::into).collect());
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Returns `true` if the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let cols = self
            .rows
            .iter()
            .map(Vec::len)
            .chain([self.header.len()])
            .max()
            .unwrap_or(0);
        let mut widths = vec![0usize; cols];
        let measure = |widths: &mut Vec<usize>, cells: &[String]| {
            for (i, c) in cells.iter().enumerate() {
                widths[i] = widths[i].max(c.chars().count());
            }
        };
        measure(&mut widths, &self.header);
        for r in &self.rows {
            measure(&mut widths, r);
        }
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, w) in widths.iter().enumerate() {
                let empty = String::new();
                let cell = cells.get(i).unwrap_or(&empty);
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(cell);
                for _ in cell.chars().count()..*w {
                    line.push(' ');
                }
            }
            line.trim_end().to_string()
        };
        let mut out = String::new();
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols.saturating_sub(1))));
        out.push('\n');
        for r in &self.rows {
            out.push_str(&fmt_row(r, &widths));
            out.push('\n');
        }
        out
    }
}

/// Formats a runtime as the paper does: seconds with 4 decimals.
pub fn fmt_seconds(t: qcp_circuit::Time) -> String {
    format!("{:.4} sec", t.seconds())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(["name", "value"]);
        t.row(["alpha", "1"]);
        t.row(["b", "12345"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert!(lines[0].starts_with("name"));
        assert_eq!(lines.len(), 4);
        assert!(lines[2].starts_with("alpha"));
    }

    #[test]
    fn pads_short_rows() {
        let mut t = Table::new(["a", "b", "c"]);
        t.row(["x"]);
        assert!(t.render().contains('x'));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn fmt_seconds_style() {
        assert_eq!(
            fmt_seconds(qcp_circuit::Time::from_units(136.0)),
            "0.0136 sec"
        );
    }
}
