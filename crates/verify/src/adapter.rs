//! Adapter plugging this crate's [`certify`] into the
//! [`qcp_place::Certifier`] hook of the unified request executor.
//!
//! `qcp_place::request::execute_with` accepts an optional certifier so
//! that verifying surfaces (the CLI `--verify` flag, batch `--verify`)
//! re-check every outcome — including cache hits after their witness
//! remap — without `qcp_place` depending on this crate (the dependency
//! runs the other way).

use qcp_place::request::{Certifier, PlaceRequest};
use qcp_place::PlacementOutcome;

use crate::certify::{certify, VerifyOptions};

/// The standard certifier: derives [`VerifyOptions`] from the request's
/// own placer configuration and runs the full first-principles
/// [`certify`] pass.
#[derive(Clone, Copy, Debug, Default)]
pub struct PlacementCertifier;

impl Certifier for PlacementCertifier {
    fn certify(
        &self,
        request: &PlaceRequest<'_>,
        outcome: &PlacementOutcome,
    ) -> Result<String, Vec<String>> {
        let options = VerifyOptions::from_config(request.placer_config());
        match certify(request.circuit(), request.environment(), &options, outcome) {
            Ok(cert) => Ok(format!(
                "certified: {} stage(s), {} gate(s), {} swap(s); runtime recomputed {}",
                cert.stages, cert.gates, cert.swaps, cert.recomputed_runtime
            )),
            Err(violations) => Err(violations
                .iter()
                .map(|v| format!("[{}] {v}", v.code()))
                .collect()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcp_circuit::library;
    use qcp_env::{molecules, Threshold};
    use qcp_place::{execute_with, PlacementCache, PlacerConfig};

    #[test]
    fn certifier_accepts_fresh_and_remapped_cache_hits() {
        let env = molecules::acetyl_chloride();
        let circuit = library::qec3_encoder();
        let config = PlacerConfig::with_threshold(Threshold::new(100.0));
        let cache = PlacementCache::new(8);
        let request = PlaceRequest::new(&circuit, &env)
            .config(config.clone())
            .verify(true);
        let cold = execute_with(&request, Some(&cache), Some(&PlacementCertifier))
            .expect("cold place certifies");
        let summary = cold.certificate.expect("certificate present");
        assert!(summary.starts_with("certified:"));

        // A relabelled repeat must be served from cache *and* certify
        // against the relabelled circuit after the witness remap.
        let n = circuit.qubit_count();
        let relabelled = circuit.map_qubits(n, |q| qcp_circuit::Qubit::new(n - 1 - q.index()));
        let warm_request = PlaceRequest::new(&relabelled, &env)
            .config(config)
            .verify(true);
        let warm = execute_with(&warm_request, Some(&cache), Some(&PlacementCertifier))
            .expect("warm remapped hit certifies");
        assert_eq!(
            warm.cache,
            qcp_place::CacheDisposition::Hit { remapped: true }
        );
        assert!(warm
            .certificate
            .expect("certificate")
            .starts_with("certified:"));
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.remapped(), 1);
    }
}
