//! The independent placement-certificate checker.
//!
//! Everything here recomputes from primitive data — the raw assignment
//! slices, the environment's per-pair delays, the staged subcircuits —
//! and never calls into the search, routing, or costing machinery whose
//! output it judges.

use std::collections::HashMap;
use std::fmt;

use qcp_circuit::{Circuit, Time};
use qcp_env::{Environment, Threshold};
use qcp_place::{
    CostModel, ExecutionModel, PlacedGate, PlacementOutcome, PlacerConfig, Resolution, SearchBudget,
};

/// What the checker needs to know about the request that produced an
/// outcome: the fast-interaction threshold, the cost model the reported
/// runtime claims to follow, and the search budget the resolution claims
/// to have respected.
#[derive(Clone, Copy, Debug)]
pub struct VerifyOptions {
    /// Fast-interaction threshold in force for computational gates.
    pub threshold: Threshold,
    /// Cost model the reported runtime was computed under.
    pub cost_model: CostModel,
    /// Search budget the resolution is accounted against.
    pub budget: SearchBudget,
    /// Relative tolerance for the cost comparison. The checker's dynamic
    /// program applies the same delay sums in the same order as the
    /// engine, so the default is essentially exact; it only absorbs
    /// legitimate float-noise from future evaluation-order changes.
    pub tolerance: f64,
    /// Require every subcircuit interaction to run on a *fast* coupling
    /// (delay within the threshold), not merely a finite one.
    ///
    /// The pipeline only guarantees fast-edge coverage for the initial
    /// monomorphism: both refinement passes — fine tuning (§5.1) and the
    /// simulated-annealing heuristic — may legally trade a gate onto a
    /// slower coupled pair when that lowers the total runtime, which the
    /// recomputed-cost check then accounts for exactly. The universal
    /// invariant, checked unconditionally, is that every interaction runs
    /// on a pair with a finite coupling delay. Enable this stricter check
    /// only when the configuration forgoes refinement (or the topology is
    /// uniform, where fast and coupled coincide).
    pub require_fast_edges: bool,
}

impl VerifyOptions {
    /// Options for a threshold, with the default cost model, an
    /// unlimited budget, and the default tolerance.
    #[must_use]
    pub fn new(threshold: Threshold) -> Self {
        VerifyOptions {
            threshold,
            cost_model: CostModel::default(),
            budget: SearchBudget::unlimited(),
            tolerance: 1e-9,
            require_fast_edges: false,
        }
    }

    /// Enables or disables the strict fast-edge coverage check (see
    /// [`VerifyOptions::require_fast_edges`]).
    #[must_use]
    pub fn require_fast_edges(mut self, on: bool) -> Self {
        self.require_fast_edges = on;
        self
    }

    /// Extracts the verification-relevant slice of a placer
    /// configuration.
    #[must_use]
    pub fn from_config(config: &PlacerConfig) -> Self {
        VerifyOptions {
            threshold: config.threshold,
            cost_model: config.cost_model,
            budget: config.budget,
            tolerance: 1e-9,
            // Fine tuning (on by default) may legally move interactions
            // onto slow-but-coupled pairs; only the finite-coupling
            // invariant is universal.
            require_fast_edges: false,
        }
    }
}

/// A machine-readable invariant breach found by [`certify`].
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum Violation {
    /// The outcome has no stages (even an empty circuit yields one).
    NoStages,
    /// A stage's placement or subcircuit width disagrees with the
    /// circuit, or its physical side disagrees with the environment.
    WidthMismatch {
        /// Stage index.
        stage: usize,
        /// What is mismatched (`placement`, `subcircuit`, `environment`).
        what: &'static str,
        /// Expected size.
        expected: usize,
        /// Size found in the outcome.
        found: usize,
    },
    /// A stage maps a logical qubit outside the environment.
    TargetOutOfRange {
        /// Stage index.
        stage: usize,
        /// Logical qubit.
        qubit: usize,
        /// Claimed nucleus index.
        nucleus: usize,
        /// Environment size.
        env_size: usize,
    },
    /// A stage maps two logical qubits onto one nucleus.
    DuplicateTarget {
        /// Stage index.
        stage: usize,
        /// The shared nucleus.
        nucleus: usize,
        /// First logical qubit mapped there.
        first: usize,
        /// Second logical qubit mapped there.
        second: usize,
    },
    /// A computational interaction lands on a pair with no physical
    /// coupling at all (infinite delay) — no refinement pass may do
    /// this; the gate could never execute.
    UncoupledInteraction {
        /// Stage index.
        stage: usize,
        /// Logical endpoints of the gate.
        qubits: (usize, usize),
        /// Physical endpoints the stage runs the gate on.
        nuclei: (usize, usize),
    },
    /// A computational interaction lands on a coupled pair slower than
    /// the configured threshold. Only reported under
    /// [`VerifyOptions::require_fast_edges`]: refinement may legally
    /// accept such placements when they lower the total runtime.
    SlowInteraction {
        /// Stage index.
        stage: usize,
        /// Logical endpoints of the gate.
        qubits: (usize, usize),
        /// Physical endpoints the stage runs the gate on.
        nuclei: (usize, usize),
        /// The raw delay of that pair, in units (∞ = no coupling).
        delay_units: f64,
        /// The threshold in force, in units.
        threshold_units: f64,
    },
    /// The concatenated stage subcircuits do not contain exactly the
    /// gates of the input circuit (as a multiset).
    GateMultisetMismatch {
        /// Debug renderings of circuit gates missing from the stages.
        missing: Vec<String>,
        /// Debug renderings of stage gates not present in the circuit.
        extra: Vec<String>,
    },
    /// The first stage carries a swap program (nothing precedes it).
    UnexpectedInitialSwaps {
        /// Number of swaps found.
        count: usize,
    },
    /// A swap is degenerate, out of range, or overlaps another swap in
    /// the same level.
    BadSwap {
        /// Stage index.
        stage: usize,
        /// Swap level within the stage.
        level: usize,
        /// The offending pair.
        pair: (usize, usize),
        /// What is wrong with it.
        reason: &'static str,
    },
    /// A swap pair has no physical coupling at all (infinite delay).
    UncoupledSwap {
        /// Stage index.
        stage: usize,
        /// Swap level within the stage.
        level: usize,
        /// The offending pair.
        pair: (usize, usize),
    },
    /// Simulating a stage's swap program does not carry the previous
    /// stage's placement into the stage's own placement.
    RoutingMismatch {
        /// Stage index (of the later stage).
        stage: usize,
        /// Logical qubit whose value went astray.
        qubit: usize,
        /// Nucleus the stage's placement claims.
        expected: usize,
        /// Nucleus the swap simulation actually delivers the value to.
        found: usize,
    },
    /// The flat schedule does not match the one the stages describe.
    ScheduleMismatch {
        /// First level that diverges (or the level count if lengths
        /// differ).
        level: usize,
        /// Human-readable description of the divergence.
        detail: String,
    },
    /// A schedule gate addresses the same nucleus twice or an index
    /// outside the environment.
    BadScheduleGate {
        /// Schedule level.
        level: usize,
        /// Gate index within the level.
        index: usize,
        /// What is wrong with it.
        reason: &'static str,
    },
    /// The reported runtime disagrees with the independently recomputed
    /// one.
    CostMismatch {
        /// Runtime the outcome reports, in units.
        reported_units: f64,
        /// Runtime recomputed from raw delays, in units.
        recomputed_units: f64,
        /// Relative tolerance applied.
        tolerance: f64,
    },
    /// The resolution is inconsistent with the configured budget.
    BudgetInconsistent {
        /// The claimed resolution.
        resolution: Resolution,
        /// Why it cannot be true under the configured budget.
        reason: &'static str,
    },
}

impl Violation {
    /// Stable machine-readable code for this violation kind.
    #[must_use]
    pub fn code(&self) -> &'static str {
        match self {
            Violation::NoStages => "no-stages",
            Violation::WidthMismatch { .. } => "width-mismatch",
            Violation::TargetOutOfRange { .. } => "target-out-of-range",
            Violation::DuplicateTarget { .. } => "duplicate-target",
            Violation::UncoupledInteraction { .. } => "uncoupled-interaction",
            Violation::SlowInteraction { .. } => "slow-interaction",
            Violation::GateMultisetMismatch { .. } => "gate-multiset-mismatch",
            Violation::UnexpectedInitialSwaps { .. } => "unexpected-initial-swaps",
            Violation::BadSwap { .. } => "bad-swap",
            Violation::UncoupledSwap { .. } => "uncoupled-swap",
            Violation::RoutingMismatch { .. } => "routing-mismatch",
            Violation::ScheduleMismatch { .. } => "schedule-mismatch",
            Violation::BadScheduleGate { .. } => "bad-schedule-gate",
            Violation::CostMismatch { .. } => "cost-mismatch",
            Violation::BudgetInconsistent { .. } => "budget-inconsistent",
        }
    }
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::NoStages => write!(f, "outcome has no stages"),
            Violation::WidthMismatch {
                stage,
                what,
                expected,
                found,
            } => write!(
                f,
                "stage {stage}: {what} size {found} (expected {expected})"
            ),
            Violation::TargetOutOfRange {
                stage,
                qubit,
                nucleus,
                env_size,
            } => write!(
                f,
                "stage {stage}: qubit q{qubit} mapped to nucleus p{nucleus} outside the \
                 {env_size}-nucleus environment"
            ),
            Violation::DuplicateTarget {
                stage,
                nucleus,
                first,
                second,
            } => write!(
                f,
                "stage {stage}: qubits q{first} and q{second} both mapped to nucleus p{nucleus}"
            ),
            Violation::UncoupledInteraction {
                stage,
                qubits,
                nuclei,
            } => write!(
                f,
                "stage {stage}: interaction q{}–q{} runs on p{}–p{} which has no physical \
                 coupling",
                qubits.0, qubits.1, nuclei.0, nuclei.1
            ),
            Violation::SlowInteraction {
                stage,
                qubits,
                nuclei,
                delay_units,
                threshold_units,
            } => write!(
                f,
                "stage {stage}: interaction q{}–q{} runs on p{}–p{} with delay {delay_units} \
                 above the fast threshold {threshold_units}",
                qubits.0, qubits.1, nuclei.0, nuclei.1
            ),
            Violation::GateMultisetMismatch { missing, extra } => write!(
                f,
                "stages do not conserve the circuit's gates ({} missing, {} extra)",
                missing.len(),
                extra.len()
            ),
            Violation::UnexpectedInitialSwaps { count } => {
                write!(f, "first stage carries {count} swap(s)")
            }
            Violation::BadSwap {
                stage,
                level,
                pair,
                reason,
            } => write!(
                f,
                "stage {stage} swap level {level}: swap p{}–p{} is {reason}",
                pair.0, pair.1
            ),
            Violation::UncoupledSwap { stage, level, pair } => write!(
                f,
                "stage {stage} swap level {level}: swap p{}–p{} has no physical coupling",
                pair.0, pair.1
            ),
            Violation::RoutingMismatch {
                stage,
                qubit,
                expected,
                found,
            } => write!(
                f,
                "stage {stage}: swaps deliver q{qubit} to p{found}, placement claims p{expected}"
            ),
            Violation::ScheduleMismatch { level, detail } => {
                write!(f, "schedule level {level}: {detail}")
            }
            Violation::BadScheduleGate {
                level,
                index,
                reason,
            } => write!(f, "schedule level {level} gate {index}: {reason}"),
            Violation::CostMismatch {
                reported_units,
                recomputed_units,
                tolerance,
            } => write!(
                f,
                "reported runtime {reported_units} != recomputed {recomputed_units} \
                 (tolerance {tolerance})"
            ),
            Violation::BudgetInconsistent { resolution, reason } => {
                write!(f, "resolution `{resolution}` inconsistent: {reason}")
            }
        }
    }
}

/// Proof that an outcome re-validated from first principles.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Certificate {
    /// Number of stages checked.
    pub stages: usize,
    /// Computational gates conserved across the stages.
    pub gates: usize,
    /// SWAP gates validated.
    pub swaps: usize,
    /// Schedule levels re-derived and compared.
    pub schedule_levels: usize,
    /// The independently recomputed runtime (equal to the reported one
    /// within [`VerifyOptions::tolerance`]).
    pub recomputed_runtime: Time,
    /// The resolution whose budget accounting was checked.
    pub resolution: Resolution,
}

/// Re-validates `outcome` as an answer for placing `circuit` on `env`
/// under `options`, from first principles.
///
/// Returns a [`Certificate`] describing what was checked, or every
/// [`Violation`] found (the checker does not stop at the first).
///
/// # Errors
///
/// `Err` carries the non-empty violation list.
pub fn certify(
    circuit: &Circuit,
    env: &Environment,
    options: &VerifyOptions,
    outcome: &PlacementOutcome,
) -> Result<Certificate, Vec<Violation>> {
    let mut violations = Vec::new();
    let n = circuit.qubit_count();
    let m = env.qubit_count();

    if outcome.stages.is_empty() {
        violations.push(Violation::NoStages);
    }

    // --- stage-local checks: widths, injectivity, edge coverage ---
    for (si, stage) in outcome.stages.iter().enumerate() {
        let assignment = stage.placement.as_slice();
        if assignment.len() != n {
            violations.push(Violation::WidthMismatch {
                stage: si,
                what: "placement",
                expected: n,
                found: assignment.len(),
            });
        }
        if stage.placement.physical_count() != m {
            violations.push(Violation::WidthMismatch {
                stage: si,
                what: "environment",
                expected: m,
                found: stage.placement.physical_count(),
            });
        }
        if stage.subcircuit.qubit_count() != n {
            violations.push(Violation::WidthMismatch {
                stage: si,
                what: "subcircuit",
                expected: n,
                found: stage.subcircuit.qubit_count(),
            });
        }
        // Injectivity by direct occupancy marking on the raw slice.
        let mut owner: Vec<Option<usize>> = vec![None; m];
        for (q, &p) in assignment.iter().enumerate() {
            let v = p.index();
            if v >= m {
                violations.push(Violation::TargetOutOfRange {
                    stage: si,
                    qubit: q,
                    nucleus: v,
                    env_size: m,
                });
                continue;
            }
            if let Some(first) = owner[v] {
                violations.push(Violation::DuplicateTarget {
                    stage: si,
                    nucleus: v,
                    first,
                    second: q,
                });
            } else {
                owner[v] = Some(q);
            }
        }
        // Edge coverage: every interaction of the stage's subcircuit runs
        // on a physically coupled pair (finite delay) — and, under the
        // strict option, on one whose raw delay passes the fast
        // threshold. Refinement (fine tuning, annealing) may legally
        // leave a gate on a slow coupled pair, which the recomputed cost
        // then prices exactly; it may never leave one on an uncoupled
        // pair.
        for gate in stage.subcircuit.gates() {
            let Some((a, b)) = gate.coupling() else {
                continue;
            };
            let (Some(&pa), Some(&pb)) = (assignment.get(a.index()), assignment.get(b.index()))
            else {
                continue; // width mismatch already reported
            };
            if pa.index() >= m || pb.index() >= m || pa == pb {
                continue; // range/injectivity breach already reported
            }
            let delay = env.weight_units(pa, pb);
            if delay.is_infinite() {
                violations.push(Violation::UncoupledInteraction {
                    stage: si,
                    qubits: (a.index(), b.index()),
                    nuclei: (pa.index(), pb.index()),
                });
            } else if options.require_fast_edges && !options.threshold.is_fast(delay) {
                violations.push(Violation::SlowInteraction {
                    stage: si,
                    qubits: (a.index(), b.index()),
                    nuclei: (pa.index(), pb.index()),
                    delay_units: delay,
                    threshold_units: options.threshold.units(),
                });
            }
        }
    }

    // --- gate conservation across stages (multiset equality) ---
    let mut counts: HashMap<String, i64> = HashMap::new();
    for gate in circuit.gates() {
        *counts.entry(format!("{gate:?}")).or_insert(0) += 1;
    }
    for stage in &outcome.stages {
        for gate in stage.subcircuit.gates() {
            *counts.entry(format!("{gate:?}")).or_insert(0) -= 1;
        }
    }
    let mut missing: Vec<String> = Vec::new();
    let mut extra: Vec<String> = Vec::new();
    for (key, count) in &counts {
        for _ in 0..count.unsigned_abs().min(8) {
            if *count > 0 {
                missing.push(key.clone());
            } else if *count < 0 {
                extra.push(key.clone());
            }
        }
    }
    if !missing.is_empty() || !extra.is_empty() {
        missing.sort();
        extra.sort();
        violations.push(Violation::GateMultisetMismatch { missing, extra });
    }

    // --- routing: swap programs are legal and realize the permutation ---
    let mut swap_total = 0usize;
    for (si, stage) in outcome.stages.iter().enumerate() {
        let swaps = stage.swaps.levels();
        swap_total += swaps.iter().map(Vec::len).sum::<usize>();
        if si == 0 {
            let count = swaps.iter().map(Vec::len).sum();
            if count > 0 {
                violations.push(Violation::UnexpectedInitialSwaps { count });
            }
            continue;
        }
        // Token-passing simulation, written here from scratch:
        // token_at[v] is the original home of the value now at v.
        let mut token_at: Vec<usize> = (0..m).collect();
        let mut legal = true;
        for (li, level) in swaps.iter().enumerate() {
            let mut used = vec![false; m];
            for &(a, b) in level {
                let (va, vb) = (a.index(), b.index());
                if va >= m || vb >= m {
                    violations.push(Violation::BadSwap {
                        stage: si,
                        level: li,
                        pair: (va, vb),
                        reason: "out of range",
                    });
                    legal = false;
                    continue;
                }
                if va == vb {
                    violations.push(Violation::BadSwap {
                        stage: si,
                        level: li,
                        pair: (va, vb),
                        reason: "degenerate",
                    });
                    legal = false;
                    continue;
                }
                if used[va] || used[vb] {
                    violations.push(Violation::BadSwap {
                        stage: si,
                        level: li,
                        pair: (va, vb),
                        reason: "overlapping another swap in its level",
                    });
                    legal = false;
                }
                used[va] = true;
                used[vb] = true;
                if !env.weight_units(a, b).is_finite() {
                    violations.push(Violation::UncoupledSwap {
                        stage: si,
                        level: li,
                        pair: (va, vb),
                    });
                }
                token_at.swap(va, vb);
            }
        }
        if !legal {
            continue; // permutation check would only echo the breakage
        }
        let mut final_pos = vec![0usize; m];
        for (v, &t) in token_at.iter().enumerate() {
            final_pos[t] = v;
        }
        let prev = outcome.stages[si - 1].placement.as_slice();
        let here = stage.placement.as_slice();
        for (q, (&src, &dst)) in prev.iter().zip(here.iter()).enumerate() {
            if src.index() >= m || dst.index() >= m {
                continue;
            }
            if final_pos[src.index()] != dst.index() {
                violations.push(Violation::RoutingMismatch {
                    stage: si,
                    qubit: q,
                    expected: dst.index(),
                    found: final_pos[src.index()],
                });
            }
        }
    }

    // --- schedule faithfulness: rebuild it from the stages ---
    let mut expected: Vec<Vec<PlacedGate>> = Vec::new();
    for stage in &outcome.stages {
        for level in stage.swaps.levels() {
            expected.push(
                level
                    .iter()
                    .map(|&(a, b)| PlacedGate {
                        a,
                        b: Some(b),
                        weight: 3.0,
                    })
                    .collect(),
            );
        }
        for level in stage.subcircuit.levels() {
            expected.push(
                level
                    .gates()
                    .iter()
                    .map(|g| {
                        let (a, b) = g.qubits();
                        PlacedGate {
                            a: stage.placement.physical(a),
                            b: b.map(|q| stage.placement.physical(q)),
                            weight: g.time_weight(),
                        }
                    })
                    .collect(),
            );
        }
    }
    let actual = outcome.schedule.levels();
    if actual.len() != expected.len() {
        violations.push(Violation::ScheduleMismatch {
            level: actual.len().min(expected.len()),
            detail: format!(
                "schedule has {} level(s), stages describe {}",
                actual.len(),
                expected.len()
            ),
        });
    } else {
        'levels: for (li, (got, want)) in actual.iter().zip(expected.iter()).enumerate() {
            if got.len() != want.len() {
                violations.push(Violation::ScheduleMismatch {
                    level: li,
                    detail: format!("{} gate(s), stages describe {}", got.len(), want.len()),
                });
                break;
            }
            for (gi, (g, w)) in got.iter().zip(want.iter()).enumerate() {
                if g != w {
                    violations.push(Violation::ScheduleMismatch {
                        level: li,
                        detail: format!("gate {gi} is {g:?}, stages describe {w:?}"),
                    });
                    break 'levels;
                }
            }
        }
    }

    // Structural sanity of the flat schedule itself, independent of the
    // stage comparison (catches injected degenerate gates even when the
    // stage rebuild is also corrupted).
    for (li, level) in actual.iter().enumerate() {
        for (gi, gate) in level.iter().enumerate() {
            if gate.a.index() >= m || gate.b.is_some_and(|b| b.index() >= m) {
                violations.push(Violation::BadScheduleGate {
                    level: li,
                    index: gi,
                    reason: "nucleus index outside the environment",
                });
            }
            if gate.b == Some(gate.a) {
                violations.push(Violation::BadScheduleGate {
                    level: li,
                    index: gi,
                    reason: "two-qubit gate addresses one nucleus twice",
                });
            }
        }
    }

    // --- cost recomputation from raw delays ---
    let recomputed = recompute_runtime(env, &options.cost_model, actual);
    let reported = outcome.runtime.units();
    let scale = reported.abs().max(recomputed.abs()).max(1.0);
    // Written as a negated `<=` so a NaN on either side counts as a
    // mismatch rather than slipping through a `>` comparison.
    #[allow(clippy::neg_cmp_op_on_partial_ord)]
    if !((reported - recomputed).abs() <= options.tolerance * scale) {
        violations.push(Violation::CostMismatch {
            reported_units: reported,
            recomputed_units: recomputed,
            tolerance: options.tolerance,
        });
    }

    // --- budget accounting consistency ---
    match outcome.resolution {
        Resolution::Exact => {
            if options.budget.max_nodes == Some(0) {
                violations.push(Violation::BudgetInconsistent {
                    resolution: Resolution::Exact,
                    reason: "exact search cannot complete under a zero-node budget",
                });
            }
        }
        Resolution::BudgetExhausted => {
            if options.budget.is_unlimited() {
                violations.push(Violation::BudgetInconsistent {
                    resolution: Resolution::BudgetExhausted,
                    reason: "an unlimited budget cannot exhaust",
                });
            }
        }
        Resolution::Fallback => {}
    }

    if violations.is_empty() {
        Ok(Certificate {
            stages: outcome.stages.len(),
            gates: circuit.gate_count(),
            swaps: swap_total,
            schedule_levels: actual.len(),
            recomputed_runtime: Time::from_units(recomputed),
            resolution: outcome.resolution,
        })
    } else {
        Err(violations)
    }
}

/// The from-scratch busy-time dynamic program: per-nucleus finish times,
/// the §6 reuse cap on consecutive couplings of one pair (runs survive
/// free Rz pulses, break on costed ones), and the leveled/overlapped
/// barrier rule — recomputed from raw [`Environment::weight_units`]
/// delays without touching `CostEngine`.
fn recompute_runtime(env: &Environment, model: &CostModel, levels: &[Vec<PlacedGate>]) -> f64 {
    let m = env.qubit_count();
    let mut busy = vec![0.0f64; m];
    let mut partner: Vec<Option<(usize, usize)>> = vec![None; m];
    let mut runs: HashMap<(usize, usize), f64> = HashMap::new();
    for level in levels {
        if model.execution == ExecutionModel::Leveled {
            let wall = busy.iter().copied().fold(0.0, f64::max);
            busy.iter_mut().for_each(|t| *t = wall);
        }
        for gate in level {
            let i = gate.a.index();
            if i >= m {
                continue; // reported as BadScheduleGate by the caller
            }
            match gate.b {
                None => {
                    busy[i] += env.weight_units(gate.a, gate.a) * gate.weight;
                    if gate.weight > 0.0 {
                        partner[i] = None;
                    }
                }
                Some(b) => {
                    let j = b.index();
                    if j >= m || i == j {
                        continue;
                    }
                    let key = (i.min(j), i.max(j));
                    let effective = match model.reuse_cap {
                        None => gate.weight,
                        Some(cap) => {
                            let continuing = partner[i] == Some(key) && partner[j] == Some(key);
                            let prev = if continuing {
                                runs.get(&key).copied().unwrap_or(0.0)
                            } else {
                                0.0
                            };
                            let total = prev + gate.weight;
                            runs.insert(key, total);
                            total.min(cap) - prev.min(cap)
                        }
                    };
                    let start = busy[i].max(busy[j]);
                    // Mirrors the engine: an uncoupled pair is infinitely
                    // expensive even when the reuse cap zeroes `effective`
                    // (`∞ × 0` would be NaN, not ∞).
                    let delay = env.weight_units(gate.a, b);
                    let finish = if delay.is_finite() {
                        start + delay * effective
                    } else {
                        f64::INFINITY
                    };
                    busy[i] = finish;
                    busy[j] = finish;
                    partner[i] = Some(key);
                    partner[j] = Some(key);
                }
            }
        }
    }
    busy.iter().copied().fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcp_circuit::library;
    use qcp_env::{molecules, topologies};

    fn check(env: &Environment, config: &PlacerConfig, circuit: &Circuit) -> Certificate {
        let placer = qcp_place::Placer::new(env, config.clone());
        let outcome = placer.place(circuit).expect("places");
        certify(circuit, env, &VerifyOptions::from_config(config), &outcome)
            .unwrap_or_else(|v| panic!("fresh outcome must certify: {v:?}"))
    }

    #[test]
    fn fresh_outcomes_certify_across_strategies() {
        let env = topologies::grid(3, 3, topologies::Delays::default());
        let t = env.connectivity_threshold().unwrap();
        for strategy in qcp_place::Strategy::ALL {
            let config = PlacerConfig::with_threshold(t).strategy(strategy);
            let cert = check(&env, &config, &library::qft(5));
            assert!(cert.stages >= 1);
            assert_eq!(cert.gates, library::qft(5).gate_count());
        }
    }

    #[test]
    fn molecule_outcome_certifies_and_runtime_matches() {
        let env = molecules::acetyl_chloride();
        let config = PlacerConfig::with_threshold(Threshold::new(100.0));
        let cert = check(&env, &config, &library::qec3_encoder());
        assert_eq!(cert.recomputed_runtime.units(), 136.0);
    }

    #[test]
    fn cost_perturbation_is_rejected() {
        let env = molecules::acetyl_chloride();
        let config = PlacerConfig::with_threshold(Threshold::new(100.0));
        let circuit = library::qec3_encoder();
        let placer = qcp_place::Placer::new(&env, config.clone());
        let mut outcome = placer.place(&circuit).unwrap();
        outcome.runtime = Time::from_units(outcome.runtime.units() + 1.0);
        let violations = certify(
            &circuit,
            &env,
            &VerifyOptions::from_config(&config),
            &outcome,
        )
        .unwrap_err();
        assert!(violations.iter().any(|v| v.code() == "cost-mismatch"));
    }
}
