//! Independent result verification and static circuit analysis for the
//! qcp placement stack.
//!
//! The placement engine's answers are only as trustworthy as the checks
//! that stand *outside* it. Following the result-checking argument of
//! Burgholzer–Schneider–Wille (once aggressive pruning and symmetry
//! tricks enter a mapping search, an independent checker is the only
//! thing that can catch the search lying), this crate re-validates every
//! [`PlacementOutcome`](qcp_place::PlacementOutcome) from first
//! principles and deliberately shares no machinery with the VF2 bitset
//! kernels, the SWAP router, or the cost engine:
//!
//! * **Injectivity and range** of every stage's qubit map, checked
//!   directly on the raw assignment slice;
//! * **Edge coverage**: every computational interaction lands on a pair
//!   with a finite coupling delay, checked by direct
//!   [`Environment`](qcp_env::Environment) lookups (strict fast-edge
//!   coverage is opt-in — refinement may legally trade gates onto slow
//!   coupled pairs);
//! * **Routing validity**: every SWAP stage is a legal parallel swap
//!   program (disjoint per level, along finite couplings) whose
//!   token-passing simulation transforms each stage's placement into the
//!   next — the logical-to-physical tracking model of the *String
//!   Abstractions for Qubit Mapping* line of work;
//! * **Schedule faithfulness**: the flat schedule is rebuilt gate by
//!   gate from the stages and compared exactly;
//! * **Cost recomputation**: the reported runtime is recomputed from raw
//!   per-edge delays by a from-scratch busy-time dynamic program and
//!   compared within an exact tolerance;
//! * **Budget accounting**: `resolution == Exact` is inconsistent with a
//!   zero search budget, and `BudgetExhausted` with an unlimited one.
//!
//! The entry point is [`certify`]; [`lint`] adds a pre-flight static
//! analyzer for QASM/text circuits (unused qubits, placement-irrelevant
//! qubits, redundant barriers, interaction-graph statistics).
//!
//! ```
//! use qcp_circuit::library;
//! use qcp_env::molecules;
//! use qcp_place::{Placer, PlacerConfig};
//! use qcp_env::Threshold;
//! use qcp_verify::{certify, VerifyOptions};
//!
//! let env = molecules::acetyl_chloride();
//! let config = PlacerConfig::with_threshold(Threshold::new(100.0));
//! let placer = Placer::new(&env, config.clone());
//! let circuit = library::qec3_encoder();
//! let outcome = placer.place(&circuit)?;
//! let cert = certify(&circuit, &env, &VerifyOptions::from_config(&config), &outcome)
//!     .expect("a fresh outcome certifies");
//! assert_eq!(cert.recomputed_runtime, outcome.runtime);
//! # Ok::<(), qcp_place::PlaceError>(())
//! ```

#![forbid(unsafe_code)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod adapter;
mod certify;
pub mod lint;

pub use adapter::PlacementCertifier;
pub use certify::{certify, Certificate, VerifyOptions, Violation};
pub use lint::{lint_circuit, lint_qasm, CircuitStats, LintFinding, LintReport};
