//! Static circuit analysis: the pre-flight pass a placement service runs
//! before spending search budget.
//!
//! [`lint_circuit`] works on any [`Circuit`]; [`lint_qasm`] adds the
//! source-level context an OpenQASM frontend provides — register names
//! and declaration spans for wire findings, and the recorded `barrier`
//! statements (which lowering consumes) for redundancy checks.
//!
//! Findings carry stable machine-readable codes:
//!
//! * `unused-qubit` — a declared wire no gate ever touches; it widens
//!   the placement problem for nothing.
//! * `non-interacting-qubit` — a wire with single-qubit gates but no
//!   couplings; it contributes no interaction-graph weight, so its
//!   placement is irrelevant (any free nucleus does).
//! * `redundant-barrier` — a barrier adjacent to another barrier that
//!   already covers its qubits; it cannot constrain levelization further.

use std::fmt;

use qcp_circuit::qasm::QasmCircuit;
use qcp_circuit::{Circuit, SourceSpan};

/// One lint finding.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LintFinding {
    /// Stable machine-readable code (`unused-qubit`, …).
    pub code: &'static str,
    /// Source position, when the input came with spans (QASM).
    pub span: Option<SourceSpan>,
    /// The wire the finding is about, when it is about one.
    pub wire: Option<usize>,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for LintFinding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.span {
            Some(span) => write!(f, "{span}: warning[{}]: {}", self.code, self.message),
            None => write!(f, "warning[{}]: {}", self.code, self.message),
        }
    }
}

/// Width/depth/interaction-graph statistics of a circuit.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CircuitStats {
    /// Declared wires.
    pub qubits: usize,
    /// Total gates.
    pub gates: usize,
    /// Two-qubit (coupling) gates.
    pub two_qubit_gates: usize,
    /// Circuit depth in levels.
    pub depth: usize,
    /// Distinct interacting wire pairs (interaction-graph edges).
    pub interaction_pairs: usize,
    /// Maximum interaction-graph degree over all wires.
    pub max_degree: usize,
    /// Connected components of the interaction graph, counting only
    /// wires that interact (0 for a coupling-free circuit).
    pub components: usize,
    /// Wires no gate touches at all.
    pub unused_qubits: usize,
    /// Wires with gates but no couplings.
    pub non_interacting_qubits: usize,
}

/// The result of linting one circuit.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct LintReport {
    /// Findings, in deterministic (wire, then source) order.
    pub findings: Vec<LintFinding>,
    /// Structural statistics.
    pub stats: CircuitStats,
}

impl LintReport {
    /// Returns `true` when no findings were raised.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// An order-sensitive FNV-1a hash over the findings (code, wire,
    /// span), for pinning expected lint output in tests and CI.
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        let mut mix = |x: u64| {
            h ^= x;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        };
        for f in &self.findings {
            for byte in f.code.bytes() {
                mix(u64::from(byte));
            }
            mix(f.wire.map_or(u64::MAX, |w| w as u64));
            match f.span {
                Some(span) => {
                    mix(span.line as u64);
                    mix(span.col as u64);
                }
                None => mix(0),
            }
        }
        h
    }
}

/// Folds one finding stream and the shared statistics out of a circuit.
/// `name_of` renders a wire for messages; `span_of` attaches a source
/// position when the frontend has one.
fn lint_wires(
    circuit: &Circuit,
    name_of: &dyn Fn(usize) -> String,
    span_of: &dyn Fn(usize) -> Option<SourceSpan>,
) -> LintReport {
    let n = circuit.qubit_count();
    let mut touched = vec![false; n];
    let mut coupled = vec![false; n];
    let mut pairs: Vec<(usize, usize)> = Vec::new();
    let mut gates = 0usize;
    let mut two_qubit_gates = 0usize;
    for gate in circuit.gates() {
        gates += 1;
        let (a, b) = gate.qubits();
        touched[a.index()] = true;
        if let Some(b) = b {
            touched[b.index()] = true;
        }
        if let Some((a, b)) = gate.coupling() {
            two_qubit_gates += 1;
            coupled[a.index()] = true;
            coupled[b.index()] = true;
            let (x, y) = (a.index().min(b.index()), a.index().max(b.index()));
            pairs.push((x, y));
        }
    }
    pairs.sort_unstable();
    pairs.dedup();

    // Interaction-graph degree and components (union-find over pairs).
    let mut degree = vec![0usize; n];
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut [usize], mut x: usize) -> usize {
        while parent[x] != x {
            parent[x] = parent[parent[x]];
            x = parent[x];
        }
        x
    }
    for &(a, b) in &pairs {
        degree[a] += 1;
        degree[b] += 1;
        let (ra, rb) = (find(&mut parent, a), find(&mut parent, b));
        if ra != rb {
            parent[ra] = rb;
        }
    }
    let mut roots: Vec<usize> = (0..n)
        .filter(|&v| coupled[v])
        .map(|v| find(&mut parent, v))
        .collect();
    roots.sort_unstable();
    roots.dedup();

    let mut findings = Vec::new();
    let mut unused = 0usize;
    let mut non_interacting = 0usize;
    for v in 0..n {
        if !touched[v] {
            unused += 1;
            findings.push(LintFinding {
                code: "unused-qubit",
                span: span_of(v),
                wire: Some(v),
                message: format!(
                    "qubit {} is declared but never used; it widens the placement problem \
                     for nothing",
                    name_of(v)
                ),
            });
        } else if !coupled[v] {
            non_interacting += 1;
            findings.push(LintFinding {
                code: "non-interacting-qubit",
                span: span_of(v),
                wire: Some(v),
                message: format!(
                    "qubit {} never interacts; its gates carry no placement-relevant weight \
                     (any free nucleus hosts it equally well)",
                    name_of(v)
                ),
            });
        }
    }

    LintReport {
        findings,
        stats: CircuitStats {
            qubits: n,
            gates,
            two_qubit_gates,
            depth: circuit.levels().len(),
            interaction_pairs: pairs.len(),
            max_degree: degree.iter().copied().max().unwrap_or(0),
            components: roots.len(),
            unused_qubits: unused,
            non_interacting_qubits: non_interacting,
        },
    }
}

/// Lints a bare circuit (no source spans).
#[must_use]
pub fn lint_circuit(circuit: &Circuit) -> LintReport {
    lint_wires(circuit, &|v| format!("q{v}"), &|_| None)
}

/// Lints a parsed OpenQASM program: wire findings gain register names
/// and declaration spans, and the recorded `barrier` statements are
/// checked for redundancy.
#[must_use]
pub fn lint_qasm(qasm: &QasmCircuit) -> LintReport {
    let mut report = lint_wires(&qasm.circuit, &|v| qasm.wire_name(v), &|v| {
        qasm.registers
            .iter()
            .find(|r| r.wire_name(v).is_some())
            .map(|r| r.span)
    });

    // Redundant adjacent barriers: within a run of barriers with no
    // operation between them, a barrier whose qubits another barrier of
    // the run already covers adds no levelization constraint.
    let barriers = &qasm.barriers;
    for (j, b) in barriers.iter().enumerate() {
        let redundant_to = barriers.iter().enumerate().find(|&(i, other)| {
            i != j
                && other.ops_before == b.ops_before
                && b.qubits.iter().all(|q| other.qubits.contains(q))
                && (other.qubits.len() > b.qubits.len() || i < j)
        });
        if let Some((_, other)) = redundant_to {
            report.findings.push(LintFinding {
                code: "redundant-barrier",
                span: Some(b.span),
                wire: None,
                message: format!(
                    "barrier is redundant: the adjacent barrier at {} already covers its \
                     {} qubit(s)",
                    other.span,
                    b.qubits.len()
                ),
            });
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcp_circuit::qasm;

    fn parse(src: &str) -> QasmCircuit {
        qasm::parse(src).expect("test program parses")
    }

    #[test]
    fn clean_program_has_no_findings() {
        let qc =
            parse("OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[2];\nh q[0];\ncx q[0], q[1];\n");
        let report = lint_qasm(&qc);
        assert!(report.is_clean(), "{:?}", report.findings);
        assert_eq!(report.stats.qubits, 2);
        assert_eq!(report.stats.interaction_pairs, 1);
        assert_eq!(report.stats.components, 1);
    }

    #[test]
    fn unused_and_non_interacting_qubits_are_reported() {
        let qc =
            parse("OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[4];\nh q[1];\ncx q[2], q[3];\n");
        let report = lint_qasm(&qc);
        let codes: Vec<(&str, Option<usize>)> =
            report.findings.iter().map(|f| (f.code, f.wire)).collect();
        assert_eq!(
            codes,
            vec![
                ("unused-qubit", Some(0)),
                ("non-interacting-qubit", Some(1)),
            ]
        );
        assert!(report.findings[0].message.contains("q[0]"));
        assert_eq!(report.findings[0].span.map(|s| s.line), Some(3));
        assert_eq!(report.stats.unused_qubits, 1);
        assert_eq!(report.stats.non_interacting_qubits, 1);
    }

    #[test]
    fn redundant_adjacent_barriers_are_reported() {
        let qc = parse(
            "OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[3];\n\
             cx q[0], q[1];\nbarrier q;\nbarrier q[0], q[1];\ncx q[1], q[2];\n",
        );
        let report = lint_qasm(&qc);
        let redundant: Vec<&LintFinding> = report
            .findings
            .iter()
            .filter(|f| f.code == "redundant-barrier")
            .collect();
        assert_eq!(redundant.len(), 1);
        assert_eq!(redundant[0].span.map(|s| s.line), Some(6));
    }

    #[test]
    fn equal_adjacent_barriers_flag_the_second() {
        let qc = parse(
            "OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[2];\n\
             cx q[0], q[1];\nbarrier q;\nbarrier q;\ncx q[0], q[1];\n",
        );
        let report = lint_qasm(&qc);
        let redundant: Vec<&LintFinding> = report
            .findings
            .iter()
            .filter(|f| f.code == "redundant-barrier")
            .collect();
        assert_eq!(redundant.len(), 1);
        assert_eq!(redundant[0].span.map(|s| s.line), Some(6));
    }

    #[test]
    fn separated_barriers_are_not_redundant() {
        let qc = parse(
            "OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[2];\n\
             barrier q;\ncx q[0], q[1];\nbarrier q;\ncx q[0], q[1];\n",
        );
        let report = lint_qasm(&qc);
        assert!(
            report
                .findings
                .iter()
                .all(|f| f.code != "redundant-barrier"),
            "{:?}",
            report.findings
        );
    }

    #[test]
    fn fingerprint_is_order_sensitive_and_stable() {
        let qc =
            parse("OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[4];\nh q[1];\ncx q[2], q[3];\n");
        let a = lint_qasm(&qc).fingerprint();
        let b = lint_qasm(&qc).fingerprint();
        assert_eq!(a, b);
        let clean = parse("OPENQASM 2.0;\nqreg q[1];\nh q[0];\n");
        assert_ne!(a, lint_qasm(&clean).fingerprint());
    }

    #[test]
    fn bare_circuit_lint_uses_plain_wire_names() {
        let c = Circuit::from_qasm("OPENQASM 2.0;\nqreg q[2];\nh q[0];\n").unwrap();
        let report = lint_circuit(&c);
        assert_eq!(report.findings.len(), 2);
        assert!(report.findings[0].span.is_none());
        assert!(report.findings[0].message.contains("q0"));
        assert_eq!(report.findings[1].code, "unused-qubit");
    }
}
