#![allow(clippy::unwrap_used, clippy::expect_used)]
//! Corpus-wide certification properties.
//!
//! Two directions, per the verification layer's contract:
//!
//! * **Soundness of the pipeline**: every outcome any strategy produces,
//!   for every committed QASM corpus circuit on every reference topology,
//!   must certify from first principles.
//! * **Sensitivity of the checker**: minimally mutated outcomes — a
//!   qubit-pair exchange in one stage, a perturbed reported cost, a
//!   duplicated schedule gate — must all be rejected.

use proptest::prelude::*;
use qcp_circuit::{qasm, Circuit, Time};
use qcp_env::topologies::{Delays, TopologySpec};
use qcp_env::Environment;
use qcp_place::cost::PlacedGate;
use qcp_place::{PlacementOutcome, Placer, PlacerConfig, Strategy};
use qcp_verify::{certify, VerifyOptions};
use rand::SeedableRng;

/// The reference topology zoo, parsed exactly as the CLI parses
/// `--topology` arguments.
const TOPOLOGIES: [&str; 3] = ["line:16", "grid:4x4", "heavy_hex:3"];

fn corpus() -> Vec<(String, Circuit)> {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../tests/qasm");
    let mut stems: Vec<std::path::PathBuf> = std::fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", dir.display()))
        .filter_map(std::result::Result::ok)
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "qasm"))
        .collect();
    stems.sort();
    stems
        .into_iter()
        .map(|path| {
            let text = std::fs::read_to_string(&path).unwrap();
            let circuit = qasm::parse(&text)
                .unwrap_or_else(|e| panic!("{} does not parse: {e}", path.display()))
                .circuit;
            let stem = path.file_stem().unwrap().to_string_lossy().into_owned();
            (stem, circuit)
        })
        .collect()
}

fn build_env(spec: &str) -> Environment {
    let parsed: TopologySpec = spec.parse().unwrap();
    parsed.build(Delays::default())
}

fn config_for(env: &Environment, strategy: Strategy) -> PlacerConfig {
    let threshold = env.connectivity_threshold().unwrap();
    PlacerConfig::with_threshold(threshold)
        .candidates(30)
        .strategy(strategy)
}

/// A placed corpus case ready for mutation: the outcome plus everything
/// the checker needs to judge it.
fn place_case(
    circuit: &Circuit,
    spec: &str,
    strategy: Strategy,
) -> (Environment, PlacerConfig, PlacementOutcome) {
    let env = build_env(spec);
    let config = config_for(&env, strategy);
    let outcome = Placer::new(&env, config.clone())
        .place(circuit)
        .unwrap_or_else(|e| panic!("{spec}/{} must place: {e}", strategy.name()));
    (env, config, outcome)
}

#[test]
fn every_strategy_output_certifies_across_corpus_and_zoo() {
    for (stem, circuit) in corpus() {
        for spec in TOPOLOGIES {
            for strategy in Strategy::ALL {
                let (env, config, outcome) = place_case(&circuit, spec, strategy);
                let options = VerifyOptions::from_config(&config);
                let cert = certify(&circuit, &env, &options, &outcome).unwrap_or_else(|v| {
                    panic!(
                        "{stem}@{spec} ({}) fails certification: {v:?}",
                        strategy.name()
                    )
                });
                assert_eq!(cert.gates, circuit.gate_count());
                assert!(cert.stages >= 1);
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn qubit_swap_mutation_is_rejected(seed in any::<u64>()) {
        // Exchanging two qubits' nuclei in one stage breaks edge
        // coverage, routing consistency, or the recomputed cost — the
        // checker must notice through at least one lens.
        let cases = corpus();
        let two_qubit: Vec<&(String, Circuit)> = cases
            .iter()
            .filter(|(_, c)| c.qubit_count() >= 2 && c.two_qubit_gate_count() > 0)
            .collect();
        let (stem, circuit) = two_qubit[(seed as usize) % two_qubit.len()];
        let spec = TOPOLOGIES[(seed as usize / 7) % TOPOLOGIES.len()];
        let (env, config, mut outcome) = place_case(circuit, spec, Strategy::Hybrid);
        let si = (seed as usize / 31) % outcome.stages.len();
        let n = circuit.qubit_count();
        let qa = qcp_circuit::Qubit::new((seed as usize / 3) % n);
        let qb = qcp_circuit::Qubit::new(((seed as usize / 3) + 1) % n);
        let vb = outcome.stages[si].placement.physical(qb);
        outcome.stages[si].placement = outcome.stages[si].placement.with_move(qa, vb);
        let options = VerifyOptions::from_config(&config);
        let violations = certify(circuit, &env, &options, &outcome)
            .err()
            .unwrap_or_else(|| panic!("{stem}@{spec} stage {si}: swapped q{} and q{} must not certify",
                qa.index(), qb.index()));
        prop_assert!(!violations.is_empty());
    }

    #[test]
    fn cost_perturbation_is_rejected(seed in any::<u64>(), bump in 1.0f64..50.0) {
        let cases = corpus();
        let (stem, circuit) = &cases[(seed as usize) % cases.len()];
        let spec = TOPOLOGIES[(seed as usize / 7) % TOPOLOGIES.len()];
        let (env, config, mut outcome) = place_case(circuit, spec, Strategy::Hybrid);
        outcome.runtime = Time::from_units(outcome.runtime.units() + bump);
        let options = VerifyOptions::from_config(&config);
        let violations = certify(circuit, &env, &options, &outcome)
            .err()
            .unwrap_or_else(|| panic!("{stem}@{spec}: perturbed runtime must not certify"));
        prop_assert!(violations.iter().any(|v| v.code() == "cost-mismatch"));
    }

    #[test]
    fn duplicated_schedule_gate_is_rejected(seed in any::<u64>()) {
        // Appending a copy of a schedule gate desynchronizes the flat
        // schedule from the stages (and the recomputed cost).
        let cases = corpus();
        let with_gates: Vec<&(String, Circuit)> = cases
            .iter()
            .filter(|(_, c)| c.gate_count() > 0)
            .collect();
        let (stem, circuit) = with_gates[(seed as usize) % with_gates.len()];
        let spec = TOPOLOGIES[(seed as usize / 7) % TOPOLOGIES.len()];
        let (env, config, mut outcome) = place_case(circuit, spec, Strategy::Hybrid);
        let dup: PlacedGate = outcome.schedule.levels()[0][0];
        outcome.schedule.push_level(vec![dup]);
        let options = VerifyOptions::from_config(&config);
        let violations = certify(circuit, &env, &options, &outcome)
            .err()
            .unwrap_or_else(|| panic!("{stem}@{spec}: duplicated schedule gate must not certify"));
        prop_assert!(!violations.is_empty());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    // Cache hits are as trustworthy as cold placements: a relabelled
    // corpus circuit served from the cache via a witness remap must
    // certify from first principles against the *relabelled* circuit.
    #[test]
    fn remapped_cache_hits_certify_across_corpus(seed in any::<u64>()) {
        use qcp_place::{execute_with, CacheDisposition, PlaceRequest, PlacementCache};
        use qcp_verify::PlacementCertifier;

        let cases = corpus();
        let (stem, circuit) = &cases[(seed as usize) % cases.len()];
        let spec = TOPOLOGIES[(seed as usize / 7) % TOPOLOGIES.len()];
        let env = build_env(spec);
        let config = config_for(&env, Strategy::Exact);
        let cache = PlacementCache::new(4);

        let cold = execute_with(
            &PlaceRequest::new(circuit, &env).config(config.clone()).verify(true),
            Some(&cache),
            Some(&PlacementCertifier),
        )
        .unwrap_or_else(|e| panic!("{stem}@{spec} cold: {e}"));
        prop_assert_eq!(cold.cache, CacheDisposition::Miss);
        prop_assert!(cold.certificate.is_some());

        // Random relabelling, then the warm request with verification on:
        // the executor certifies the remapped outcome before returning it.
        let n = circuit.qubit_count();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let perm = qcp_graph::generate::random_permutation(n, &mut rng);
        let relabelled = circuit.map_qubits(n, |q| qcp_circuit::Qubit::new(perm[q.index()]));
        let warm = execute_with(
            &PlaceRequest::new(&relabelled, &env).config(config).verify(true),
            Some(&cache),
            Some(&PlacementCertifier),
        )
        .unwrap_or_else(|e| panic!("{stem}@{spec} warm: {e}"));
        prop_assert!(matches!(warm.cache, CacheDisposition::Hit { .. }), "{:?}", warm.cache);
        let summary = warm.certificate.expect("warm certificate");
        prop_assert!(summary.starts_with("certified:"), "{summary}");
        prop_assert_eq!(warm.outcome.runtime, cold.outcome.runtime);
    }
}
