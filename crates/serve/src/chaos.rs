//! Fault-injection clients for the `serve_faults` harness.
//!
//! These are deliberately *raw-socket* helpers — no HTTP library on
//! either side — so the tests can speak byte-exact malformed, truncated,
//! oversized, and slowloris requests that a well-behaved client type
//! would refuse to construct. Server-side faults (worker panics, slow
//! jobs) are injected through the `x-qcp-chaos` header, honored only when
//! [`crate::ServeConfig::chaos`] is enabled.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// A parsed daemon reply: status code plus the (JSON) body.
#[derive(Clone, Debug)]
pub struct Response {
    /// The HTTP status code from the status line.
    pub status: u16,
    /// The response body (everything after the blank line).
    pub body: String,
}

/// Writes `raw` bytes verbatim and reads the reply to EOF (the daemon
/// answers one request per connection and closes).
///
/// # Errors
///
/// Propagates connect/read/write failures; `InvalidData` when the reply
/// has no parseable status line.
pub fn send_raw(addr: SocketAddr, raw: &[u8], read_timeout: Duration) -> std::io::Result<Response> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(read_timeout))?;
    stream.write_all(raw)?;
    stream.flush()?;
    read_reply(&mut stream)
}

/// Reads a full reply (to EOF) from an already-open stream and parses the
/// status line. Useful after hand-feeding a partial request.
///
/// # Errors
///
/// Propagates read failures; `InvalidData` when the status line is
/// missing or malformed.
pub fn read_reply(stream: &mut TcpStream) -> std::io::Result<Response> {
    let mut buf = Vec::new();
    stream.read_to_end(&mut buf)?;
    let text = String::from_utf8_lossy(&buf);
    parse_reply(&text).ok_or_else(|| {
        std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("no HTTP status line in reply: {text:?}"),
        )
    })
}

fn parse_reply(text: &str) -> Option<Response> {
    let status_line = text.lines().next()?;
    let mut parts = status_line.split_whitespace();
    let version = parts.next()?;
    if !version.starts_with("HTTP/") {
        return None;
    }
    let status: u16 = parts.next()?.parse().ok()?;
    let body = text
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    Some(Response { status, body })
}

/// Sends a well-formed `GET` and returns the reply.
///
/// # Errors
///
/// See [`send_raw`].
pub fn get(addr: SocketAddr, path: &str) -> std::io::Result<Response> {
    let raw = format!("GET {path} HTTP/1.1\r\nhost: qcp\r\n\r\n");
    send_raw(addr, raw.as_bytes(), Duration::from_secs(30))
}

/// Sends a well-formed `POST` with optional extra headers and a body,
/// and returns the reply.
///
/// # Errors
///
/// See [`send_raw`].
pub fn post(
    addr: SocketAddr,
    path_query: &str,
    headers: &[(&str, &str)],
    body: &str,
) -> std::io::Result<Response> {
    let mut raw = format!(
        "POST {path_query} HTTP/1.1\r\nhost: qcp\r\ncontent-length: {}\r\n",
        body.len()
    );
    for (name, value) in headers {
        raw.push_str(name);
        raw.push_str(": ");
        raw.push_str(value);
        raw.push_str("\r\n");
    }
    raw.push_str("\r\n");
    raw.push_str(body);
    send_raw(addr, raw.as_bytes(), Duration::from_secs(30))
}

/// Opens a connection, sends only a *partial* request head, and holds the
/// socket open without further bytes — the classic slowloris shape. The
/// daemon's absolute read deadline should answer `408` on its own; this
/// helper then reads that reply.
///
/// # Errors
///
/// Propagates connect/read/write failures. A server that (incorrectly)
/// slams the connection instead of answering surfaces as `InvalidData`
/// or an empty-reply read error.
pub fn slowloris(addr: SocketAddr, read_timeout: Duration) -> std::io::Result<Response> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(read_timeout))?;
    // A plausible prefix, never completed: no terminating blank line.
    stream.write_all(b"POST /place?circuit=qec3&env=grid:2x3 HTTP/1.1\r\nhost: qcp\r\n")?;
    stream.flush()?;
    read_reply(&mut stream)
}

/// Sends a request whose `content-length` promises more bytes than are
/// ever delivered, then half-closes the write side — a truncated upload.
///
/// # Errors
///
/// See [`send_raw`].
pub fn truncated_post(addr: SocketAddr, path_query: &str) -> std::io::Result<Response> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(30)))?;
    let raw = format!(
        "POST {path_query} HTTP/1.1\r\nhost: qcp\r\ncontent-length: 64\r\n\r\nOPENQASM 2.0;"
    );
    stream.write_all(raw.as_bytes())?;
    stream.flush()?;
    stream.shutdown(std::net::Shutdown::Write)?;
    read_reply(&mut stream)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reply_parsing_extracts_status_and_body() {
        let r = parse_reply("HTTP/1.1 429 Too Many Requests\r\na: b\r\n\r\n{\"ok\":false}")
            .expect("parse");
        assert_eq!(r.status, 429);
        assert_eq!(r.body, "{\"ok\":false}");
        assert!(parse_reply("garbage").is_none());
        assert!(parse_reply("").is_none());
    }
}
