//! Minimal hand-rolled JSON emission.
//!
//! The workspace is offline (no serde), and the server only ever *writes*
//! JSON — request bodies are QASM/text circuits, not JSON — so a tiny
//! escaping writer is all the dependency surface we need. Emission is
//! strict: strings are escaped per RFC 8259, and non-finite floats (which
//! JSON cannot represent) are emitted as `null` rather than producing
//! invalid documents.

use std::fmt::Write as _;

/// Escapes `s` for inclusion inside a JSON string literal (without the
/// surrounding quotes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// An append-only JSON object writer.
///
/// ```
/// use qcp_serve::json::Obj;
/// let mut o = Obj::new();
/// o.str("kind", "parse").u64("line", 3).bool("ok", false);
/// assert_eq!(o.finish(), r#"{"kind":"parse","line":3,"ok":false}"#);
/// ```
#[derive(Debug)]
pub struct Obj {
    buf: String,
    first: bool,
}

impl Default for Obj {
    fn default() -> Self {
        Obj::new()
    }
}

impl Obj {
    /// Starts an empty object.
    pub fn new() -> Self {
        Obj {
            buf: String::from("{"),
            first: true,
        }
    }

    fn key(&mut self, name: &str) -> &mut Self {
        if !self.first {
            self.buf.push(',');
        }
        self.first = false;
        let _ = write!(self.buf, "\"{}\":", escape(name));
        self
    }

    /// Adds a string field.
    pub fn str(&mut self, name: &str, value: &str) -> &mut Self {
        self.key(name);
        let _ = write!(self.buf, "\"{}\"", escape(value));
        self
    }

    /// Adds an unsigned integer field.
    pub fn u64(&mut self, name: &str, value: u64) -> &mut Self {
        self.key(name);
        let _ = write!(self.buf, "{value}");
        self
    }

    /// Adds a float field (`null` for non-finite values, which JSON
    /// cannot carry).
    pub fn f64(&mut self, name: &str, value: f64) -> &mut Self {
        self.key(name);
        if value.is_finite() {
            let _ = write!(self.buf, "{value}");
        } else {
            self.buf.push_str("null");
        }
        self
    }

    /// Adds a boolean field.
    pub fn bool(&mut self, name: &str, value: bool) -> &mut Self {
        self.key(name);
        self.buf.push_str(if value { "true" } else { "false" });
        self
    }

    /// Adds a pre-rendered JSON value (object, array, …) verbatim.
    pub fn raw(&mut self, name: &str, value: &str) -> &mut Self {
        self.key(name);
        self.buf.push_str(value);
        self
    }

    /// Closes the object and returns the document.
    pub fn finish(&self) -> String {
        let mut out = self.buf.clone();
        out.push('}');
        out
    }
}

/// Renders a `usize` slice as a JSON array (`[3,1,2]`).
pub fn array_usize(items: impl IntoIterator<Item = usize>) -> String {
    let mut out = String::from("[");
    for (i, v) in items.into_iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{v}");
    }
    out.push(']');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaping_covers_controls_and_quotes() {
        assert_eq!(escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(escape("line\nbreak\ttab"), "line\\nbreak\\ttab");
        assert_eq!(escape("\u{1}"), "\\u0001");
        assert_eq!(escape("π≈3"), "π≈3");
    }

    #[test]
    fn object_builder_produces_valid_documents() {
        let mut o = Obj::new();
        o.str("s", "x\"y")
            .u64("n", 42)
            .f64("f", 1.5)
            .f64("inf", f64::INFINITY)
            .bool("b", true)
            .raw("a", &array_usize([1, 2, 3]));
        assert_eq!(
            o.finish(),
            r#"{"s":"x\"y","n":42,"f":1.5,"inf":null,"b":true,"a":[1,2,3]}"#
        );
        assert_eq!(Obj::new().finish(), "{}");
        assert_eq!(array_usize([]), "[]");
    }
}
