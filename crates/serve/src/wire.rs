//! The service error taxonomy: one vocabulary shared by HTTP status
//! codes, JSON error bodies, and the CLI exit codes.
//!
//! Every failure the daemon can hand a client maps to exactly one
//! [`ErrorKind`]; the kind decides the HTTP status, the stable
//! machine-readable `kind` token in the JSON body, and — for the kinds
//! that also exist as CLI outcomes — the process exit code documented in
//! GUIDE.md §9 (0 ok, 2 parse/input, 3 budget-exhausted, 4 verify-reject,
//! 5 internal). The placement pipeline side of the mapping lives in
//! [`qcp_place::FailureClass`]; this module adds the transport-only kinds
//! (shedding, slow clients, drain) a CLI run can never see.

use qcp_place::{FailureClass, PlaceError};

use crate::json::Obj;

/// Every way a request can fail, from the client's point of view.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum ErrorKind {
    /// The request body or parameters could not be parsed (malformed
    /// QASM/text circuit, bad topology spec, unknown option).
    Parse,
    /// The request is well-formed but cannot be satisfied (circuit larger
    /// than the device, threshold kills every interaction, …).
    Input,
    /// No such endpoint.
    NotFound,
    /// Endpoint exists, method is wrong.
    Method,
    /// The client fed bytes too slowly (slowloris) and tripped the read
    /// deadline.
    SlowClient,
    /// The declared or actual body size exceeds the configured cap; the
    /// body is not read.
    Oversize,
    /// The request head exceeded the header-size cap.
    HeadersTooLarge,
    /// The bounded queue is full: explicit load shedding, retry later.
    Overload,
    /// The search budget (deadline or node cap) tripped before the
    /// strategy committed an answer (only reachable with `strategy=exact`;
    /// hybrid degrades instead).
    BudgetExhausted,
    /// An outcome failed independent certification (reserved for parity
    /// with the CLI taxonomy; the daemon does not re-certify by default).
    VerifyReject,
    /// The server is draining and no longer accepts work.
    Draining,
    /// A worker panicked or an invariant broke: a bug, not a bad request.
    Internal,
}

impl ErrorKind {
    /// The HTTP status code this kind is answered with.
    pub fn status(self) -> u16 {
        match self {
            ErrorKind::Parse | ErrorKind::Input => 400,
            ErrorKind::NotFound => 404,
            ErrorKind::Method => 405,
            ErrorKind::SlowClient => 408,
            ErrorKind::Oversize => 413,
            ErrorKind::Overload => 429,
            ErrorKind::HeadersTooLarge => 431,
            ErrorKind::VerifyReject => 422,
            ErrorKind::Internal => 500,
            ErrorKind::Draining => 503,
            ErrorKind::BudgetExhausted => 504,
        }
    }

    /// The HTTP reason phrase for [`status`](ErrorKind::status).
    pub fn reason(self) -> &'static str {
        match self {
            ErrorKind::Parse | ErrorKind::Input => "Bad Request",
            ErrorKind::NotFound => "Not Found",
            ErrorKind::Method => "Method Not Allowed",
            ErrorKind::SlowClient => "Request Timeout",
            ErrorKind::Oversize => "Payload Too Large",
            ErrorKind::Overload => "Too Many Requests",
            ErrorKind::HeadersTooLarge => "Request Header Fields Too Large",
            ErrorKind::VerifyReject => "Unprocessable Entity",
            ErrorKind::Internal => "Internal Server Error",
            ErrorKind::Draining => "Service Unavailable",
            ErrorKind::BudgetExhausted => "Gateway Timeout",
        }
    }

    /// The stable machine-readable token carried in JSON error bodies.
    pub fn wire_code(self) -> &'static str {
        match self {
            ErrorKind::Parse => "parse",
            ErrorKind::Input => "input",
            ErrorKind::NotFound => "not-found",
            ErrorKind::Method => "method-not-allowed",
            ErrorKind::SlowClient => "slow-client",
            ErrorKind::Oversize => "oversize",
            ErrorKind::HeadersTooLarge => "headers-too-large",
            ErrorKind::Overload => "overload",
            ErrorKind::BudgetExhausted => "budget-exhausted",
            ErrorKind::VerifyReject => "verify-reject",
            ErrorKind::Draining => "draining",
            ErrorKind::Internal => "internal",
        }
    }

    /// The CLI exit code of the equivalent batch/place failure, where one
    /// exists (`None` for transport-only kinds a CLI run cannot hit).
    /// Keeping this mapping next to the wire codes is what guarantees
    /// scripts and the daemon share one error vocabulary.
    pub fn exit_code(self) -> Option<u8> {
        match self {
            ErrorKind::Parse | ErrorKind::Input => Some(2),
            ErrorKind::BudgetExhausted => Some(3),
            ErrorKind::VerifyReject => Some(4),
            ErrorKind::Internal => Some(5),
            _ => None,
        }
    }

    /// Classifies a placement-pipeline error into its service kind.
    pub fn from_place_error(e: &PlaceError) -> Self {
        match e.class() {
            FailureClass::Input => ErrorKind::Input,
            FailureClass::Budget => ErrorKind::BudgetExhausted,
            FailureClass::Internal => ErrorKind::Internal,
            FailureClass::Verification => ErrorKind::VerifyReject,
        }
    }
}

/// Renders the canonical JSON error body for `kind`:
/// `{"ok":false,"error":{"kind":…,"status":…,"exit_code":…,"message":…}}`.
pub fn error_body(kind: ErrorKind, message: &str) -> String {
    let mut inner = Obj::new();
    inner
        .str("kind", kind.wire_code())
        .u64("status", u64::from(kind.status()));
    if let Some(code) = kind.exit_code() {
        inner.u64("exit_code", u64::from(code));
    }
    inner.str("message", message);
    let mut outer = Obj::new();
    outer.bool("ok", false).raw("error", &inner.finish());
    outer.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn statuses_and_codes_are_stable() {
        assert_eq!(ErrorKind::Parse.status(), 400);
        assert_eq!(ErrorKind::Overload.status(), 429);
        assert_eq!(ErrorKind::Oversize.status(), 413);
        assert_eq!(ErrorKind::SlowClient.status(), 408);
        assert_eq!(ErrorKind::Internal.status(), 500);
        assert_eq!(ErrorKind::BudgetExhausted.status(), 504);
        assert_eq!(ErrorKind::Parse.exit_code(), Some(2));
        assert_eq!(ErrorKind::BudgetExhausted.exit_code(), Some(3));
        assert_eq!(ErrorKind::VerifyReject.exit_code(), Some(4));
        assert_eq!(ErrorKind::Internal.exit_code(), Some(5));
        assert_eq!(ErrorKind::Overload.exit_code(), None);
    }

    #[test]
    fn place_errors_map_through_failure_classes() {
        assert_eq!(
            ErrorKind::from_place_error(&PlaceError::NoFastInteractions),
            ErrorKind::Input
        );
        assert_eq!(
            ErrorKind::from_place_error(&PlaceError::BudgetExhausted { nodes: 1 }),
            ErrorKind::BudgetExhausted
        );
        assert_eq!(
            ErrorKind::from_place_error(&PlaceError::Internal {
                message: "x".into()
            }),
            ErrorKind::Internal
        );
    }

    #[test]
    fn error_bodies_are_structured() {
        let body = error_body(ErrorKind::Parse, "bad `gate` at 3:7");
        assert!(body.starts_with("{\"ok\":false,"));
        assert!(body.contains("\"kind\":\"parse\""));
        assert!(body.contains("\"exit_code\":2"));
        assert!(body.contains("3:7"));
        let body = error_body(ErrorKind::Overload, "queue full");
        assert!(!body.contains("exit_code"));
    }
}
