//! Hand-rolled HTTP/1.1 request reading and response writing.
//!
//! Deliberately minimal — one request per connection, `Connection: close`
//! on every response, no chunked bodies, no keep-alive — because every
//! feature is attack surface on a server whose job is to stay up. What
//! *is* here is defensive: absolute read deadlines (a slowloris client
//! cannot hold a worker past the configured window, however slowly it
//! drips bytes), hard caps on head and body sizes enforced *before*
//! allocation grows, and a strict parse that rejects anything ambiguous.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// Read-side limits for one request.
#[derive(Clone, Copy, Debug)]
pub struct Limits {
    /// Cap on the request head (request line + headers), in bytes.
    pub max_header_bytes: usize,
    /// Cap on the declared and actual body size, in bytes.
    pub max_body_bytes: usize,
    /// Absolute deadline for receiving the full request head, measured
    /// from the first read.
    pub header_deadline: Duration,
    /// Absolute deadline for receiving the full body once the head is in.
    pub body_deadline: Duration,
}

impl Default for Limits {
    fn default() -> Self {
        Limits {
            max_header_bytes: 8 * 1024,
            max_body_bytes: 256 * 1024,
            header_deadline: Duration::from_secs(2),
            body_deadline: Duration::from_secs(2),
        }
    }
}

/// A parsed request: method, split target, lower-cased headers, raw body.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Request {
    /// The HTTP method, upper-case as received (`GET`, `POST`, …).
    pub method: String,
    /// The path component of the target (before `?`).
    pub path: String,
    /// The raw query string (after `?`, empty if absent).
    pub query: String,
    /// Headers with lower-cased names, in arrival order.
    pub headers: Vec<(String, String)>,
    /// The request body (at most [`Limits::max_body_bytes`]).
    pub body: Vec<u8>,
}

impl Request {
    /// The first header with (lower-case) name `name`, trimmed.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.trim())
    }

    /// The query string split into percent-decoded `key=value` pairs
    /// (`+` decodes to space; keys without `=` get an empty value).
    pub fn query_params(&self) -> Vec<(String, String)> {
        self.query
            .split('&')
            .filter(|part| !part.is_empty())
            .map(|part| {
                let (k, v) = part.split_once('=').unwrap_or((part, ""));
                (percent_decode(k), percent_decode(v))
            })
            .collect()
    }
}

/// Percent-decodes a query component (`%41` → `A`, `+` → space); invalid
/// escapes pass through verbatim rather than failing the request.
pub fn percent_decode(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b'%' => {
                let hex = bytes.get(i + 1..i + 3).and_then(|pair| {
                    let hi = (pair[0] as char).to_digit(16)?;
                    let lo = (pair[1] as char).to_digit(16)?;
                    Some((hi * 16 + lo) as u8)
                });
                match hex {
                    Some(b) => {
                        out.push(b);
                        i += 3;
                    }
                    None => {
                        out.push(b'%');
                        i += 1;
                    }
                }
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// Why a request could not be read.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RequestError {
    /// The client closed before sending a single byte — not an error
    /// worth answering (health probes do this); just drop the connection.
    Disconnected,
    /// The client tripped a read deadline (slowloris or stalled body).
    SlowClient,
    /// The request head outgrew [`Limits::max_header_bytes`].
    HeadersTooLarge,
    /// The declared `Content-Length` exceeds [`Limits::max_body_bytes`].
    BodyTooLarge {
        /// What the client declared (or had sent when the cap tripped).
        declared: usize,
        /// The configured cap.
        limit: usize,
    },
    /// Anything structurally wrong: bad request line, truncated head or
    /// body, unsupported transfer encoding, unparsable `Content-Length`.
    Malformed(String),
}

/// Reads one full request from `stream` under `limits`.
///
/// # Errors
///
/// See [`RequestError`]; the caller maps each variant onto the error
/// taxonomy (408 / 413 / 431 / 400) and answers accordingly.
pub fn read_request(stream: &mut TcpStream, limits: &Limits) -> Result<Request, RequestError> {
    let start = Instant::now();
    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    let mut chunk = [0u8; 4096];

    // Phase 1: the request head, under an absolute deadline.
    let head_end = loop {
        if let Some(pos) = find_head_end(&buf) {
            break pos;
        }
        if buf.len() > limits.max_header_bytes {
            return Err(RequestError::HeadersTooLarge);
        }
        let remaining = limits
            .header_deadline
            .checked_sub(start.elapsed())
            .ok_or(RequestError::SlowClient)?;
        match timed_read(stream, &mut chunk, remaining) {
            ReadStep::Data(n) => buf.extend_from_slice(&chunk[..n]),
            ReadStep::Eof if buf.is_empty() => return Err(RequestError::Disconnected),
            ReadStep::Eof => return Err(RequestError::Malformed("truncated request head".into())),
            ReadStep::TimedOut => return Err(RequestError::SlowClient),
            ReadStep::Failed(e) => {
                return Err(RequestError::Malformed(format!("read failed: {e}")))
            }
        }
    };

    let head = String::from_utf8_lossy(&buf[..head_end]).into_owned();
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or_default();
    let mut parts = request_line.split(' ');
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v), None) if !m.is_empty() && !t.is_empty() => (m, t, v),
        _ => {
            return Err(RequestError::Malformed(format!(
                "bad request line `{request_line}`"
            )))
        }
    };
    if version != "HTTP/1.1" && version != "HTTP/1.0" {
        return Err(RequestError::Malformed(format!(
            "unsupported protocol `{version}`"
        )));
    }
    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(RequestError::Malformed(format!("bad header `{line}`")));
        };
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }

    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), q.to_string()),
        None => (target.to_string(), String::new()),
    };

    // Phase 2: the body. `Transfer-Encoding` is rejected outright; a
    // missing `Content-Length` means an empty body.
    let mut request = Request {
        method: method.to_string(),
        path,
        query,
        headers,
        body: Vec::new(),
    };
    if request.header("transfer-encoding").is_some() {
        return Err(RequestError::Malformed(
            "chunked transfer encoding is not supported".into(),
        ));
    }
    let declared: usize = match request.header("content-length") {
        None => 0,
        Some(v) => v
            .parse()
            .map_err(|_| RequestError::Malformed(format!("bad content-length `{v}`")))?,
    };
    if declared > limits.max_body_bytes {
        return Err(RequestError::BodyTooLarge {
            declared,
            limit: limits.max_body_bytes,
        });
    }

    let mut body = buf.split_off(head_end + 4);
    body.truncate(declared);
    let body_start = Instant::now();
    while body.len() < declared {
        let remaining = limits
            .body_deadline
            .checked_sub(body_start.elapsed())
            .ok_or(RequestError::SlowClient)?;
        match timed_read(stream, &mut chunk, remaining) {
            ReadStep::Data(n) => {
                let take = n.min(declared - body.len());
                body.extend_from_slice(&chunk[..take]);
            }
            ReadStep::Eof => {
                return Err(RequestError::Malformed(format!(
                    "truncated body: got {} of {declared} declared byte(s)",
                    body.len()
                )))
            }
            ReadStep::TimedOut => return Err(RequestError::SlowClient),
            ReadStep::Failed(e) => {
                return Err(RequestError::Malformed(format!("read failed: {e}")))
            }
        }
    }
    request.body = body;
    Ok(request)
}

/// One bounded read attempt.
enum ReadStep {
    Data(usize),
    Eof,
    TimedOut,
    Failed(std::io::Error),
}

fn timed_read(stream: &mut TcpStream, chunk: &mut [u8], remaining: Duration) -> ReadStep {
    // A zero timeout is "no timeout" to the OS; clamp up instead.
    let timeout = remaining.max(Duration::from_millis(1));
    if stream.set_read_timeout(Some(timeout)).is_err() {
        return ReadStep::Failed(std::io::Error::other("set_read_timeout failed"));
    }
    match stream.read(chunk) {
        Ok(0) => ReadStep::Eof,
        Ok(n) => ReadStep::Data(n),
        Err(e)
            if e.kind() == std::io::ErrorKind::WouldBlock
                || e.kind() == std::io::ErrorKind::TimedOut =>
        {
            ReadStep::TimedOut
        }
        Err(e) => ReadStep::Failed(e),
    }
}

fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// Writes a complete JSON response (`Connection: close`) and flushes.
///
/// # Errors
///
/// Propagates I/O failures; callers treat a failed write as a dead
/// client and simply drop the connection.
pub fn write_response(
    stream: &mut TcpStream,
    status: u16,
    reason: &str,
    body: &str,
) -> std::io::Result<()> {
    let head = format!(
        "HTTP/1.1 {status} {reason}\r\n\
         content-type: application/json\r\n\
         content-length: {}\r\n\
         connection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};

    fn roundtrip(raw: &[u8], limits: &Limits) -> Result<Request, RequestError> {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let raw = raw.to_vec();
        let client = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            s.write_all(&raw).unwrap();
            // Keep the socket open long enough for the server side to
            // finish reading, then drop it.
            std::thread::sleep(Duration::from_millis(50));
        });
        let (mut stream, _) = listener.accept().unwrap();
        let result = read_request(&mut stream, limits);
        client.join().unwrap();
        result
    }

    #[test]
    fn parses_a_full_post() {
        let raw = b"POST /place?env=grid:2x3&circuit=qec3 HTTP/1.1\r\n\
                    Host: x\r\nContent-Length: 5\r\nX-Qcp-Chaos: panic\r\n\r\nhello";
        let req = roundtrip(raw, &Limits::default()).unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/place");
        assert_eq!(req.header("x-qcp-chaos"), Some("panic"));
        assert_eq!(req.body, b"hello");
        let params = req.query_params();
        assert_eq!(params[0], ("env".into(), "grid:2x3".into()));
        assert_eq!(params[1], ("circuit".into(), "qec3".into()));
    }

    #[test]
    fn rejects_declared_oversize_without_reading_the_body() {
        let raw = b"POST /place HTTP/1.1\r\nContent-Length: 999999999\r\n\r\n";
        match roundtrip(raw, &Limits::default()) {
            Err(RequestError::BodyTooLarge { declared, .. }) => {
                assert_eq!(declared, 999_999_999);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn slow_header_trips_the_deadline() {
        let limits = Limits {
            header_deadline: Duration::from_millis(120),
            ..Limits::default()
        };
        // Partial head, never completed: the absolute deadline must trip.
        let raw = b"POST /place HTTP/1.1\r\nHost: x";
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            s.write_all(raw).unwrap();
            std::thread::sleep(Duration::from_millis(400));
        });
        let (mut stream, _) = listener.accept().unwrap();
        let started = Instant::now();
        let result = read_request(&mut stream, &limits);
        assert_eq!(result, Err(RequestError::SlowClient));
        assert!(started.elapsed() < Duration::from_millis(350));
        client.join().unwrap();
    }

    #[test]
    fn truncated_body_is_malformed() {
        let raw = b"POST / HTTP/1.1\r\nContent-Length: 50\r\n\r\nshort";
        match roundtrip(raw, &Limits::default()) {
            Err(RequestError::Malformed(m)) => assert!(m.contains("truncated body"), "{m}"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn header_flood_is_capped() {
        let mut raw = b"GET / HTTP/1.1\r\n".to_vec();
        for i in 0..2000 {
            raw.extend_from_slice(format!("x-flood-{i}: aaaaaaaaaaaa\r\n").as_bytes());
        }
        raw.extend_from_slice(b"\r\n");
        assert_eq!(
            roundtrip(&raw, &Limits::default()),
            Err(RequestError::HeadersTooLarge)
        );
    }

    #[test]
    fn garbage_request_line_is_malformed() {
        assert!(matches!(
            roundtrip(b"NOT-HTTP\r\n\r\n", &Limits::default()),
            Err(RequestError::Malformed(_))
        ));
        assert!(matches!(
            roundtrip(b"GET / SMTP/9\r\n\r\n", &Limits::default()),
            Err(RequestError::Malformed(_))
        ));
    }

    #[test]
    fn percent_decoding() {
        assert_eq!(percent_decode("grid%3A8x8"), "grid:8x8");
        assert_eq!(percent_decode("a+b%20c"), "a b c");
        assert_eq!(percent_decode("bad%zz"), "bad%zz");
        assert_eq!(percent_decode("%4"), "%4");
    }
}
