//! `qcp serve` — placement as a long-lived, fault-tolerant service.
//!
//! The ROADMAP's north star is a placement service that survives heavy,
//! adversarial traffic. Exact mapping is worst-case exponential, QASM
//! input arrives from untrusted hands, and a long-lived process gets to
//! see every failure mode eventually — so *robustness is the product*
//! here, not an afterthought:
//!
//! * **Panic-isolated workers** — every placement job runs under
//!   `catch_unwind` on a fixed worker pool with poison-free shared state
//!   (atomics and lock-free-on-panic queues only). A poisoned request
//!   costs one structured `500`; the worker, its siblings, and the
//!   process live on.
//! * **Deadlines** — each request gets a wall-clock deadline threaded
//!   into the existing [`qcp_place::SearchBudget`], so the hybrid
//!   strategy degrades to an annealed answer instead of queueing to
//!   death. Under load the effective deadline shrinks with queue
//!   occupancy (graceful degradation before shedding).
//! * **Load shedding** — the accept queue is bounded; overflow is
//!   answered with an explicit `429` instead of unbounded buffering, and
//!   oversized payloads are rejected with `413` before their bodies are
//!   read.
//! * **Slow-client defense** — header and body reads run under absolute
//!   deadlines, so a slowloris half-request costs one worker at most a
//!   read-timeout, answered with `408`.
//! * **Graceful drain** — a drain signal (the `POST /admin/drain`
//!   endpoint or [`Server::drain`]) stops the acceptor, finishes every
//!   queued and in-flight job, flushes, and lets [`Server::join`] return.
//!
//! The protocol is hand-rolled HTTP/1.1 over std TCP — the workspace is
//! offline, so no tokio/hyper — one request per connection
//! (`Connection: close`), JSON responses throughout. See GUIDE.md §8 for
//! the request vocabulary and DESIGN.md's *service & failure domains*
//! section for the shed/degrade/drain state machine.
//!
//! The [`chaos`] module is the fault-injection harness the
//! `serve_faults` integration suite drives: raw-socket clients for
//! malformed, truncated, oversized, and slowloris requests, plus
//! server-side panic/sleep injection behind [`ServeConfig::chaos`].
//!
//! # Example
//!
//! ```
//! use qcp_serve::{chaos, ServeConfig, Server};
//!
//! let server = Server::start(ServeConfig::default().addr("127.0.0.1:0").workers(2))?;
//! let reply = chaos::post(
//!     server.local_addr(),
//!     "/place?circuit=qec3&env=grid:2x3&strategy=hybrid&budget_ms=500",
//!     &[],
//!     "",
//! )?;
//! assert_eq!(reply.status, 200);
//! assert!(reply.body.contains("\"resolution\""));
//! server.drain();
//! server.join();
//! # Ok::<(), std::io::Error>(())
//! ```

#![forbid(unsafe_code)]
// Unit tests may unwrap freely; library code must not (workspace lints).
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]
#![warn(missing_docs)]

pub mod chaos;
pub mod http;
pub mod json;
pub mod server;
pub mod wire;

pub use server::{DrainHandle, ServeConfig, Server, StatsSnapshot};
pub use wire::ErrorKind;
