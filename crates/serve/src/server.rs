//! The daemon: acceptor, bounded queue, panic-isolated worker pool,
//! deadline/degrade/shed/drain state machine.
//!
//! The failure-domain layout (see DESIGN.md, *service & failure
//! domains*):
//!
//! ```text
//!            ┌────────────┐   bounded    ┌──────────────────────────┐
//!  accept ──▶│  acceptor  │──  queue  ──▶│ worker × N               │
//!            │ (1 thread) │  (VecDeque)  │  catch_unwind per job    │
//!            └────────────┘              │  SearchBudget deadline   │
//!              │429 when full            └──────────────────────────┘
//!              │503 when draining
//! ```
//!
//! Shared state is poison-free by construction: the queue mutex only ever
//! guards `push`/`pop` of owned sockets (no placement code runs under
//! it), every counter is an atomic, and all placement state is job-local
//! — so a panicking job cannot leave anything behind for a sibling to
//! trip over.

use std::collections::VecDeque;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::time::{Duration, Instant};

use qcp_circuit::Circuit;
use qcp_env::topologies::{Delays, TopologySpec};
use qcp_env::{molecules, Environment, Threshold};
use qcp_place::{
    execute_with, CachePolicy, PlaceRequest, PlacementCache, PlacerConfig, Resolution,
    SearchBudget, Strategy,
};

use crate::http::{self, Limits, Request, RequestError};
use crate::json::{array_usize, Obj};
use crate::wire::{error_body, ErrorKind};

/// Server configuration; start with [`ServeConfig::default`] and chain
/// the builders.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Bind address (`127.0.0.1:7878` by default; port `0` for tests).
    pub addr: String,
    /// Worker threads (`0` = one per available core, capped at 8).
    pub workers: usize,
    /// Bounded accept-queue depth; overflow is answered `429`.
    pub queue_depth: usize,
    /// Request-body cap in bytes (`413` beyond it, before the body is
    /// read).
    pub max_body_bytes: usize,
    /// Request-head cap in bytes (`431` beyond it).
    pub max_header_bytes: usize,
    /// Absolute deadline for receiving a request head or body — the
    /// slowloris bound.
    pub read_timeout: Duration,
    /// Socket write timeout for responses.
    pub write_timeout: Duration,
    /// Placement deadline applied when the request names none, in ms.
    pub default_budget_ms: u64,
    /// Hard ceiling on any requested placement deadline, in ms.
    pub max_budget_ms: u64,
    /// Floor on the *effective* (queue-degraded) placement deadline, in
    /// ms. The search kernel only polls its deadline once per
    /// 1024-node stride, so a deadline shorter than a stride's wall
    /// clock burns a worker slot to visit zero nodes and answer `504`.
    /// The occupancy shrink never goes below this floor; a request
    /// whose own budget ceiling is below it is shed with `429` instead
    /// of admitted. The default (25 ms) covers a stride with a wide
    /// margin.
    pub min_budget_ms: u64,
    /// Honor `x-qcp-chaos` fault-injection headers (tests only).
    pub chaos: bool,
    /// Expose `POST /admin/drain`.
    pub admin: bool,
    /// Capacity of the canonicalization-keyed placement result cache
    /// (entries; `0` disables caching and every request reports
    /// `"cache":"bypass"`).
    pub cache_entries: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:7878".into(),
            workers: 0,
            queue_depth: 64,
            max_body_bytes: 256 * 1024,
            max_header_bytes: 8 * 1024,
            read_timeout: Duration::from_secs(2),
            write_timeout: Duration::from_secs(2),
            default_budget_ms: 2_000,
            max_budget_ms: 30_000,
            min_budget_ms: 25,
            chaos: false,
            admin: true,
            cache_entries: 256,
        }
    }
}

impl ServeConfig {
    /// Sets the bind address.
    #[must_use]
    pub fn addr(mut self, addr: impl Into<String>) -> Self {
        self.addr = addr.into();
        self
    }

    /// Sets the worker count (`0` = auto).
    #[must_use]
    pub fn workers(mut self, n: usize) -> Self {
        self.workers = n;
        self
    }

    /// Sets the bounded queue depth.
    #[must_use]
    pub fn queue_depth(mut self, n: usize) -> Self {
        self.queue_depth = n.max(1);
        self
    }

    /// Sets the body-size cap in bytes.
    #[must_use]
    pub fn max_body_bytes(mut self, n: usize) -> Self {
        self.max_body_bytes = n;
        self
    }

    /// Sets the slow-client read deadline.
    #[must_use]
    pub fn read_timeout(mut self, d: Duration) -> Self {
        self.read_timeout = d;
        self
    }

    /// Sets the default placement deadline in milliseconds.
    #[must_use]
    pub fn default_budget_ms(mut self, ms: u64) -> Self {
        self.default_budget_ms = ms;
        self
    }

    /// Sets the ceiling on requested placement deadlines in milliseconds.
    #[must_use]
    pub fn max_budget_ms(mut self, ms: u64) -> Self {
        self.max_budget_ms = ms;
        self
    }

    /// Sets the floor on effective placement deadlines in milliseconds
    /// (see [`ServeConfig::min_budget_ms`]). Clamped to at least 1.
    #[must_use]
    pub fn min_budget_ms(mut self, ms: u64) -> Self {
        self.min_budget_ms = ms.max(1);
        self
    }

    /// Enables the `x-qcp-chaos` fault-injection headers.
    #[must_use]
    pub fn chaos(mut self, on: bool) -> Self {
        self.chaos = on;
        self
    }

    /// Enables or disables the `/admin/drain` endpoint.
    #[must_use]
    pub fn admin(mut self, on: bool) -> Self {
        self.admin = on;
        self
    }

    /// Sets the placement result-cache capacity (`0` disables it).
    #[must_use]
    pub fn cache_entries(mut self, n: usize) -> Self {
        self.cache_entries = n;
        self
    }

    fn resolved_workers(&self) -> usize {
        match self.workers {
            0 => std::thread::available_parallelism()
                .map_or(2, usize::from)
                .clamp(1, 8),
            n => n,
        }
    }

    fn limits(&self) -> Limits {
        Limits {
            max_header_bytes: self.max_header_bytes,
            max_body_bytes: self.max_body_bytes,
            header_deadline: self.read_timeout,
            body_deadline: self.read_timeout,
        }
    }
}

/// Monotonic service counters (all atomics — poison-free by design).
#[derive(Debug, Default)]
struct Stats {
    accepted: AtomicU64,
    served_ok: AtomicU64,
    client_errors: AtomicU64,
    shed: AtomicU64,
    oversize: AtomicU64,
    slow_clients: AtomicU64,
    panics: AtomicU64,
    budget_exhausted: AtomicU64,
    resolved_exact: AtomicU64,
    resolved_fallback: AtomicU64,
    resolved_degraded: AtomicU64,
}

/// A point-in-time copy of the service counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Connections accepted (including ones later shed or failed).
    pub accepted: u64,
    /// Requests answered `200`.
    pub served_ok: u64,
    /// Requests answered with a 4xx taxonomy kind.
    pub client_errors: u64,
    /// Connections answered `429` because the queue was full.
    pub shed: u64,
    /// Requests rejected `413`/`431` for size.
    pub oversize: u64,
    /// Requests rejected `408` for tripping a read deadline.
    pub slow_clients: u64,
    /// Placement jobs whose panic was contained (each answered `500`).
    pub panics: u64,
    /// Exact-strategy requests that ran out of budget (`504`).
    pub budget_exhausted: u64,
    /// Successful placements resolved exactly.
    pub resolved_exact: u64,
    /// Successful placements resolved by the heuristic fallback.
    pub resolved_fallback: u64,
    /// Successful placements that degraded after budget exhaustion.
    pub resolved_degraded: u64,
    /// `/place` requests served from the placement result cache.
    pub cache_hits: u64,
    /// `/place` requests that consulted the cache and placed fresh.
    pub cache_misses: u64,
    /// Cache hits that needed a witness remap onto the requester's
    /// qubit labels (an isomorphic, not identical, repeat).
    pub cache_remapped: u64,
}

struct Shared {
    config: ServeConfig,
    draining: AtomicBool,
    queue: Mutex<VecDeque<TcpStream>>,
    available: Condvar,
    active: AtomicUsize,
    stats: Stats,
    cache: PlacementCache,
}

impl Shared {
    fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            accepted: self.stats.accepted.load(Ordering::Relaxed),
            served_ok: self.stats.served_ok.load(Ordering::Relaxed),
            client_errors: self.stats.client_errors.load(Ordering::Relaxed),
            shed: self.stats.shed.load(Ordering::Relaxed),
            oversize: self.stats.oversize.load(Ordering::Relaxed),
            slow_clients: self.stats.slow_clients.load(Ordering::Relaxed),
            panics: self.stats.panics.load(Ordering::Relaxed),
            budget_exhausted: self.stats.budget_exhausted.load(Ordering::Relaxed),
            resolved_exact: self.stats.resolved_exact.load(Ordering::Relaxed),
            resolved_fallback: self.stats.resolved_fallback.load(Ordering::Relaxed),
            resolved_degraded: self.stats.resolved_degraded.load(Ordering::Relaxed),
            cache_hits: self.cache.hits(),
            cache_misses: self.cache.misses(),
            cache_remapped: self.cache.remapped(),
        }
    }
    /// Locks the queue, recovering from poison (cannot actually happen —
    /// no placement code runs under the lock — but the recovery keeps the
    /// no-unwrap contract honest).
    fn queue(&self) -> std::sync::MutexGuard<'_, VecDeque<TcpStream>> {
        self.queue.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn is_draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst)
    }

    fn drain(&self) {
        self.draining.store(true, Ordering::SeqCst);
        self.available.notify_all();
    }
}

/// A running daemon; dropping it without [`Server::drain`] +
/// [`Server::join`] detaches the threads.
pub struct Server {
    local_addr: SocketAddr,
    shared: Arc<Shared>,
    threads: Vec<std::thread::JoinHandle<()>>,
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("local_addr", &self.local_addr)
            .field("draining", &self.shared.is_draining())
            .finish_non_exhaustive()
    }
}

impl Server {
    /// Binds and starts the daemon: one acceptor thread plus the worker
    /// pool.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure (address in use, permission).
    pub fn start(config: ServeConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let local_addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let workers = config.resolved_workers();
        let cache = PlacementCache::new(config.cache_entries);
        let shared = Arc::new(Shared {
            config,
            draining: AtomicBool::new(false),
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            active: AtomicUsize::new(0),
            stats: Stats::default(),
            cache,
        });
        let mut threads = Vec::with_capacity(workers + 1);
        {
            let shared = Arc::clone(&shared);
            threads.push(
                std::thread::Builder::new()
                    .name("qcp-acceptor".into())
                    .spawn(move || acceptor_loop(&shared, &listener))?,
            );
        }
        for i in 0..workers {
            let shared = Arc::clone(&shared);
            threads.push(
                std::thread::Builder::new()
                    .name(format!("qcp-worker-{i}"))
                    .spawn(move || worker_loop(&shared))?,
            );
        }
        Ok(Server {
            local_addr,
            shared,
            threads,
        })
    }

    /// The bound address (useful with port `0`).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Requests a graceful drain: stop accepting, finish queued and
    /// in-flight jobs. Idempotent.
    pub fn drain(&self) {
        self.shared.drain();
    }

    /// A cloneable handle that can request the drain from another thread
    /// (the CLI's stdin watcher uses this while [`Server::join`] blocks).
    pub fn drain_handle(&self) -> DrainHandle {
        DrainHandle(Arc::clone(&self.shared))
    }

    /// Whether a drain has been requested.
    pub fn is_draining(&self) -> bool {
        self.shared.is_draining()
    }

    /// A snapshot of the service counters.
    pub fn stats(&self) -> StatsSnapshot {
        self.shared.snapshot()
    }

    /// Number of resolved worker threads (excludes the acceptor).
    pub fn worker_count(&self) -> usize {
        self.threads.len() - 1
    }

    /// Blocks until the daemon exits (drain requested — by
    /// [`Server::drain`] or `POST /admin/drain` — and all jobs flushed),
    /// then returns the final counters.
    pub fn join(self) -> StatsSnapshot {
        for t in self.threads {
            // A worker that panicked outside its catch_unwind backstop is
            // a bug, but join must still report the counters instead of
            // propagating the unwind into the caller.
            let _ = t.join();
        }
        self.shared.snapshot()
    }
}

/// A detached, cloneable drain trigger (see [`Server::drain_handle`]).
#[derive(Clone)]
pub struct DrainHandle(Arc<Shared>);

impl DrainHandle {
    /// Requests the graceful drain. Idempotent.
    pub fn drain(&self) {
        self.0.drain();
    }
}

impl std::fmt::Debug for DrainHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DrainHandle")
            .field("draining", &self.0.is_draining())
            .finish()
    }
}

fn acceptor_loop(shared: &Shared, listener: &TcpListener) {
    loop {
        if shared.is_draining() {
            break;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                shared.stats.accepted.fetch_add(1, Ordering::Relaxed);
                let _ = stream.set_nonblocking(false);
                if shared.is_draining() {
                    quick_reject(shared, stream, ErrorKind::Draining, "server is draining");
                    break;
                }
                let mut queue = shared.queue();
                if queue.len() >= shared.config.queue_depth {
                    drop(queue);
                    shared.stats.shed.fetch_add(1, Ordering::Relaxed);
                    quick_reject(
                        shared,
                        stream,
                        ErrorKind::Overload,
                        "queue full; retry later",
                    );
                } else {
                    queue.push_back(stream);
                    drop(queue);
                    shared.available.notify_one();
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(2)),
        }
    }
    // Drain: wake every worker so they can observe the flag and exit once
    // the queue empties.
    shared.available.notify_all();
}

fn quick_reject(shared: &Shared, mut stream: TcpStream, kind: ErrorKind, message: &str) {
    let _ = stream.set_write_timeout(Some(shared.config.write_timeout));
    if http::write_response(
        &mut stream,
        kind.status(),
        kind.reason(),
        &error_body(kind, message),
    )
    .is_err()
    {
        return;
    }
    // The rejected request was never read; closing now would make the
    // kernel RST the connection and can destroy the response before the
    // client sees it. Half-close, then drain the client's bytes (bounded)
    // so the final close is clean.
    let _ = stream.shutdown(std::net::Shutdown::Write);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(250)));
    let mut sink = [0_u8; 4096];
    let deadline = Instant::now() + Duration::from_millis(500);
    while Instant::now() < deadline {
        match std::io::Read::read(&mut stream, &mut sink) {
            Ok(1..) => {}
            Ok(0) | Err(_) => break,
        }
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let job = {
            let mut queue = shared.queue();
            loop {
                if let Some(job) = queue.pop_front() {
                    break Some(job);
                }
                if shared.is_draining() {
                    break None;
                }
                let (guard, _) = shared
                    .available
                    .wait_timeout(queue, Duration::from_millis(50))
                    .unwrap_or_else(PoisonError::into_inner);
                queue = guard;
            }
        };
        let Some(stream) = job else {
            return; // drained
        };
        shared.active.fetch_add(1, Ordering::SeqCst);
        // Backstop isolation: the placement job has its own catch_unwind
        // (so the client still gets a structured 500); this one contains
        // anything unexpected in the transport layer itself. Either way
        // the worker thread survives.
        let contained = catch_unwind(AssertUnwindSafe(|| serve_connection(shared, stream)));
        if contained.is_err() {
            shared.stats.panics.fetch_add(1, Ordering::Relaxed);
        }
        shared.active.fetch_sub(1, Ordering::SeqCst);
    }
}

fn serve_connection(shared: &Shared, mut stream: TcpStream) {
    let _ = stream.set_write_timeout(Some(shared.config.write_timeout));
    let request = match http::read_request(&mut stream, &shared.config.limits()) {
        Ok(r) => r,
        Err(RequestError::Disconnected) => return,
        Err(e) => {
            let (kind, message) = match e {
                RequestError::SlowClient => {
                    shared.stats.slow_clients.fetch_add(1, Ordering::Relaxed);
                    (ErrorKind::SlowClient, "read deadline exceeded".to_string())
                }
                RequestError::HeadersTooLarge => {
                    shared.stats.oversize.fetch_add(1, Ordering::Relaxed);
                    (ErrorKind::HeadersTooLarge, "request head too large".into())
                }
                RequestError::BodyTooLarge { declared, limit } => {
                    shared.stats.oversize.fetch_add(1, Ordering::Relaxed);
                    (
                        ErrorKind::Oversize,
                        format!("body of {declared} byte(s) exceeds the {limit}-byte cap"),
                    )
                }
                RequestError::Malformed(m) => (ErrorKind::Parse, m),
                RequestError::Disconnected => return,
            };
            if !matches!(
                kind,
                ErrorKind::SlowClient | ErrorKind::Oversize | ErrorKind::HeadersTooLarge
            ) {
                shared.stats.client_errors.fetch_add(1, Ordering::Relaxed);
            }
            respond_error(&mut stream, kind, &message);
            return;
        }
    };
    route(shared, &request, &mut stream);
}

fn respond_error(stream: &mut TcpStream, kind: ErrorKind, message: &str) {
    let _ = http::write_response(
        stream,
        kind.status(),
        kind.reason(),
        &error_body(kind, message),
    );
}

fn respond_ok(stream: &mut TcpStream, body: &str) {
    let _ = http::write_response(stream, 200, "OK", body);
}

fn route(shared: &Shared, request: &Request, stream: &mut TcpStream) {
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/healthz") => respond_ok(stream, &healthz_body(shared)),
        ("POST", "/admin/drain") if shared.config.admin => {
            shared.drain();
            let mut o = Obj::new();
            o.bool("ok", true).bool("draining", true);
            respond_ok(stream, &o.finish());
        }
        ("POST", "/place") => place_endpoint(shared, request, stream),
        (_, "/healthz" | "/place") | ("POST", "/admin/drain") => {
            shared.stats.client_errors.fetch_add(1, Ordering::Relaxed);
            respond_error(
                stream,
                ErrorKind::Method,
                &format!(
                    "`{}` is not supported on `{}`",
                    request.method, request.path
                ),
            );
        }
        (_, path) => {
            shared.stats.client_errors.fetch_add(1, Ordering::Relaxed);
            respond_error(
                stream,
                ErrorKind::NotFound,
                &format!("no such endpoint `{path}` (try /place, /healthz)"),
            );
        }
    }
}

fn healthz_body(shared: &Shared) -> String {
    let s = shared.snapshot();
    let mut stats = Obj::new();
    stats
        .u64("accepted", s.accepted)
        .u64("served_ok", s.served_ok)
        .u64("client_errors", s.client_errors)
        .u64("shed", s.shed)
        .u64("oversize", s.oversize)
        .u64("slow_clients", s.slow_clients)
        .u64("panics", s.panics)
        .u64("budget_exhausted", s.budget_exhausted)
        .u64("resolved_exact", s.resolved_exact)
        .u64("resolved_fallback", s.resolved_fallback)
        .u64("resolved_degraded", s.resolved_degraded)
        .u64("cache_hits", s.cache_hits)
        .u64("cache_misses", s.cache_misses)
        .u64("cache_remapped", s.cache_remapped);
    let mut o = Obj::new();
    o.bool("ok", true)
        .bool("draining", shared.is_draining())
        .u64("workers", shared.config.resolved_workers() as u64)
        .u64("queue_depth", shared.config.queue_depth as u64)
        .u64("queued", shared.queue().len() as u64)
        .u64("active", shared.active.load(Ordering::SeqCst) as u64)
        .raw("stats", &stats.finish());
    o.finish()
}

/// Parsed and validated `/place` parameters.
struct PlaceParams {
    circuit: Option<String>,
    env: Option<String>,
    coupling: f64,
    threshold: Option<f64>,
    strategy: Strategy,
    budget_ms: Option<u64>,
    budget_nodes: Option<u64>,
    cache: CachePolicy,
}

fn parse_params(request: &Request) -> Result<PlaceParams, String> {
    let mut p = PlaceParams {
        circuit: None,
        env: None,
        coupling: 10.0,
        threshold: None,
        strategy: Strategy::Hybrid,
        budget_ms: None,
        budget_nodes: None,
        cache: CachePolicy::Use,
    };
    for (key, value) in request.query_params() {
        match key.as_str() {
            "circuit" => p.circuit = Some(value),
            "env" | "topology" => p.env = Some(value),
            "coupling" => {
                let c: f64 = value
                    .parse()
                    .map_err(|_| format!("bad coupling `{value}`"))?;
                if !c.is_finite() || c < 0.0 {
                    return Err(format!("coupling must be finite and non-negative, got {c}"));
                }
                p.coupling = c;
            }
            "threshold" => {
                let t: f64 = value
                    .parse()
                    .map_err(|_| format!("bad threshold `{value}`"))?;
                if t.is_nan() || t < 0.0 {
                    return Err(format!("threshold must be non-negative, got {t}"));
                }
                p.threshold = Some(t);
            }
            "strategy" => p.strategy = value.parse()?,
            "budget_ms" => {
                p.budget_ms = Some(
                    value
                        .parse()
                        .map_err(|_| format!("bad budget_ms `{value}`"))?,
                );
            }
            "budget_nodes" => {
                p.budget_nodes = Some(
                    value
                        .parse()
                        .map_err(|_| format!("bad budget_nodes `{value}`"))?,
                );
            }
            "cache" => {
                p.cache = match value.as_str() {
                    "on" => CachePolicy::Use,
                    "off" => CachePolicy::Bypass,
                    other => {
                        return Err(format!("bad cache `{other}` (expected on or off)"));
                    }
                };
            }
            other => {
                return Err(format!(
                    "unknown parameter `{other}` (expected circuit, env, coupling, threshold, \
                     strategy, budget_ms, budget_nodes, cache)"
                ))
            }
        }
    }
    Ok(p)
}

/// Resolves the environment from a molecule name or topology spec.
/// Deliberately **no** filesystem fallback: network input must never name
/// server-side paths.
fn resolve_env(spec: &str, coupling: f64) -> Result<Environment, String> {
    if let Some(env) = molecules::named(spec) {
        return Ok(env);
    }
    match spec.parse::<TopologySpec>() {
        Ok(parsed) => Ok(parsed.build(Delays::uniform(coupling))),
        Err(e) => Err(format!(
            "`{spec}` is neither a library molecule nor a topology spec: {e}"
        )),
    }
}

/// Resolves the circuit from a library name or the request body
/// (OpenQASM 2.0 if it declares itself, the text format otherwise).
fn resolve_circuit(
    params: &PlaceParams,
    body: &[u8],
) -> Result<(Circuit, usize), (ErrorKind, String)> {
    if let Some(name) = &params.circuit {
        if !body.is_empty() {
            return Err((
                ErrorKind::Input,
                "pass either ?circuit=<library name> or a body, not both".into(),
            ));
        }
        return qcp_circuit::library::named(name)
            .map(|c| (c, 0))
            .ok_or_else(|| (ErrorKind::Input, format!("no library circuit `{name}`")));
    }
    if body.is_empty() {
        return Err((
            ErrorKind::Input,
            "missing circuit: pass ?circuit=<library name> or a QASM/text body".into(),
        ));
    }
    let text = std::str::from_utf8(body)
        .map_err(|_| (ErrorKind::Parse, "body is not valid UTF-8".to_string()))?;
    if text.trim_start().starts_with("OPENQASM") {
        let parsed =
            qcp_circuit::qasm::parse(text).map_err(|e| (ErrorKind::Parse, e.to_string()))?;
        Ok((parsed.circuit, parsed.warnings.len()))
    } else {
        let circuit =
            qcp_circuit::text::parse(text).map_err(|e| (ErrorKind::Parse, e.to_string()))?;
        Ok((circuit, 0))
    }
}

/// The queue-degraded placement deadline: `base_ms` scaled down by up to
/// half at full occupancy, but never below `floor_ms` (nor above
/// `base_ms` — callers shed sub-floor bases before getting here, so the
/// clamp range is always non-empty).
fn effective_deadline_ms(base_ms: u64, floor_ms: u64, occupancy: f64) -> u64 {
    let shrunk = ((base_ms as f64) * (1.0 - 0.5 * occupancy.clamp(0.0, 1.0))).round() as u64;
    shrunk.clamp(floor_ms.min(base_ms), base_ms.max(floor_ms))
}

fn place_endpoint(shared: &Shared, request: &Request, stream: &mut TcpStream) {
    let t0 = Instant::now();
    let params = match parse_params(request) {
        Ok(p) => p,
        Err(message) => {
            shared.stats.client_errors.fetch_add(1, Ordering::Relaxed);
            respond_error(stream, ErrorKind::Parse, &message);
            return;
        }
    };
    let Some(env_spec) = params.env.as_deref() else {
        shared.stats.client_errors.fetch_add(1, Ordering::Relaxed);
        respond_error(stream, ErrorKind::Input, "missing required parameter `env`");
        return;
    };
    let env = match resolve_env(env_spec, params.coupling) {
        Ok(env) => env,
        Err(message) => {
            shared.stats.client_errors.fetch_add(1, Ordering::Relaxed);
            respond_error(stream, ErrorKind::Parse, &message);
            return;
        }
    };
    let (circuit, warnings) = match resolve_circuit(&params, &request.body) {
        Ok(pair) => pair,
        Err((kind, message)) => {
            shared.stats.client_errors.fetch_add(1, Ordering::Relaxed);
            respond_error(stream, kind, &message);
            return;
        }
    };
    let threshold = match params.threshold {
        Some(units) => Threshold::new(units),
        None => match env.connectivity_threshold() {
            Some(t) => t,
            None => {
                shared.stats.client_errors.fetch_add(1, Ordering::Relaxed);
                respond_error(
                    stream,
                    ErrorKind::Input,
                    "environment is disconnected; pass an explicit threshold",
                );
                return;
            }
        },
    };

    // Deadline policy: requested (or default) budget, capped by the
    // server ceiling, then *degraded under load* — the deeper the queue
    // at dispatch time, the less wall clock this request may burn, down
    // to half the base deadline at full occupancy. Overload thus shows up
    // as faster, heuristic answers (resolution: fallback/degraded) well
    // before the queue overflows into 429s.
    //
    // The shrink is clamped to `min_budget_ms`: the search kernel polls
    // its deadline once per 1024-node stride, so a deadline below one
    // stride's wall clock would burn this worker slot to visit zero
    // nodes and answer 504. When even the floor cannot be granted —
    // the request's own budget ceiling is below it — shed with 429 up
    // front instead of admitting a job that cannot do useful work.
    let base_ms = params
        .budget_ms
        .unwrap_or(shared.config.default_budget_ms)
        .min(shared.config.max_budget_ms);
    let floor_ms = shared.config.min_budget_ms.max(1);
    if base_ms < floor_ms {
        shared.stats.shed.fetch_add(1, Ordering::Relaxed);
        respond_error(
            stream,
            ErrorKind::Overload,
            &format!(
                "budget_ms {base_ms} is below the server's {floor_ms} ms deadline floor; \
                 request at least {floor_ms} ms (or a node budget)"
            ),
        );
        return;
    }
    let occupancy = shared.queue().len() as f64 / shared.config.queue_depth.max(1) as f64;
    let effective_ms = effective_deadline_ms(base_ms, floor_ms, occupancy);
    let mut budget = SearchBudget::unlimited().with_deadline(Duration::from_millis(effective_ms));
    if let Some(nodes) = params.budget_nodes {
        budget = budget.with_nodes(nodes);
    }

    let chaos = if shared.config.chaos {
        request.header("x-qcp-chaos").map(str::to_string)
    } else {
        None
    };
    if let Some(directive) = chaos.as_deref() {
        if let Some(ms) = directive.strip_prefix("sleep:") {
            let ms: u64 = ms.parse().unwrap_or(0).min(5_000);
            std::thread::sleep(Duration::from_millis(ms));
        }
    }

    // The unified request: the *degraded* deadline goes into the config
    // before the cache key is derived, so keying stays a pure function
    // of the request's fields (an idle server always produces the same
    // key; under load the shrunken deadline keys separately — honest,
    // since a tighter budget can change the answer).
    let config = PlacerConfig::with_threshold(threshold)
        .strategy(params.strategy)
        .budget(budget);
    let place_request = PlaceRequest::new(&circuit, &env)
        .config(config)
        .cache_policy(params.cache);
    // The poisoned-job boundary: any panic below — chaos-injected or a
    // genuine placement bug — is contained here, answered as a structured
    // 500, and the worker keeps serving.
    let placed = catch_unwind(AssertUnwindSafe(|| {
        if chaos.as_deref() == Some("panic") {
            panic!("chaos: injected worker panic");
        }
        execute_with(&place_request, Some(&shared.cache), None)
    }));
    let elapsed = t0.elapsed();

    let report = match placed {
        Ok(Ok(report)) => report,
        Ok(Err(e)) => {
            let kind = ErrorKind::from_place_error(&e);
            match kind {
                ErrorKind::BudgetExhausted => {
                    shared
                        .stats
                        .budget_exhausted
                        .fetch_add(1, Ordering::Relaxed);
                }
                ErrorKind::Internal => {
                    shared.stats.panics.fetch_add(1, Ordering::Relaxed);
                }
                _ => {
                    shared.stats.client_errors.fetch_add(1, Ordering::Relaxed);
                }
            }
            respond_error(stream, kind, &e.to_string());
            return;
        }
        Err(payload) => {
            shared.stats.panics.fetch_add(1, Ordering::Relaxed);
            let e = qcp_place::PlaceError::from_panic(payload.as_ref());
            respond_error(stream, ErrorKind::Internal, &e.to_string());
            return;
        }
    };

    let outcome = &report.outcome;
    match outcome.resolution {
        Resolution::Exact => shared.stats.resolved_exact.fetch_add(1, Ordering::Relaxed),
        Resolution::Fallback => shared
            .stats
            .resolved_fallback
            .fetch_add(1, Ordering::Relaxed),
        Resolution::BudgetExhausted => shared
            .stats
            .resolved_degraded
            .fetch_add(1, Ordering::Relaxed),
    };
    shared.stats.served_ok.fetch_add(1, Ordering::Relaxed);

    let mut circuit_obj = Obj::new();
    circuit_obj
        .u64("qubits", circuit.qubit_count() as u64)
        .u64("gates", circuit.gate_count() as u64)
        .u64("two_qubit_gates", circuit.two_qubit_gate_count() as u64)
        .u64("warnings", warnings as u64);
    let initial = array_usize(
        outcome
            .initial_placement()
            .as_slice()
            .iter()
            .map(|v| v.index()),
    );
    let final_ = array_usize(
        outcome
            .final_placement()
            .as_slice()
            .iter()
            .map(|v| v.index()),
    );
    let mut o = Obj::new();
    o.bool("ok", true)
        .str("environment", env.name())
        .str("strategy", params.strategy.name())
        .str("resolution", outcome.resolution.name())
        .str("cache", report.cache.wire())
        .u64("deadline_ms", effective_ms)
        .f64("elapsed_ms", elapsed.as_secs_f64() * 1e3)
        .raw("circuit", &circuit_obj.finish())
        .f64("runtime_units", outcome.runtime.units())
        .str("runtime", &outcome.runtime.to_string())
        .u64("stages", outcome.subcircuit_count() as u64)
        .u64("swaps", outcome.swap_count() as u64)
        .raw("initial_placement", &initial)
        .raw("final_placement", &final_);
    respond_ok(stream, &o.finish());
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chaos;

    fn test_server() -> Server {
        Server::start(
            ServeConfig::default()
                .addr("127.0.0.1:0")
                .workers(2)
                .queue_depth(4)
                .default_budget_ms(500),
        )
        .expect("bind 127.0.0.1:0")
    }

    #[test]
    fn place_healthz_drain_roundtrip() {
        let server = test_server();
        let addr = server.local_addr();

        let ok = chaos::post(addr, "/place?circuit=qec3&env=grid:2x3", &[], "").unwrap();
        assert_eq!(ok.status, 200, "{}", ok.body);
        assert!(ok.body.contains("\"resolution\":\"exact\""), "{}", ok.body);
        assert!(ok.body.contains("\"deadline_ms\""), "{}", ok.body);

        let health = chaos::get(addr, "/healthz").unwrap();
        assert_eq!(health.status, 200);
        assert!(health.body.contains("\"served_ok\":1"), "{}", health.body);

        let drained = chaos::post(addr, "/admin/drain", &[], "").unwrap();
        assert_eq!(drained.status, 200);
        let stats = server.join();
        assert_eq!(stats.served_ok, 1);
    }

    #[test]
    fn unknown_endpoint_and_method_are_typed() {
        let server = test_server();
        let addr = server.local_addr();
        let missing = chaos::get(addr, "/nope").unwrap();
        assert_eq!(missing.status, 404);
        assert!(missing.body.contains("\"kind\":\"not-found\""));
        let wrong = chaos::get(addr, "/place").unwrap();
        assert_eq!(wrong.status, 405);
        server.drain();
        server.join();
    }

    #[test]
    fn bad_params_are_parse_errors() {
        let server = test_server();
        let addr = server.local_addr();
        for (query, needle) in [
            ("/place?circuit=qec3", "missing required parameter `env`"),
            ("/place?env=grid:2x3", "missing circuit"),
            ("/place?circuit=nope&env=grid:2x3", "no library circuit"),
            (
                "/place?circuit=qec3&env=gridd:9",
                "neither a library molecule",
            ),
            (
                "/place?circuit=qec3&env=grid:2x3&frobnicate=1",
                "unknown parameter",
            ),
            (
                "/place?circuit=qec3&env=grid:2x3&strategy=vf3",
                "unknown strategy",
            ),
            ("/place?circuit=qec3&env=grid:2x3&cache=maybe", "bad cache"),
        ] {
            let reply = chaos::post(addr, query, &[], "").unwrap();
            assert_eq!(reply.status, 400, "{query}: {}", reply.body);
            assert!(reply.body.contains(needle), "{query}: {}", reply.body);
        }
        // Env resolution never touches the filesystem.
        let reply = chaos::post(addr, "/place?circuit=qec3&env=/etc/passwd", &[], "").unwrap();
        assert_eq!(reply.status, 400);
        server.drain();
        server.join();
    }

    #[test]
    fn repeated_identical_posts_are_counted_cache_hits() {
        let server = test_server();
        let addr = server.local_addr();
        let query = "/place?circuit=qec3&env=grid:2x3";

        let cold = chaos::post(addr, query, &[], "").unwrap();
        assert_eq!(cold.status, 200, "{}", cold.body);
        assert!(cold.body.contains("\"cache\":\"miss\""), "{}", cold.body);

        let warm = chaos::post(addr, query, &[], "").unwrap();
        assert_eq!(warm.status, 200, "{}", warm.body);
        assert!(warm.body.contains("\"cache\":\"hit\""), "{}", warm.body);

        // The hit must return the same answer the cold request computed.
        let pick = |body: &str| {
            let start = body.find("\"runtime\"").unwrap();
            body[start..start + 40].to_string()
        };
        assert_eq!(pick(&cold.body), pick(&warm.body));

        let health = chaos::get(addr, "/healthz").unwrap();
        assert!(health.body.contains("\"cache_hits\":1"), "{}", health.body);
        assert!(
            health.body.contains("\"cache_misses\":1"),
            "{}",
            health.body
        );

        server.drain();
        let stats = server.join();
        assert_eq!(stats.cache_hits, 1);
        assert_eq!(stats.cache_misses, 1);
    }

    #[test]
    fn cache_off_bypasses_and_cache_zero_capacity_disables() {
        let server = test_server();
        let addr = server.local_addr();
        let query = "/place?circuit=qec3&env=grid:2x3&cache=off";
        for _ in 0..2 {
            let reply = chaos::post(addr, query, &[], "").unwrap();
            assert_eq!(reply.status, 200, "{}", reply.body);
            assert!(
                reply.body.contains("\"cache\":\"bypass\""),
                "{}",
                reply.body
            );
        }
        server.drain();
        assert_eq!(server.join().cache_hits, 0);

        // A server started with --cache-entries 0 never caches at all.
        let server = Server::start(
            ServeConfig::default()
                .addr("127.0.0.1:0")
                .workers(1)
                .cache_entries(0),
        )
        .expect("bind");
        let addr = server.local_addr();
        for _ in 0..2 {
            let reply = chaos::post(addr, "/place?circuit=qec3&env=grid:2x3", &[], "").unwrap();
            assert_eq!(reply.status, 200, "{}", reply.body);
            assert!(
                reply.body.contains("\"cache\":\"bypass\""),
                "{}",
                reply.body
            );
        }
        server.drain();
        let stats = server.join();
        assert_eq!(stats.cache_hits, 0);
        assert_eq!(stats.cache_misses, 0);
    }

    #[test]
    fn deadline_shrink_never_goes_below_the_floor() {
        // Idle: full deadline.
        assert_eq!(effective_deadline_ms(2_000, 25, 0.0), 2_000);
        // Half occupancy: 25% off.
        assert_eq!(effective_deadline_ms(2_000, 25, 0.5), 1_500);
        // Full occupancy: half, still far above the floor.
        assert_eq!(effective_deadline_ms(2_000, 25, 1.0), 1_000);
        // A small budget that full occupancy would shrink below the
        // floor is clamped *to* the floor instead of below it.
        assert_eq!(effective_deadline_ms(40, 25, 1.0), 25);
        assert_eq!(effective_deadline_ms(30, 25, 0.9), 25);
        // The clamp never *raises* the deadline above the base budget.
        assert_eq!(effective_deadline_ms(40, 25, 0.0), 40);
        // Occupancy beyond [0,1] is clamped, not amplified.
        assert_eq!(effective_deadline_ms(100, 25, 7.0), 50);
        assert_eq!(effective_deadline_ms(100, 25, -1.0), 100);
    }

    #[test]
    fn sub_floor_budgets_are_shed_with_429() {
        let server = Server::start(
            ServeConfig::default()
                .addr("127.0.0.1:0")
                .workers(1)
                .min_budget_ms(50),
        )
        .expect("bind");
        let addr = server.local_addr();

        // Below the floor: shed before the job is admitted.
        let reply = chaos::post(
            addr,
            "/place?circuit=qec3&env=grid:2x3&budget_ms=10",
            &[],
            "",
        )
        .unwrap();
        assert_eq!(reply.status, 429, "{}", reply.body);
        assert!(
            reply.body.contains("\"kind\":\"overload\""),
            "{}",
            reply.body
        );
        assert!(reply.body.contains("deadline floor"), "{}", reply.body);

        // At the floor: admitted, and at zero occupancy the full budget
        // survives the degrade policy.
        let reply = chaos::post(
            addr,
            "/place?circuit=qec3&env=grid:2x3&budget_ms=50",
            &[],
            "",
        )
        .unwrap();
        assert_eq!(reply.status, 200, "{}", reply.body);
        assert!(reply.body.contains("\"deadline_ms\":50"), "{}", reply.body);

        server.drain();
        let stats = server.join();
        assert_eq!(stats.shed, 1);
        assert_eq!(stats.served_ok, 1);
    }

    #[test]
    fn config_builders_resolve() {
        let c = ServeConfig::default()
            .workers(3)
            .queue_depth(0)
            .max_body_bytes(10)
            .max_budget_ms(5)
            .chaos(true)
            .admin(false);
        assert_eq!(c.resolved_workers(), 3);
        assert_eq!(c.queue_depth, 1);
        assert!(c.chaos);
        assert!(!c.admin);
        assert!(ServeConfig::default().resolved_workers() >= 1);
    }
}
