#![allow(clippy::unwrap_used, clippy::expect_used)]
//! Fault-injection suite for the serve daemon.
//!
//! One long-lived server per test absorbs a battery of faults — worker
//! panics, malformed and truncated QASM, oversized payloads, slowloris
//! half-requests, deadline-exhausting circuits, queue overflow — and must
//! answer every one with the documented taxonomy kind, then serve a
//! correct placement on the very next request. The process never dies:
//! the final drain/join returning at all is the liveness proof.

use std::time::{Duration, Instant};

use qcp_serve::{chaos, ServeConfig, Server};

fn chaos_server(config: ServeConfig) -> Server {
    Server::start(config.addr("127.0.0.1:0").chaos(true)).expect("bind 127.0.0.1:0")
}

/// A known-good request the recovery probes reuse between faults.
const GOOD: &str = "/place?circuit=qec3&env=grid:2x3&strategy=hybrid&budget_ms=500";

fn assert_recovered(server: &Server) {
    let reply = chaos::post(server.local_addr(), GOOD, &[], "").expect("recovery probe");
    assert_eq!(reply.status, 200, "recovery probe failed: {}", reply.body);
    assert!(reply.body.contains("\"resolution\""), "{}", reply.body);
}

#[test]
fn panicking_job_costs_one_500_and_nothing_else() {
    let server = chaos_server(ServeConfig::default().workers(2));
    let addr = server.local_addr();

    for round in 0..3 {
        let reply = chaos::post(addr, GOOD, &[("x-qcp-chaos", "panic")], "").expect("post");
        assert_eq!(reply.status, 500, "round {round}: {}", reply.body);
        assert!(
            reply.body.contains("\"kind\":\"internal\""),
            "{}",
            reply.body
        );
        assert!(reply.body.contains("\"exit_code\":5"), "{}", reply.body);
        assert!(
            reply.body.contains("injected worker panic"),
            "{}",
            reply.body
        );
        // The worker that just unwound must serve the next request.
        assert_recovered(&server);
    }

    server.drain();
    let stats = server.join();
    assert_eq!(stats.panics, 3);
    assert_eq!(stats.served_ok, 3);
}

#[test]
fn chaos_headers_are_inert_without_opt_in() {
    let server =
        Server::start(ServeConfig::default().addr("127.0.0.1:0").workers(1)).expect("bind");
    let reply =
        chaos::post(server.local_addr(), GOOD, &[("x-qcp-chaos", "panic")], "").expect("post");
    assert_eq!(reply.status, 200, "{}", reply.body);
    server.drain();
    assert_eq!(server.join().panics, 0);
}

#[test]
fn malformed_and_truncated_qasm_are_parse_errors_with_positions() {
    let server = chaos_server(ServeConfig::default().workers(2));
    let addr = server.local_addr();

    // Malformed QASM: bogus statement on line 3.
    let bad_qasm = "OPENQASM 2.0;\nqreg q[2];\nfrobnicate q[0];\n";
    let reply = chaos::post(addr, "/place?env=grid:2x3", &[], bad_qasm).expect("post");
    assert_eq!(reply.status, 400, "{}", reply.body);
    assert!(reply.body.contains("\"kind\":\"parse\""), "{}", reply.body);
    assert!(reply.body.contains("\"exit_code\":2"), "{}", reply.body);
    assert!(
        reply.body.contains("3:"),
        "no line position: {}",
        reply.body
    );
    assert_recovered(&server);

    // QASM cut off mid-statement (complete HTTP request, broken payload).
    let cut = "OPENQASM 2.0;\nqreg q[2];\ncx q[0],";
    let reply = chaos::post(addr, "/place?env=grid:2x3", &[], cut).expect("post");
    assert_eq!(reply.status, 400, "{}", reply.body);
    assert!(reply.body.contains("\"kind\":\"parse\""), "{}", reply.body);
    assert_recovered(&server);

    // Non-UTF-8 body.
    let raw = "POST /place?env=grid:2x3 HTTP/1.1\r\nhost: qcp\r\ncontent-length: 4\r\n\r\n";
    let mut bytes = raw.as_bytes().to_vec();
    bytes.extend_from_slice(&[0xff, 0xfe, 0x00, 0x80]);
    let reply = chaos::send_raw(addr, &bytes, Duration::from_secs(30)).expect("send");
    assert_eq!(reply.status, 400, "{}", reply.body);
    assert!(reply.body.contains("UTF-8"), "{}", reply.body);
    assert_recovered(&server);

    server.drain();
    server.join();
}

#[test]
fn oversized_payloads_are_rejected_before_the_body_is_read() {
    let server = chaos_server(ServeConfig::default().workers(1).max_body_bytes(1024));
    let addr = server.local_addr();

    // Declared oversize: the daemon must answer 413 from the declaration
    // alone — we never send the body, so anything else would hang.
    let head = "POST /place?env=grid:2x3 HTTP/1.1\r\nhost: qcp\r\ncontent-length: 1048576\r\n\r\n";
    let reply = chaos::send_raw(addr, head.as_bytes(), Duration::from_secs(30)).expect("send");
    assert_eq!(reply.status, 413, "{}", reply.body);
    assert!(
        reply.body.contains("\"kind\":\"oversize\""),
        "{}",
        reply.body
    );
    assert_recovered(&server);

    server.drain();
    let stats = server.join();
    assert_eq!(stats.oversize, 1);
}

#[test]
fn slowloris_half_requests_cost_one_read_window_at_most() {
    let server = chaos_server(
        ServeConfig::default()
            .workers(2)
            .read_timeout(Duration::from_millis(300)),
    );
    let addr = server.local_addr();

    let t0 = Instant::now();
    let reply = chaos::slowloris(addr, Duration::from_secs(30)).expect("slowloris reply");
    let held = t0.elapsed();
    assert_eq!(reply.status, 408, "{}", reply.body);
    assert!(
        reply.body.contains("\"kind\":\"slow-client\""),
        "{}",
        reply.body
    );
    // The absolute deadline bounds how long the worker was held hostage.
    assert!(held < Duration::from_secs(5), "held {held:?}");
    assert_recovered(&server);

    // With two workers, a slowloris in flight must not block honest
    // traffic on the other worker.
    let handle = std::thread::spawn(move || chaos::slowloris(addr, Duration::from_secs(30)));
    std::thread::sleep(Duration::from_millis(30));
    assert_recovered(&server);
    let reply = handle.join().expect("thread").expect("reply");
    assert_eq!(reply.status, 408);

    // A truncated upload (body shorter than content-length, then FIN)
    // must resolve as a 400, not a hang.
    let reply = chaos::truncated_post(addr, "/place?env=grid:2x3").expect("truncated");
    assert_eq!(reply.status, 400, "{}", reply.body);
    assert_recovered(&server);

    server.drain();
    let stats = server.join();
    assert_eq!(stats.slow_clients, 2);
}

#[test]
fn deadline_exhaustion_degrades_hybrid_and_faults_exact() {
    let server = chaos_server(ServeConfig::default().workers(2));
    let addr = server.local_addr();

    // qft6 on grid:8x8 takes many seconds of exact search unbudgeted. A
    // hybrid request with a tight deadline must still answer 200 — just
    // with a degraded resolution label — and within bounded wall clock.
    let t0 = Instant::now();
    let reply = chaos::post(
        addr,
        "/place?circuit=qft6&env=grid:8x8&strategy=hybrid&budget_ms=300",
        &[],
        "",
    )
    .expect("post");
    let elapsed = t0.elapsed();
    assert_eq!(reply.status, 200, "{}", reply.body);
    assert!(
        reply.body.contains("\"resolution\":\"fallback\"")
            || reply.body.contains("\"resolution\":\"budget-exhausted\""),
        "expected a degraded resolution: {}",
        reply.body
    );
    assert!(elapsed < Duration::from_secs(10), "took {elapsed:?}");

    // The same circuit with strategy=exact has no fallback: the budget
    // trips and the taxonomy says so (504 / exit 3).
    let reply = chaos::post(
        addr,
        "/place?circuit=qft6&env=grid:8x8&strategy=exact&budget_ms=100",
        &[],
        "",
    )
    .expect("post");
    assert_eq!(reply.status, 504, "{}", reply.body);
    assert!(
        reply.body.contains("\"kind\":\"budget-exhausted\""),
        "{}",
        reply.body
    );
    assert!(reply.body.contains("\"exit_code\":3"), "{}", reply.body);
    assert_recovered(&server);

    server.drain();
    let stats = server.join();
    assert!(stats.budget_exhausted >= 1);
}

#[test]
fn sub_stride_deadlines_are_shed_not_burned() {
    // A budget below the server's deadline floor cannot execute even one
    // deadline-poll stride (the kernel polls every 1024 nodes): admitting
    // it would burn a worker slot to answer 504 having visited zero
    // nodes. It must be shed with 429 up front — and the worker it never
    // occupied must serve the next honest request.
    let server = chaos_server(ServeConfig::default().workers(1).min_budget_ms(25));
    let addr = server.local_addr();

    let reply = chaos::post(
        addr,
        "/place?circuit=qft6&env=grid:8x8&strategy=exact&budget_ms=1",
        &[],
        "",
    )
    .expect("post");
    assert_eq!(reply.status, 429, "{}", reply.body);
    assert!(
        reply.body.contains("\"kind\":\"overload\""),
        "{}",
        reply.body
    );
    assert!(reply.body.contains("deadline floor"), "{}", reply.body);
    assert_recovered(&server);

    server.drain();
    let stats = server.join();
    assert_eq!(
        stats.budget_exhausted, 0,
        "a sub-floor request burned a worker slot: {stats:?}"
    );
    assert!(stats.shed >= 1, "{stats:?}");
    assert_eq!(stats.served_ok, 1);
}

#[test]
fn queue_overflow_sheds_with_429_and_recovers() {
    let server = chaos_server(ServeConfig::default().workers(1).queue_depth(1));
    let addr = server.local_addr();

    // Occupy the single worker with a slow job, then pile on: queue depth
    // one means the pile must overflow into explicit 429s.
    let slow =
        std::thread::spawn(move || chaos::post(addr, GOOD, &[("x-qcp-chaos", "sleep:800")], ""));
    std::thread::sleep(Duration::from_millis(100));

    // The pile-on must be concurrent — a sequential client would wait
    // for each reply and never overflow the queue.
    let pile: Vec<_> = (0..6)
        .map(|_| std::thread::spawn(move || chaos::post(addr, GOOD, &[], "")))
        .collect();
    let mut sheds = 0;
    for handle in pile {
        let reply = handle.join().expect("thread").expect("pile-on");
        match reply.status {
            429 => {
                assert!(
                    reply.body.contains("\"kind\":\"overload\""),
                    "{}",
                    reply.body
                );
                sheds += 1;
            }
            200 => {}
            other => panic!("unexpected status {other}: {}", reply.body),
        }
    }
    assert!(sheds >= 1, "no request was shed under overload");

    let slow_reply = slow.join().expect("thread").expect("slow reply");
    assert_eq!(slow_reply.status, 200, "{}", slow_reply.body);

    // Once the pile drains, service is healthy again.
    assert_recovered(&server);
    server.drain();
    let stats = server.join();
    assert!(stats.shed >= 1);
    assert_eq!(stats.panics, 0);
}

#[test]
fn graceful_drain_finishes_queued_work_then_exits() {
    let server = chaos_server(ServeConfig::default().workers(1));
    let addr = server.local_addr();

    // Park a slow job, then queue a second one behind it, so the drain
    // request observably overlaps both in-flight and queued work.
    let slow =
        std::thread::spawn(move || chaos::post(addr, GOOD, &[("x-qcp-chaos", "sleep:400")], ""));
    std::thread::sleep(Duration::from_millis(100));
    let queued = std::thread::spawn(move || chaos::post(addr, GOOD, &[], ""));
    std::thread::sleep(Duration::from_millis(50));

    let reply = chaos::post(addr, "/admin/drain", &[], "").expect("drain");
    assert_eq!(reply.status, 200, "{}", reply.body);
    assert!(reply.body.contains("\"draining\":true"), "{}", reply.body);

    // Both the in-flight and the queued job still complete correctly.
    let slow_reply = slow.join().expect("thread").expect("slow reply");
    assert_eq!(slow_reply.status, 200, "{}", slow_reply.body);
    let queued_reply = queued.join().expect("thread").expect("queued reply");
    assert_eq!(queued_reply.status, 200, "{}", queued_reply.body);

    // join() returning is the drain guarantee; the counters confirm no
    // job was dropped on the floor.
    let stats = server.join();
    assert!(stats.served_ok >= 2, "{stats:?}");
    assert_eq!(stats.panics, 0);
}

#[test]
fn full_gauntlet_one_process_survives_every_fault_class() {
    // Every fault class against a single server instance, interleaved
    // with recovery probes: the closest thing to the acceptance criterion
    // "the daemon serves a correct subsequent request after every fault
    // and never exits".
    let server = chaos_server(
        ServeConfig::default()
            .workers(2)
            .max_body_bytes(4096)
            .read_timeout(Duration::from_millis(400)),
    );
    let addr = server.local_addr();

    // 1. Garbage request line.
    let reply = chaos::send_raw(addr, b"NOT HTTP\r\n\r\n", Duration::from_secs(30)).expect("raw");
    assert_eq!(reply.status, 400);
    assert_recovered(&server);

    // 2. Worker panic.
    let reply = chaos::post(addr, GOOD, &[("x-qcp-chaos", "panic")], "").expect("post");
    assert_eq!(reply.status, 500);
    assert_recovered(&server);

    // 3. Malformed QASM.
    let reply =
        chaos::post(addr, "/place?env=grid:2x3", &[], "OPENQASM 2.0;\nnope;\n").expect("post");
    assert_eq!(reply.status, 400);
    assert_recovered(&server);

    // 4. Oversized declaration.
    let head = "POST /place?env=grid:2x3 HTTP/1.1\r\nhost: qcp\r\ncontent-length: 999999\r\n\r\n";
    let reply = chaos::send_raw(addr, head.as_bytes(), Duration::from_secs(30)).expect("raw");
    assert_eq!(reply.status, 413);
    assert_recovered(&server);

    // 5. Slowloris.
    let reply = chaos::slowloris(addr, Duration::from_secs(30)).expect("slowloris");
    assert_eq!(reply.status, 408);
    assert_recovered(&server);

    // 6. Deadline-exhausting circuit, degraded not dead.
    let reply = chaos::post(
        addr,
        "/place?circuit=qft6&env=grid:8x8&strategy=hybrid&budget_ms=250",
        &[],
        "",
    )
    .expect("post");
    assert_eq!(reply.status, 200, "{}", reply.body);
    assert_recovered(&server);

    // 7. Sub-floor deadline, shed before admission (default floor 25 ms).
    let reply = chaos::post(
        addr,
        "/place?circuit=qec3&env=grid:2x3&budget_ms=1",
        &[],
        "",
    )
    .expect("post");
    assert_eq!(reply.status, 429, "{}", reply.body);
    assert_recovered(&server);

    let health = chaos::get(addr, "/healthz").expect("healthz");
    assert_eq!(health.status, 200);
    assert!(health.body.contains("\"ok\":true"), "{}", health.body);
    assert!(health.body.contains("\"panics\":1"), "{}", health.body);

    server.drain();
    let stats = server.join();
    assert_eq!(stats.panics, 1);
    assert!(stats.served_ok >= 7, "{stats:?}");
}
