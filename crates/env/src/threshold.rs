//! The fast-interaction threshold.

use std::fmt;

use qcp_circuit::Time;

/// The `Threshold` of §5: an interaction with weight strictly *below* this
/// value (in delay units of 10⁻⁴ s) is considered fast and may be used by
/// the placed circuit; slower interactions are refocussed away.
///
/// The paper evaluates thresholds `{50, 100, 200, 500, 1000, 10000}`
/// (Table 3) and suggests, as an automatic default, the minimal value
/// keeping the fast graph connected
/// ([`Environment::connectivity_threshold`]).
///
/// ```
/// use qcp_env::Threshold;
/// let t = Threshold::new(200.0);
/// assert!(t.is_fast(199.9));
/// assert!(!t.is_fast(200.0)); // strictly below
/// assert!(Threshold::unbounded().is_fast(1e12));
/// ```
///
/// [`Environment::connectivity_threshold`]: crate::Environment::connectivity_threshold
#[derive(Clone, Copy, PartialEq, PartialOrd, Debug)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Threshold(f64);

impl Threshold {
    /// Creates a threshold of `units` delay units.
    ///
    /// # Panics
    ///
    /// Panics if `units` is NaN or negative.
    pub fn new(units: f64) -> Self {
        assert!(
            !units.is_nan() && units >= 0.0,
            "threshold must be non-negative, got {units}"
        );
        Threshold(units)
    }

    /// A threshold that admits every finite interaction (the paper's
    /// `Threshold = 10000` columns behave like this for all molecules in
    /// the library).
    pub fn unbounded() -> Self {
        Threshold(f64::INFINITY)
    }

    /// The smallest threshold that classifies `time` as fast (i.e. just
    /// above it).
    pub fn above(time: Time) -> Self {
        Threshold(time.units().next_up())
    }

    /// The threshold value in delay units.
    pub fn units(self) -> f64 {
        self.0
    }

    /// Returns `true` if an interaction of weight `units` counts as fast
    /// (strictly below the threshold, per §5: "below the `Threshold`").
    #[inline]
    pub fn is_fast(self, units: f64) -> bool {
        units < self.0
    }
}

impl fmt::Display for Threshold {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0.is_infinite() {
            write!(f, "∞")
        } else {
            write!(f, "{}", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strict_semantics() {
        let t = Threshold::new(100.0);
        assert!(t.is_fast(99.0));
        assert!(!t.is_fast(100.0));
        assert!(!t.is_fast(f64::INFINITY));
    }

    #[test]
    fn above_is_minimal() {
        let w = Time::from_units(89.0);
        let t = Threshold::above(w);
        assert!(t.is_fast(89.0));
        assert!(!t.is_fast(89.0f64.next_up()));
    }

    #[test]
    fn unbounded_accepts_finite_only() {
        let t = Threshold::unbounded();
        assert!(t.is_fast(1e300));
        assert!(!t.is_fast(f64::INFINITY));
    }

    #[test]
    fn display() {
        assert_eq!(Threshold::new(200.0).to_string(), "200");
        assert_eq!(Threshold::unbounded().to_string(), "∞");
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn rejects_negative() {
        let _ = Threshold::new(-1.0);
    }
}
