//! Physical environments (molecules) for quantum circuit placement.
//!
//! Definition 1 of the paper: *a physical environment (molecule) is a
//! complete non-oriented graph* over nuclei, with edge weights proportional
//! to the inverse coupling frequency (how long a fixed-angle two-qubit gate
//! takes on that pair) and diagonal weights giving single-qubit gate
//! delays. [`Environment`] is that object; [`Threshold`] selects which
//! interactions count as *fast* (§5 preprocessing), and
//! [`Environment::fast_graph`] extracts the fast-interaction graph the
//! placer aligns circuits along.
//!
//! The [`molecules`] module ships every environment used in the paper's
//! evaluation: acetyl chloride (Fig. 1, with the exact weights recovered
//! from Table 1), trans-crotonic acid, the 12-spin histidine register, the
//! 5-spin BOC-glycine-fluoride and pentafluorobutadienyl-iron molecules,
//! and the linear-nearest-neighbour chains of the scalability study.
//! The [`topologies`] module synthesizes environments from hardware
//! coupling maps instead (line, ring, grid, heavy-hex, star, or any
//! explicit coupling list), so the same placer runs against device-style
//! backends.
//!
//! # Example
//!
//! ```
//! use qcp_env::{molecules, Threshold};
//!
//! let acetyl = molecules::acetyl_chloride();
//! assert_eq!(acetyl.qubit_count(), 3);
//! // Fast graph at threshold 100: the two chemical bonds M–C1 and C1–C2.
//! let fast = acetyl.fast_graph(Threshold::new(100.0));
//! assert_eq!(fast.edge_count(), 2);
//! ```

#![forbid(unsafe_code)]
// Unit tests may unwrap freely; library code must not (workspace lints).
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]
#![warn(missing_docs)]

mod environment;
mod error;
pub mod molecules;
pub mod nmr;
mod nucleus;
pub mod text;
mod threshold;
pub mod topologies;

pub use environment::{Environment, EnvironmentBuilder};
pub use error::EnvError;
pub use nucleus::{Nucleus, PhysicalQubit};
pub use threshold::Threshold;

/// Convenience result alias used throughout the crate.
pub type Result<T, E = EnvError> = std::result::Result<T, E>;
