//! Liquid-state NMR unit conversions.
//!
//! In liquid-state NMR a two-qubit `ZZ(90°)` gate is implemented by free
//! evolution under the scalar J coupling for a time `1/(2J)`; single-qubit
//! `R_x/R_y` pulses take the length of the shaped RF pulse. This module
//! converts those physical quantities into the paper's delay units
//! (1 unit = 10⁻⁴ s, see Example 1: "the delays are measured in terms of
//! 1/10000 sec, and are rounded to keep the numbers integer").

use qcp_circuit::Time;

/// Delay units (10⁻⁴ s) for a 90° ZZ rotation under a scalar coupling of
/// `j_hz` hertz: `1/(2J)` seconds, rounded to an integer number of units
/// as in the paper.
///
/// ```
/// use qcp_env::nmr::zz90_delay_units;
/// // A 131 Hz one-bond C–H coupling: 5000/131 ≈ 38 units (the M–C1 edge
/// // of acetyl chloride in Fig. 1).
/// assert_eq!(zz90_delay_units(131.0), 38.0);
/// ```
///
/// # Panics
///
/// Panics if `j_hz` is not strictly positive.
pub fn zz90_delay_units(j_hz: f64) -> f64 {
    assert!(
        j_hz > 0.0 && j_hz.is_finite(),
        "coupling must be positive, got {j_hz} Hz"
    );
    (5000.0 / j_hz).round()
}

/// Delay units for a shaped RF pulse of `micros` microseconds (a 90°
/// single-qubit rotation), rounded to an integer number of units.
///
/// ```
/// use qcp_env::nmr::pulse_delay_units;
/// assert_eq!(pulse_delay_units(800.0), 8.0); // an 0.8 ms selective pulse
/// ```
///
/// # Panics
///
/// Panics if `micros` is negative or not finite.
pub fn pulse_delay_units(micros: f64) -> f64 {
    assert!(
        micros >= 0.0 && micros.is_finite(),
        "pulse length must be non-negative"
    );
    (micros / 100.0).round()
}

/// The J coupling (Hz) corresponding to a ZZ(90°) delay of `units` — the
/// inverse of [`zz90_delay_units`], useful for reporting tables in the
/// molecule's native terms.
///
/// # Panics
///
/// Panics if `units` is not strictly positive.
pub fn j_from_delay_units(units: f64) -> f64 {
    assert!(units > 0.0 && units.is_finite(), "delay must be positive");
    5000.0 / units
}

/// Convenience: the `Time` of a 90° ZZ rotation for a `j_hz` coupling.
pub fn zz90_time(j_hz: f64) -> Time {
    Time::from_units(zz90_delay_units(j_hz))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acetyl_chloride_reconstruction() {
        // The Fig. 1 weights correspond to physically sensible couplings:
        // 38 units ≈ 131 Hz (one-bond C–H), 89 ≈ 56 Hz (one-bond C–C),
        // 672 ≈ 7.4 Hz (two-bond C–H).
        assert_eq!(zz90_delay_units(131.0), 38.0);
        assert_eq!(zz90_delay_units(56.0), 89.0);
        assert_eq!(zz90_delay_units(7.44), 672.0);
    }

    #[test]
    fn roundtrip() {
        for u in [10.0, 38.0, 89.0, 672.0] {
            let j = j_from_delay_units(u);
            assert_eq!(zz90_delay_units(j), u);
        }
    }

    #[test]
    fn pulses() {
        assert_eq!(pulse_delay_units(100.0), 1.0);
        assert_eq!(pulse_delay_units(0.0), 0.0);
        assert_eq!(zz90_time(50.0).units(), 100.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_zero_coupling() {
        let _ = zz90_delay_units(0.0);
    }
}
