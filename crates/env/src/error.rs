//! Error type for environment construction.

use std::error::Error;
use std::fmt;

use crate::PhysicalQubit;

/// Errors returned when building or querying a physical environment.
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum EnvError {
    /// A nucleus index referred outside the environment.
    UnknownNucleus {
        /// The offending physical qubit.
        qubit: PhysicalQubit,
        /// Number of nuclei present.
        count: usize,
    },
    /// The same coupling was specified twice.
    DuplicateCoupling(PhysicalQubit, PhysicalQubit),
    /// A coupling joined a nucleus to itself.
    SelfCoupling(PhysicalQubit),
    /// A delay was NaN or negative.
    InvalidDelay {
        /// Offending delay in units.
        delay: f64,
        /// Context for the message.
        what: &'static str,
    },
    /// The environment has no nuclei.
    Empty,
    /// A remote-coupling growth factor was NaN, infinite, or below 1
    /// (filled weights must be finite and must not shrink with bond
    /// distance).
    InvalidGrowth(
        /// The offending growth factor.
        f64,
    ),
    /// A topology specifier could not be parsed or names a degenerate
    /// device (see [`crate::topologies::TopologySpec`]).
    BadTopology {
        /// The specifier as given.
        spec: String,
        /// What was wrong with it.
        reason: String,
    },
}

impl fmt::Display for EnvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EnvError::UnknownNucleus { qubit, count } => {
                write!(
                    f,
                    "nucleus {qubit} unknown in an environment of {count} nuclei"
                )
            }
            EnvError::DuplicateCoupling(a, b) => {
                write!(f, "coupling ({a}, {b}) specified twice")
            }
            EnvError::SelfCoupling(v) => write!(f, "nucleus {v} cannot couple to itself"),
            EnvError::InvalidDelay { delay, what } => {
                write!(f, "invalid {what} delay {delay}")
            }
            EnvError::Empty => write!(f, "environment has no nuclei"),
            EnvError::InvalidGrowth(g) => {
                write!(
                    f,
                    "remote-coupling growth factor must be finite and at least 1, got {g}"
                )
            }
            EnvError::BadTopology { spec, reason } => {
                write!(f, "bad topology `{spec}`: {reason}")
            }
        }
    }
}

impl Error for EnvError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages() {
        let e = EnvError::DuplicateCoupling(PhysicalQubit::new(0), PhysicalQubit::new(1));
        assert!(e.to_string().contains("p0"));
        assert!(EnvError::Empty.to_string().contains("no nuclei"));
    }

    #[test]
    fn send_sync() {
        fn assert_traits<T: Error + Send + Sync>() {}
        assert_traits::<EnvError>();
    }
}
