//! Physical qubits (nuclei) and their metadata.

use std::fmt;

/// Identifier of a *physical* qubit — a nucleus of the molecule (or a site
/// of a synthetic architecture).
///
/// Physical qubits index into an [`Environment`](crate::Environment); they
/// are deliberately a different type from logical circuit qubits
/// (`qcp_circuit::Qubit`) so placements cannot be applied backwards.
///
/// ```
/// use qcp_env::PhysicalQubit;
/// let v = PhysicalQubit::new(1);
/// assert_eq!(v.index(), 1);
/// assert_eq!(v.to_string(), "p1");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct PhysicalQubit(u32);

impl PhysicalQubit {
    /// Creates a physical-qubit identifier from a dense index.
    ///
    /// # Panics
    ///
    /// Panics if `index` exceeds `u32::MAX`.
    #[inline]
    pub fn new(index: usize) -> Self {
        match u32::try_from(index) {
            Ok(i) => PhysicalQubit(i),
            Err(_) => panic!("physical qubit index {index} exceeds u32::MAX"),
        }
    }

    /// Returns the dense index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl From<usize> for PhysicalQubit {
    fn from(index: usize) -> Self {
        PhysicalQubit::new(index)
    }
}

impl From<PhysicalQubit> for usize {
    fn from(v: PhysicalQubit) -> Self {
        v.index()
    }
}

impl fmt::Display for PhysicalQubit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// Metadata of one nucleus: its display name (e.g. `"C1"`, `"M"`, `"Hα"`).
#[derive(Clone, PartialEq, Eq, Debug)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Nucleus {
    name: String,
}

impl Nucleus {
    /// Creates a nucleus with the given display name.
    pub fn new(name: impl Into<String>) -> Self {
        Nucleus { name: name.into() }
    }

    /// The display name.
    pub fn name(&self) -> &str {
        &self.name
    }
}

impl fmt::Display for Nucleus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn physical_qubit_roundtrip() {
        assert_eq!(PhysicalQubit::new(5).index(), 5);
        assert_eq!(usize::from(PhysicalQubit::from(2usize)), 2);
        assert_eq!(PhysicalQubit::new(3).to_string(), "p3");
    }

    #[test]
    fn nucleus_name() {
        let n = Nucleus::new("C1");
        assert_eq!(n.name(), "C1");
        assert_eq!(n.to_string(), "C1");
    }
}
