//! Device-topology backends: synthesize [`Environment`]s from hardware
//! coupling maps.
//!
//! The paper maps circuits onto one NMR molecule, but its placement
//! formulation only needs a weighted interaction graph, so the same
//! pipeline runs unchanged on grid-, ring-, or heavy-hex-shaped devices
//! (cf. Bhattacharjee & Chattopadhyay's arbitrary-topology placement and
//! the LONGPATH 2D-placement line of work). This module turns the
//! standard coupling maps into environments:
//!
//! * [`line()`][fn@line], [`ring`], [`grid`], [`star`] — the textbook architectures,
//!   built on `qcp_graph::generate`;
//! * [`heavy_hex`] — the IBM-style heavy-hex lattice
//!   (`qcp_graph::generate::heavy_hex`);
//! * [`from_graph`] — any `qcp_graph::Graph` with uniform delays;
//! * [`from_coupling_list`] — an explicit coupling list with per-edge
//!   delays;
//! * [`TopologySpec`] — the CLI-facing `grid:8x8` / `heavy_hex:3` parser.
//!
//! Synthesized environments behave exactly like molecules: `fast_graph`,
//! `full_graph`, thresholds, and the whole placement pipeline work
//! unchanged.
//!
//! # Example
//!
//! ```
//! use qcp_env::topologies::{self, Delays, TopologySpec};
//! use qcp_env::Threshold;
//!
//! let dev = topologies::grid(3, 4, Delays::default());
//! assert_eq!(dev.qubit_count(), 12);
//! // Every nearest-neighbour coupling is fast, nothing else is finite.
//! assert_eq!(dev.fast_graph(Threshold::new(10.5)).edge_count(), 17);
//! assert_eq!(dev.full_graph().edge_count(), 17);
//!
//! // The same device from its CLI spelling.
//! let spec: TopologySpec = "grid:3x4".parse()?;
//! assert_eq!(spec.build(Delays::default()).qubit_count(), 12);
//! # Ok::<(), qcp_env::EnvError>(())
//! ```

use std::fmt;
use std::str::FromStr;

use qcp_graph::{generate, Graph};

use crate::{EnvError, Environment, PhysicalQubit, Result};

/// Gate-delay profile for synthesized topologies, in the paper's delay
/// units (10⁻⁴ s per unit).
///
/// The default matches the paper's synthetic "1 kHz quantum processor"
/// (Table 4): 1 unit per single-qubit 90° rotation and 10 units (0.001 s)
/// per two-qubit 90° coupling.
///
/// ```
/// use qcp_env::topologies::Delays;
///
/// assert_eq!(Delays::default(), Delays::new(1.0, 10.0));
/// assert_eq!(Delays::uniform(25.0).coupling, 25.0);
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Delays {
    /// Single-qubit 90°-gate delay on every site.
    pub single: f64,
    /// Two-qubit 90°-gate delay on every coupled pair.
    pub coupling: f64,
}

impl Delays {
    /// A profile with the given single- and two-qubit delays.
    ///
    /// # Panics
    ///
    /// Panics if either delay is NaN, infinite, or negative (static
    /// misuse, mirroring [`crate::EnvironmentBuilder::nucleus`]).
    pub fn new(single: f64, coupling: f64) -> Self {
        assert!(
            single.is_finite() && single >= 0.0 && coupling.is_finite() && coupling >= 0.0,
            "delays must be finite and non-negative, got single={single}, coupling={coupling}"
        );
        Delays { single, coupling }
    }

    /// The default single-qubit delay with a custom coupling delay.
    pub fn uniform(coupling: f64) -> Self {
        Delays::new(1.0, coupling)
    }
}

impl Default for Delays {
    fn default() -> Self {
        Delays {
            single: 1.0,
            coupling: 10.0,
        }
    }
}

/// A line (chain) device of `n` qubits — the paper's linear
/// nearest-neighbour architecture, equivalent to
/// [`crate::molecules::lnn_chain`].
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn line(n: usize, delays: Delays) -> Environment {
    assert!(n > 0, "a line needs at least one qubit");
    from_graph(format!("line-{n}"), &generate::chain(n), delays)
}

/// A ring device: `n ≥ 3` qubits with nearest-neighbour couplings closed
/// into a cycle.
///
/// # Panics
///
/// Panics if `n < 3`.
pub fn ring(n: usize, delays: Delays) -> Environment {
    from_graph(format!("ring-{n}"), &generate::ring(n), delays)
}

/// A `rows × cols` 2D-lattice device, row-major site numbering.
///
/// # Panics
///
/// Panics if the grid is empty.
pub fn grid(rows: usize, cols: usize, delays: Delays) -> Environment {
    assert!(rows * cols > 0, "a grid needs at least one site");
    from_graph(
        format!("grid-{rows}x{cols}"),
        &generate::grid(rows, cols),
        delays,
    )
}

/// A star device: one hub qubit coupled to `n - 1` leaves.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn star(n: usize, delays: Delays) -> Environment {
    assert!(n > 0, "a star needs at least one qubit");
    from_graph(format!("star-{n}"), &generate::star(n), delays)
}

/// The IBM-style heavy-hex lattice at distance `d`
/// ([`qcp_graph::generate::heavy_hex`]): `d(5d - 3)/2` qubits, maximum
/// degree 3.
///
/// ```
/// use qcp_env::topologies::{heavy_hex, Delays};
///
/// let dev = heavy_hex(3, Delays::default());
/// assert_eq!(dev.qubit_count(), 18);
/// assert_eq!(dev.full_graph().edge_count(), 18);
/// ```
///
/// # Panics
///
/// Panics if `d` is even or smaller than 3.
pub fn heavy_hex(d: usize, delays: Delays) -> Environment {
    from_graph(format!("heavy-hex-{d}"), &generate::heavy_hex(d), delays)
}

/// Synthesizes an environment from any coupling graph with uniform
/// delays: every node becomes a site named `x<i>`, every edge a coupling
/// of `delays.coupling` units (recorded as a bond, so
/// [`Environment::bond_graph`] recovers the topology).
///
/// Pairs without an edge stay at `+∞` — on hardware backends, qubits
/// that are not wired together cannot interact at any speed.
pub fn from_graph(name: impl Into<String>, graph: &Graph, delays: Delays) -> Environment {
    let mut b = Environment::builder(name);
    let sites: Vec<PhysicalQubit> = (0..graph.node_count())
        .map(|i| b.nucleus(format!("x{i}"), delays.single))
        .collect();
    for (u, v, _) in graph.edges() {
        // `Graph` stores simple edges, so each pair arrives exactly once.
        let _ = b.bond(sites[u.index()], sites[v.index()], delays.coupling);
    }
    #[allow(clippy::expect_used)]
    let env = b.build().expect("invariant: topology graphs are non-empty");
    env
}

/// Synthesizes an environment from an explicit coupling list with
/// per-edge delays: `qubits` sites named `x0..`, one coupling per
/// `(a, b, delay)` entry.
///
/// ```
/// use qcp_env::topologies::from_coupling_list;
///
/// // A 3-qubit triangle with asymmetric couplings.
/// let dev = from_coupling_list("triangle", 3,
///     [(0, 1, 10.0), (1, 2, 25.0), (0, 2, 40.0)], 1.0)?;
/// let q = |i| dev.find_nucleus(&format!("x{i}")).unwrap();
/// assert_eq!(dev.coupling(q(1), q(2)).units(), 25.0);
/// # Ok::<(), qcp_env::EnvError>(())
/// ```
///
/// # Errors
///
/// * [`EnvError::Empty`] if `qubits == 0`;
/// * [`EnvError::UnknownNucleus`] for out-of-range endpoints;
/// * [`EnvError::SelfCoupling`] / [`EnvError::DuplicateCoupling`] /
///   [`EnvError::InvalidDelay`] for malformed entries, as in
///   [`crate::EnvironmentBuilder::coupling`].
pub fn from_coupling_list(
    name: impl Into<String>,
    qubits: usize,
    couplings: impl IntoIterator<Item = (usize, usize, f64)>,
    single_delay: f64,
) -> Result<Environment> {
    let mut b = Environment::builder(name);
    let sites: Vec<PhysicalQubit> = (0..qubits)
        .map(|i| b.nucleus(format!("x{i}"), single_delay))
        .collect();
    let site = |i: usize| {
        sites
            .get(i)
            .copied()
            // Out-of-range endpoints carry the raw index so the builder's
            // range check reports it.
            .unwrap_or(PhysicalQubit::new(i))
    };
    for (a, c, delay) in couplings {
        b.bond(site(a), site(c), delay)?;
    }
    b.build()
}

/// A parsed device-topology specifier, the CLI's `--topology` argument.
///
/// Recognized spellings (case-sensitive, sizes in decimal):
///
/// | Spec | Device |
/// |---|---|
/// | `line:16` | [`line()`][fn@line] of 16 qubits |
/// | `ring:12` | [`ring`] of 12 qubits |
/// | `grid:8x8` | 8 × 8 [`grid`] |
/// | `heavy_hex:3` (or `heavy-hex:3`) | [`heavy_hex`] at distance 3 |
/// | `star:5` | [`star`] of 5 qubits |
///
/// ```
/// use qcp_env::topologies::{Delays, TopologySpec};
///
/// let spec: TopologySpec = "heavy_hex:3".parse()?;
/// assert_eq!(spec, TopologySpec::HeavyHex(3));
/// assert_eq!(spec.qubit_count(), 18);
/// assert_eq!(spec.to_string(), "heavy_hex:3");
/// assert!("grid:0x4".parse::<TopologySpec>().is_err());
/// let dev = spec.build(Delays::default());
/// assert_eq!(dev.qubit_count(), 18);
/// # Ok::<(), qcp_env::EnvError>(())
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TopologySpec {
    /// A chain of `n` qubits (`line:n`).
    Line(usize),
    /// A cycle of `n` qubits (`ring:n`).
    Ring(usize),
    /// A `rows × cols` lattice (`grid:RxC`).
    Grid(usize, usize),
    /// A heavy-hex lattice at distance `d` (`heavy_hex:d`).
    HeavyHex(usize),
    /// A hub with `n - 1` leaves (`star:n`).
    Star(usize),
}

impl TopologySpec {
    /// Number of qubits the built device will have.
    pub fn qubit_count(&self) -> usize {
        match *self {
            TopologySpec::Line(n) | TopologySpec::Ring(n) | TopologySpec::Star(n) => n,
            TopologySpec::Grid(r, c) => r * c,
            TopologySpec::HeavyHex(d) => d * (5 * d - 3) / 2,
        }
    }

    /// Builds the environment under the given delay profile.
    pub fn build(&self, delays: Delays) -> Environment {
        match *self {
            TopologySpec::Line(n) => line(n, delays),
            TopologySpec::Ring(n) => ring(n, delays),
            TopologySpec::Grid(r, c) => grid(r, c, delays),
            TopologySpec::HeavyHex(d) => heavy_hex(d, delays),
            TopologySpec::Star(n) => star(n, delays),
        }
    }
}

impl fmt::Display for TopologySpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            TopologySpec::Line(n) => write!(f, "line:{n}"),
            TopologySpec::Ring(n) => write!(f, "ring:{n}"),
            TopologySpec::Grid(r, c) => write!(f, "grid:{r}x{c}"),
            TopologySpec::HeavyHex(d) => write!(f, "heavy_hex:{d}"),
            TopologySpec::Star(n) => write!(f, "star:{n}"),
        }
    }
}

impl FromStr for TopologySpec {
    type Err = EnvError;

    fn from_str(s: &str) -> Result<Self> {
        let bad = |reason: &str| EnvError::BadTopology {
            spec: s.to_string(),
            reason: reason.to_string(),
        };
        let (family, size) = s
            .split_once(':')
            .ok_or_else(|| bad("expected `<family>:<size>`, e.g. `grid:8x8` or `line:16`"))?;
        let parse_n = |text: &str| {
            text.parse::<usize>()
                .map_err(|_| bad("size must be a decimal integer"))
        };
        let spec = match family {
            "line" => TopologySpec::Line(parse_n(size)?),
            "ring" => TopologySpec::Ring(parse_n(size)?),
            "star" => TopologySpec::Star(parse_n(size)?),
            "heavy_hex" | "heavy-hex" => TopologySpec::HeavyHex(parse_n(size)?),
            "grid" => {
                let (r, c) = size
                    .split_once('x')
                    .ok_or_else(|| bad("grid size must be `<rows>x<cols>`, e.g. `grid:8x8`"))?;
                TopologySpec::Grid(parse_n(r)?, parse_n(c)?)
            }
            _ => {
                return Err(bad(
                    "unknown family; expected line, ring, grid, heavy_hex, or star",
                ))
            }
        };
        match spec {
            TopologySpec::Line(0) | TopologySpec::Star(0) => Err(bad("needs at least 1 qubit")),
            TopologySpec::Ring(n) if n < 3 => Err(bad("a ring needs at least 3 qubits")),
            TopologySpec::Grid(r, c) if r == 0 || c == 0 => {
                Err(bad("grid dimensions must be positive"))
            }
            TopologySpec::HeavyHex(d) if d < 3 || d % 2 == 0 => {
                Err(bad("heavy-hex distance must be odd and at least 3"))
            }
            ok => Ok(ok),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Threshold;
    use qcp_graph::traversal::is_connected;

    #[test]
    fn line_matches_lnn_chain() {
        let dev = line(6, Delays::uniform(10.0));
        let lnn = crate::molecules::lnn_chain(6, 10.0);
        assert_eq!(dev.qubit_count(), lnn.qubit_count());
        for i in dev.qubits() {
            for j in dev.qubits() {
                if i < j {
                    assert_eq!(dev.weight_units(i, j), lnn.weight_units(i, j));
                }
            }
        }
    }

    #[test]
    fn shapes_and_counts() {
        assert_eq!(ring(8, Delays::default()).full_graph().edge_count(), 8);
        assert_eq!(grid(4, 4, Delays::default()).full_graph().edge_count(), 24);
        assert_eq!(star(7, Delays::default()).full_graph().max_degree(), 6);
        let hh = heavy_hex(5, Delays::default());
        assert_eq!(hh.qubit_count(), 55);
        assert_eq!(hh.full_graph().edge_count(), 60);
        assert!(hh.full_graph().max_degree() <= 3);
    }

    #[test]
    fn delays_are_applied() {
        let dev = ring(5, Delays::new(2.0, 33.0));
        let q = |i| PhysicalQubit::new(i);
        assert_eq!(dev.single_qubit_delay(q(0)).units(), 2.0);
        assert_eq!(dev.coupling(q(0), q(1)).units(), 33.0);
        // Non-adjacent pairs cannot interact.
        assert_eq!(dev.weight_units(q(0), q(2)), f64::INFINITY);
    }

    #[test]
    fn bond_graph_recovers_topology() {
        let dev = grid(3, 3, Delays::default());
        let bonds = dev.bond_graph();
        assert_eq!(bonds.edge_count(), 12);
        assert!(is_connected(&bonds));
        // Connectivity threshold is just above the uniform coupling.
        let t = dev.connectivity_threshold().unwrap();
        assert!(t.is_fast(10.0));
        assert!(!t.is_fast(10.1));
    }

    #[test]
    fn coupling_list_errors_propagate() {
        assert!(matches!(
            from_coupling_list("dup", 3, [(0, 1, 5.0), (1, 0, 6.0)], 1.0).unwrap_err(),
            EnvError::DuplicateCoupling(..)
        ));
        assert!(matches!(
            from_coupling_list("range", 2, [(0, 7, 5.0)], 1.0).unwrap_err(),
            EnvError::UnknownNucleus { .. }
        ));
        assert!(matches!(
            from_coupling_list("self", 2, [(1, 1, 5.0)], 1.0).unwrap_err(),
            EnvError::SelfCoupling(..)
        ));
        assert!(matches!(
            from_coupling_list("nan", 2, [(0, 1, f64::NAN)], 1.0).unwrap_err(),
            EnvError::InvalidDelay { .. }
        ));
        assert!(matches!(
            from_coupling_list("empty", 0, [], 1.0).unwrap_err(),
            EnvError::Empty
        ));
    }

    #[test]
    fn spec_parse_roundtrip() {
        for text in ["line:16", "ring:12", "grid:8x8", "heavy_hex:3", "star:5"] {
            let spec: TopologySpec = text.parse().unwrap();
            assert_eq!(spec.to_string(), text);
            assert_eq!(
                spec.build(Delays::default()).qubit_count(),
                spec.qubit_count()
            );
        }
        assert_eq!(
            "heavy-hex:5".parse::<TopologySpec>().unwrap(),
            TopologySpec::HeavyHex(5)
        );
    }

    #[test]
    fn spec_rejects_malformed_and_degenerate() {
        for text in [
            "grid",
            "grid:8",
            "grid:0x4",
            "grid:4x",
            "torus:5",
            "line:zero",
            "line:0",
            "ring:2",
            "heavy_hex:4",
            "heavy_hex:1",
            "",
        ] {
            let err = text.parse::<TopologySpec>().unwrap_err();
            assert!(
                matches!(&err, EnvError::BadTopology { spec, .. } if spec == text),
                "{text}: {err}"
            );
        }
    }

    #[test]
    fn placement_runs_on_synthesized_devices() {
        // The whole point: fast graphs and thresholds work unchanged.
        let dev = heavy_hex(3, Delays::default());
        let fast = dev.fast_graph(Threshold::new(10.5));
        assert_eq!(fast.edge_count(), 18);
        assert!(is_connected(&fast));
    }
}
