//! The physical environments used in the paper's evaluation.
//!
//! Weight provenance: **acetyl chloride is exact** — its six weights are
//! recovered from the paper's Table 1 runtime trace and reproduce it to
//! the unit. The other molecules' full coupling tables are not reprinted
//! in the paper; we synthesize them (see `DESIGN.md` §5) with the
//! algorithmically relevant structure preserved:
//!
//! * fast couplings run along chemical bonds, so the fast graph at sane
//!   thresholds *is* the bond graph (the paper's first observation in §5);
//! * one-bond couplings are 5–50× faster than multi-bond ones;
//! * trans-crotonic acid's longest bond chain has five spins (§6's qft6
//!   discussion) and splits `4 | 3` at the `C2–C3` bond (Example 4);
//! * histidine's bond graph contains a ten-spin path, so the 10-qubit
//!   pseudo-cat circuit embeds whole (Table 2);
//! * every coupling of the pentafluorobutadienyl molecule is slower than
//!   100 units, so thresholds 50 and 100 disallow all interactions
//!   (the N/A cells of Table 3).
//!
//! Unspecified long-range couplings are filled by
//! [`EnvironmentBuilder::fill_remote_couplings`], which grows delays with
//! bond distance the way multi-bond J couplings decay.
//!
//! [`EnvironmentBuilder::fill_remote_couplings`]:
//! crate::EnvironmentBuilder::fill_remote_couplings

// This module builds fixed molecules from literal nucleus/bond/coupling
// tables; every `expect` documents that those tables are valid by
// construction (scoped allow per the workspace unwrap/expect policy).
#![allow(clippy::expect_used)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::{Environment, PhysicalQubit};

/// Acetyl chloride (CH₃COCl), the 3-spin register of Fig. 1: the methyl
/// protons `M` and the two carbons `C1`, `C2`.
///
/// Weights are *exact* — reverse-engineered from the Table 1 cost trace:
/// the mapping `a→M, b→C2, c→C1` of the Fig. 2 encoder costs 770 units and
/// the optimal `a→C2, b→C1, c→M` costs 136.
///
/// ```
/// use qcp_env::molecules::acetyl_chloride;
/// let m = acetyl_chloride();
/// let (v_m, v_c1, v_c2) = (m.find_nucleus("M").unwrap(),
///                          m.find_nucleus("C1").unwrap(),
///                          m.find_nucleus("C2").unwrap());
/// assert_eq!(m.coupling(v_m, v_c1).units(), 38.0);
/// assert_eq!(m.coupling(v_c1, v_c2).units(), 89.0);
/// assert_eq!(m.coupling(v_m, v_c2).units(), 672.0);
/// ```
pub fn acetyl_chloride() -> Environment {
    let mut b = Environment::builder("acetyl chloride");
    let m = b.nucleus("M", 8.0);
    let c1 = b.nucleus("C1", 8.0);
    let c2 = b.nucleus("C2", 1.0);
    // One-bond couplings along M–C1–C2 (131 Hz and 56 Hz).
    b.bond(m, c1, 38.0).expect("fresh pair");
    b.bond(c1, c2, 89.0).expect("fresh pair");
    // Two-bond M–C2 coupling (7.4 Hz).
    b.coupling(m, c2, 672.0).expect("fresh pair");
    b.build().expect("non-empty")
}

/// Trans-crotonic acid (CH₃–CH=CH–COOH), the 7-spin register of the
/// five-qubit error-correction benchmark and of Example 4 / Fig. 3.
///
/// Nucleus order matches the paper's Example 4 listing:
/// `M, C1, H1, C2, C3, H2, C4`; bonds are
/// `M–C1–C2(–H1)–C3(–H2)–C4` — the longest spin chain has exactly five
/// nuclei, which is why a 6-qubit QFT cannot run in a chain
/// sub-architecture on this molecule (§6).
pub fn trans_crotonic_acid() -> Environment {
    let mut b = Environment::builder("trans-crotonic acid");
    let m = b.nucleus("M", 4.0);
    let c1 = b.nucleus("C1", 6.0);
    let h1 = b.nucleus("H1", 3.0);
    let c2 = b.nucleus("C2", 6.0);
    let c3 = b.nucleus("C3", 6.0);
    let h2 = b.nucleus("H2", 3.0);
    let c4 = b.nucleus("C4", 6.0);
    // One-bond couplings (synthesized; ~128 Hz methyl, ~70 Hz C–C,
    // ~160 Hz vinyl C–H, ~42 Hz to the carboxyl carbon).
    b.bond(m, c1, 39.0).expect("fresh pair");
    b.bond(c1, c2, 72.0).expect("fresh pair");
    b.bond(h1, c2, 32.0).expect("fresh pair");
    b.bond(c2, c3, 69.0).expect("fresh pair");
    b.bond(h2, c3, 31.0).expect("fresh pair");
    b.bond(c3, c4, 120.0).expect("fresh pair");
    // Selected multi-bond couplings (two/three-bond J values).
    b.coupling(m, c2, 714.0).expect("fresh pair");
    b.coupling(c1, c3, 385.0).expect("fresh pair");
    b.coupling(h1, c1, 313.0).expect("fresh pair");
    b.coupling(h1, c3, 192.0).expect("fresh pair");
    b.coupling(h1, h2, 333.0).expect("fresh pair");
    b.coupling(h2, c2, 208.0).expect("fresh pair");
    b.coupling(h2, c4, 238.0).expect("fresh pair");
    b.coupling(c2, c4, 833.0).expect("fresh pair");
    b.fill_remote_couplings(6.0).expect("growth 6 is valid");
    b.build().expect("non-empty")
}

/// The 12-spin histidine register of the 12-qubit benchmarking experiment
/// (Table 2's pseudo-cat environment and the large register of Table 3).
///
/// Nuclei: amide proton `HN`, backbone `N`, `Cα` (with `Hα`), carboxyl
/// `C'`, `Cβ`, then the imidazole ring `Cγ–Nδ1–Cε1–Nε2–Cδ2` (closed) with
/// the ring proton `Hδ2`. The bond path
/// `HN–N–Cα–Cβ–Cγ–Nδ1–Cε1–Nε2–Cδ2–Hδ2` has ten spins — the home of the
/// 10-qubit pseudo-cat circuit.
pub fn histidine() -> Environment {
    let mut b = Environment::builder("histidine");
    let hn = b.nucleus("HN", 3.0);
    let n = b.nucleus("N", 5.0);
    let ca = b.nucleus("Ca", 6.0);
    let ha = b.nucleus("Ha", 3.0);
    let cp = b.nucleus("C'", 6.0);
    let cb = b.nucleus("Cb", 6.0);
    let cg = b.nucleus("Cg", 6.0);
    let nd1 = b.nucleus("Nd1", 5.0);
    let ce1 = b.nucleus("Ce1", 6.0);
    let ne2 = b.nucleus("Ne2", 5.0);
    let cd2 = b.nucleus("Cd2", 6.0);
    let hd2 = b.nucleus("Hd2", 3.0);
    // Backbone bonds.
    b.bond(hn, n, 56.0).expect("fresh pair"); // 90 Hz N–H
    b.bond(n, ca, 385.0).expect("fresh pair"); // 13 Hz N–C
    b.bond(ca, ha, 35.0).expect("fresh pair"); // 143 Hz C–H
    b.bond(ca, cp, 94.0).expect("fresh pair"); // 53 Hz C–C
    b.bond(ca, cb, 139.0).expect("fresh pair"); // 36 Hz C–C
    b.bond(cb, cg, 114.0).expect("fresh pair"); // 44 Hz C–C

    // Imidazole ring (closed 5-cycle) plus its proton.
    b.bond(cg, nd1, 333.0).expect("fresh pair"); // 15 Hz C–N
    b.bond(cg, cd2, 69.0).expect("fresh pair"); // 72 Hz ring C=C
    b.bond(nd1, ce1, 294.0).expect("fresh pair");
    b.bond(ce1, ne2, 312.0).expect("fresh pair");
    b.bond(ne2, cd2, 357.0).expect("fresh pair");
    b.bond(cd2, hd2, 26.0).expect("fresh pair"); // 190 Hz aromatic C–H

    // Selected multi-bond couplings.
    b.coupling(ha, n, 625.0).expect("fresh pair");
    b.coupling(ha, cp, 417.0).expect("fresh pair");
    b.coupling(ha, cb, 500.0).expect("fresh pair");
    b.coupling(cp, cb, 833.0).expect("fresh pair");
    b.coupling(cp, n, 556.0).expect("fresh pair");
    b.coupling(hn, ca, 1000.0).expect("fresh pair");
    b.coupling(cg, ce1, 1250.0).expect("fresh pair");
    b.coupling(cg, ne2, 833.0).expect("fresh pair");
    b.coupling(nd1, cd2, 769.0).expect("fresh pair");
    b.coupling(nd1, ne2, 1429.0).expect("fresh pair");
    b.coupling(ce1, cd2, 714.0).expect("fresh pair");
    b.coupling(hd2, ne2, 417.0).expect("fresh pair");
    b.coupling(hd2, cg, 455.0).expect("fresh pair");
    b.coupling(ca, cg, 893.0).expect("fresh pair");
    b.fill_remote_couplings(5.0).expect("growth 5 is valid");
    b.build().expect("non-empty")
}

/// The 5-spin BOC-(¹³C₂-¹⁵N-²D-α-glycine)-fluoride register: `F`, the
/// carbonyl `C'`, `Cα`, the amide `N`, and its proton `HN`, bonded in a
/// chain `F–C'–Cα–N–HN`.
pub fn boc_glycine_fluoride() -> Environment {
    let mut b = Environment::builder("BOC-glycine-fluoride");
    let f = b.nucleus("F", 2.0);
    let cp = b.nucleus("C'", 6.0);
    let ca = b.nucleus("Ca", 6.0);
    let n = b.nucleus("N", 5.0);
    let hn = b.nucleus("HN", 3.0);
    b.bond(f, cp, 14.0).expect("fresh pair"); // 360 Hz one-bond C–F
    b.bond(cp, ca, 94.0).expect("fresh pair"); // 53 Hz C–C
    b.bond(ca, n, 385.0).expect("fresh pair"); // 13 Hz C–N
    b.bond(n, hn, 56.0).expect("fresh pair"); // 90 Hz N–H

    // Two-bond couplings (the 36 Hz two-bond C–F is famously large).
    b.coupling(f, ca, 139.0).expect("fresh pair");
    b.coupling(cp, n, 192.0).expect("fresh pair");
    b.coupling(ca, hn, 208.0).expect("fresh pair");
    b.coupling(f, n, 625.0).expect("fresh pair");
    b.coupling(cp, hn, 556.0).expect("fresh pair");
    b.coupling(f, hn, 1250.0).expect("fresh pair");
    b.build().expect("non-empty")
}

/// The 5-fluorine pentafluorobutadienyl-cyclopentadienyl-dicarbonyl-iron
/// register of the order-finding experiment. All of its couplings are
/// slower than 100 delay units, so thresholds 50 and 100 disallow every
/// interaction — the N/A cells of Table 3 ("the experiment ... is so
/// 'slow'").
pub fn pentafluoro_iron() -> Environment {
    let mut b = Environment::builder("pentafluorobutadienyl iron complex");
    let fs: Vec<PhysicalQubit> = (1..=5).map(|i| b.nucleus(format!("F{i}"), 2.0)).collect();
    // Neighbouring fluorines along the butadienyl chain.
    b.bond(fs[0], fs[1], 128.0).expect("fresh pair");
    b.bond(fs[1], fs[2], 146.0).expect("fresh pair");
    b.bond(fs[2], fs[3], 160.0).expect("fresh pair");
    b.bond(fs[3], fs[4], 134.0).expect("fresh pair");
    // Longer-range F–F couplings.
    b.coupling(fs[0], fs[2], 380.0).expect("fresh pair");
    b.coupling(fs[1], fs[3], 410.0).expect("fresh pair");
    b.coupling(fs[2], fs[4], 430.0).expect("fresh pair");
    b.coupling(fs[0], fs[3], 900.0).expect("fresh pair");
    b.coupling(fs[1], fs[4], 950.0).expect("fresh pair");
    b.coupling(fs[0], fs[4], 1800.0).expect("fresh pair");
    b.build().expect("non-empty")
}

/// A linear-nearest-neighbour chain of `n` qubits with `coupling` delay
/// units per 90° two-qubit rotation between neighbours and no other
/// couplings — Table 4's synthetic "1 kHz quantum processor" uses
/// `coupling = 10.0` (0.001 s).
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn lnn_chain(n: usize, coupling: f64) -> Environment {
    assert!(n > 0, "chain needs at least one qubit");
    let mut b = Environment::builder(format!("lnn-{n}"));
    let vs: Vec<PhysicalQubit> = (1..=n).map(|i| b.nucleus(format!("x{i}"), 1.0)).collect();
    for w in vs.windows(2) {
        b.bond(w[0], w[1], coupling).expect("fresh pair");
    }
    b.build().expect("non-empty")
}

/// The Table 4 chain: `n` qubits at 0.001 s (10 units) per 90° coupling.
pub fn lnn_chain_1khz(n: usize) -> Environment {
    lnn_chain(n, 10.0)
}

/// A `rows × cols` grid architecture with uniform nearest-neighbour
/// couplings — the 2D-lattice architecture whose separability the paper
/// notes is `s ≥ 1/2`.
///
/// # Panics
///
/// Panics if the grid is empty.
pub fn grid(rows: usize, cols: usize, coupling: f64) -> Environment {
    assert!(rows * cols > 0, "grid needs at least one site");
    let mut b = Environment::builder(format!("grid-{rows}x{cols}"));
    let mut ids = Vec::with_capacity(rows * cols);
    for r in 0..rows {
        for c in 0..cols {
            ids.push(b.nucleus(format!("x{r}_{c}"), 1.0));
        }
    }
    for r in 0..rows {
        for c in 0..cols {
            let v = ids[r * cols + c];
            if c + 1 < cols {
                b.bond(v, ids[r * cols + c + 1], coupling)
                    .expect("fresh pair");
            }
            if r + 1 < rows {
                b.bond(v, ids[(r + 1) * cols + c], coupling)
                    .expect("fresh pair");
            }
        }
    }
    b.build().expect("non-empty")
}

/// A random molecule-like environment: a random bounded-degree bond tree
/// with one-bond delays in `20..=60` units, remote couplings filled by
/// bond distance. Deterministic in `seed`.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn random_molecule(n: usize, seed: u64) -> Environment {
    assert!(n > 0, "environment needs at least one nucleus");
    let mut rng = StdRng::seed_from_u64(seed);
    let tree = qcp_graph::generate::bounded_degree_tree(n, 4, &mut rng);
    let mut b = Environment::builder(format!("random-{n}-{seed}"));
    let vs: Vec<PhysicalQubit> = (0..n)
        .map(|i| b.nucleus(format!("s{i}"), rng.gen_range(1..=8) as f64))
        .collect();
    for (x, y, _) in tree.edges() {
        let delay = rng.gen_range(20..=60) as f64;
        b.bond(vs[x.index()], vs[y.index()], delay)
            .expect("tree edges are unique");
    }
    b.fill_remote_couplings(6.0).expect("growth 6 is valid");
    b.build().expect("non-empty")
}

/// Looks up a molecule by the name used in the paper's tables.
///
/// Recognized: `acetyl-chloride`, `trans-crotonic-acid`, `histidine`,
/// `boc-glycine-fluoride`, `pentafluoro-iron`.
pub fn named(name: &str) -> Option<Environment> {
    match name {
        "acetyl-chloride" => Some(acetyl_chloride()),
        "trans-crotonic-acid" => Some(trans_crotonic_acid()),
        "histidine" => Some(histidine()),
        "boc-glycine-fluoride" => Some(boc_glycine_fluoride()),
        "pentafluoro-iron" => Some(pentafluoro_iron()),
        _ => None,
    }
}

/// All named molecules, in increasing register size.
pub const NAMES: &[&str] = &[
    "acetyl-chloride",
    "boc-glycine-fluoride",
    "pentafluoro-iron",
    "trans-crotonic-acid",
    "histidine",
];

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Threshold;
    use qcp_graph::traversal::{is_connected, shortest_path};
    use qcp_graph::NodeId;

    #[test]
    fn acetyl_chloride_exact_weights() {
        let m = acetyl_chloride();
        assert_eq!(m.qubit_count(), 3);
        let p = |name: &str| m.find_nucleus(name).unwrap();
        assert_eq!(m.single_qubit_delay(p("M")).units(), 8.0);
        assert_eq!(m.single_qubit_delay(p("C1")).units(), 8.0);
        assert_eq!(m.single_qubit_delay(p("C2")).units(), 1.0);
        assert_eq!(m.coupling(p("M"), p("C1")).units(), 38.0);
        assert_eq!(m.coupling(p("C1"), p("C2")).units(), 89.0);
        assert_eq!(m.coupling(p("M"), p("C2")).units(), 672.0);
        // Bond graph is the chain M–C1–C2.
        let bg = m.bond_graph();
        assert_eq!(bg.edge_count(), 2);
        assert!(bg.has_edge(NodeId::new(0), NodeId::new(1)));
    }

    #[test]
    fn registry_is_complete() {
        for name in NAMES {
            let env = named(name).unwrap_or_else(|| panic!("missing molecule {name}"));
            assert!(env.qubit_count() >= 3, "{name} too small");
            assert!(
                is_connected(&env.full_graph()),
                "{name} full graph must be connected"
            );
        }
        assert!(named("unobtainium").is_none());
    }

    #[test]
    fn sizes_match_paper() {
        assert_eq!(acetyl_chloride().qubit_count(), 3);
        assert_eq!(boc_glycine_fluoride().qubit_count(), 5);
        assert_eq!(pentafluoro_iron().qubit_count(), 5);
        assert_eq!(trans_crotonic_acid().qubit_count(), 7);
        assert_eq!(histidine().qubit_count(), 12);
    }

    #[test]
    fn crotonic_chain_has_five_spins() {
        // §6: "the longest spin chain in trans-crotonic acid has only five
        // qubits". Longest path in the bond graph = 5 nodes.
        let bg = trans_crotonic_acid().bond_graph();
        let mut longest = 0;
        for a in bg.nodes() {
            for b in bg.nodes() {
                if let Some(p) = shortest_path(&bg, a, b) {
                    longest = longest.max(p.len());
                }
            }
        }
        assert_eq!(longest, 5);
    }

    #[test]
    fn crotonic_bisects_at_c2_c3() {
        // Example 4: cutting the bond graph must allow a 4|3 split.
        let env = trans_crotonic_acid();
        let b = qcp_graph::bisection::balanced_connected_bisection(&env.bond_graph()).unwrap();
        assert_eq!(b.left.len(), 3);
        assert_eq!(b.right.len(), 4);
    }

    #[test]
    fn histidine_hosts_a_ten_spin_path() {
        let env = histidine();
        let bg = env.bond_graph();
        let path = [
            "HN", "N", "Ca", "Cb", "Cg", "Nd1", "Ce1", "Ne2", "Cd2", "Hd2",
        ];
        for w in path.windows(2) {
            let a = env.find_nucleus(w[0]).unwrap();
            let b = env.find_nucleus(w[1]).unwrap();
            assert!(
                bg.has_edge(NodeId::new(a.index()), NodeId::new(b.index())),
                "missing bond {}-{}",
                w[0],
                w[1]
            );
        }
        assert_eq!(path.len(), 10);
    }

    #[test]
    fn histidine_ring_is_a_cycle() {
        let env = histidine();
        let bg = env.bond_graph();
        // 12 nodes, 12 bonds: exactly one cycle (the imidazole ring).
        assert_eq!(bg.node_count(), 12);
        assert_eq!(bg.edge_count(), 12);
        assert!(is_connected(&bg));
    }

    #[test]
    fn pentafluoro_is_dead_below_threshold_100() {
        let env = pentafluoro_iron();
        assert_eq!(env.fast_graph(Threshold::new(50.0)).edge_count(), 0);
        assert_eq!(env.fast_graph(Threshold::new(100.0)).edge_count(), 0);
        assert!(env.fast_graph(Threshold::new(200.0)).edge_count() >= 4);
        assert!(is_connected(&env.fast_graph(Threshold::new(200.0))));
    }

    #[test]
    fn connectivity_thresholds_are_sane() {
        // Acetyl chloride connects once both bonds are fast: bottleneck 89.
        let t = acetyl_chloride().connectivity_threshold().unwrap();
        assert!(t.is_fast(89.0) && !t.is_fast(90.0));
        // Pentafluoro: bottleneck is the slowest chain bond, 160.
        let t = pentafluoro_iron().connectivity_threshold().unwrap();
        assert!(t.is_fast(160.0) && !t.is_fast(161.0));
    }

    #[test]
    fn lnn_chain_shape() {
        let env = lnn_chain_1khz(8);
        assert_eq!(env.qubit_count(), 8);
        let fast = env.fast_graph(Threshold::new(11.0));
        assert_eq!(fast.edge_count(), 7);
        assert!(is_connected(&fast));
        // Non-neighbours cannot interact at all.
        assert_eq!(
            env.coupling(PhysicalQubit::new(0), PhysicalQubit::new(2))
                .units(),
            f64::INFINITY
        );
    }

    #[test]
    fn grid_shape() {
        let env = grid(3, 4, 10.0);
        assert_eq!(env.qubit_count(), 12);
        assert_eq!(env.bond_graph().edge_count(), 17);
        assert!(is_connected(&env.fast_graph(Threshold::new(11.0))));
    }

    #[test]
    fn random_molecule_is_deterministic_and_complete() {
        let a = random_molecule(9, 3);
        let b = random_molecule(9, 3);
        for i in a.qubits() {
            for j in a.qubits() {
                if i != j {
                    assert_eq!(a.coupling(i, j), b.coupling(i, j));
                }
            }
        }
        assert!(is_connected(&a.full_graph()));
    }

    #[test]
    fn fill_makes_molecules_complete_graphs() {
        for name in ["trans-crotonic-acid", "histidine"] {
            let env = named(name).unwrap();
            let n = env.qubit_count();
            let full = env.full_graph();
            assert_eq!(full.edge_count(), n * (n - 1) / 2, "{name} not complete");
        }
    }
}
