//! A small line-oriented text format for physical environments.
//!
//! ```text
//! environment acetyl-chloride
//! nucleus M 8        # name, single-qubit 90-degree delay
//! nucleus C1 8
//! nucleus C2 1
//! bond M C1 38       # chemical bond with coupling delay
//! bond C1 C2 89
//! coupling M C2 672  # non-bond coupling
//! ```
//!
//! Blank lines and `#` comments are ignored. Unspecified pairs stay at
//! `+∞` (unusable), exactly as with the builder API.
//!
//! ```
//! use qcp_env::{molecules, text};
//! let m = molecules::acetyl_chloride();
//! let round = text::parse(&text::to_text(&m))?;
//! assert_eq!(round.qubit_count(), 3);
//! assert_eq!(round.coupling(
//!     round.find_nucleus("M").unwrap(),
//!     round.find_nucleus("C2").unwrap(),
//! ).units(), 672.0);
//! # Ok::<(), qcp_env::EnvError>(())
//! ```

use crate::{EnvError, Environment, Result};

/// Serializes an environment in the text format.
///
/// Bond couplings are emitted as `bond` lines, other finite couplings as
/// `coupling` lines; infinite (absent) couplings are omitted.
pub fn to_text(env: &Environment) -> String {
    let mut out = format!("environment {}\n", env.name().replace(' ', "-"));
    let names = env.nucleus_names();
    for v in env.qubits() {
        out.push_str(&format!(
            "nucleus {} {}\n",
            names[v.index()],
            env.single_qubit_delay(v).units()
        ));
    }
    let bonds = env.bond_graph();
    for i in 0..env.qubit_count() {
        for j in i + 1..env.qubit_count() {
            let w = env.weight_units(crate::PhysicalQubit::new(i), crate::PhysicalQubit::new(j));
            if !w.is_finite() {
                continue;
            }
            let kind = if bonds.has_edge(qcp_graph::NodeId::new(i), qcp_graph::NodeId::new(j)) {
                "bond"
            } else {
                "coupling"
            };
            out.push_str(&format!("{kind} {} {} {w}\n", names[i], names[j]));
        }
    }
    out
}

/// Parses an environment from the text format.
///
/// # Errors
///
/// Returns [`EnvError::InvalidDelay`] for malformed numbers and
/// [`EnvError::UnknownNucleus`]-style failures through the builder; header
/// and structural problems are reported as [`EnvError::InvalidDelay`] with
/// a describing context or as builder errors.
pub fn parse(input: &str) -> Result<Environment> {
    let mut builder: Option<crate::EnvironmentBuilder> = None;
    let mut names: Vec<String> = Vec::new();
    let bad = |what: &'static str| EnvError::InvalidDelay {
        delay: f64::NAN,
        what,
    };

    for raw in input.lines() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let tokens: Vec<&str> = line.split_whitespace().collect();
        match tokens.as_slice() {
            ["environment", name] => {
                builder = Some(Environment::builder(name.to_string()));
            }
            ["nucleus", name, delay] => {
                let b = builder
                    .as_mut()
                    .ok_or_else(|| bad("missing environment header"))?;
                let d: f64 = delay.parse().map_err(|_| bad("nucleus"))?;
                if d.is_nan() || d < 0.0 {
                    return Err(EnvError::InvalidDelay {
                        delay: d,
                        what: "nucleus",
                    });
                }
                b.nucleus(name.to_string(), d);
                names.push((*name).to_string());
            }
            [kind @ ("bond" | "coupling"), a, b_, delay] => {
                let b = builder
                    .as_mut()
                    .ok_or_else(|| bad("missing environment header"))?;
                let find = |n: &str| {
                    names
                        .iter()
                        .position(|x| x == n)
                        .map(crate::PhysicalQubit::new)
                        .ok_or(EnvError::UnknownNucleus {
                            qubit: crate::PhysicalQubit::new(u32::MAX as usize),
                            count: names.len(),
                        })
                };
                let (va, vb) = (find(a)?, find(b_)?);
                let d: f64 = delay.parse().map_err(|_| bad("coupling"))?;
                if *kind == "bond" {
                    b.bond(va, vb, d)?;
                } else {
                    b.coupling(va, vb, d)?;
                }
            }
            _ => return Err(bad("unrecognized line")),
        }
    }
    builder.ok_or(EnvError::Empty)?.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::molecules;

    #[test]
    fn roundtrip_all_molecules() {
        for name in molecules::NAMES {
            let env = molecules::named(name).unwrap();
            let round = parse(&to_text(&env)).unwrap();
            assert_eq!(round.qubit_count(), env.qubit_count(), "{name}");
            for i in env.qubits() {
                assert_eq!(
                    round.single_qubit_delay(i).units(),
                    env.single_qubit_delay(i).units()
                );
                for j in env.qubits() {
                    if i < j {
                        assert_eq!(
                            round.weight_units(i, j),
                            env.weight_units(i, j),
                            "{name} ({i},{j})"
                        );
                    }
                }
            }
            // Bond structure preserved.
            assert_eq!(
                round.bond_graph().edge_count(),
                env.bond_graph().edge_count()
            );
        }
    }

    #[test]
    fn parse_custom() {
        let env = parse("# toy molecule\nenvironment toy\nnucleus A 2\nnucleus B 3\nbond A B 40\n")
            .unwrap();
        assert_eq!(env.qubit_count(), 2);
        assert_eq!(env.name(), "toy");
        let (a, b) = (
            env.find_nucleus("A").unwrap(),
            env.find_nucleus("B").unwrap(),
        );
        assert_eq!(env.coupling(a, b).units(), 40.0);
        assert_eq!(env.bond_graph().edge_count(), 1);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("").is_err());
        assert!(parse("nucleus A 1\n").is_err(), "missing header");
        assert!(parse("environment x\nfrobnicate\n").is_err());
        assert!(parse("environment x\nnucleus A one\n").is_err());
        assert!(parse("environment x\nnucleus A 1\nbond A Z 3\n").is_err());
    }

    #[test]
    fn duplicate_coupling_detected() {
        let err = parse("environment x\nnucleus A 1\nnucleus B 1\nbond A B 5\ncoupling B A 6\n")
            .unwrap_err();
        assert!(matches!(err, EnvError::DuplicateCoupling(..)));
    }

    #[test]
    fn infinite_pairs_omitted_from_text() {
        let env = molecules::lnn_chain(4, 10.0);
        let text = to_text(&env);
        // 3 bonds only; no coupling lines for non-neighbours.
        assert_eq!(text.matches("bond").count(), 3);
        assert_eq!(text.matches("coupling").count(), 0);
    }
}
