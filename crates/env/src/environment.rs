//! The physical environment: a complete weighted graph over nuclei.

use std::fmt;

use qcp_circuit::Time;
use qcp_graph::{Graph, NodeId, SymMatrix};

use crate::{EnvError, Nucleus, PhysicalQubit, Result, Threshold};

/// A physical environment (Definition 1): nuclei with single-qubit gate
/// delays, pairwise interaction delays, and an optional chemical-bond
/// annotation used for figures and the remote-coupling fill rule.
///
/// Weights are stored in the paper's delay units (10⁻⁴ s) and are the time
/// a fixed-angle (90°) gate takes: `GateOperatingTime(G) = W(v_i, v_j) ·
/// T(G)`. Pairs whose coupling was never specified (and could not be
/// filled) carry `+∞`: the interaction is physically unusable.
///
/// Build environments with [`Environment::builder`]:
///
/// ```
/// use qcp_env::Environment;
///
/// let mut b = Environment::builder("toy");
/// let a = b.nucleus("A", 2.0);
/// let c = b.nucleus("B", 2.0);
/// b.bond(a, c, 40.0)?;
/// let env = b.build()?;
/// assert_eq!(env.coupling(a, c).units(), 40.0);
/// # Ok::<(), qcp_env::EnvError>(())
/// ```
#[derive(Clone, Debug)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Environment {
    name: String,
    nuclei: Vec<Nucleus>,
    /// Delay units; diagonal = single-qubit delay, off-diagonal = coupling.
    weights: SymMatrix<f64>,
    /// Chemical bonds as index pairs `(a, b)` with `a < b`.
    bonds: Vec<(u32, u32)>,
}

impl Environment {
    /// Starts building an environment with the given display name.
    pub fn builder(name: impl Into<String>) -> EnvironmentBuilder {
        EnvironmentBuilder {
            name: name.into(),
            nuclei: Vec::new(),
            singles: Vec::new(),
            couplings: Vec::new(),
            bonds: Vec::new(),
        }
    }

    /// Display name of the environment.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of physical qubits (nuclei).
    pub fn qubit_count(&self) -> usize {
        self.nuclei.len()
    }

    /// Iterates over all physical qubits in index order.
    pub fn qubits(&self) -> impl ExactSizeIterator<Item = PhysicalQubit> {
        (0..self.nuclei.len()).map(PhysicalQubit::new)
    }

    /// Metadata of nucleus `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn nucleus(&self, v: PhysicalQubit) -> &Nucleus {
        &self.nuclei[v.index()]
    }

    /// Single-qubit 90°-gate delay on nucleus `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn single_qubit_delay(&self, v: PhysicalQubit) -> Time {
        Time::from_units(self.weights.get(v.index(), v.index()))
    }

    /// Coupling delay (90° two-qubit gate) between distinct nuclei; `+∞`
    /// (as an infinite `Time`) when the pair cannot interact.
    ///
    /// # Panics
    ///
    /// Panics if an index is out of range or `a == b` (use
    /// [`single_qubit_delay`](Environment::single_qubit_delay) for the
    /// diagonal).
    pub fn coupling(&self, a: PhysicalQubit, b: PhysicalQubit) -> Time {
        assert!(a != b, "coupling({a}, {a}) is a single-qubit delay");
        Time::from_units(self.weights.get(a.index(), b.index()))
    }

    /// Raw weight lookup in delay units; diagonal allowed.
    pub fn weight_units(&self, a: PhysicalQubit, b: PhysicalQubit) -> f64 {
        self.weights.get(a.index(), b.index())
    }

    /// The *fast-interaction graph* (§5 preprocessing): nuclei as nodes,
    /// edges for every coupling strictly below `threshold`, weighted by the
    /// coupling delay.
    pub fn fast_graph(&self, threshold: Threshold) -> Graph {
        let n = self.qubit_count();
        let mut g = Graph::new(n);
        for i in 0..n {
            for j in i + 1..n {
                let w = self.weights.get(i, j);
                if threshold.is_fast(w) {
                    // The i < j sweep visits each pair once; cannot fail.
                    let _ = g.add_edge(NodeId::new(i), NodeId::new(j), w);
                }
            }
        }
        g
    }

    /// The complete interaction graph restricted to finite couplings.
    pub fn full_graph(&self) -> Graph {
        self.fast_graph(Threshold::unbounded())
    }

    /// The chemical-bond graph (used in Figs. 1 and 3); weights are the
    /// bond coupling delays.
    pub fn bond_graph(&self) -> Graph {
        let mut g = Graph::new(self.qubit_count());
        for &(a, b) in &self.bonds {
            let w = self.weights.get(a as usize, b as usize);
            // Bonds were deduplicated and range-checked by the builder.
            let _ = g.add_edge(NodeId::new(a as usize), NodeId::new(b as usize), w);
        }
        g
    }

    /// The smallest threshold whose fast graph is connected — the paper's
    /// suggested automatic choice ("the minimal value such that the graph
    /// associated with fastest interactions is connected"). Returns `None`
    /// if even all finite couplings leave the environment disconnected.
    pub fn connectivity_threshold(&self) -> Option<Threshold> {
        let n = self.qubit_count();
        if n <= 1 {
            return Some(Threshold::new(0.0));
        }
        // Bottleneck spanning tree: sort couplings, union until connected.
        let mut edges: Vec<(f64, usize, usize)> = Vec::new();
        for i in 0..n {
            for j in i + 1..n {
                let w = self.weights.get(i, j);
                if w.is_finite() {
                    edges.push((w, i, j));
                }
            }
        }
        edges.sort_by(|a, b| a.0.total_cmp(&b.0));
        let mut parent: Vec<usize> = (0..n).collect();
        fn find(parent: &mut [usize], mut x: usize) -> usize {
            while parent[x] != x {
                parent[x] = parent[parent[x]];
                x = parent[x];
            }
            x
        }
        let mut components = n;
        for (w, i, j) in edges {
            let (ri, rj) = (find(&mut parent, i), find(&mut parent, j));
            if ri != rj {
                parent[ri] = rj;
                components -= 1;
                if components == 1 {
                    return Some(Threshold::above(Time::from_units(w)));
                }
            }
        }
        None
    }

    /// Names of all nuclei, index-aligned (for figures and tables).
    pub fn nucleus_names(&self) -> Vec<String> {
        self.nuclei.iter().map(|n| n.name().to_string()).collect()
    }

    /// Looks up a nucleus by display name.
    pub fn find_nucleus(&self, name: &str) -> Option<PhysicalQubit> {
        self.nuclei
            .iter()
            .position(|n| n.name() == name)
            .map(PhysicalQubit::new)
    }
}

impl fmt::Display for Environment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "environment `{}` with {} nuclei:",
            self.name,
            self.qubit_count()
        )?;
        for v in self.qubits() {
            writeln!(
                f,
                "  {} ({}): single-qubit delay {}",
                v,
                self.nucleus(v).name(),
                self.weights.get(v.index(), v.index())
            )?;
        }
        for i in 0..self.qubit_count() {
            for j in i + 1..self.qubit_count() {
                let w = self.weights.get(i, j);
                if w.is_finite() {
                    writeln!(
                        f,
                        "  {} -- {}: {}",
                        self.nuclei[i].name(),
                        self.nuclei[j].name(),
                        w
                    )?;
                }
            }
        }
        Ok(())
    }
}

/// Builder for [`Environment`] (see the type-level example).
#[derive(Clone, Debug)]
pub struct EnvironmentBuilder {
    name: String,
    nuclei: Vec<Nucleus>,
    singles: Vec<f64>,
    couplings: Vec<(u32, u32, f64)>,
    bonds: Vec<(u32, u32)>,
}

impl EnvironmentBuilder {
    /// Adds a nucleus with the given display name and single-qubit
    /// 90°-gate delay (units of 10⁻⁴ s), returning its identifier.
    ///
    /// # Panics
    ///
    /// Panics if `single_delay` is NaN or negative (static misuse).
    pub fn nucleus(&mut self, name: impl Into<String>, single_delay: f64) -> PhysicalQubit {
        assert!(
            !single_delay.is_nan() && single_delay >= 0.0,
            "single-qubit delay must be non-negative"
        );
        self.nuclei.push(Nucleus::new(name));
        self.singles.push(single_delay);
        PhysicalQubit::new(self.nuclei.len() - 1)
    }

    /// Declares a coupling of `delay` units between two nuclei.
    ///
    /// # Errors
    ///
    /// * [`EnvError::UnknownNucleus`] for out-of-range nuclei;
    /// * [`EnvError::SelfCoupling`] if `a == b`;
    /// * [`EnvError::DuplicateCoupling`] if the pair repeats;
    /// * [`EnvError::InvalidDelay`] for NaN or negative delays.
    pub fn coupling(
        &mut self,
        a: PhysicalQubit,
        b: PhysicalQubit,
        delay: f64,
    ) -> Result<&mut Self> {
        self.check(a)?;
        self.check(b)?;
        if a == b {
            return Err(EnvError::SelfCoupling(a));
        }
        if delay.is_nan() || delay < 0.0 {
            return Err(EnvError::InvalidDelay {
                delay,
                what: "coupling",
            });
        }
        let key = (
            a.index().min(b.index()) as u32,
            a.index().max(b.index()) as u32,
        );
        if self.couplings.iter().any(|&(x, y, _)| (x, y) == key) {
            return Err(EnvError::DuplicateCoupling(a, b));
        }
        self.couplings.push((key.0, key.1, delay));
        Ok(self)
    }

    /// Declares a coupling that follows a chemical bond. Bonds behave like
    /// couplings but are additionally recorded in
    /// [`Environment::bond_graph`] and seed
    /// [`fill_remote_couplings`](EnvironmentBuilder::fill_remote_couplings).
    ///
    /// # Errors
    ///
    /// Same as [`coupling`](EnvironmentBuilder::coupling).
    pub fn bond(&mut self, a: PhysicalQubit, b: PhysicalQubit, delay: f64) -> Result<&mut Self> {
        self.coupling(a, b, delay)?;
        let key = (
            a.index().min(b.index()) as u32,
            a.index().max(b.index()) as u32,
        );
        self.bonds.push(key);
        Ok(self)
    }

    /// Fills every unspecified coupling from the bond structure: a pair at
    /// bond distance `d` (shortest bond path, summing bond delays) gets
    /// weight `path_delay · growth^(d-1)`.
    ///
    /// Multi-bond J couplings fall off roughly an order of magnitude per
    /// extra bond, so `growth` around 4–8 produces realistic complete
    /// weight tables; pairs in different bond components stay at `+∞`.
    ///
    /// # Errors
    ///
    /// Returns [`EnvError::InvalidGrowth`] if `growth` is NaN, infinite,
    /// or below 1 — filled weights must be finite and must not shrink
    /// with bond distance.
    ///
    /// ```
    /// use qcp_env::{Environment, EnvError};
    ///
    /// let mut b = Environment::builder("toy");
    /// let a = b.nucleus("A", 1.0);
    /// let c = b.nucleus("B", 1.0);
    /// b.bond(a, c, 10.0)?;
    /// assert!(matches!(b.fill_remote_couplings(f64::NAN).unwrap_err(),
    ///                  EnvError::InvalidGrowth(g) if g.is_nan()));
    /// assert_eq!(b.fill_remote_couplings(0.5).unwrap_err(),
    ///            EnvError::InvalidGrowth(0.5));
    /// b.fill_remote_couplings(6.0)?; // valid
    /// # Ok::<(), EnvError>(())
    /// ```
    pub fn fill_remote_couplings(&mut self, growth: f64) -> Result<&mut Self> {
        if !growth.is_finite() || growth < 1.0 {
            return Err(EnvError::InvalidGrowth(growth));
        }
        let n = self.nuclei.len();
        // Dijkstra over bonds from every source (environments are small).
        let mut bond_adj: Vec<Vec<(usize, f64)>> = vec![Vec::new(); n];
        for &(a, b) in &self.bonds {
            #[allow(clippy::expect_used)]
            let w = self
                .couplings
                .iter()
                .find(|&&(x, y, _)| (x, y) == (a, b))
                .map(|&(_, _, w)| w)
                .expect("invariant: bond() always records a coupling");
            bond_adj[a as usize].push((b as usize, w));
            bond_adj[b as usize].push((a as usize, w));
        }
        let have: std::collections::HashSet<(u32, u32)> =
            self.couplings.iter().map(|&(a, b, _)| (a, b)).collect();
        for src in 0..n {
            // (delay sum, hop count) per node, shortest by delay.
            let mut dist: Vec<Option<(f64, u32)>> = vec![None; n];
            dist[src] = Some((0.0, 0));
            let mut heap = std::collections::BinaryHeap::new();
            heap.push((std::cmp::Reverse(0u64), src));
            let as_bits = |d: f64| d.to_bits();
            while let Some((std::cmp::Reverse(dbits), u)) = heap.pop() {
                let Some((du, hu)) = dist[u] else { continue };
                if as_bits(du) != dbits {
                    continue;
                }
                for &(v, w) in &bond_adj[u] {
                    let cand = (du + w, hu + 1);
                    if dist[v].is_none_or(|(dv, _)| cand.0 < dv) {
                        dist[v] = Some(cand);
                        heap.push((std::cmp::Reverse(as_bits(cand.0)), v));
                    }
                }
            }
            for (dst, entry) in dist.iter().enumerate().skip(src + 1) {
                let key = (src as u32, dst as u32);
                if have.contains(&key) {
                    continue;
                }
                if let Some((d, hops)) = entry {
                    if *hops >= 1 {
                        let w = d * growth.powi(*hops as i32 - 1);
                        self.couplings.push((key.0, key.1, w));
                    }
                }
            }
        }
        Ok(self)
    }

    fn check(&self, v: PhysicalQubit) -> Result<()> {
        if v.index() >= self.nuclei.len() {
            return Err(EnvError::UnknownNucleus {
                qubit: v,
                count: self.nuclei.len(),
            });
        }
        Ok(())
    }

    /// Finishes the build.
    ///
    /// # Errors
    ///
    /// Returns [`EnvError::Empty`] if no nuclei were added.
    pub fn build(&self) -> Result<Environment> {
        let n = self.nuclei.len();
        if n == 0 {
            return Err(EnvError::Empty);
        }
        let mut weights = SymMatrix::new(n, f64::INFINITY);
        for (i, &s) in self.singles.iter().enumerate() {
            weights.set(i, i, s);
        }
        for &(a, b, w) in &self.couplings {
            weights.set(a as usize, b as usize, w);
        }
        Ok(Environment {
            name: self.name.clone(),
            nuclei: self.nuclei.clone(),
            weights,
            bonds: self.bonds.clone(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcp_graph::traversal::is_connected;

    fn toy() -> Environment {
        let mut b = Environment::builder("toy");
        let v0 = b.nucleus("A", 2.0);
        let v1 = b.nucleus("B", 3.0);
        let v2 = b.nucleus("C", 4.0);
        b.bond(v0, v1, 10.0).unwrap();
        b.bond(v1, v2, 20.0).unwrap();
        b.coupling(v0, v2, 200.0).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn lookups() {
        let env = toy();
        let p = PhysicalQubit::new;
        assert_eq!(env.qubit_count(), 3);
        assert_eq!(env.nucleus(p(1)).name(), "B");
        assert_eq!(env.single_qubit_delay(p(2)).units(), 4.0);
        assert_eq!(env.coupling(p(0), p(1)).units(), 10.0);
        assert_eq!(env.coupling(p(2), p(0)).units(), 200.0);
        assert_eq!(env.find_nucleus("C"), Some(p(2)));
        assert_eq!(env.find_nucleus("Z"), None);
    }

    #[test]
    fn fast_graph_respects_threshold() {
        let env = toy();
        assert_eq!(env.fast_graph(Threshold::new(15.0)).edge_count(), 1);
        assert_eq!(env.fast_graph(Threshold::new(25.0)).edge_count(), 2);
        assert_eq!(env.fast_graph(Threshold::new(1000.0)).edge_count(), 3);
        assert_eq!(env.full_graph().edge_count(), 3);
    }

    #[test]
    fn bond_graph_only_bonds() {
        let env = toy();
        let g = env.bond_graph();
        assert_eq!(g.edge_count(), 2);
        assert!(is_connected(&g));
    }

    #[test]
    fn connectivity_threshold_is_bottleneck() {
        let env = toy();
        let t = env.connectivity_threshold().unwrap();
        // Needs edges 10 and 20: the bottleneck is 20, threshold just above.
        assert!(t.is_fast(20.0));
        assert!(!t.is_fast(20.1));
        assert!(is_connected(&env.fast_graph(t)));
    }

    #[test]
    fn disconnected_environment_has_no_threshold() {
        let mut b = Environment::builder("split");
        let v0 = b.nucleus("A", 1.0);
        let v1 = b.nucleus("B", 1.0);
        let _v2 = b.nucleus("C", 1.0);
        b.coupling(v0, v1, 5.0).unwrap();
        let env = b.build().unwrap();
        assert_eq!(env.connectivity_threshold(), None);
        assert_eq!(
            env.coupling(v0, PhysicalQubit::new(2)).units(),
            f64::INFINITY
        );
    }

    #[test]
    fn builder_validations() {
        let mut b = Environment::builder("bad");
        let v0 = b.nucleus("A", 1.0);
        let v1 = b.nucleus("B", 1.0);
        assert_eq!(
            b.coupling(v0, v0, 5.0).unwrap_err(),
            EnvError::SelfCoupling(v0)
        );
        b.coupling(v0, v1, 5.0).unwrap();
        assert_eq!(
            b.coupling(v1, v0, 6.0).unwrap_err(),
            EnvError::DuplicateCoupling(v1, v0)
        );
        assert!(matches!(
            b.coupling(v0, PhysicalQubit::new(7), 1.0).unwrap_err(),
            EnvError::UnknownNucleus { .. }
        ));
        assert!(matches!(
            Environment::builder("empty").build().unwrap_err(),
            EnvError::Empty
        ));
    }

    #[test]
    fn fill_remote_couplings_uses_bond_paths() {
        let mut b = Environment::builder("chainy");
        let v: Vec<PhysicalQubit> = (0..4).map(|i| b.nucleus(format!("N{i}"), 1.0)).collect();
        b.bond(v[0], v[1], 10.0).unwrap();
        b.bond(v[1], v[2], 20.0).unwrap();
        b.bond(v[2], v[3], 30.0).unwrap();
        b.fill_remote_couplings(5.0).unwrap();
        let env = b.build().unwrap();
        // Distance 2: (10+20) * 5 = 150.
        assert_eq!(env.coupling(v[0], v[2]).units(), 150.0);
        // Distance 3: (10+20+30) * 25 = 1500.
        assert_eq!(env.coupling(v[0], v[3]).units(), 1500.0);
        // Bonds unchanged.
        assert_eq!(env.coupling(v[2], v[3]).units(), 30.0);
    }

    #[test]
    fn fill_does_not_override_explicit() {
        let mut b = Environment::builder("explicit");
        let v0 = b.nucleus("A", 1.0);
        let v1 = b.nucleus("B", 1.0);
        let v2 = b.nucleus("C", 1.0);
        b.bond(v0, v1, 10.0).unwrap();
        b.bond(v1, v2, 10.0).unwrap();
        b.coupling(v0, v2, 77.0).unwrap();
        b.fill_remote_couplings(6.0).unwrap();
        let env = b.build().unwrap();
        assert_eq!(env.coupling(v0, v2).units(), 77.0);
    }

    #[test]
    fn display_mentions_nuclei() {
        let s = toy().to_string();
        assert!(s.contains("`toy`"));
        assert!(s.contains("A -- B: 10"));
    }
}
