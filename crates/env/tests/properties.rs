//! Property-based tests for physical environments.

use proptest::prelude::*;

use qcp_env::{molecules, text, Threshold};
use qcp_graph::traversal::is_connected;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn fast_graph_monotone_in_threshold(seed in any::<u64>(), n in 3usize..12) {
        let env = molecules::random_molecule(n, seed);
        let mut last_edges = 0usize;
        for t in [10.0, 30.0, 100.0, 300.0, 1000.0, 1e7] {
            let g = env.fast_graph(Threshold::new(t));
            prop_assert!(g.edge_count() >= last_edges, "fast graph must grow with threshold");
            // Every fast edge weight is strictly below the threshold.
            for (_, _, w) in g.edges() {
                prop_assert!(w < t);
            }
            last_edges = g.edge_count();
        }
    }

    #[test]
    fn connectivity_threshold_is_tight(seed in any::<u64>(), n in 2usize..12) {
        let env = molecules::random_molecule(n, seed);
        let t = env.connectivity_threshold().expect("random molecules are connected");
        prop_assert!(is_connected(&env.fast_graph(t)));
        // Strictly below the bottleneck weight the graph disconnects.
        let bottleneck = t.units();
        let just_below = Threshold::new(bottleneck * (1.0 - 1e-9));
        if n > 1 {
            prop_assert!(!is_connected(&env.fast_graph(just_below)));
        }
    }

    #[test]
    fn env_text_roundtrip_random(seed in any::<u64>(), n in 2usize..10) {
        let env = molecules::random_molecule(n, seed);
        let round = text::parse(&text::to_text(&env)).unwrap();
        prop_assert_eq!(round.qubit_count(), env.qubit_count());
        for i in env.qubits() {
            for j in env.qubits() {
                if i < j {
                    prop_assert_eq!(round.weight_units(i, j), env.weight_units(i, j));
                }
            }
        }
    }

    #[test]
    fn remote_fill_never_faster_than_bond_path(seed in any::<u64>(), n in 3usize..10) {
        // Filled couplings grow with bond distance: any filled pair is at
        // least as slow as the slowest bond (they are sums * growth).
        let env = molecules::random_molecule(n, seed);
        let bonds = env.bond_graph();
        let max_bond = bonds.edges().map(|(_, _, w)| w).fold(0.0f64, f64::max);
        let min_bond = bonds.edges().map(|(_, _, w)| w).fold(f64::INFINITY, f64::min);
        for i in env.qubits() {
            for j in env.qubits() {
                if i < j
                    && !bonds.has_edge(
                        qcp_graph::NodeId::new(i.index()),
                        qcp_graph::NodeId::new(j.index()),
                    )
                {
                    let w = env.weight_units(i, j);
                    if w.is_finite() {
                        prop_assert!(w >= 2.0 * min_bond, "remote {w} vs bonds [{min_bond}, {max_bond}]");
                    }
                }
            }
        }
    }

    #[test]
    fn chains_and_grids_have_uniform_fast_graphs(n in 2usize..20) {
        let env = molecules::lnn_chain(n, 10.0);
        let fast = env.fast_graph(Threshold::new(10.5));
        prop_assert_eq!(fast.edge_count(), n - 1);
        prop_assert!(is_connected(&fast));
        prop_assert!(fast.max_degree() <= 2);
    }
}
