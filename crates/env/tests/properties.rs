#![allow(clippy::unwrap_used, clippy::expect_used)]
//! Property-based tests for physical environments.

use proptest::prelude::*;

use qcp_env::topologies::{self, Delays, TopologySpec};
use qcp_env::{molecules, text, Threshold};
use qcp_graph::traversal::is_connected;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn fast_graph_monotone_in_threshold(seed in any::<u64>(), n in 3usize..12) {
        let env = molecules::random_molecule(n, seed);
        let mut last_edges = 0usize;
        for t in [10.0, 30.0, 100.0, 300.0, 1000.0, 1e7] {
            let g = env.fast_graph(Threshold::new(t));
            prop_assert!(g.edge_count() >= last_edges, "fast graph must grow with threshold");
            // Every fast edge weight is strictly below the threshold.
            for (_, _, w) in g.edges() {
                prop_assert!(w < t);
            }
            last_edges = g.edge_count();
        }
    }

    #[test]
    fn connectivity_threshold_is_tight(seed in any::<u64>(), n in 2usize..12) {
        let env = molecules::random_molecule(n, seed);
        let t = env.connectivity_threshold().expect("random molecules are connected");
        prop_assert!(is_connected(&env.fast_graph(t)));
        // Strictly below the bottleneck weight the graph disconnects.
        let bottleneck = t.units();
        let just_below = Threshold::new(bottleneck * (1.0 - 1e-9));
        if n > 1 {
            prop_assert!(!is_connected(&env.fast_graph(just_below)));
        }
    }

    #[test]
    fn env_text_roundtrip_random(seed in any::<u64>(), n in 2usize..10) {
        let env = molecules::random_molecule(n, seed);
        let round = text::parse(&text::to_text(&env)).unwrap();
        prop_assert_eq!(round.qubit_count(), env.qubit_count());
        for i in env.qubits() {
            for j in env.qubits() {
                if i < j {
                    prop_assert_eq!(round.weight_units(i, j), env.weight_units(i, j));
                }
            }
        }
    }

    #[test]
    fn remote_fill_never_faster_than_bond_path(seed in any::<u64>(), n in 3usize..10) {
        // Filled couplings grow with bond distance: any filled pair is at
        // least as slow as the slowest bond (they are sums * growth).
        let env = molecules::random_molecule(n, seed);
        let bonds = env.bond_graph();
        let max_bond = bonds.edges().map(|(_, _, w)| w).fold(0.0f64, f64::max);
        let min_bond = bonds.edges().map(|(_, _, w)| w).fold(f64::INFINITY, f64::min);
        for i in env.qubits() {
            for j in env.qubits() {
                if i < j
                    && !bonds.has_edge(
                        qcp_graph::NodeId::new(i.index()),
                        qcp_graph::NodeId::new(j.index()),
                    )
                {
                    let w = env.weight_units(i, j);
                    if w.is_finite() {
                        prop_assert!(w >= 2.0 * min_bond, "remote {w} vs bonds [{min_bond}, {max_bond}]");
                    }
                }
            }
        }
    }

    #[test]
    fn chains_and_grids_have_uniform_fast_graphs(n in 2usize..20) {
        let env = molecules::lnn_chain(n, 10.0);
        let fast = env.fast_graph(Threshold::new(10.5));
        prop_assert_eq!(fast.edge_count(), n - 1);
        prop_assert!(is_connected(&fast));
        prop_assert!(fast.max_degree() <= 2);
    }

    #[test]
    fn synthesized_topologies_are_connected_with_advertised_counts(
        n in 1usize..24,
        rows in 1usize..7,
        cols in 1usize..7,
        hh in 1usize..4,
    ) {
        let delays = Delays::default();
        // (environment, advertised node count, advertised edge count)
        let d = 2 * hh + 1; // odd heavy-hex distance 3, 5, or 7
        let zoo = [
            (topologies::line(n, delays), n, n - 1),
            (topologies::grid(rows, cols, delays), rows * cols,
             rows * (cols - 1) + cols * (rows - 1)),
            (topologies::star(n, delays), n, n - 1),
            (topologies::heavy_hex(d, delays), d * (5 * d - 3) / 2, 3 * d * (d - 1)),
        ];
        for (env, nodes, edges) in zoo {
            let g = env.full_graph();
            prop_assert_eq!(env.qubit_count(), nodes, "nodes of {}", env.name());
            prop_assert_eq!(g.edge_count(), edges, "edges of {}", env.name());
            prop_assert!(is_connected(&g), "{} must be connected", env.name());
            // The bond graph is the coupling map itself.
            prop_assert_eq!(env.bond_graph().edge_count(), edges);
        }
        if n >= 3 {
            let env = topologies::ring(n, delays);
            prop_assert_eq!(env.qubit_count(), n);
            prop_assert_eq!(env.full_graph().edge_count(), n);
            prop_assert!(is_connected(&env.full_graph()));
        }
    }

    #[test]
    fn topology_delays_are_uniform_and_exclusive(
        rows in 1usize..6,
        cols in 1usize..6,
        single in 0.5f64..4.0,
        coupling in 5.0f64..50.0,
    ) {
        let env = topologies::grid(rows, cols, Delays::new(single, coupling));
        let bonds = env.bond_graph();
        for i in env.qubits() {
            prop_assert_eq!(env.single_qubit_delay(i).units(), single);
            for j in env.qubits() {
                if i < j {
                    let w = env.weight_units(i, j);
                    let wired = bonds.has_edge(
                        qcp_graph::NodeId::new(i.index()),
                        qcp_graph::NodeId::new(j.index()),
                    );
                    // Wired pairs carry exactly the uniform coupling
                    // delay; everything else is physically unusable.
                    prop_assert_eq!(w, if wired { coupling } else { f64::INFINITY });
                }
            }
        }
    }

    #[test]
    fn topology_spec_roundtrips_and_builds(kind in 0usize..5, a in 1usize..10, b in 1usize..10) {
        let spec = match kind {
            0 => TopologySpec::Line(a),
            1 => TopologySpec::Ring(a.max(3)),
            2 => TopologySpec::Grid(a, b),
            3 => TopologySpec::HeavyHex(2 * a + 1),
            _ => TopologySpec::Star(a),
        };
        let reparsed: TopologySpec = spec.to_string().parse().unwrap();
        prop_assert_eq!(reparsed, spec);
        let env = spec.build(Delays::default());
        prop_assert_eq!(env.qubit_count(), spec.qubit_count());
        prop_assert!(is_connected(&env.full_graph()));
    }
}
