//! Anytime placement strategies: budgeted exact search with a heuristic
//! fallback chain.
//!
//! The paper's placer is built on exact VF2 subgraph embedding, which is
//! all-or-nothing: on large or sparse device topologies it either finds
//! the optimal alignment or blows its time budget without an answer. This
//! module makes placement *anytime* — a request always gets a valid
//! placement within a configured [`SearchBudget`]:
//!
//! * [`ExactVf2`] — the §5 pipeline with budget-aware early termination
//!   threaded all the way into the VF2 kernel. Exactness stays
//!   all-or-nothing: if the budget trips anywhere, the strategy fails
//!   with [`PlaceError::BudgetExhausted`] instead of committing a
//!   half-searched answer.
//! * [`GreedyAnneal`] — a degree/interaction-weight greedy seed mapping
//!   refined by simulated annealing over the [`CostEngine`], with
//!   interactions that land on non-adjacent nuclei routed through the
//!   existing SWAP router. Deterministic (seeded via the vendored `rand`
//!   shim) and never more than a few milliseconds from *an* answer.
//! * [`Hybrid`] — budgeted exact first, greedy+anneal fallback. With an
//!   unlimited budget it is bit-identical to [`ExactVf2`]; with a
//!   deadline it degrades gracefully instead of failing.
//!
//! Strategies are selected per request through
//! [`PlacerConfig::strategy`](crate::PlacerConfig) and every committed
//! [`PlacementOutcome`] records how it was obtained in its
//! [`Resolution`].

use std::fmt;
use std::str::FromStr;
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use qcp_circuit::{Circuit, Gate, Qubit};
use qcp_env::PhysicalQubit;
use qcp_graph::vf2;
use qcp_graph::{Graph, NodeId};

use crate::cost::{CostEngine, PlacedGate, Schedule};
use crate::placer::{PlacementOutcome, Placer, Stage};
use crate::router::{route_permutation, SwapSchedule};
use crate::{PlaceError, Placement, Result};

/// Which placement strategy drives [`Placer::place`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Strategy {
    /// The budgeted exact pipeline ([`ExactVf2`]); the paper's behaviour.
    #[default]
    Exact,
    /// The greedy + simulated-annealing heuristic ([`GreedyAnneal`]).
    Anneal,
    /// Budgeted exact with heuristic fallback ([`Hybrid`]).
    Hybrid,
}

impl Strategy {
    /// All strategies, in CLI order.
    pub const ALL: [Strategy; 3] = [Strategy::Exact, Strategy::Anneal, Strategy::Hybrid];

    /// The CLI spelling (`exact`, `anneal`, `hybrid`).
    pub fn name(self) -> &'static str {
        match self {
            Strategy::Exact => "exact",
            Strategy::Anneal => "anneal",
            Strategy::Hybrid => "hybrid",
        }
    }
}

impl fmt::Display for Strategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for Strategy {
    type Err = String;

    fn from_str(s: &str) -> std::result::Result<Self, Self::Err> {
        match s {
            "exact" => Ok(Strategy::Exact),
            "anneal" => Ok(Strategy::Anneal),
            "hybrid" => Ok(Strategy::Hybrid),
            other => Err(format!(
                "unknown strategy `{other}` (expected exact, anneal, or hybrid)"
            )),
        }
    }
}

/// A deadline and/or node budget for one placement request.
///
/// The budget meters *search effort*: VF2 kernel nodes, candidates
/// scored, and annealing moves all charge the same meter. Node budgets
/// are fully deterministic (the same request always does the same work);
/// deadlines trade that determinism for a wall-clock guarantee and are
/// what a latency-bound service wants.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SearchBudget {
    /// Cap on charged search nodes (`None` = unlimited).
    pub max_nodes: Option<u64>,
    /// Wall-clock allowance measured from the start of the request
    /// (`None` = no deadline).
    pub deadline: Option<Duration>,
}

impl SearchBudget {
    /// No limits: the strategies behave exactly like the unbudgeted code.
    pub const fn unlimited() -> Self {
        SearchBudget {
            max_nodes: None,
            deadline: None,
        }
    }

    /// A node-count budget (deterministic; `0` exhausts immediately).
    pub const fn nodes(n: u64) -> Self {
        SearchBudget {
            max_nodes: Some(n),
            deadline: None,
        }
    }

    /// A wall-clock budget in milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SearchBudget {
            max_nodes: None,
            deadline: Some(Duration::from_millis(ms)),
        }
    }

    /// Adds/overrides the node cap.
    #[must_use]
    pub const fn with_nodes(mut self, n: u64) -> Self {
        self.max_nodes = Some(n);
        self
    }

    /// Adds/overrides the deadline.
    #[must_use]
    pub const fn with_deadline(mut self, d: Duration) -> Self {
        self.deadline = Some(d);
        self
    }

    /// Returns `true` when neither limit is set.
    pub const fn is_unlimited(&self) -> bool {
        self.max_nodes.is_none() && self.deadline.is_none()
    }

    /// Starts the request clock: converts the configuration into a live
    /// [`vf2::Budget`] meter.
    pub fn start(&self) -> vf2::Budget {
        vf2::Budget::new(self.max_nodes, self.deadline.map(|d| Instant::now() + d))
    }
}

/// Annealing knobs for [`GreedyAnneal`] (and the [`Hybrid`] fallback).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AnnealConfig {
    /// Annealing moves attempted (each move re-costs the whole routed
    /// circuit on the [`CostEngine`], so this bounds heuristic latency).
    pub iterations: usize,
    /// RNG seed; the heuristic is deterministic in it.
    pub seed: u64,
}

impl Default for AnnealConfig {
    fn default() -> Self {
        AnnealConfig {
            iterations: 400,
            seed: 2007,
        }
    }
}

/// How a committed [`PlacementOutcome`] was obtained.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Resolution {
    /// The exact pipeline completed within budget.
    #[default]
    Exact,
    /// The heuristic produced the placement — either directly
    /// ([`Strategy::Anneal`]) or because [`Hybrid`]'s exact attempt
    /// failed structurally (no routable candidates).
    Fallback,
    /// [`Hybrid`] fell back because the exact search exhausted its
    /// [`SearchBudget`].
    BudgetExhausted,
}

impl Resolution {
    /// Short tag used by reports (`exact`, `fallback`,
    /// `budget-exhausted`).
    pub fn name(self) -> &'static str {
        match self {
            Resolution::Exact => "exact",
            Resolution::Fallback => "fallback",
            Resolution::BudgetExhausted => "budget-exhausted",
        }
    }
}

impl fmt::Display for Resolution {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A placement strategy: given a prepared [`Placer`] (environment, fast
/// and routing graphs, configuration including the [`SearchBudget`]),
/// place a circuit.
pub trait PlacementStrategy {
    /// The CLI name of the strategy.
    fn name(&self) -> &'static str;

    /// Places `circuit` on `placer`'s environment.
    ///
    /// # Errors
    ///
    /// Strategy-specific; see [`ExactVf2`], [`GreedyAnneal`], [`Hybrid`].
    fn place(&self, placer: &Placer<'_>, circuit: &Circuit) -> Result<PlacementOutcome>;
}

/// The budgeted exact strategy: the paper's §5 pipeline, failing with
/// [`PlaceError::BudgetExhausted`] when the [`SearchBudget`] trips.
#[derive(Clone, Copy, Debug, Default)]
pub struct ExactVf2;

impl PlacementStrategy for ExactVf2 {
    fn name(&self) -> &'static str {
        "exact"
    }

    fn place(&self, placer: &Placer<'_>, circuit: &Circuit) -> Result<PlacementOutcome> {
        let outcome = placer.place_exact(circuit)?;
        #[cfg(debug_assertions)]
        debug_check_outcome(placer, circuit, &outcome);
        Ok(outcome)
    }
}

/// The heuristic strategy: greedy interaction-weight seed + simulated
/// annealing over the [`CostEngine`], non-adjacent interactions routed
/// through the SWAP router. Always returns *something* for any circuit
/// the environment can host; the budget only limits how much annealing
/// polish the seed receives.
#[derive(Clone, Copy, Debug, Default)]
pub struct GreedyAnneal;

impl PlacementStrategy for GreedyAnneal {
    fn name(&self) -> &'static str {
        "anneal"
    }

    fn place(&self, placer: &Placer<'_>, circuit: &Circuit) -> Result<PlacementOutcome> {
        let mut meter = placer.config().budget.start();
        let outcome = greedy_anneal(placer, circuit, &mut meter, Resolution::Fallback)?;
        #[cfg(debug_assertions)]
        debug_check_outcome(placer, circuit, &outcome);
        Ok(outcome)
    }
}

/// The anytime chain: budgeted exact first, greedy+anneal when the exact
/// search exhausts its budget or fails structurally. Fundamental errors
/// (circuit too large, no fast interactions at all) are not retried.
#[derive(Clone, Copy, Debug, Default)]
pub struct Hybrid;

impl PlacementStrategy for Hybrid {
    fn name(&self) -> &'static str {
        "hybrid"
    }

    fn place(&self, placer: &Placer<'_>, circuit: &Circuit) -> Result<PlacementOutcome> {
        let mut meter = placer.config().budget.start();
        let outcome = match placer.place_exact_with(circuit, &mut meter) {
            Ok(outcome) => Ok(outcome),
            Err(PlaceError::BudgetExhausted { .. }) => {
                // The whole point of the chain: whatever budget remains
                // (possibly none — then the greedy seed ships unpolished)
                // buys heuristic refinement instead of a failure.
                greedy_anneal(placer, circuit, &mut meter, Resolution::BudgetExhausted)
            }
            Err(PlaceError::RoutingImpossible { .. }) => {
                // The legitimate structural dead-end: no routable
                // candidate survived scoring. Everything else — notably
                // InvalidPlacement, which only arises from internal
                // invariant breaches — must surface, not be papered over
                // by the heuristic.
                greedy_anneal(placer, circuit, &mut meter, Resolution::Fallback)
            }
            Err(e) => Err(e),
        }?;
        #[cfg(debug_assertions)]
        debug_check_outcome(placer, circuit, &outcome);
        Ok(outcome)
    }
}

/// The strategy object for a [`Strategy`] tag.
pub fn strategy_for(strategy: Strategy) -> &'static dyn PlacementStrategy {
    match strategy {
        Strategy::Exact => &ExactVf2,
        Strategy::Anneal => &GreedyAnneal,
        Strategy::Hybrid => &Hybrid,
    }
}

/// Debug-build invariant sweep over a freshly produced outcome — a
/// lightweight in-crate cousin of the independent `qcp_verify::certify`
/// checker (which depends on this crate and therefore cannot be called
/// from here). Every strategy runs it on success; release builds compile
/// it away entirely. The checks are the structural subset of the
/// certificate: stage widths, injectivity, coupling coverage, swap-stage
/// consistency, and schedule gate accounting — cost recomputation stays
/// exclusive to the external checker.
#[cfg(debug_assertions)]
pub(crate) fn debug_check_outcome(
    placer: &Placer<'_>,
    circuit: &Circuit,
    outcome: &PlacementOutcome,
) {
    let env = placer.environment();
    let n = circuit.qubit_count();
    let m = env.qubit_count();
    assert!(
        !outcome.stages.is_empty(),
        "invariant: outcomes carry at least one stage"
    );
    let mut subcircuit_gates = 0usize;
    for (si, stage) in outcome.stages.iter().enumerate() {
        let slots = stage.placement.as_slice();
        assert_eq!(
            slots.len(),
            n,
            "stage {si}: placement width != circuit width"
        );
        assert_eq!(
            stage.placement.physical_count(),
            m,
            "stage {si}: placement codomain != environment size"
        );
        let mut owner = vec![false; m];
        for &v in slots {
            assert!(
                !owner[v.index()],
                "stage {si}: placement maps two qubits to {v:?}"
            );
            owner[v.index()] = true;
        }
        // Interactions must land on physically coupled pairs. Fast-edge
        // coverage is NOT asserted: fine tuning (§5.1) and the annealer
        // may legally trade a gate onto a slow coupled pair when that
        // lowers total runtime.
        for gate in stage.subcircuit.gates() {
            if let Some((a, b)) = gate.coupling() {
                let (pa, pb) = (stage.placement.physical(a), stage.placement.physical(b));
                let w = env.weight_units(pa, pb);
                assert!(
                    w.is_finite(),
                    "stage {si}: two-qubit gate routed to uncoupled pair {pa:?}-{pb:?}"
                );
            }
        }
        if si == 0 {
            assert!(
                stage.swaps.is_empty(),
                "stage 0 must start from the initial placement, not swaps"
            );
        } else {
            let prev = outcome.stages[si - 1].placement.as_slice();
            let pos = stage.swaps.simulate(m);
            for (q, (&src, &dst)) in prev.iter().zip(slots).enumerate() {
                assert_eq!(
                    pos[src.index()],
                    dst.index(),
                    "stage {si}: the swap schedule moves qubit {q} to the wrong nucleus"
                );
            }
        }
        subcircuit_gates += stage.subcircuit.gate_count();
    }
    // The flat schedule replays every subcircuit gate plus one placed
    // gate per routed SWAP.
    let placed: usize = outcome.schedule.levels().iter().map(Vec::len).sum();
    assert_eq!(
        placed,
        subcircuit_gates + outcome.swap_count(),
        "schedule holds {placed} gates but the stages account for \
         {subcircuit_gates} circuit gates + {} swaps",
        outcome.swap_count()
    );
}

/// A circuit gate flattened to indices for the routed cost simulation.
#[derive(Clone, Copy)]
struct FlatGate {
    a: u32,
    /// `u32::MAX` for single-qubit gates.
    b: u32,
    weight: f64,
}

const NONE: u32 = u32::MAX;

/// Shared machinery of the heuristic: hop distances and BFS parents on
/// the routing graph, plus the routed-cost evaluator the annealer scores
/// with.
struct RoutedCost<'e> {
    m: usize,
    /// `dist[s * m + t]`: routing-graph hops (`u32::MAX` unreachable).
    dist: Vec<u32>,
    /// `parent[s * m + t]`: predecessor of `t` on the BFS tree rooted at
    /// `s` (`u32::MAX` for the root / unreachable).
    parent: Vec<u32>,
    gates: Vec<FlatGate>,
    base: CostEngine<'e>,
    work: CostEngine<'e>,
    /// Scratch: logical → physical.
    pos: Vec<u32>,
    /// Scratch: physical → logical (`u32::MAX` free).
    occ: Vec<u32>,
    /// Scratch: path reconstruction buffer.
    path: Vec<u32>,
}

impl<'e> RoutedCost<'e> {
    fn new(placer: &Placer<'e>, circuit: &Circuit) -> RoutedCost<'e> {
        let routing = placer.routing_graph();
        let m = routing.node_count();
        let mut dist = vec![u32::MAX; m * m];
        let mut parent = vec![NONE; m * m];
        let mut queue = Vec::with_capacity(m);
        for s in 0..m {
            let (d, p) = (
                &mut dist[s * m..(s + 1) * m],
                &mut parent[s * m..(s + 1) * m],
            );
            d[s] = 0;
            queue.clear();
            queue.push(s);
            let mut head = 0;
            while head < queue.len() {
                let v = queue[head];
                head += 1;
                for u in routing.neighbor_slice(NodeId::new(v)) {
                    let u = u.index();
                    if d[u] == u32::MAX {
                        d[u] = d[v] + 1;
                        p[u] = v as u32;
                        queue.push(u);
                    }
                }
            }
        }
        let gates = circuit
            .gates()
            .map(|g| {
                let (a, b) = g.qubits();
                FlatGate {
                    a: a.index() as u32,
                    b: b.map_or(NONE, |q| q.index() as u32),
                    weight: g.time_weight(),
                }
            })
            .collect();
        let model = placer.config().cost_model;
        RoutedCost {
            m,
            dist,
            parent,
            gates,
            base: CostEngine::new(placer.environment(), model),
            work: CostEngine::new(placer.environment(), model),
            pos: vec![0; circuit.qubit_count()],
            occ: vec![NONE; m],
            path: Vec::with_capacity(m),
        }
    }

    #[inline]
    fn dist(&self, s: usize, t: usize) -> u32 {
        self.dist[s * self.m + t]
    }

    /// Fills `self.path` with the interior of the shortest route `s → t`
    /// plus `t` itself, in walk order (`s` excluded). Returns `false`
    /// when `t` is unreachable.
    fn walk_path(&mut self, s: usize, t: usize) -> bool {
        if self.dist(s, t) == u32::MAX {
            return false;
        }
        self.path.clear();
        let mut cur = t as u32;
        while cur as usize != s {
            self.path.push(cur);
            cur = self.parent[s * self.m + cur as usize];
        }
        self.path.reverse();
        true
    }

    /// The annealing objective: the [`CostEngine`] makespan of the whole
    /// circuit under `placement`, with every interaction that lands on
    /// non-adjacent (in the fast graph) nuclei charged a sequential SWAP
    /// chain along the routing graph's shortest path. Infeasible
    /// placements (an interacting pair in different routing components)
    /// cost infinity.
    fn eval(&mut self, placement: &Placement, fast: &Graph) -> f64 {
        self.work.copy_from(&self.base);
        self.occ.fill(NONE);
        for (q, slot) in self.pos.iter_mut().enumerate() {
            let v = placement.physical(Qubit::new(q)).index() as u32;
            *slot = v;
            self.occ[v as usize] = q as u32;
        }
        for gi in 0..self.gates.len() {
            let g = self.gates[gi];
            let pa = self.pos[g.a as usize] as usize;
            if g.b == NONE {
                let _ = self
                    .work
                    .apply_gate(&PlacedGate::one(PhysicalQubit::new(pa), g.weight));
                continue;
            }
            let pb = self.pos[g.b as usize] as usize;
            let mut pa = pa;
            if !fast.has_edge(NodeId::new(pa), NodeId::new(pb)) {
                if !self.walk_path(pa, pb) {
                    return f64::INFINITY;
                }
                // Swap the value of `a` along the path until the pair is
                // fast-adjacent; the last path node is `pb` itself and is
                // never entered.
                for i in 0..self.path.len() - 1 {
                    if fast.has_edge(NodeId::new(pa), NodeId::new(pb)) {
                        break;
                    }
                    let next = self.path[i] as usize;
                    let _ = self.work.apply_gate(&PlacedGate::swap(
                        PhysicalQubit::new(pa),
                        PhysicalQubit::new(next),
                    ));
                    // Exchange occupants (the displaced value, if any,
                    // moves back to `pa`).
                    let moved = self.occ[next];
                    self.occ[next] = g.a;
                    self.occ[pa] = moved;
                    if moved != NONE {
                        self.pos[moved as usize] = pa as u32;
                    }
                    self.pos[g.a as usize] = next as u32;
                    pa = next;
                }
            }
            // Fast edge, or — in bridged molecule environments only — the
            // finite slow coupling the routing bridge represents.
            let _ = self.work.apply_gate(&PlacedGate::two(
                PhysicalQubit::new(pa),
                PhysicalQubit::new(pb),
                g.weight,
            ));
        }
        self.work.makespan().units()
    }
}

/// Greedy seed mapping: qubits in descending interaction-weight order,
/// each placed on the free nucleus minimizing the weighted routing
/// distance to its already-placed partners (highest fast degree for
/// seeds of new components). Deterministic.
fn greedy_seed(
    weights: &[f64],
    n: usize,
    fast: &Graph,
    cost: &RoutedCost<'_>,
) -> Result<Placement> {
    let m = fast.node_count();
    let strength: Vec<f64> = (0..n)
        .map(|q| (0..n).map(|u| weights[q * n + u]).sum())
        .collect();
    let mut placed: Vec<Option<u32>> = vec![None; n];
    let mut taken = vec![false; m];
    // Free node of maximum fast degree (component seeds and idle qubits).
    #[allow(clippy::expect_used)]
    let hub = |taken: &[bool]| -> usize {
        (0..m)
            .filter(|&v| !taken[v])
            .max_by_key(|&v| (fast.degree(NodeId::new(v)), std::cmp::Reverse(v)))
            .expect("invariant: n <= m leaves a free nucleus")
    };
    for _ in 0..n {
        // Next qubit: most interaction weight to already-placed qubits,
        // then overall strength, then lowest index.
        let mut next = usize::MAX;
        let mut next_key = (f64::NEG_INFINITY, f64::NEG_INFINITY);
        for q in 0..n {
            if placed[q].is_some() {
                continue;
            }
            let anchored: f64 = (0..n)
                .filter(|&u| placed[u].is_some())
                .map(|u| weights[q * n + u])
                .sum();
            let key = (anchored, strength[q]);
            if next == usize::MAX || key > next_key {
                next = q;
                next_key = key;
            }
        }
        let anchored: Vec<(usize, f64)> = (0..n)
            .filter_map(|u| placed[u].map(|v| (v as usize, weights[next * n + u])))
            .filter(|&(_, w)| w > 0.0)
            .collect();
        let choice = if anchored.is_empty() {
            hub(&taken)
        } else {
            let mut best = usize::MAX;
            let mut best_score = f64::INFINITY;
            for (v, _) in taken.iter().enumerate().filter(|&(_, &t)| !t) {
                let score: f64 = anchored
                    .iter()
                    .map(|&(pu, w)| {
                        let d = cost.dist(v, pu);
                        if d == u32::MAX {
                            1e18
                        } else {
                            w * f64::from(d)
                        }
                    })
                    .sum();
                if score < best_score {
                    best = v;
                    best_score = score;
                }
            }
            best
        };
        placed[next] = Some(choice as u32);
        taken[choice] = true;
    }
    #[allow(clippy::expect_used)]
    let to_phys: Vec<PhysicalQubit> = placed
        .into_iter()
        .map(
            |v| PhysicalQubit::new(v.expect("invariant: the loop above fills every slot") as usize),
        )
        .collect();
    Placement::new(to_phys, m)
}

/// The heuristic pipeline: greedy seed → budgeted simulated annealing
/// over the routed [`CostEngine`] objective → an executable staged
/// outcome with non-adjacent interactions routed through the SWAP
/// router.
fn greedy_anneal(
    placer: &Placer<'_>,
    circuit: &Circuit,
    meter: &mut vf2::Budget,
    resolution: Resolution,
) -> Result<PlacementOutcome> {
    let env = placer.environment();
    let fast = placer.fast_graph();
    let n = circuit.qubit_count();
    let m = env.qubit_count();
    if n > m {
        return Err(PlaceError::CircuitTooLarge {
            qubits: n,
            nuclei: m,
        });
    }
    if circuit.two_qubit_gate_count() > 0 && fast.edge_count() == 0 {
        return Err(PlaceError::NoFastInteractions);
    }

    // Whole-circuit interaction weights (gate counts per pair).
    let mut weights = vec![0.0f64; n * n];
    for gate in circuit.gates() {
        if let Some((a, b)) = gate.coupling() {
            weights[a.index() * n + b.index()] += 1.0;
            weights[b.index() * n + a.index()] += 1.0;
        }
    }

    let mut cost = RoutedCost::new(placer, circuit);
    let mut current = greedy_seed(&weights, n, fast, &cost)?;
    let mut cur_cost = cost.eval(&current, fast);
    let mut best = current.clone();
    let mut best_cost = cur_cost;

    // Annealing refinement: move-one/swap-two neighbourhood, geometric
    // cooling, deterministic in the configured seed. Budget-aware: each
    // move charges the meter, so an exhausted budget ships the greedy
    // seed unpolished instead of blocking.
    let anneal = placer.config().anneal;
    let mut rng = StdRng::seed_from_u64(anneal.seed);
    let t0 = if cur_cost.is_finite() {
        (cur_cost / 10.0).max(1.0)
    } else {
        1.0
    };
    // A zero-qubit circuit has nothing to move (and `gen_range(0..0)`
    // would panic); the seed is already the answer.
    let iterations = if n == 0 { 0 } else { anneal.iterations };
    for i in 0..iterations {
        if !meter.consume(1) {
            break;
        }
        let temp = t0 * 0.995f64.powi(i as i32);
        let q = Qubit::new(rng.gen_range(0..n));
        let v = PhysicalQubit::new(rng.gen_range(0..m));
        let cand = current.with_move(q, v);
        let cand_cost = cost.eval(&cand, fast);
        let accept = cand_cost <= cur_cost
            || (cand_cost.is_finite()
                && cur_cost.is_finite()
                && rng.gen_bool(
                    ((cur_cost - cand_cost) / temp.max(1e-9))
                        .exp()
                        .clamp(0.0, 1.0),
                ));
        if accept {
            current = cand;
            cur_cost = cand_cost;
            if cur_cost < best_cost {
                best = current.clone();
                best_cost = cur_cost;
            }
        }
    }

    build_routed_outcome(placer, circuit, best, &cost, resolution)
}

/// Turns a (possibly non-monomorphic) whole-circuit placement into an
/// executable staged outcome: gates run in order, and whenever an
/// interaction lands on nuclei without a fast coupling, both values are
/// routed to the nearest fast edge through
/// [`route_permutation`] — the §5.2 parallel SWAP router — opening a new
/// stage.
fn build_routed_outcome(
    placer: &Placer<'_>,
    circuit: &Circuit,
    initial: Placement,
    cost: &RoutedCost<'_>,
    resolution: Resolution,
) -> Result<PlacementOutcome> {
    let env = placer.environment();
    let fast = placer.fast_graph();
    let routing = placer.routing_graph();
    let n = circuit.qubit_count();
    let m = env.qubit_count();

    let fast_edges: Vec<(usize, usize)> = fast
        .edges()
        .map(|(a, b, _)| (a.index(), b.index()))
        .collect();

    let mut stages: Vec<Stage> = Vec::new();
    let mut schedule = Schedule::new();
    let mut current = initial;
    let mut pending_swaps = SwapSchedule::default();
    let mut stage_gates: Vec<Gate> = Vec::new();

    let close_stage = |stages: &mut Vec<Stage>,
                       schedule: &mut Schedule,
                       placement: &Placement,
                       swaps: SwapSchedule,
                       gates: &mut Vec<Gate>| {
        #[allow(clippy::expect_used)]
        let sub = Circuit::from_gates(n, gates.drain(..))
            .expect("invariant: stage gates fit the declared width");
        schedule.extend(&swaps.to_schedule());
        schedule.extend(&Schedule::from_placed_circuit(&sub, placement));
        stages.push(Stage {
            placement: placement.clone(),
            swaps,
            subcircuit: sub,
        });
    };

    for gate in circuit.gates() {
        let Some((a, b)) = gate.coupling() else {
            stage_gates.push(gate.clone());
            continue;
        };
        let (pa, pb) = (current.physical(a).index(), current.physical(b).index());
        if fast.has_edge(NodeId::new(pa), NodeId::new(pb)) {
            stage_gates.push(gate.clone());
            continue;
        }
        // Pick the fast edge minimizing the combined routing distance of
        // both endpoints (either orientation; the degenerate orientations
        // that would stack both values on one nucleus are skipped).
        let mut best: Option<(u32, usize, usize)> = None;
        for &(x, y) in &fast_edges {
            for (u, v) in [(x, y), (y, x)] {
                if u == pb || v == pa {
                    continue;
                }
                let (du, dv) = (cost.dist(pa, u), cost.dist(pb, v));
                if du == u32::MAX || dv == u32::MAX {
                    continue;
                }
                let d = du + dv;
                if best.is_none_or(|(bd, bu, bv)| (d, u, v) < (bd, bu, bv)) {
                    best = Some((d, u, v));
                }
            }
        }
        let Some((_, u, v)) = best else {
            return Err(PlaceError::RoutingImpossible {
                stuck: PhysicalQubit::new(pa),
            });
        };
        // Both endpoints are pinned even when already in place — a
        // don't-care value is fair game for the router to shuffle.
        let mut targets: Vec<Option<usize>> = vec![None; m];
        targets[pa] = Some(u);
        targets[pb] = Some(v);
        let swaps = route_permutation(routing, &targets, &placer.config().router)?;
        // Commit the stage that ran before this routing event.
        close_stage(
            &mut stages,
            &mut schedule,
            &current,
            std::mem::take(&mut pending_swaps),
            &mut stage_gates,
        );
        // Apply the swap schedule to *every* value (the router may shuffle
        // don't-care values too).
        let final_pos = swaps.simulate(m);
        current = Placement::new(
            (0..n)
                .map(|q| PhysicalQubit::new(final_pos[current.physical(Qubit::new(q)).index()]))
                .collect(),
            m,
        )?;
        pending_swaps = swaps;
        debug_assert!(fast.has_edge(
            NodeId::new(current.physical(a).index()),
            NodeId::new(current.physical(b).index())
        ));
        stage_gates.push(gate.clone());
    }
    close_stage(
        &mut stages,
        &mut schedule,
        &current,
        pending_swaps,
        &mut stage_gates,
    );

    let runtime = schedule.runtime(env, &placer.config().cost_model);
    Ok(PlacementOutcome {
        stages,
        schedule,
        runtime,
        resolution,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PlacerConfig;
    use qcp_circuit::library;
    use qcp_env::topologies::{self, Delays};
    use qcp_env::{molecules, Threshold};

    fn grid_env() -> qcp_env::Environment {
        topologies::grid(4, 4, Delays::default())
    }

    fn config_on(env: &qcp_env::Environment) -> PlacerConfig {
        PlacerConfig::with_threshold(env.connectivity_threshold().expect("connected"))
    }

    #[test]
    fn strategy_parses_and_displays() {
        for s in Strategy::ALL {
            assert_eq!(s.name().parse::<Strategy>().unwrap(), s);
            assert_eq!(s.to_string(), s.name());
        }
        assert!("vf3".parse::<Strategy>().is_err());
    }

    #[test]
    fn anneal_places_everything_the_exact_pipeline_places() {
        let env = grid_env();
        let config = config_on(&env);
        for circuit in [
            library::qec3_encoder(),
            library::qft(5),
            library::pseudo_cat(7),
        ] {
            let placer = Placer::new(&env, config.clone().strategy(Strategy::Anneal));
            let outcome = placer.place(&circuit).unwrap();
            assert_eq!(outcome.resolution, Resolution::Fallback);
            assert_eq!(
                outcome.schedule.gate_count(),
                circuit.gate_count() + outcome.swap_count()
            );
            assert!(outcome.runtime.units() > 0.0 || circuit.gate_count() == 0);
        }
    }

    #[test]
    fn anneal_swap_stages_are_consistent() {
        let env = grid_env();
        let placer = Placer::new(&env, config_on(&env).strategy(Strategy::Anneal));
        let outcome = placer.place(&library::qft(6)).unwrap();
        for pair in outcome.stages.windows(2) {
            let perm = pair[0].placement.permutation_to(&pair[1].placement);
            let pos = pair[1].swaps.simulate(env.qubit_count());
            for (v, d) in perm.iter().enumerate() {
                if let Some(d) = d {
                    assert_eq!(pos[v], *d, "value at p{v} must reach p{d}");
                }
            }
        }
        // Every committed stage really runs its interactions on fast
        // couplings.
        let fast = placer.fast_graph();
        for stage in &outcome.stages {
            for gate in stage.subcircuit.gates() {
                if let Some((a, b)) = gate.coupling() {
                    assert!(fast.has_edge(
                        NodeId::new(stage.placement.physical(a).index()),
                        NodeId::new(stage.placement.physical(b).index()),
                    ));
                }
            }
        }
    }

    #[test]
    fn anneal_is_deterministic_in_the_seed() {
        let env = grid_env();
        let config = config_on(&env).strategy(Strategy::Anneal);
        let a = Placer::new(&env, config.clone())
            .place(&library::qft(5))
            .unwrap();
        let b = Placer::new(&env, config.clone())
            .place(&library::qft(5))
            .unwrap();
        assert_eq!(a.runtime, b.runtime);
        assert!(a.initial_placement().same_assignment(b.initial_placement()));
        let mut other = config;
        other.anneal.seed = 99;
        // A different seed may (and here does) find a different placement;
        // the outcome must still be valid.
        let c = Placer::new(&env, other).place(&library::qft(5)).unwrap();
        assert!(c.runtime.units() > 0.0);
    }

    #[test]
    fn zero_budget_exact_fails_fast_and_hybrid_still_answers() {
        let env = grid_env();
        let base = config_on(&env).budget(SearchBudget::nodes(0));
        let circuit = library::qft(5);
        let err = Placer::new(&env, base.clone().strategy(Strategy::Exact))
            .place(&circuit)
            .unwrap_err();
        assert!(matches!(err, PlaceError::BudgetExhausted { .. }));

        let outcome = Placer::new(&env, base.strategy(Strategy::Hybrid))
            .place(&circuit)
            .unwrap();
        assert_eq!(outcome.resolution, Resolution::BudgetExhausted);
        assert_eq!(
            outcome.schedule.gate_count(),
            circuit.gate_count() + outcome.swap_count()
        );
    }

    #[test]
    fn hybrid_with_unlimited_budget_matches_exact() {
        let env = molecules::trans_crotonic_acid();
        let t = env.connectivity_threshold().unwrap();
        let circuit = library::phase_estimation();
        let exact = Placer::new(&env, PlacerConfig::with_threshold(t))
            .place(&circuit)
            .unwrap();
        let hybrid = Placer::new(
            &env,
            PlacerConfig::with_threshold(t).strategy(Strategy::Hybrid),
        )
        .place(&circuit)
        .unwrap();
        assert_eq!(exact.resolution, Resolution::Exact);
        assert_eq!(hybrid.resolution, Resolution::Exact);
        assert_eq!(exact.runtime, hybrid.runtime);
        assert_eq!(exact.stages.len(), hybrid.stages.len());
        for (a, b) in exact.stages.iter().zip(&hybrid.stages) {
            assert!(a.placement.same_assignment(&b.placement));
        }
    }

    #[test]
    fn fundamental_errors_are_not_retried() {
        let env = molecules::acetyl_chloride();
        let config = PlacerConfig::with_threshold(Threshold::new(100.0));
        for strategy in [Strategy::Anneal, Strategy::Hybrid] {
            let placer = Placer::new(&env, config.clone().strategy(strategy));
            assert!(matches!(
                placer.place(&library::phase_estimation()).unwrap_err(),
                PlaceError::CircuitTooLarge { .. }
            ));
        }
        let dead = PlacerConfig::with_threshold(Threshold::new(50.0));
        let env = molecules::pentafluoro_iron();
        for strategy in [Strategy::Anneal, Strategy::Hybrid] {
            let placer = Placer::new(&env, dead.clone().strategy(strategy));
            assert_eq!(
                placer.place(&library::phase_estimation()).unwrap_err(),
                PlaceError::NoFastInteractions
            );
        }
    }

    #[test]
    fn anneal_handles_empty_and_single_qubit_circuits() {
        let env = grid_env();
        let placer = Placer::new(&env, config_on(&env).strategy(Strategy::Anneal));
        let empty = placer.place(&Circuit::empty(3)).unwrap();
        assert_eq!(empty.subcircuit_count(), 1);
        assert!(empty.runtime.is_zero());
    }

    #[test]
    fn zero_qubit_circuits_do_not_panic_any_strategy() {
        let env = grid_env();
        for strategy in Strategy::ALL {
            let config = config_on(&env)
                .strategy(strategy)
                .budget(SearchBudget::unlimited());
            let outcome = Placer::new(&env, config).place(&Circuit::empty(0)).unwrap();
            assert!(outcome.runtime.is_zero(), "{strategy}");
        }
        // Hybrid falling back on a width-0 circuit exercises the anneal
        // path with nothing to move.
        let config = config_on(&env)
            .strategy(Strategy::Hybrid)
            .budget(SearchBudget::nodes(0));
        let outcome = Placer::new(&env, config).place(&Circuit::empty(0)).unwrap();
        assert_eq!(outcome.resolution, Resolution::BudgetExhausted);
    }

    #[test]
    fn anneal_on_bridged_molecule_below_connectivity_threshold() {
        // Crotonic at threshold 50: the fast graph is disconnected; the
        // heuristic must still produce a valid staged outcome via the
        // bridge couplings, like §6's "too much swapping" observation.
        let env = molecules::trans_crotonic_acid();
        let config = PlacerConfig::with_threshold(Threshold::new(50.0)).strategy(Strategy::Anneal);
        let circuit = library::qec5_benchmark();
        let outcome = Placer::new(&env, config).place(&circuit).unwrap();
        assert_eq!(
            outcome.schedule.gate_count(),
            circuit.gate_count() + outcome.swap_count()
        );
    }

    #[test]
    fn search_budget_builders() {
        assert!(SearchBudget::unlimited().is_unlimited());
        assert!(!SearchBudget::nodes(5).is_unlimited());
        assert!(!SearchBudget::from_millis(10).is_unlimited());
        let b = SearchBudget::from_millis(10).with_nodes(7);
        assert_eq!(b.max_nodes, Some(7));
        assert!(b.deadline.is_some());
        let mut meter = SearchBudget::nodes(1).start();
        assert!(meter.consume(1));
        assert!(!meter.consume(1));
    }
}
