//! The full placement pipeline (§5.1–§5.3): workspace extraction,
//! monomorphism-based basic placement, fine tuning, SWAP stages, and the
//! depth-2 lookahead of §5.3.

use qcp_circuit::{Circuit, Qubit, Time};
use qcp_env::{Environment, Threshold};
use qcp_graph::traversal::connected_components;
use qcp_graph::{vf2, Graph};

use crate::cost::{CostEngine, CostModel, Schedule};
use crate::embed::{candidate_placements_searched, SearchOptions};
use crate::finetune::fine_tune;
use crate::router::{route_permutation, RouterConfig, SwapSchedule};
use crate::strategy::{strategy_for, AnnealConfig, Resolution, SearchBudget, Strategy};
use crate::workspace::{extract_workspaces_budgeted, ExtractionOptions, Workspace};
use crate::{PlaceError, Placement, Result};

/// Lookahead context for candidate scoring: the next stage's candidate
/// placements, their workspace, and the per-continuation gate floors.
type Lookahead<'a> = (&'a [Placement], &'a Workspace, &'a [Vec<f64>]);

/// Placer configuration. The defaults mirror the paper's implementation:
/// `k = 100` candidate monomorphisms, depth-2 lookahead, fine tuning on,
/// overlapped cost model with the interaction-reuse cap.
#[derive(Clone, Debug)]
pub struct PlacerConfig {
    /// Fast-interaction threshold (§5 preprocessing).
    pub threshold: Threshold,
    /// Maximum monomorphisms considered per workspace (`k`).
    pub max_candidates: usize,
    /// Depth-2 lookahead combining current mapping + swap + next mapping
    /// costs (§5.3). Greedy selection when `false`.
    pub lookahead: bool,
    /// Fine-tuning sweeps per committed placement (0 disables).
    pub fine_tune_rounds: usize,
    /// Runtime cost model.
    pub cost_model: CostModel,
    /// SWAP-router options.
    pub router: RouterConfig,
    /// Workspace-extraction options (§7 extensions: gate commutation and
    /// workspace-size balancing).
    pub extraction: ExtractionOptions,
    /// Placement strategy: budgeted exact, greedy+anneal heuristic, or
    /// the hybrid fallback chain.
    pub strategy: Strategy,
    /// Search budget (node cap and/or deadline) for the strategy.
    pub budget: SearchBudget,
    /// Annealing knobs for the heuristic strategies.
    pub anneal: AnnealConfig,
    /// Worker threads for the exact search (VF2 root subtrees and
    /// candidate scoring). `1` (the default) runs sequentially; `0`
    /// uses the machine's available parallelism. Results are
    /// bit-identical across worker counts for node-budgeted searches.
    pub search_jobs: usize,
}

impl Default for PlacerConfig {
    fn default() -> Self {
        PlacerConfig {
            threshold: Threshold::unbounded(),
            max_candidates: 100,
            lookahead: true,
            fine_tune_rounds: 2,
            cost_model: CostModel::default(),
            router: RouterConfig::default(),
            extraction: ExtractionOptions::default(),
            strategy: Strategy::default(),
            budget: SearchBudget::unlimited(),
            anneal: AnnealConfig::default(),
            search_jobs: 1,
        }
    }
}

impl PlacerConfig {
    /// Default configuration at the given threshold.
    pub fn with_threshold(threshold: Threshold) -> Self {
        PlacerConfig {
            threshold,
            ..Default::default()
        }
    }

    /// Sets the candidate cap `k`.
    #[must_use]
    pub fn candidates(mut self, k: usize) -> Self {
        self.max_candidates = k.max(1);
        self
    }

    /// Enables or disables the depth-2 lookahead.
    #[must_use]
    pub fn lookahead(mut self, on: bool) -> Self {
        self.lookahead = on;
        self
    }

    /// Sets the number of fine-tuning sweeps.
    #[must_use]
    pub fn fine_tuning(mut self, rounds: usize) -> Self {
        self.fine_tune_rounds = rounds;
        self
    }

    /// Enables commutation-aware workspace extraction (§7 extension).
    #[must_use]
    pub fn commutation_aware(mut self, on: bool) -> Self {
        self.extraction.commutation_aware = on;
        self
    }

    /// Caps workspace size (trades computation depth against swap depth).
    #[must_use]
    pub fn max_workspace_gates(mut self, cap: usize) -> Self {
        self.extraction.max_gates = Some(cap.max(1));
        self
    }

    /// Selects the placement strategy.
    #[must_use]
    pub fn strategy(mut self, strategy: Strategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Sets the search budget for the strategy.
    #[must_use]
    pub fn budget(mut self, budget: SearchBudget) -> Self {
        self.budget = budget;
        self
    }

    /// Sets the exact-search worker count (`0` auto-detects the
    /// machine's available parallelism, `1` runs sequentially).
    #[must_use]
    pub fn search_jobs(mut self, jobs: usize) -> Self {
        self.search_jobs = jobs;
        self
    }
}

/// One committed stage of the placed computation: the SWAP circuit that
/// rearranges values (empty for the first stage) followed by a placed
/// subcircuit.
#[derive(Clone, Debug)]
pub struct Stage {
    /// Placement in force during this stage's subcircuit.
    pub placement: Placement,
    /// SWAP levels that produced this placement from the previous stage.
    pub swaps: SwapSchedule,
    /// The subcircuit (same width as the full circuit).
    pub subcircuit: Circuit,
}

/// The result of placing a circuit: `C1 E12 C2 E23 … Ct` with its overall
/// runtime.
#[derive(Clone, Debug)]
pub struct PlacementOutcome {
    /// The committed stages in execution order.
    pub stages: Vec<Stage>,
    /// The fully placed schedule (swap levels + subcircuit levels).
    pub schedule: Schedule,
    /// Total runtime under the configured cost model.
    pub runtime: Time,
    /// How the placement was obtained: exact search, heuristic fallback,
    /// or fallback forced by an exhausted search budget.
    pub resolution: Resolution,
}

impl PlacementOutcome {
    /// Number of subcircuits (the bracketed counts of Table 3 and the
    /// "# of Subcircuits" column of Table 4).
    pub fn subcircuit_count(&self) -> usize {
        self.stages.len()
    }

    /// Total number of SWAP gates inserted.
    pub fn swap_count(&self) -> usize {
        self.stages.iter().map(|s| s.swaps.swap_count()).sum()
    }

    /// The initial placement `P1` (every logical qubit's starting nucleus).
    ///
    /// # Panics
    ///
    /// Panics if the outcome has no stages (placing an empty circuit still
    /// yields one stage).
    #[allow(clippy::expect_used)]
    pub fn initial_placement(&self) -> &Placement {
        &self
            .stages
            .first()
            .expect("invariant: outcomes carry at least one stage")
            .placement
    }

    /// The final placement after the last stage.
    ///
    /// # Panics
    ///
    /// Panics if the outcome has no stages.
    #[allow(clippy::expect_used)]
    pub fn final_placement(&self) -> &Placement {
        &self
            .stages
            .last()
            .expect("invariant: outcomes carry at least one stage")
            .placement
    }
}

/// The quantum circuit placer.
///
/// ```
/// use qcp_circuit::library::qec3_encoder;
/// use qcp_env::{molecules, Threshold};
/// use qcp_place::{Placer, PlacerConfig};
///
/// let env = molecules::acetyl_chloride();
/// let placer = Placer::new(&env, PlacerConfig::with_threshold(Threshold::new(100.0)));
/// let outcome = placer.place(&qec3_encoder())?;
/// // The tool finds the experimentalists' optimal mapping: 136 units.
/// assert_eq!(outcome.runtime.units(), 136.0);
/// assert_eq!(outcome.subcircuit_count(), 1);
/// # Ok::<(), qcp_place::PlaceError>(())
/// ```
#[derive(Clone, Debug)]
pub struct Placer<'e> {
    env: &'e Environment,
    config: PlacerConfig,
    fast: Graph,
    routing: Graph,
    /// Fast-graph node orbits under verified device automorphisms, kept
    /// only when symmetric first-stage placements are genuinely
    /// cost-equivalent (see [`device_symmetry`]).
    symmetry: Option<Vec<usize>>,
    /// All-pairs hop distances on the routing graph, row-major `m × m`
    /// (`u32::MAX` when unreachable). Feeds the stage lower bound.
    dist: Vec<u32>,
    /// Cheapest possible cost of one mid-chain SWAP hop (see
    /// [`Placer::stage_lower_bound`]).
    min_swap_units: f64,
}

impl<'e> Placer<'e> {
    /// Creates a placer for `env` under `config`.
    ///
    /// The routing graph is the fast graph plus, when the fast graph is
    /// disconnected, the cheapest available slow couplings bridging its
    /// components — §6 runs the tool below the connectivity threshold and
    /// observes "too much swapping" rather than failure, so swaps may fall
    /// back to slow interactions while *computational* gates never do.
    pub fn new(env: &'e Environment, config: PlacerConfig) -> Self {
        let fast = env.fast_graph(config.threshold);
        let routing = bridge_components(env, &fast);
        let symmetry = device_symmetry(env, &fast);
        let m = routing.node_count();
        let mut dist = vec![u32::MAX; m * m];
        for v in 0..m {
            let row = qcp_graph::traversal::bfs_distances(&routing, qcp_graph::NodeId::new(v));
            for (u, d) in row.into_iter().enumerate() {
                if let Some(d) = d {
                    dist[v * m + u] = d;
                }
            }
        }
        // A fresh-run SWAP costs `3 · W` capped at the reuse cap; mid-chain
        // hops always start fresh runs (the previous hop rewrote both
        // nuclei's last-pair records), so this is a true per-hop floor.
        let stride = match config.cost_model.reuse_cap {
            None => 3.0,
            Some(cap) => 3.0_f64.min(cap.max(0.0)),
        };
        let min_w = routing
            .edges()
            .map(|(_, _, w)| w)
            .fold(f64::INFINITY, f64::min);
        let min_swap_units = if min_w.is_finite() {
            stride * min_w
        } else {
            0.0
        };
        Placer {
            env,
            config,
            fast,
            routing,
            symmetry,
            dist,
            min_swap_units,
        }
    }

    /// The environment this placer targets.
    pub fn environment(&self) -> &'e Environment {
        self.env
    }

    /// The fast-interaction graph in force.
    pub fn fast_graph(&self) -> &Graph {
        &self.fast
    }

    /// The routing graph: the fast graph plus any bridge couplings.
    pub fn routing_graph(&self) -> &Graph {
        &self.routing
    }

    /// The configuration in force.
    pub fn config(&self) -> &PlacerConfig {
        &self.config
    }

    /// Places `circuit` with the configured [`Strategy`] and
    /// [`SearchBudget`], producing the staged computation and its runtime.
    ///
    /// # Errors
    ///
    /// * [`PlaceError::CircuitTooLarge`] if the circuit is wider than the
    ///   environment;
    /// * [`PlaceError::NoFastInteractions`] if the threshold disallows all
    ///   interactions but the circuit has two-qubit gates (Table 3's N/A);
    /// * [`PlaceError::RoutingImpossible`] if values cannot be moved
    ///   between stages even via bridge couplings;
    /// * [`PlaceError::BudgetExhausted`] if the budget trips under
    ///   [`Strategy::Exact`] (the anytime strategies catch it instead).
    pub fn place(&self, circuit: &Circuit) -> Result<PlacementOutcome> {
        strategy_for(self.config.strategy).place(self, circuit)
    }

    /// The budgeted exact pipeline, regardless of the configured strategy.
    ///
    /// # Errors
    ///
    /// As [`place`](Placer::place) under [`Strategy::Exact`].
    pub fn place_exact(&self, circuit: &Circuit) -> Result<PlacementOutcome> {
        let mut meter = self.config.budget.start();
        self.place_exact_with(circuit, &mut meter)
    }

    /// The exact pipeline charging an externally owned budget meter (the
    /// hybrid strategy shares one meter between the exact attempt and the
    /// heuristic fallback).
    pub(crate) fn place_exact_with(
        &self,
        circuit: &Circuit,
        meter: &mut vf2::Budget,
    ) -> Result<PlacementOutcome> {
        if !meter.consume(1) {
            return Err(budget_error(meter));
        }
        let n = circuit.qubit_count();
        let m = self.env.qubit_count();
        if n > m {
            return Err(PlaceError::CircuitTooLarge {
                qubits: n,
                nuclei: m,
            });
        }
        let workspaces =
            extract_workspaces_budgeted(circuit, &self.fast, self.config.extraction, meter)?;

        let mut engine = CostEngine::new(self.env, self.config.cost_model);
        // Fork arena: a scratch engine reset per scoring call instead of
        // cloning a fresh CostEngine (times/last-pair/runs buffers) for
        // every fine-tuning probe and commit (candidate selection keeps
        // its own forks — per worker, under `search_jobs`).
        let mut fork = CostEngine::new(self.env, self.config.cost_model);
        let mut schedule = Schedule::new();
        let mut stages: Vec<Stage> = Vec::new();
        let mut previous: Option<Placement> = None;

        // The lookahead below enumerates workspace i+1's candidates at
        // iteration i and again at iteration i+1: the *monomorphisms* are
        // placement-independent (§5.3: "the sets of monomorphisms … are
        // equal"), but their completions to total placements park idle
        // qubits relative to the previous placement, which changes when
        // workspace i commits — so the sets cannot be reused verbatim.
        // Each enumeration charges the budget meter for the work it does.
        let jobs = effective_jobs(self.config.search_jobs);
        for (wi, ws) in workspaces.iter().enumerate() {
            // Orbit pruning applies to the first stage only: with no
            // previous placement, candidates related by a device
            // automorphism are cost-equivalent, so one VF2 root per orbit
            // suffices. Later stages (and the lookahead set, whose members
            // are scored relative to a *fixed* current candidate) have the
            // symmetry broken by the incumbent placement.
            let search = SearchOptions {
                jobs,
                root_orbits: if previous.is_none() {
                    self.symmetry.as_deref()
                } else {
                    None
                },
            };
            let candidates = candidate_placements_searched(
                &ws.interaction,
                &self.fast,
                previous.as_ref(),
                self.config.max_candidates,
                meter,
                &search,
            )?;
            if candidates.is_empty() {
                // extract_workspaces guarantees embeddability.
                return Err(PlaceError::InvalidPlacement {
                    message: "workspace unexpectedly has no embedding".into(),
                });
            }

            // Lookahead: raw candidates for the next workspace.
            let lookahead_set = if self.config.lookahead {
                workspaces.get(wi + 1).map(|next| {
                    candidate_placements_searched(
                        &next.interaction,
                        &self.fast,
                        previous.as_ref(),
                        self.config.max_candidates,
                        meter,
                        &SearchOptions {
                            jobs,
                            root_orbits: None,
                        },
                    )
                })
            } else {
                None
            };
            let lookahead_set = match lookahead_set {
                Some(Ok(c)) => Some(c),
                Some(Err(e)) => return Err(e),
                None => None,
            };

            // Charge the scoring phase up front — one unit per candidate
            // plus one per lookahead continuation, exactly what the
            // un-pruned sweep below would cost — so budget exhaustion is
            // deterministic regardless of how the bound-and-prune
            // evaluation actually unfolds (and of the worker count).
            let la_len = lookahead_set.as_ref().map_or(0, Vec::len) as u64;
            let per_candidate = 1 + la_len;
            let full_charge = per_candidate.saturating_mul(candidates.len() as u64);
            if meter.remaining_nodes() < full_charge {
                let affordable = (meter.remaining_nodes() / per_candidate) * per_candidate;
                let _ = meter.consume(affordable);
                meter.exhaust();
                return Err(budget_error(meter));
            }
            if !meter.consume(full_charge) {
                return Err(budget_error(meter));
            }

            let lookahead = lookahead_set
                .as_deref()
                .map(|cands| (cands, &workspaces[wi + 1]));
            let best_idx = self.select_candidate(
                &engine,
                previous.as_ref(),
                &candidates,
                ws,
                lookahead,
                jobs,
                meter,
            )?;
            let mut chosen = candidates[best_idx].clone();

            // Fine tuning (§5.1) on the active qubits of this workspace.
            if self.config.fine_tune_rounds > 0 {
                let movable: Vec<Qubit> = ws
                    .interaction
                    .nodes()
                    .filter(|v| ws.interaction.degree(*v) > 0)
                    .map(|v| Qubit::new(v.index()))
                    .collect();
                if !movable.is_empty() {
                    let result = fine_tune(
                        chosen,
                        &movable,
                        |pl| {
                            // An exhausted budget turns remaining probes
                            // into instant infinities, so the sweep drains
                            // quickly; the post-check below converts the
                            // exhaustion into the strict exact failure.
                            if !meter.consume(1) {
                                return f64::INFINITY;
                            }
                            match self.score_into(&engine, previous.as_ref(), pl, ws, &mut fork) {
                                Ok((c, _)) => c,
                                Err(_) => f64::INFINITY,
                            }
                        },
                        self.config.fine_tune_rounds,
                    );
                    chosen = result.placement;
                    if meter.is_exhausted() {
                        return Err(budget_error(meter));
                    }
                }
            }

            // Commit: swap stage + placed subcircuit.
            let (_, swaps) = self.score_into(&engine, previous.as_ref(), &chosen, ws, &mut fork)?;
            std::mem::swap(&mut engine, &mut fork);
            let swap_schedule = swaps.to_schedule();
            schedule.extend(&swap_schedule);
            let placed = Schedule::from_placed_circuit(&ws.circuit, &chosen);
            schedule.extend(&placed);
            stages.push(Stage {
                placement: chosen.clone(),
                swaps,
                subcircuit: ws.circuit.clone(),
            });
            previous = Some(chosen);
        }

        let runtime = schedule.runtime(self.env, &self.config.cost_model);
        Ok(PlacementOutcome {
            stages,
            schedule,
            runtime,
            resolution: Resolution::Exact,
        })
    }

    /// Scores one candidate continuation: swap from `previous` to `cand`,
    /// then run `ws` under `cand`, evaluated on `fork` (reset to `base`'s
    /// state first, reusing its buffers). Returns the resulting makespan
    /// and the swap schedule; `fork` is left holding the post-candidate
    /// state for lookahead continuations or commitment.
    fn score_into(
        &self,
        base: &CostEngine<'e>,
        previous: Option<&Placement>,
        cand: &Placement,
        ws: &Workspace,
        fork: &mut CostEngine<'e>,
    ) -> Result<(f64, SwapSchedule)> {
        let swaps = match previous {
            None => SwapSchedule::default(),
            Some(prev) if prev.same_assignment(cand) => SwapSchedule::default(),
            Some(prev) => {
                let perm = prev.permutation_to(cand);
                route_permutation(&self.routing, &perm, &self.config.router)?
            }
        };
        fork.copy_from(base);
        fork.apply_swap_levels(swaps.levels());
        fork.apply_placed_circuit(&ws.circuit, cand);
        Ok((fork.makespan().units(), swaps))
    }

    /// Picks the stage winner: the candidate minimizing the (lookahead)
    /// metric, ties broken by enumeration index — exactly the candidate
    /// the plain left-to-right sweep would pick, but found via a
    /// best-first branch-and-bound and, with `jobs > 1`, scored across
    /// worker threads. The bound-and-prune rules only ever skip
    /// candidates that provably cannot win (strict inequality against an
    /// incumbent metric that is itself exact), so the winner is
    /// bit-identical across worker counts and pruning order.
    ///
    /// The budget for this sweep was charged up front by the caller; the
    /// meter is only polled here for its wall-clock deadline.
    #[allow(clippy::too_many_arguments)]
    fn select_candidate(
        &self,
        engine: &CostEngine<'e>,
        previous: Option<&Placement>,
        candidates: &[Placement],
        ws: &Workspace,
        lookahead: Option<(&[Placement], &Workspace)>,
        jobs: usize,
        meter: &mut vf2::Budget,
    ) -> Result<usize> {
        // Per-continuation gate floors: what the next workspace's gates
        // must cost under each next candidate, regardless of the current
        // one. Computed once per stage.
        let floors =
            lookahead.map(|(next_cands, next_ws)| self.continuation_floors(next_cands, next_ws));
        let la = lookahead
            .zip(floors.as_ref())
            .map(|((nc, nw), fl)| (nc, nw, fl.as_slice()));

        // Phase 1: every candidate's own makespan, without lookahead, and
        // — with lookahead — a per-candidate bound on its metric. Both
        // are sound bounds for phase 2: applying the next stage's swaps
        // and gates on top never shortens a schedule, so a candidate's
        // lookahead metric never undercuts its own cost, and the
        // continuation bound is admissible by construction. Unroutable
        // candidates drop out here.
        let mut order: Vec<(f64, usize)> = Vec::with_capacity(candidates.len());
        {
            let mut fork = CostEngine::new(self.env, self.config.cost_model);
            let mut bounds: Vec<(f64, usize)> = candidates
                .iter()
                .enumerate()
                .map(|(ci, cand)| (self.stage_lower_bound(engine.times(), previous, cand), ci))
                .collect();
            bounds.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
            let mut best_cost = f64::INFINITY;
            for &(lb, ci) in &bounds {
                if !meter.consume(0) {
                    return Err(budget_error(meter));
                }
                // Without lookahead the winner is simply the cheapest
                // cost, so a bound above the best cost seen settles the
                // candidate. With lookahead a high-cost candidate can
                // still win (the winner minimizes the *continuation*
                // makespan), so every candidate gets its phase-1 score
                // and pruning waits for phase 2's exact incumbent.
                if la.is_none() && lb.total_cmp(&best_cost).is_gt() {
                    break; // sorted by bound: nothing later can be cheaper
                }
                let Ok((cost, _)) =
                    self.score_into(engine, previous, &candidates[ci], ws, &mut fork)
                else {
                    continue;
                };
                best_cost = best_cost.min(cost);
                let bound = match la {
                    None => cost,
                    Some((next_cands, _, floors)) => {
                        // The metric is the min over continuations (or the
                        // cost itself when none is routable), so the min
                        // over continuation bounds — combined with the
                        // cost — bounds it from below either way.
                        let mut pre = f64::INFINITY;
                        for (ni, nc) in next_cands.iter().enumerate() {
                            pre = pre.min(self.continuation_lower_bound(
                                fork.times(),
                                &candidates[ci],
                                nc,
                                &floors[ni],
                            ));
                            if pre.total_cmp(&cost).is_le() {
                                break; // bound already saturated at cost
                            }
                        }
                        if pre.is_finite() {
                            cost.max(pre)
                        } else {
                            cost
                        }
                    }
                };
                order.push((bound, ci));
            }
        }
        order.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));

        let stuck_err = || PlaceError::RoutingImpossible {
            stuck: qcp_env::PhysicalQubit::new(0),
        };
        if la.is_none() {
            // No lookahead: the metric IS the cost; phase 1 decided.
            return order.first().map(|&(_, ci)| ci).ok_or_else(stuck_err);
        }

        // Phase 2: lookahead metrics, smallest phase-1 bound first. Once
        // bounds exceed the incumbent metric the rest of the (sorted)
        // order can be dropped wholesale.
        let mut best: Option<(f64, usize)> = None;
        if jobs <= 1 || order.len() <= 1 {
            let mut fork = CostEngine::new(self.env, self.config.cost_model);
            let mut fork2 = CostEngine::new(self.env, self.config.cost_model);
            for &(bound, ci) in &order {
                if !meter.consume(0) {
                    return Err(budget_error(meter));
                }
                if best
                    .as_ref()
                    .is_some_and(|&(bm, _)| bound.total_cmp(&bm).is_gt())
                {
                    break; // sorted by bound: nothing later can win
                }
                let Some(metric) = self.candidate_metric(
                    engine,
                    previous,
                    &candidates[ci],
                    ws,
                    la,
                    best.map(|(bm, _)| bm),
                    &mut fork,
                    &mut fork2,
                ) else {
                    continue;
                };
                if best.is_none_or(|(bm, bi)| metric.total_cmp(&bm).then(ci.cmp(&bi)).is_lt()) {
                    best = Some((metric, ci));
                }
            }
        } else {
            use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
            let cursor = AtomicUsize::new(0);
            // Shared incumbent as raw bits: for non-negative floats the
            // IEEE-754 bit patterns order like the values, so `fetch_min`
            // on the bits is `fetch_min` on the metrics.
            let shared = AtomicU64::new(f64::INFINITY.to_bits());
            let results: Vec<std::sync::Mutex<Option<f64>>> = (0..order.len())
                .map(|_| std::sync::Mutex::new(None))
                .collect();
            let deadline = meter.deadline_instant();
            let order_ref = &order;
            let results_ref = &results;
            std::thread::scope(|scope| {
                for _ in 0..jobs.min(order.len()) {
                    scope.spawn(|| {
                        let mut fork = CostEngine::new(self.env, self.config.cost_model);
                        let mut fork2 = CostEngine::new(self.env, self.config.cost_model);
                        loop {
                            let slot = cursor.fetch_add(1, Ordering::Relaxed);
                            if slot >= order_ref.len() {
                                break;
                            }
                            if deadline.is_some_and(|at| std::time::Instant::now() >= at) {
                                break;
                            }
                            let (bound, ci) = order_ref[slot];
                            // A stale incumbent is only ever too *large*,
                            // which makes this skip conservative: anything
                            // skipped loses against the final best too.
                            let bm = f64::from_bits(shared.load(Ordering::Relaxed));
                            if bound.total_cmp(&bm).is_gt() {
                                continue;
                            }
                            if let Some(metric) = self.candidate_metric(
                                engine,
                                previous,
                                &candidates[ci],
                                ws,
                                la,
                                bm.is_finite().then_some(bm),
                                &mut fork,
                                &mut fork2,
                            ) {
                                shared.fetch_min(metric.to_bits(), Ordering::Relaxed);
                                if let Ok(mut slot_result) = results_ref[slot].lock() {
                                    *slot_result = Some(metric);
                                }
                            }
                        }
                    });
                }
            });
            if !meter.consume(0) {
                return Err(budget_error(meter));
            }
            for (slot, &(_, ci)) in order.iter().enumerate() {
                let metric = results[slot].lock().ok().and_then(|r| *r);
                let Some(metric) = metric else { continue };
                if best.is_none_or(|(bm, bi)| metric.total_cmp(&bm).then(ci.cmp(&bi)).is_lt()) {
                    best = Some((metric, ci));
                }
            }
        }
        best.map(|(_, ci)| ci).ok_or_else(stuck_err)
    }

    /// Scores one candidate: its own makespan or, with lookahead, the
    /// best continuation makespan (§5.3's `C_{i,j}`, the min over next-
    /// stage candidates). Returns `None` for unroutable candidates.
    ///
    /// The inner sweep's skips are value-preserving below `cutoff` (a
    /// continuation with `lb ≥` the incumbent min cannot lower the min),
    /// so any returned metric `≤ cutoff` — in particular the eventual
    /// winner's — is exact. Continuations bounded strictly above
    /// `cutoff` are abandoned early: that can only inflate the metric of
    /// a candidate already proven to lose, never deflate one.
    #[allow(clippy::too_many_arguments)]
    fn candidate_metric(
        &self,
        engine: &CostEngine<'e>,
        previous: Option<&Placement>,
        cand: &Placement,
        ws: &Workspace,
        lookahead: Option<Lookahead<'_>>,
        cutoff: Option<f64>,
        fork: &mut CostEngine<'e>,
        fork2: &mut CostEngine<'e>,
    ) -> Option<f64> {
        let (cost, _) = self.score_into(engine, previous, cand, ws, fork).ok()?;
        let Some((next_cands, next_ws, floors)) = lookahead else {
            return Some(cost);
        };
        // `fork` holds the post-candidate state; bound the continuations
        // against it and sweep best-first so the break fires early.
        let mut inner: Vec<(f64, usize)> = next_cands
            .iter()
            .enumerate()
            .map(|(ni, nc)| {
                (
                    self.continuation_lower_bound(fork.times(), cand, nc, &floors[ni]),
                    ni,
                )
            })
            .collect();
        inner.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        let mut best_next = f64::INFINITY;
        for &(lb, ni) in &inner {
            if lb.total_cmp(&best_next).is_ge()
                || cutoff.is_some_and(|bm| lb.total_cmp(&bm).is_gt())
            {
                break; // sorted: the min cannot improve below the bound
            }
            if let Ok((c2, _)) = self.score_into(fork, Some(cand), &next_cands[ni], next_ws, fork2)
            {
                best_next = best_next.min(c2);
            }
        }
        Some(if best_next.is_finite() {
            best_next
        } else {
            cost
        })
    }

    /// An admissible lower bound on [`Placer::score_into`]'s makespan for
    /// `cand`: the busiest nucleus so far, and each moved value's release
    /// time plus the cheapest conceivable cost of its remaining swap
    /// hops. The first hop is discounted entirely — under the reuse cap a
    /// swap on a freshly-coupled pair can cost zero — but every later hop
    /// starts a fresh run (the previous hop rewrote both nuclei's
    /// last-pair records) and pays at least one full stride.
    fn stage_lower_bound(
        &self,
        times: &[f64],
        previous: Option<&Placement>,
        cand: &Placement,
    ) -> f64 {
        let mut lb = times.iter().copied().fold(0.0, f64::max);
        let Some(prev) = previous else {
            return lb;
        };
        let m = self.env.qubit_count();
        for q in 0..cand.logical_count() {
            let src = prev.physical(Qubit::new(q)).index();
            let dst = cand.physical(Qubit::new(q)).index();
            if src == dst {
                continue;
            }
            let hops = self.dist[src * m + dst];
            if hops == u32::MAX {
                return f64::INFINITY;
            }
            let chain = times[src] + f64::from(hops.saturating_sub(1)) * self.min_swap_units;
            lb = lb.max(chain);
        }
        lb
    }

    /// Per-qubit admissible floors on the next workspace's gate cost
    /// under each next-stage candidate, independent of the current
    /// candidate. A qubit's nucleus serializes its gates, each coupling
    /// pair's cheapest conceivable total is its summed weight capped by
    /// the reuse rule, and at most one pair per qubit can continue a
    /// run carried across the stage boundary (a nucleus has a single
    /// last partner) — that one pair's gates may be free, so the
    /// largest pair total is forgiven. Costed single-qubit pulses
    /// always pay full.
    fn continuation_floors(&self, next_cands: &[Placement], next_ws: &Workspace) -> Vec<Vec<f64>> {
        let n = next_ws.circuit.qubit_count();
        let mut pair_gate: std::collections::HashMap<(usize, usize), f64> =
            std::collections::HashMap::new();
        let mut single = vec![0.0f64; n];
        for level in next_ws.circuit.levels() {
            for g in level.gates() {
                let (a, b) = g.qubits();
                match b {
                    Some(b) => {
                        let key = (a.index().min(b.index()), a.index().max(b.index()));
                        *pair_gate.entry(key).or_insert(0.0) += g.time_weight();
                    }
                    None => single[a.index()] += g.time_weight(),
                }
            }
        }
        let pairs: Vec<((usize, usize), f64)> =
            pair_gate.into_iter().filter(|&(_, g)| g > 0.0).collect();
        let cap = self.config.cost_model.reuse_cap;
        let capped = |g: f64| cap.map_or(g, |c| g.min(c));
        next_cands
            .iter()
            .map(|to| {
                let mut sum = vec![0.0f64; n];
                let mut forgiven = vec![0.0f64; n];
                for &((a, b), g) in &pairs {
                    let w = self
                        .env
                        .weight_units(to.physical(Qubit::new(a)), to.physical(Qubit::new(b)));
                    let c = capped(g) * w;
                    sum[a] += c;
                    sum[b] += c;
                    forgiven[a] = forgiven[a].max(c);
                    forgiven[b] = forgiven[b].max(c);
                }
                (0..n)
                    .map(|q| {
                        let v = to.physical(Qubit::new(q));
                        sum[q] - forgiven[q] + single[q] * self.env.weight_units(v, v)
                    })
                    .collect()
            })
            .collect()
    }

    /// An admissible lower bound on one continuation's makespan: each
    /// qubit's release time, plus its remaining swap-chain floor (as in
    /// [`Placer::stage_lower_bound`]), plus its gate floor for the next
    /// workspace — the gates run on the qubit's destination nucleus
    /// strictly after its swap chain delivers it there.
    fn continuation_lower_bound(
        &self,
        times: &[f64],
        from: &Placement,
        to: &Placement,
        floor: &[f64],
    ) -> f64 {
        let m = self.env.qubit_count();
        let mut lb = times.iter().copied().fold(0.0, f64::max);
        for (q, &gate_floor) in floor[..to.logical_count()].iter().enumerate() {
            let src = from.physical(Qubit::new(q)).index();
            let dst = to.physical(Qubit::new(q)).index();
            let chain = if src == dst {
                times[src]
            } else {
                let hops = self.dist[src * m + dst];
                if hops == u32::MAX {
                    return f64::INFINITY;
                }
                times[src] + f64::from(hops.saturating_sub(1)) * self.min_swap_units
            };
            lb = lb.max(chain + gate_floor);
        }
        lb
    }
}

/// Resolves the configured exact-search worker count (`0` = the
/// machine's available parallelism).
fn effective_jobs(configured: usize) -> usize {
    if configured == 0 {
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
    } else {
        configured
    }
}

/// Fast-graph node orbits under verified device automorphisms, or `None`
/// whenever orbit pruning would be unsound or useless. Symmetric
/// first-stage placements are cost-equivalent only when every nucleus has
/// the same single-qubit delay (automorphisms preserve coupling weights,
/// not the diagonal) and the fast graph is connected (otherwise routing
/// adds bridge couplings whose selection tie-breaks on nucleus labels,
/// which an automorphism need not preserve). All-singleton orbit
/// partitions are dropped — pruning would be a no-op.
fn device_symmetry(env: &Environment, fast: &Graph) -> Option<Vec<usize>> {
    let m = fast.node_count();
    if m == 0 || connected_components(fast).len() > 1 {
        return None;
    }
    let delay = |q: usize| {
        env.weight_units(
            qcp_env::PhysicalQubit::new(q),
            qcp_env::PhysicalQubit::new(q),
        )
    };
    let d0 = delay(0);
    if (1..m).any(|q| delay(q).total_cmp(&d0).is_ne()) {
        return None;
    }
    let orbits = qcp_graph::canonical::automorphisms(fast).orbits;
    let mut sizes = vec![0usize; m];
    for &o in &orbits {
        sizes[o] += 1;
    }
    sizes.iter().any(|&c| c > 1).then_some(orbits)
}

/// The strict exact failure once a budget meter has tripped.
fn budget_error(meter: &vf2::Budget) -> PlaceError {
    PlaceError::BudgetExhausted {
        nodes: meter.nodes_visited(),
    }
}

/// Adds the cheapest slow couplings needed to connect the components of
/// the fast graph (a minimum-bottleneck spanning forest over the component
/// quotient). Swaps across these *bridges* pay the true slow-coupling
/// delay.
fn bridge_components(env: &Environment, fast: &Graph) -> Graph {
    let comps = connected_components(fast);
    if comps.len() <= 1 {
        return fast.clone();
    }
    let n = fast.node_count();
    let mut comp_of = vec![0usize; n];
    for (ci, comp) in comps.iter().enumerate() {
        for &v in comp {
            comp_of[v.index()] = ci;
        }
    }
    // All inter-component couplings, cheapest first.
    let mut edges: Vec<(f64, usize, usize)> = Vec::new();
    for i in 0..n {
        for j in i + 1..n {
            if comp_of[i] != comp_of[j] {
                let w = env.weight_units(
                    qcp_env::PhysicalQubit::new(i),
                    qcp_env::PhysicalQubit::new(j),
                );
                if w.is_finite() {
                    edges.push((w, i, j));
                }
            }
        }
    }
    edges.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)).then(a.2.cmp(&b.2)));
    let mut routing = fast.clone();
    let mut parent: Vec<usize> = (0..comps.len()).collect();
    fn find(parent: &mut [usize], mut x: usize) -> usize {
        while parent[x] != x {
            parent[x] = parent[parent[x]];
            x = parent[x];
        }
        x
    }
    for (w, i, j) in edges {
        let (ri, rj) = (find(&mut parent, comp_of[i]), find(&mut parent, comp_of[j]));
        if ri != rj {
            parent[ri] = rj;
            // The union-find guard means this edge joins two components,
            // so it cannot already be present.
            let _ = routing.add_edge(qcp_graph::NodeId::new(i), qcp_graph::NodeId::new(j), w);
        }
    }
    routing
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcp_circuit::library;
    use qcp_env::molecules;

    #[test]
    fn qec3_on_acetyl_chloride_finds_optimum() {
        // Table 2 row 1: the tool creates one workspace and matches the
        // experimentalists' mapping (runtime 136 units = .0136 sec).
        let env = molecules::acetyl_chloride();
        let placer = Placer::new(&env, PlacerConfig::with_threshold(Threshold::new(100.0)));
        let outcome = placer.place(&library::qec3_encoder()).unwrap();
        assert_eq!(outcome.subcircuit_count(), 1);
        assert_eq!(outcome.runtime.units(), 136.0);
        assert_eq!(outcome.swap_count(), 0);
    }

    #[test]
    fn qec5_on_crotonic_single_workspace() {
        // Table 2 row 2: one workspace on trans-crotonic acid.
        let env = molecules::trans_crotonic_acid();
        let t = env.connectivity_threshold().unwrap();
        let placer = Placer::new(&env, PlacerConfig::with_threshold(t));
        let outcome = placer.place(&library::qec5_benchmark()).unwrap();
        assert_eq!(outcome.subcircuit_count(), 1);
        assert_eq!(outcome.swap_count(), 0);
        assert!(outcome.runtime.units() > 0.0);
    }

    #[test]
    fn cat10_on_histidine_single_workspace() {
        // Table 2 row 3: the 10-qubit cat chain embeds whole in histidine.
        let env = molecules::histidine();
        let t = env.connectivity_threshold().unwrap();
        let placer = Placer::new(
            &env,
            PlacerConfig::with_threshold(t)
                .candidates(50)
                .lookahead(false),
        );
        let outcome = placer.place(&library::pseudo_cat(10)).unwrap();
        assert_eq!(outcome.subcircuit_count(), 1);
    }

    #[test]
    fn too_wide_circuit_rejected() {
        let env = molecules::acetyl_chloride();
        let placer = Placer::new(&env, PlacerConfig::default());
        assert!(matches!(
            placer.place(&library::phase_estimation()).unwrap_err(),
            PlaceError::CircuitTooLarge { .. }
        ));
    }

    #[test]
    fn pentafluoro_na_below_200() {
        // Table 3's N/A cells.
        let env = molecules::pentafluoro_iron();
        for t in [50.0, 100.0] {
            let placer = Placer::new(&env, PlacerConfig::with_threshold(Threshold::new(t)));
            assert_eq!(
                placer.place(&library::phase_estimation()).unwrap_err(),
                PlaceError::NoFastInteractions,
                "threshold {t}"
            );
        }
        let placer = Placer::new(&env, PlacerConfig::with_threshold(Threshold::new(200.0)));
        assert!(placer.place(&library::phase_estimation()).is_ok());
    }

    #[test]
    fn staged_circuit_recovers_hidden_stages() {
        // Table 4: #subcircuits == #hidden stages on an LNN chain.
        let staged = library::random::staged(8, 7);
        let env = molecules::lnn_chain_1khz(8);
        let placer = Placer::new(
            &env,
            PlacerConfig::with_threshold(Threshold::new(11.0))
                .candidates(8)
                .lookahead(false)
                .fine_tuning(0),
        );
        let outcome = placer.place(&staged.circuit).unwrap();
        assert_eq!(outcome.subcircuit_count(), staged.stage_count());
        assert!(outcome.swap_count() > 0, "stages require swapping");
    }

    #[test]
    fn multi_stage_schedule_is_consistent() {
        // phaseest on crotonic: several workspaces; placed schedule must
        // contain all circuit gates plus the swaps.
        let env = molecules::trans_crotonic_acid();
        let t = env.connectivity_threshold().unwrap();
        let placer = Placer::new(
            &env,
            PlacerConfig::with_threshold(t)
                .candidates(30)
                .lookahead(true),
        );
        let circuit = library::phase_estimation();
        let outcome = placer.place(&circuit).unwrap();
        assert!(outcome.subcircuit_count() > 1);
        assert_eq!(
            outcome.schedule.gate_count(),
            circuit.gate_count() + outcome.swap_count()
        );
        // Swap schedules really transform placements into one another.
        for pair in outcome.stages.windows(2) {
            let perm = pair[0].placement.permutation_to(&pair[1].placement);
            let pos = pair[1].swaps.simulate(env.qubit_count());
            for (v, d) in perm.iter().enumerate() {
                if let Some(d) = d {
                    assert_eq!(pos[v], *d, "value at p{v} must reach p{d}");
                }
            }
        }
    }

    #[test]
    fn empty_circuit_places_trivially() {
        let env = molecules::acetyl_chloride();
        let placer = Placer::new(&env, PlacerConfig::default());
        let outcome = placer.place(&Circuit::empty(2)).unwrap();
        assert_eq!(outcome.subcircuit_count(), 1);
        assert!(outcome.runtime.is_zero());
    }

    #[test]
    fn bridged_routing_below_connectivity_threshold() {
        // Crotonic at threshold 50: fast graph disconnected, but placement
        // still succeeds (swaps fall back to slow bridges), as in §6.
        let env = molecules::trans_crotonic_acid();
        let placer = Placer::new(
            &env,
            PlacerConfig::with_threshold(Threshold::new(50.0)).candidates(30),
        );
        let outcome = placer.place(&library::phase_estimation()).unwrap();
        assert!(outcome.subcircuit_count() >= 2);
    }

    #[test]
    fn lookahead_never_worse_than_greedy_here() {
        let env = molecules::trans_crotonic_acid();
        let t = Threshold::new(200.0);
        let greedy = Placer::new(
            &env,
            PlacerConfig::with_threshold(t)
                .lookahead(false)
                .candidates(30),
        )
        .place(&library::qft(6))
        .unwrap();
        let smart = Placer::new(
            &env,
            PlacerConfig::with_threshold(t)
                .lookahead(true)
                .candidates(30),
        )
        .place(&library::qft(6))
        .unwrap();
        assert!(
            smart.runtime.units() <= greedy.runtime.units() * 1.25,
            "lookahead {} vs greedy {}",
            smart.runtime.units(),
            greedy.runtime.units()
        );
    }
}
