//! The full placement pipeline (§5.1–§5.3): workspace extraction,
//! monomorphism-based basic placement, fine tuning, SWAP stages, and the
//! depth-2 lookahead of §5.3.

use qcp_circuit::{Circuit, Qubit, Time};
use qcp_env::{Environment, Threshold};
use qcp_graph::traversal::connected_components;
use qcp_graph::{vf2, Graph};

use crate::cost::{CostEngine, CostModel, Schedule};
use crate::embed::candidate_placements_budgeted;
use crate::finetune::fine_tune;
use crate::router::{route_permutation, RouterConfig, SwapSchedule};
use crate::strategy::{strategy_for, AnnealConfig, Resolution, SearchBudget, Strategy};
use crate::workspace::{extract_workspaces_budgeted, ExtractionOptions, Workspace};
use crate::{PlaceError, Placement, Result};

/// Placer configuration. The defaults mirror the paper's implementation:
/// `k = 100` candidate monomorphisms, depth-2 lookahead, fine tuning on,
/// overlapped cost model with the interaction-reuse cap.
#[derive(Clone, Debug)]
pub struct PlacerConfig {
    /// Fast-interaction threshold (§5 preprocessing).
    pub threshold: Threshold,
    /// Maximum monomorphisms considered per workspace (`k`).
    pub max_candidates: usize,
    /// Depth-2 lookahead combining current mapping + swap + next mapping
    /// costs (§5.3). Greedy selection when `false`.
    pub lookahead: bool,
    /// Fine-tuning sweeps per committed placement (0 disables).
    pub fine_tune_rounds: usize,
    /// Runtime cost model.
    pub cost_model: CostModel,
    /// SWAP-router options.
    pub router: RouterConfig,
    /// Workspace-extraction options (§7 extensions: gate commutation and
    /// workspace-size balancing).
    pub extraction: ExtractionOptions,
    /// Placement strategy: budgeted exact, greedy+anneal heuristic, or
    /// the hybrid fallback chain.
    pub strategy: Strategy,
    /// Search budget (node cap and/or deadline) for the strategy.
    pub budget: SearchBudget,
    /// Annealing knobs for the heuristic strategies.
    pub anneal: AnnealConfig,
}

impl Default for PlacerConfig {
    fn default() -> Self {
        PlacerConfig {
            threshold: Threshold::unbounded(),
            max_candidates: 100,
            lookahead: true,
            fine_tune_rounds: 2,
            cost_model: CostModel::default(),
            router: RouterConfig::default(),
            extraction: ExtractionOptions::default(),
            strategy: Strategy::default(),
            budget: SearchBudget::unlimited(),
            anneal: AnnealConfig::default(),
        }
    }
}

impl PlacerConfig {
    /// Default configuration at the given threshold.
    pub fn with_threshold(threshold: Threshold) -> Self {
        PlacerConfig {
            threshold,
            ..Default::default()
        }
    }

    /// Sets the candidate cap `k`.
    #[must_use]
    pub fn candidates(mut self, k: usize) -> Self {
        self.max_candidates = k.max(1);
        self
    }

    /// Enables or disables the depth-2 lookahead.
    #[must_use]
    pub fn lookahead(mut self, on: bool) -> Self {
        self.lookahead = on;
        self
    }

    /// Sets the number of fine-tuning sweeps.
    #[must_use]
    pub fn fine_tuning(mut self, rounds: usize) -> Self {
        self.fine_tune_rounds = rounds;
        self
    }

    /// Enables commutation-aware workspace extraction (§7 extension).
    #[must_use]
    pub fn commutation_aware(mut self, on: bool) -> Self {
        self.extraction.commutation_aware = on;
        self
    }

    /// Caps workspace size (trades computation depth against swap depth).
    #[must_use]
    pub fn max_workspace_gates(mut self, cap: usize) -> Self {
        self.extraction.max_gates = Some(cap.max(1));
        self
    }

    /// Selects the placement strategy.
    #[must_use]
    pub fn strategy(mut self, strategy: Strategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Sets the search budget for the strategy.
    #[must_use]
    pub fn budget(mut self, budget: SearchBudget) -> Self {
        self.budget = budget;
        self
    }
}

/// One committed stage of the placed computation: the SWAP circuit that
/// rearranges values (empty for the first stage) followed by a placed
/// subcircuit.
#[derive(Clone, Debug)]
pub struct Stage {
    /// Placement in force during this stage's subcircuit.
    pub placement: Placement,
    /// SWAP levels that produced this placement from the previous stage.
    pub swaps: SwapSchedule,
    /// The subcircuit (same width as the full circuit).
    pub subcircuit: Circuit,
}

/// The result of placing a circuit: `C1 E12 C2 E23 … Ct` with its overall
/// runtime.
#[derive(Clone, Debug)]
pub struct PlacementOutcome {
    /// The committed stages in execution order.
    pub stages: Vec<Stage>,
    /// The fully placed schedule (swap levels + subcircuit levels).
    pub schedule: Schedule,
    /// Total runtime under the configured cost model.
    pub runtime: Time,
    /// How the placement was obtained: exact search, heuristic fallback,
    /// or fallback forced by an exhausted search budget.
    pub resolution: Resolution,
}

impl PlacementOutcome {
    /// Number of subcircuits (the bracketed counts of Table 3 and the
    /// "# of Subcircuits" column of Table 4).
    pub fn subcircuit_count(&self) -> usize {
        self.stages.len()
    }

    /// Total number of SWAP gates inserted.
    pub fn swap_count(&self) -> usize {
        self.stages.iter().map(|s| s.swaps.swap_count()).sum()
    }

    /// The initial placement `P1` (every logical qubit's starting nucleus).
    ///
    /// # Panics
    ///
    /// Panics if the outcome has no stages (placing an empty circuit still
    /// yields one stage).
    #[allow(clippy::expect_used)]
    pub fn initial_placement(&self) -> &Placement {
        &self
            .stages
            .first()
            .expect("invariant: outcomes carry at least one stage")
            .placement
    }

    /// The final placement after the last stage.
    ///
    /// # Panics
    ///
    /// Panics if the outcome has no stages.
    #[allow(clippy::expect_used)]
    pub fn final_placement(&self) -> &Placement {
        &self
            .stages
            .last()
            .expect("invariant: outcomes carry at least one stage")
            .placement
    }
}

/// The quantum circuit placer.
///
/// ```
/// use qcp_circuit::library::qec3_encoder;
/// use qcp_env::{molecules, Threshold};
/// use qcp_place::{Placer, PlacerConfig};
///
/// let env = molecules::acetyl_chloride();
/// let placer = Placer::new(&env, PlacerConfig::with_threshold(Threshold::new(100.0)));
/// let outcome = placer.place(&qec3_encoder())?;
/// // The tool finds the experimentalists' optimal mapping: 136 units.
/// assert_eq!(outcome.runtime.units(), 136.0);
/// assert_eq!(outcome.subcircuit_count(), 1);
/// # Ok::<(), qcp_place::PlaceError>(())
/// ```
#[derive(Clone, Debug)]
pub struct Placer<'e> {
    env: &'e Environment,
    config: PlacerConfig,
    fast: Graph,
    routing: Graph,
}

impl<'e> Placer<'e> {
    /// Creates a placer for `env` under `config`.
    ///
    /// The routing graph is the fast graph plus, when the fast graph is
    /// disconnected, the cheapest available slow couplings bridging its
    /// components — §6 runs the tool below the connectivity threshold and
    /// observes "too much swapping" rather than failure, so swaps may fall
    /// back to slow interactions while *computational* gates never do.
    pub fn new(env: &'e Environment, config: PlacerConfig) -> Self {
        let fast = env.fast_graph(config.threshold);
        let routing = bridge_components(env, &fast);
        Placer {
            env,
            config,
            fast,
            routing,
        }
    }

    /// The environment this placer targets.
    pub fn environment(&self) -> &'e Environment {
        self.env
    }

    /// The fast-interaction graph in force.
    pub fn fast_graph(&self) -> &Graph {
        &self.fast
    }

    /// The routing graph: the fast graph plus any bridge couplings.
    pub fn routing_graph(&self) -> &Graph {
        &self.routing
    }

    /// The configuration in force.
    pub fn config(&self) -> &PlacerConfig {
        &self.config
    }

    /// Places `circuit` with the configured [`Strategy`] and
    /// [`SearchBudget`], producing the staged computation and its runtime.
    ///
    /// # Errors
    ///
    /// * [`PlaceError::CircuitTooLarge`] if the circuit is wider than the
    ///   environment;
    /// * [`PlaceError::NoFastInteractions`] if the threshold disallows all
    ///   interactions but the circuit has two-qubit gates (Table 3's N/A);
    /// * [`PlaceError::RoutingImpossible`] if values cannot be moved
    ///   between stages even via bridge couplings;
    /// * [`PlaceError::BudgetExhausted`] if the budget trips under
    ///   [`Strategy::Exact`] (the anytime strategies catch it instead).
    pub fn place(&self, circuit: &Circuit) -> Result<PlacementOutcome> {
        strategy_for(self.config.strategy).place(self, circuit)
    }

    /// The budgeted exact pipeline, regardless of the configured strategy.
    ///
    /// # Errors
    ///
    /// As [`place`](Placer::place) under [`Strategy::Exact`].
    pub fn place_exact(&self, circuit: &Circuit) -> Result<PlacementOutcome> {
        let mut meter = self.config.budget.start();
        self.place_exact_with(circuit, &mut meter)
    }

    /// The exact pipeline charging an externally owned budget meter (the
    /// hybrid strategy shares one meter between the exact attempt and the
    /// heuristic fallback).
    pub(crate) fn place_exact_with(
        &self,
        circuit: &Circuit,
        meter: &mut vf2::Budget,
    ) -> Result<PlacementOutcome> {
        if !meter.consume(1) {
            return Err(budget_error(meter));
        }
        let n = circuit.qubit_count();
        let m = self.env.qubit_count();
        if n > m {
            return Err(PlaceError::CircuitTooLarge {
                qubits: n,
                nuclei: m,
            });
        }
        let workspaces =
            extract_workspaces_budgeted(circuit, &self.fast, self.config.extraction, meter)?;

        let mut engine = CostEngine::new(self.env, self.config.cost_model);
        // Fork arena: two scratch engines reset per scoring call instead
        // of cloning a fresh CostEngine (times/last-pair/runs buffers) for
        // every candidate and every lookahead continuation.
        let mut fork = CostEngine::new(self.env, self.config.cost_model);
        let mut fork2 = CostEngine::new(self.env, self.config.cost_model);
        let mut schedule = Schedule::new();
        let mut stages: Vec<Stage> = Vec::new();
        let mut previous: Option<Placement> = None;

        // The lookahead below enumerates workspace i+1's candidates at
        // iteration i and again at iteration i+1: the *monomorphisms* are
        // placement-independent (§5.3: "the sets of monomorphisms … are
        // equal"), but their completions to total placements park idle
        // qubits relative to the previous placement, which changes when
        // workspace i commits — so the sets cannot be reused verbatim.
        // Each enumeration charges the budget meter for the work it does.
        for (wi, ws) in workspaces.iter().enumerate() {
            let candidates = candidate_placements_budgeted(
                &ws.interaction,
                &self.fast,
                previous.as_ref(),
                self.config.max_candidates,
                meter,
            )?;
            if candidates.is_empty() {
                // extract_workspaces guarantees embeddability.
                return Err(PlaceError::InvalidPlacement {
                    message: "workspace unexpectedly has no embedding".into(),
                });
            }

            // Lookahead: raw candidates for the next workspace.
            let lookahead_set = if self.config.lookahead {
                workspaces.get(wi + 1).map(|next| {
                    candidate_placements_budgeted(
                        &next.interaction,
                        &self.fast,
                        previous.as_ref(),
                        self.config.max_candidates,
                        meter,
                    )
                })
            } else {
                None
            };
            let lookahead_set = match lookahead_set {
                Some(Ok(c)) => Some(c),
                Some(Err(e)) => return Err(e),
                None => None,
            };

            // Score every candidate. Each scored continuation charges the
            // budget meter — scoring is the other half of the exact
            // pipeline's cost besides the VF2 search itself.
            let mut best: Option<(usize, f64, SwapSchedule)> = None;
            for (ci, cand) in candidates.iter().enumerate() {
                if !meter.consume(1) {
                    return Err(budget_error(meter));
                }
                let Ok((cost, swaps)) =
                    self.score_into(&engine, previous.as_ref(), cand, ws, &mut fork)
                else {
                    continue; // unroutable candidate
                };
                let cost = match &lookahead_set {
                    None => cost,
                    Some(next_cands) => {
                        // min over next-stage continuations (§5.3's C_{i,j});
                        // `fork` holds the post-candidate state.
                        let next_ws = &workspaces[wi + 1];
                        let mut best_next = f64::INFINITY;
                        for next_cand in next_cands {
                            if !meter.consume(1) {
                                return Err(budget_error(meter));
                            }
                            if let Ok((c2, _)) =
                                self.score_into(&fork, Some(cand), next_cand, next_ws, &mut fork2)
                            {
                                best_next = best_next.min(c2);
                            }
                        }
                        if best_next.is_finite() {
                            best_next
                        } else {
                            cost
                        }
                    }
                };
                if best.as_ref().is_none_or(|(_, bc, _)| cost < *bc) {
                    best = Some((ci, cost, swaps));
                }
            }
            let (best_idx, _, _) = best.ok_or(PlaceError::RoutingImpossible {
                stuck: qcp_env::PhysicalQubit::new(0),
            })?;
            let mut chosen = candidates[best_idx].clone();

            // Fine tuning (§5.1) on the active qubits of this workspace.
            if self.config.fine_tune_rounds > 0 {
                let movable: Vec<Qubit> = ws
                    .interaction
                    .nodes()
                    .filter(|v| ws.interaction.degree(*v) > 0)
                    .map(|v| Qubit::new(v.index()))
                    .collect();
                if !movable.is_empty() {
                    let result = fine_tune(
                        chosen,
                        &movable,
                        |pl| {
                            // An exhausted budget turns remaining probes
                            // into instant infinities, so the sweep drains
                            // quickly; the post-check below converts the
                            // exhaustion into the strict exact failure.
                            if !meter.consume(1) {
                                return f64::INFINITY;
                            }
                            match self.score_into(&engine, previous.as_ref(), pl, ws, &mut fork) {
                                Ok((c, _)) => c,
                                Err(_) => f64::INFINITY,
                            }
                        },
                        self.config.fine_tune_rounds,
                    );
                    chosen = result.placement;
                    if meter.is_exhausted() {
                        return Err(budget_error(meter));
                    }
                }
            }

            // Commit: swap stage + placed subcircuit.
            let (_, swaps) = self.score_into(&engine, previous.as_ref(), &chosen, ws, &mut fork)?;
            std::mem::swap(&mut engine, &mut fork);
            let swap_schedule = swaps.to_schedule();
            schedule.extend(&swap_schedule);
            let placed = Schedule::from_placed_circuit(&ws.circuit, &chosen);
            schedule.extend(&placed);
            stages.push(Stage {
                placement: chosen.clone(),
                swaps,
                subcircuit: ws.circuit.clone(),
            });
            previous = Some(chosen);
        }

        let runtime = schedule.runtime(self.env, &self.config.cost_model);
        Ok(PlacementOutcome {
            stages,
            schedule,
            runtime,
            resolution: Resolution::Exact,
        })
    }

    /// Scores one candidate continuation: swap from `previous` to `cand`,
    /// then run `ws` under `cand`, evaluated on `fork` (reset to `base`'s
    /// state first, reusing its buffers). Returns the resulting makespan
    /// and the swap schedule; `fork` is left holding the post-candidate
    /// state for lookahead continuations or commitment.
    fn score_into(
        &self,
        base: &CostEngine<'e>,
        previous: Option<&Placement>,
        cand: &Placement,
        ws: &Workspace,
        fork: &mut CostEngine<'e>,
    ) -> Result<(f64, SwapSchedule)> {
        let swaps = match previous {
            None => SwapSchedule::default(),
            Some(prev) if prev.same_assignment(cand) => SwapSchedule::default(),
            Some(prev) => {
                let perm = prev.permutation_to(cand);
                route_permutation(&self.routing, &perm, &self.config.router)?
            }
        };
        fork.copy_from(base);
        fork.apply_swap_levels(swaps.levels());
        fork.apply_placed_circuit(&ws.circuit, cand);
        Ok((fork.makespan().units(), swaps))
    }
}

/// The strict exact failure once a budget meter has tripped.
fn budget_error(meter: &vf2::Budget) -> PlaceError {
    PlaceError::BudgetExhausted {
        nodes: meter.nodes_visited(),
    }
}

/// Adds the cheapest slow couplings needed to connect the components of
/// the fast graph (a minimum-bottleneck spanning forest over the component
/// quotient). Swaps across these *bridges* pay the true slow-coupling
/// delay.
fn bridge_components(env: &Environment, fast: &Graph) -> Graph {
    let comps = connected_components(fast);
    if comps.len() <= 1 {
        return fast.clone();
    }
    let n = fast.node_count();
    let mut comp_of = vec![0usize; n];
    for (ci, comp) in comps.iter().enumerate() {
        for &v in comp {
            comp_of[v.index()] = ci;
        }
    }
    // All inter-component couplings, cheapest first.
    let mut edges: Vec<(f64, usize, usize)> = Vec::new();
    for i in 0..n {
        for j in i + 1..n {
            if comp_of[i] != comp_of[j] {
                let w = env.weight_units(
                    qcp_env::PhysicalQubit::new(i),
                    qcp_env::PhysicalQubit::new(j),
                );
                if w.is_finite() {
                    edges.push((w, i, j));
                }
            }
        }
    }
    edges.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)).then(a.2.cmp(&b.2)));
    let mut routing = fast.clone();
    let mut parent: Vec<usize> = (0..comps.len()).collect();
    fn find(parent: &mut [usize], mut x: usize) -> usize {
        while parent[x] != x {
            parent[x] = parent[parent[x]];
            x = parent[x];
        }
        x
    }
    for (w, i, j) in edges {
        let (ri, rj) = (find(&mut parent, comp_of[i]), find(&mut parent, comp_of[j]));
        if ri != rj {
            parent[ri] = rj;
            // The union-find guard means this edge joins two components,
            // so it cannot already be present.
            let _ = routing.add_edge(qcp_graph::NodeId::new(i), qcp_graph::NodeId::new(j), w);
        }
    }
    routing
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcp_circuit::library;
    use qcp_env::molecules;

    #[test]
    fn qec3_on_acetyl_chloride_finds_optimum() {
        // Table 2 row 1: the tool creates one workspace and matches the
        // experimentalists' mapping (runtime 136 units = .0136 sec).
        let env = molecules::acetyl_chloride();
        let placer = Placer::new(&env, PlacerConfig::with_threshold(Threshold::new(100.0)));
        let outcome = placer.place(&library::qec3_encoder()).unwrap();
        assert_eq!(outcome.subcircuit_count(), 1);
        assert_eq!(outcome.runtime.units(), 136.0);
        assert_eq!(outcome.swap_count(), 0);
    }

    #[test]
    fn qec5_on_crotonic_single_workspace() {
        // Table 2 row 2: one workspace on trans-crotonic acid.
        let env = molecules::trans_crotonic_acid();
        let t = env.connectivity_threshold().unwrap();
        let placer = Placer::new(&env, PlacerConfig::with_threshold(t));
        let outcome = placer.place(&library::qec5_benchmark()).unwrap();
        assert_eq!(outcome.subcircuit_count(), 1);
        assert_eq!(outcome.swap_count(), 0);
        assert!(outcome.runtime.units() > 0.0);
    }

    #[test]
    fn cat10_on_histidine_single_workspace() {
        // Table 2 row 3: the 10-qubit cat chain embeds whole in histidine.
        let env = molecules::histidine();
        let t = env.connectivity_threshold().unwrap();
        let placer = Placer::new(
            &env,
            PlacerConfig::with_threshold(t)
                .candidates(50)
                .lookahead(false),
        );
        let outcome = placer.place(&library::pseudo_cat(10)).unwrap();
        assert_eq!(outcome.subcircuit_count(), 1);
    }

    #[test]
    fn too_wide_circuit_rejected() {
        let env = molecules::acetyl_chloride();
        let placer = Placer::new(&env, PlacerConfig::default());
        assert!(matches!(
            placer.place(&library::phase_estimation()).unwrap_err(),
            PlaceError::CircuitTooLarge { .. }
        ));
    }

    #[test]
    fn pentafluoro_na_below_200() {
        // Table 3's N/A cells.
        let env = molecules::pentafluoro_iron();
        for t in [50.0, 100.0] {
            let placer = Placer::new(&env, PlacerConfig::with_threshold(Threshold::new(t)));
            assert_eq!(
                placer.place(&library::phase_estimation()).unwrap_err(),
                PlaceError::NoFastInteractions,
                "threshold {t}"
            );
        }
        let placer = Placer::new(&env, PlacerConfig::with_threshold(Threshold::new(200.0)));
        assert!(placer.place(&library::phase_estimation()).is_ok());
    }

    #[test]
    fn staged_circuit_recovers_hidden_stages() {
        // Table 4: #subcircuits == #hidden stages on an LNN chain.
        let staged = library::random::staged(8, 7);
        let env = molecules::lnn_chain_1khz(8);
        let placer = Placer::new(
            &env,
            PlacerConfig::with_threshold(Threshold::new(11.0))
                .candidates(8)
                .lookahead(false)
                .fine_tuning(0),
        );
        let outcome = placer.place(&staged.circuit).unwrap();
        assert_eq!(outcome.subcircuit_count(), staged.stage_count());
        assert!(outcome.swap_count() > 0, "stages require swapping");
    }

    #[test]
    fn multi_stage_schedule_is_consistent() {
        // phaseest on crotonic: several workspaces; placed schedule must
        // contain all circuit gates plus the swaps.
        let env = molecules::trans_crotonic_acid();
        let t = env.connectivity_threshold().unwrap();
        let placer = Placer::new(
            &env,
            PlacerConfig::with_threshold(t)
                .candidates(30)
                .lookahead(true),
        );
        let circuit = library::phase_estimation();
        let outcome = placer.place(&circuit).unwrap();
        assert!(outcome.subcircuit_count() > 1);
        assert_eq!(
            outcome.schedule.gate_count(),
            circuit.gate_count() + outcome.swap_count()
        );
        // Swap schedules really transform placements into one another.
        for pair in outcome.stages.windows(2) {
            let perm = pair[0].placement.permutation_to(&pair[1].placement);
            let pos = pair[1].swaps.simulate(env.qubit_count());
            for (v, d) in perm.iter().enumerate() {
                if let Some(d) = d {
                    assert_eq!(pos[v], *d, "value at p{v} must reach p{d}");
                }
            }
        }
    }

    #[test]
    fn empty_circuit_places_trivially() {
        let env = molecules::acetyl_chloride();
        let placer = Placer::new(&env, PlacerConfig::default());
        let outcome = placer.place(&Circuit::empty(2)).unwrap();
        assert_eq!(outcome.subcircuit_count(), 1);
        assert!(outcome.runtime.is_zero());
    }

    #[test]
    fn bridged_routing_below_connectivity_threshold() {
        // Crotonic at threshold 50: fast graph disconnected, but placement
        // still succeeds (swaps fall back to slow bridges), as in §6.
        let env = molecules::trans_crotonic_acid();
        let placer = Placer::new(
            &env,
            PlacerConfig::with_threshold(Threshold::new(50.0)).candidates(30),
        );
        let outcome = placer.place(&library::phase_estimation()).unwrap();
        assert!(outcome.subcircuit_count() >= 2);
    }

    #[test]
    fn lookahead_never_worse_than_greedy_here() {
        let env = molecules::trans_crotonic_acid();
        let t = Threshold::new(200.0);
        let greedy = Placer::new(
            &env,
            PlacerConfig::with_threshold(t)
                .lookahead(false)
                .candidates(30),
        )
        .place(&library::qft(6))
        .unwrap();
        let smart = Placer::new(
            &env,
            PlacerConfig::with_threshold(t)
                .lookahead(true)
                .candidates(30),
        )
        .place(&library::qft(6))
        .unwrap();
        assert!(
            smart.runtime.units() <= greedy.runtime.units() * 1.25,
            "lookahead {} vs greedy {}",
            smart.runtime.units(),
            greedy.runtime.units()
        );
    }
}
