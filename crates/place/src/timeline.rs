//! Timed pulse sequences.
//!
//! The last step before execution in the NMR workflow the paper describes
//! (§3: "the timing optimization is built into a compiler that takes in a
//! circuit and a refocusing scheme and outputs a sequence of (timed)
//! pulses ready to be executed"). Given a placed [`Schedule`] and an
//! environment, [`Timeline::compute`] assigns every gate its start and
//! finish instant under the runtime dynamic program and exposes the
//! result as an inspectable, renderable event list — the library's
//! equivalent of that pulse program.

use qcp_circuit::Time;
use qcp_env::{Environment, PhysicalQubit};

use crate::cost::{CostEngine, CostModel, ExecutionModel, Schedule};

/// One timed gate instance.
#[derive(Clone, Debug, PartialEq)]
pub struct TimedGate {
    /// First (or only) nucleus.
    pub a: PhysicalQubit,
    /// Second nucleus for couplings.
    pub b: Option<PhysicalQubit>,
    /// Start instant.
    pub start: Time,
    /// Finish instant (`start` for zero-duration frame changes).
    pub finish: Time,
    /// Index of the schedule level the gate came from.
    pub level: usize,
}

impl TimedGate {
    /// Duration of the event.
    pub fn duration(&self) -> Time {
        self.finish - self.start
    }

    /// Returns `true` if the gate occupies nucleus `v`.
    pub fn occupies(&self, v: PhysicalQubit) -> bool {
        self.a == v || self.b == Some(v)
    }
}

/// A fully timed pulse sequence for one environment.
#[derive(Clone, Debug, Default)]
pub struct Timeline {
    events: Vec<TimedGate>,
    makespan: Time,
    qubit_count: usize,
}

impl Timeline {
    /// Times every gate of `schedule` on `env` under `model`.
    ///
    /// The per-gate times replay exactly the runtime dynamic program of
    /// §3, so `timeline.makespan()` always equals
    /// [`Schedule::runtime`](crate::Schedule::runtime).
    pub fn compute(schedule: &Schedule, env: &Environment, model: &CostModel) -> Timeline {
        let mut engine = CostEngine::new(env, *model);
        let mut events = Vec::with_capacity(schedule.gate_count());
        for (li, level) in schedule.levels().iter().enumerate() {
            if model.execution == ExecutionModel::Leveled {
                engine.barrier();
            }
            for g in level {
                let (start, finish) = engine.apply_gate(g);
                events.push(TimedGate {
                    a: g.a,
                    b: g.b,
                    start: Time::from_units(start),
                    finish: Time::from_units(finish),
                    level: li,
                });
            }
        }
        Timeline {
            events,
            makespan: engine.makespan(),
            qubit_count: env.qubit_count(),
        }
    }

    /// The timed events in schedule order.
    pub fn events(&self) -> &[TimedGate] {
        &self.events
    }

    /// Finish time of the busiest nucleus.
    pub fn makespan(&self) -> Time {
        self.makespan
    }

    /// Number of nuclei the timeline spans.
    pub fn qubit_count(&self) -> usize {
        self.qubit_count
    }

    /// Events occupying nucleus `v`, in start order.
    pub fn per_qubit(&self, v: PhysicalQubit) -> Vec<&TimedGate> {
        self.events.iter().filter(|e| e.occupies(v)).collect()
    }

    /// Fraction of the makespan each nucleus spends busy (0 for an empty
    /// timeline).
    pub fn utilization(&self) -> Vec<f64> {
        let total = self.makespan.units();
        (0..self.qubit_count)
            .map(|i| {
                if total == 0.0 {
                    return 0.0;
                }
                let busy: f64 = self
                    .per_qubit(PhysicalQubit::new(i))
                    .iter()
                    .map(|e| e.duration().units())
                    .sum();
                busy / total
            })
            .collect()
    }

    /// Renders a textual Gantt chart with `width` columns; nuclei are
    /// labelled by `names` (falling back to `p{i}`). Busy time shows as
    /// `#` for couplings and `=` for pulses.
    pub fn gantt(&self, names: &[String], width: usize) -> String {
        let width = width.max(10);
        let total = self.makespan.units();
        let mut out = String::new();
        for i in 0..self.qubit_count {
            let default = format!("p{i}");
            let name = names.get(i).unwrap_or(&default);
            let mut row = vec![b'.'; width];
            if total > 0.0 {
                for e in self.per_qubit(PhysicalQubit::new(i)) {
                    let s = ((e.start.units() / total) * width as f64).floor() as usize;
                    let f = ((e.finish.units() / total) * width as f64).ceil() as usize;
                    let ch = if e.b.is_some() { b'#' } else { b'=' };
                    for cell in row.iter_mut().take(f.min(width)).skip(s.min(width)) {
                        *cell = ch;
                    }
                }
            }
            out.push_str(&format!(
                "{:>6} |{}|\n",
                name,
                String::from_utf8_lossy(&row)
            ));
        }
        out.push_str(&format!("makespan: {}\n", self.makespan));
        out
    }

    /// Validates internal consistency: per-nucleus events never overlap
    /// and finishes never precede starts. Used by tests and debug builds.
    pub fn is_consistent(&self) -> bool {
        for e in &self.events {
            if e.finish < e.start {
                return false;
            }
        }
        for i in 0..self.qubit_count {
            let evs = self.per_qubit(PhysicalQubit::new(i));
            for w in evs.windows(2) {
                if w[1].start.units() + 1e-9 < w[0].finish.units() {
                    return false;
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::PlacedGate;
    use crate::{Placer, PlacerConfig};
    use qcp_circuit::library;
    use qcp_env::{molecules, Threshold};

    fn p(i: usize) -> PhysicalQubit {
        PhysicalQubit::new(i)
    }

    #[test]
    fn makespan_matches_runtime_dp() {
        let env = molecules::acetyl_chloride();
        let circuit = library::qec3_encoder();
        let placer = Placer::new(&env, PlacerConfig::with_threshold(Threshold::new(100.0)));
        let outcome = placer.place(&circuit).unwrap();
        let model = CostModel::overlapped();
        let tl = Timeline::compute(&outcome.schedule, &env, &model);
        assert_eq!(tl.makespan().units(), outcome.runtime.units());
        assert!(tl.is_consistent());
        assert_eq!(tl.events().len(), outcome.schedule.gate_count());
    }

    #[test]
    fn event_times_follow_table_1() {
        // The 770-unit mapping: the ZZab coupling must run 8..680.
        let env = molecules::acetyl_chloride();
        let circuit = library::qec3_encoder();
        let placement = crate::Placement::new(vec![p(0), p(2), p(1)], 3).unwrap();
        let schedule = Schedule::from_placed_circuit(&circuit, &placement);
        let tl = Timeline::compute(&schedule, &env, &CostModel::overlapped());
        let zz_ab = tl
            .events()
            .iter()
            .find(|e| e.b.is_some() && e.occupies(p(0)))
            .expect("coupling on M present");
        assert_eq!(zz_ab.start.units(), 8.0);
        assert_eq!(zz_ab.finish.units(), 680.0);
    }

    #[test]
    fn free_gates_are_instantaneous() {
        let env = molecules::acetyl_chloride();
        let mut s = Schedule::new();
        s.push_level(vec![PlacedGate::one(p(0), 0.0)]);
        let tl = Timeline::compute(&s, &env, &CostModel::overlapped());
        assert_eq!(tl.events()[0].duration().units(), 0.0);
        assert!(tl.makespan().is_zero());
    }

    #[test]
    fn per_qubit_and_utilization() {
        let env = molecules::lnn_chain(3, 10.0);
        let mut s = Schedule::new();
        s.push_level(vec![PlacedGate::two(p(0), p(1), 1.0)]);
        s.push_level(vec![PlacedGate::two(p(1), p(2), 1.0)]);
        let tl = Timeline::compute(&s, &env, &CostModel::overlapped());
        assert_eq!(tl.per_qubit(p(1)).len(), 2);
        assert_eq!(tl.per_qubit(p(0)).len(), 1);
        let u = tl.utilization();
        assert!((u[1] - 1.0).abs() < 1e-9, "middle qubit always busy");
        assert!((u[0] - 0.5).abs() < 1e-9);
        assert!(tl.is_consistent());
    }

    #[test]
    fn gantt_renders_rows() {
        let env = molecules::acetyl_chloride();
        let circuit = library::qec3_encoder();
        let placer = Placer::new(&env, PlacerConfig::with_threshold(Threshold::new(100.0)));
        let outcome = placer.place(&circuit).unwrap();
        let tl = Timeline::compute(&outcome.schedule, &env, &CostModel::overlapped());
        let g = tl.gantt(&env.nucleus_names(), 40);
        assert_eq!(g.lines().count(), 4); // 3 nuclei + makespan
        assert!(g.contains('#'), "couplings visible");
        assert!(g.contains("makespan: 0.0136 sec"));
    }

    #[test]
    fn leveled_timeline_serializes_levels() {
        let env = molecules::lnn_chain(4, 10.0);
        let mut s = Schedule::new();
        s.push_level(vec![PlacedGate::two(p(0), p(1), 1.0)]);
        s.push_level(vec![PlacedGate::two(p(2), p(3), 1.0)]);
        let tl = Timeline::compute(&s, &env, &CostModel::leveled());
        // Second level starts only after the first finishes.
        assert_eq!(tl.events()[1].start.units(), 10.0);
        let tl_overlap = Timeline::compute(&s, &env, &CostModel::overlapped());
        assert_eq!(tl_overlap.events()[1].start.units(), 0.0);
    }

    #[test]
    fn swap_stages_visible_in_timeline() {
        let env = molecules::trans_crotonic_acid();
        let t = Threshold::new(200.0);
        let placer = Placer::new(&env, PlacerConfig::with_threshold(t));
        let outcome = placer.place(&library::qft(6)).unwrap();
        assert!(outcome.swap_count() > 0);
        let tl = Timeline::compute(&outcome.schedule, &env, &CostModel::overlapped());
        assert!(tl.is_consistent());
        assert_eq!(tl.makespan().units(), outcome.runtime.units());
    }
}
