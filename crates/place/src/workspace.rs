//! Workspace (subcircuit) extraction — the "basic placement" stage of §5.1.
//!
//! The algorithm reads gates off the circuit into a workspace *as long as
//! the two-qubit gates seen so far can be aligned along the fastest
//! interactions* of the physical environment, i.e. while the workspace's
//! interaction graph still has a monomorphism into the fast graph. The
//! first gate that breaks embeddability closes the workspace and opens the
//! next one. Single-qubit gates never break embeddability.

use qcp_circuit::{Circuit, Gate};
use qcp_graph::vf2::{self, MonomorphismFinder};
use qcp_graph::{Graph, NodeId};

use crate::{PlaceError, Result};

/// Options controlling workspace extraction.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ExtractionOptions {
    /// Hoist later gates that *commute* with every gate blocked so far
    /// into the current workspace — the gate-commutation transformation
    /// the paper suggests as further research (§7). Off by default
    /// (matching the paper's evaluated pipeline).
    pub commutation_aware: bool,
    /// Close a workspace after this many gates even if more would embed —
    /// a knob for the computation-depth vs swap-depth balance the paper's
    /// conclusions call for ("right now, our method is greedy in that the
    /// computational stage is formed to be as large as possible").
    /// `None` keeps the paper's greedy-maximal behaviour.
    pub max_gates: Option<usize>,
}

/// A maximal embeddable subcircuit plus its interaction graph.
#[derive(Clone, Debug)]
pub struct Workspace {
    /// The subcircuit (same logical width as the parent circuit).
    pub circuit: Circuit,
    /// Flat gate index (over the parent's level-order gate sequence) of
    /// the first gate in this workspace.
    pub first_gate: usize,
    /// One past the last gate.
    pub last_gate: usize,
    /// Interaction graph over all parent qubits; edges only for pairs
    /// coupled inside this workspace.
    pub interaction: Graph,
}

impl Workspace {
    /// Number of gates in the workspace.
    pub fn gate_count(&self) -> usize {
        self.last_gate - self.first_gate
    }
}

/// Splits `circuit` into maximal subcircuits whose interaction graphs
/// embed (as subgraph monomorphisms) into `fast`, using default
/// [`ExtractionOptions`] (the paper's greedy-maximal scheme).
///
/// # Errors
///
/// Returns [`PlaceError::NoFastInteractions`] if some two-qubit gate
/// cannot be aligned even alone — i.e. the fast graph has no edges at all
/// (the paper's N/A case).
pub fn extract_workspaces(circuit: &Circuit, fast: &Graph) -> Result<Vec<Workspace>> {
    extract_workspaces_with(circuit, fast, ExtractionOptions::default())
}

/// [`extract_workspaces`] with explicit [`ExtractionOptions`].
///
/// With `commutation_aware` set, a gate that would break the current
/// workspace is *deferred* instead of closing it, and later gates that
/// commute with every deferred gate may still be hoisted in; deferred
/// gates seed the next workspace in their original order. The
/// transformation is sound: a gate only ever jumps over gates it commutes
/// with.
///
/// # Errors
///
/// As [`extract_workspaces`].
pub fn extract_workspaces_with(
    circuit: &Circuit,
    fast: &Graph,
    options: ExtractionOptions,
) -> Result<Vec<Workspace>> {
    extract_workspaces_budgeted(circuit, fast, options, &mut vf2::Budget::unlimited())
}

/// [`extract_workspaces_with`] under a search budget: every embeddability
/// check charges the shared `meter`, and extraction aborts with
/// [`PlaceError::BudgetExhausted`] once it trips.
///
/// # Errors
///
/// As [`extract_workspaces`], plus [`PlaceError::BudgetExhausted`].
pub fn extract_workspaces_budgeted(
    circuit: &Circuit,
    fast: &Graph,
    options: ExtractionOptions,
    meter: &mut vf2::Budget,
) -> Result<Vec<Workspace>> {
    if options.commutation_aware {
        return extract_commutation_aware(circuit, fast, options, meter);
    }
    extract_contiguous(circuit, fast, options, meter)
}

fn extract_contiguous(
    circuit: &Circuit,
    fast: &Graph,
    options: ExtractionOptions,
    meter: &mut vf2::Budget,
) -> Result<Vec<Workspace>> {
    let n = circuit.qubit_count();
    let gates: Vec<Gate> = circuit.gates().cloned().collect();
    let mut out: Vec<Workspace> = Vec::new();

    let mut start = 0usize;
    let mut edges: Vec<(usize, usize)> = Vec::new(); // current workspace interactions
    let mut have_edge = std::collections::HashSet::<(usize, usize)>::new();

    let close = |out: &mut Vec<Workspace>,
                 start: usize,
                 end: usize,
                 edges: &[(usize, usize)],
                 gates: &[Gate]| {
        #[allow(clippy::expect_used)]
        let sub = Circuit::from_gates(n, gates[start..end].iter().cloned())
            .expect("invariant: subcircuit gates fit the parent width");
        let mut interaction = Graph::new(n);
        for &(a, b) in edges {
            // The edge list was deduplicated as it was collected.
            let _ = interaction.add_edge(NodeId::new(a), NodeId::new(b), 1.0);
        }
        out.push(Workspace {
            circuit: sub,
            first_gate: start,
            last_gate: end,
            interaction,
        });
    };

    for (i, gate) in gates.iter().enumerate() {
        if let Some(cap) = options.max_gates {
            if i - start >= cap && i > start {
                close(&mut out, start, i, &edges, &gates);
                start = i;
                edges.clear();
                have_edge.clear();
            }
        }
        let Some((qa, qb)) = gate.coupling() else {
            continue;
        };
        let key = (qa.index().min(qb.index()), qa.index().max(qb.index()));
        if have_edge.contains(&key) {
            continue; // same interaction, still embeddable
        }
        let mut tentative = edges.clone();
        tentative.push(key);
        if embeds(&tentative, n, fast, meter)? {
            edges = tentative;
            have_edge.insert(key);
            continue;
        }
        // The new edge breaks alignment. If the gate cannot even start a
        // fresh workspace, the threshold kills the computation.
        if !embeds(&[key], n, fast, meter)? {
            return Err(PlaceError::NoFastInteractions);
        }
        close(&mut out, start, i, &edges, &gates);
        start = i;
        edges = vec![key];
        have_edge.clear();
        have_edge.insert(key);
    }
    close(&mut out, start, gates.len(), &edges, &gates);
    Ok(out)
}

/// Commutation-aware extraction (§7 extension): deferred gates hold the
/// next workspace open while commuting successors are hoisted in.
fn extract_commutation_aware(
    circuit: &Circuit,
    fast: &Graph,
    options: ExtractionOptions,
    meter: &mut vf2::Budget,
) -> Result<Vec<Workspace>> {
    let n = circuit.qubit_count();
    let mut remaining: Vec<(usize, Gate)> = circuit.gates().cloned().enumerate().collect();
    let mut out: Vec<Workspace> = Vec::new();

    while !remaining.is_empty() {
        let mut current: Vec<(usize, Gate)> = Vec::new();
        let mut deferred: Vec<(usize, Gate)> = Vec::new();
        let mut edges: Vec<(usize, usize)> = Vec::new();
        let mut have_edge = std::collections::HashSet::<(usize, usize)>::new();

        for (idx, gate) in remaining.drain(..) {
            let full = options
                .max_gates
                .is_some_and(|cap| current.len() >= cap && !current.is_empty());
            let commutes = deferred.iter().all(|(_, d)| gate.commutes_with(d));
            if full || !commutes {
                deferred.push((idx, gate));
                continue;
            }
            match gate.coupling() {
                None => current.push((idx, gate)),
                Some((qa, qb)) => {
                    let key = (qa.index().min(qb.index()), qa.index().max(qb.index()));
                    if have_edge.contains(&key) {
                        current.push((idx, gate));
                        continue;
                    }
                    let mut tentative = edges.clone();
                    tentative.push(key);
                    if embeds(&tentative, n, fast, meter)? {
                        edges = tentative;
                        have_edge.insert(key);
                        current.push((idx, gate));
                    } else {
                        if !embeds(&[key], n, fast, meter)? {
                            return Err(PlaceError::NoFastInteractions);
                        }
                        deferred.push((idx, gate));
                    }
                }
            }
        }
        if current.is_empty() {
            // Every gate was deferred against an unsatisfiable head; the
            // head itself must have been embeddable (checked above), so
            // this cannot happen — defend anyway.
            return Err(PlaceError::NoFastInteractions);
        }
        // `current` was checked non-empty above.
        let first = current.iter().map(|&(i, _)| i).min().unwrap_or(0);
        let last = current.iter().map(|&(i, _)| i).max().unwrap_or(0) + 1;
        #[allow(clippy::expect_used)]
        let sub = Circuit::from_gates(n, current.iter().map(|(_, g)| g.clone()))
            .expect("invariant: subcircuit gates fit the parent width");
        let mut interaction = Graph::new(n);
        for &(a, b) in &edges {
            // The edge list was deduplicated as it was collected.
            let _ = interaction.add_edge(NodeId::new(a), NodeId::new(b), 1.0);
        }
        out.push(Workspace {
            circuit: sub,
            first_gate: first,
            last_gate: last,
            interaction,
        });
        remaining = deferred;
    }
    if out.is_empty() {
        // An empty circuit still yields one (empty) workspace.
        out.push(Workspace {
            circuit: Circuit::empty(n),
            first_gate: 0,
            last_gate: 0,
            interaction: Graph::new(n),
        });
    }
    Ok(out)
}

/// Does the interaction pattern embed into the fast graph? Charges the
/// budget meter; an exhausted meter makes the answer unknowable and the
/// extraction fails with [`PlaceError::BudgetExhausted`].
fn embeds(
    edges: &[(usize, usize)],
    n_qubits: usize,
    fast: &Graph,
    meter: &mut vf2::Budget,
) -> Result<bool> {
    if edges.is_empty() {
        return Ok(true);
    }
    // Relabel the touched qubits densely.
    let mut index = vec![usize::MAX; n_qubits];
    let mut count = 0usize;
    for &(a, b) in edges {
        for v in [a, b] {
            if index[v] == usize::MAX {
                index[v] = count;
                count += 1;
            }
        }
    }
    if count > fast.node_count() {
        return Ok(false);
    }
    let mut pattern = Graph::new(count);
    for &(a, b) in edges {
        // Each interaction pair appears once in the deduplicated list.
        let _ = pattern.add_edge(NodeId::new(index[a]), NodeId::new(index[b]), 1.0);
    }
    MonomorphismFinder::new(&pattern, fast)
        .exists_budgeted(meter)
        .ok_or(PlaceError::BudgetExhausted {
            nodes: meter.nodes_visited(),
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcp_circuit::library;
    use qcp_circuit::Qubit;
    use qcp_env::{molecules, Threshold};
    use qcp_graph::generate;

    fn q(i: usize) -> Qubit {
        Qubit::new(i)
    }

    #[test]
    fn chain_circuit_single_workspace_on_chain() {
        let c = library::pseudo_cat(5);
        let fast = generate::chain(5);
        let ws = extract_workspaces(&c, &fast).unwrap();
        assert_eq!(ws.len(), 1);
        assert_eq!(ws[0].gate_count(), c.gate_count());
    }

    #[test]
    fn triangle_on_chain_splits() {
        // zz(0,1), zz(1,2), zz(0,2): the third edge closes a triangle,
        // which no chain hosts.
        let c = Circuit::from_gates(
            3,
            [
                Gate::zz(q(0), q(1), 90.0),
                Gate::zz(q(1), q(2), 90.0),
                Gate::zz(q(0), q(2), 90.0),
            ],
        )
        .unwrap();
        let fast = generate::chain(3);
        let ws = extract_workspaces(&c, &fast).unwrap();
        assert_eq!(ws.len(), 2);
        assert_eq!(ws[0].gate_count(), 2);
        assert_eq!(ws[1].gate_count(), 1);
        assert_eq!(ws[0].interaction.edge_count(), 2);
        assert_eq!(ws[1].interaction.edge_count(), 1);
    }

    #[test]
    fn repeat_interactions_do_not_split() {
        let c = Circuit::from_gates(
            2,
            (0..10)
                .map(|_| Gate::zz(q(0), q(1), 90.0))
                .collect::<Vec<_>>(),
        )
        .unwrap();
        let fast = generate::chain(2);
        let ws = extract_workspaces(&c, &fast).unwrap();
        assert_eq!(ws.len(), 1);
    }

    #[test]
    fn single_qubit_gates_never_split() {
        let c = Circuit::from_gates(
            3,
            [
                Gate::zz(q(0), q(1), 90.0),
                Gate::ry(q(2), 90.0),
                Gate::ry(q(0), 90.0),
                Gate::zz(q(1), q(2), 90.0),
            ],
        )
        .unwrap();
        let fast = generate::chain(3);
        assert_eq!(extract_workspaces(&c, &fast).unwrap().len(), 1);
    }

    #[test]
    fn no_fast_interactions_is_an_error() {
        // Pentafluoro at threshold 100: no interaction is fast.
        let env = molecules::pentafluoro_iron();
        let fast = env.fast_graph(Threshold::new(100.0));
        let c = library::phase_estimation();
        assert_eq!(
            extract_workspaces(&c, &fast).unwrap_err(),
            PlaceError::NoFastInteractions
        );
    }

    #[test]
    fn single_qubit_only_circuit_is_one_workspace() {
        let c = Circuit::from_gates(2, [Gate::ry(q(0), 90.0), Gate::ry(q(1), 90.0)]).unwrap();
        let env = molecules::pentafluoro_iron();
        let fast = env.fast_graph(Threshold::new(50.0)); // empty graph
        let ws = extract_workspaces(&c, &fast).unwrap();
        assert_eq!(ws.len(), 1);
        assert_eq!(ws[0].interaction.edge_count(), 0);
    }

    #[test]
    fn qft6_on_crotonic_bonds_splits_into_multiple() {
        // §6: qft6 "contains a 2-qubit gate for every pair of qubits" and
        // cannot be placed whole along trans-crotonic bonds.
        let env = molecules::trans_crotonic_acid();
        let fast = env.fast_graph(Threshold::new(200.0));
        let c = library::qft(6);
        let ws = extract_workspaces(&c, &fast).unwrap();
        assert!(
            ws.len() > 1,
            "expected multiple workspaces, got {}",
            ws.len()
        );
        // Ranges tile the gate sequence.
        assert_eq!(ws[0].first_gate, 0);
        for pair in ws.windows(2) {
            assert_eq!(pair[0].last_gate, pair[1].first_gate);
        }
        assert_eq!(ws.last().unwrap().last_gate, c.gate_count());
    }

    #[test]
    fn commutation_hoists_diagonal_gates() {
        // zz(0,1), zz(1,2) embed on a chain; zz(0,2) closes a triangle and
        // breaks; the following zz(1,2) and the disjoint ry(q3)
        // commute with zz(0,2) and can be hoisted into workspace 1.
        let c = Circuit::from_gates(
            4,
            [
                Gate::zz(q(0), q(1), 90.0),
                Gate::zz(q(1), q(2), 90.0),
                Gate::zz(q(0), q(2), 90.0),
                Gate::zz(q(1), q(2), -90.0),
                Gate::ry(q(3), 90.0),
            ],
        )
        .unwrap();
        let fast = generate::chain(4);
        let plain = extract_workspaces(&c, &fast).unwrap();
        assert_eq!(plain.len(), 2);
        // Greedy stops at the triangle edge: zz(0,1), the levelized-early
        // ry(q3), and zz(1,2) are in; the trailing zz(1,2) is stranded in
        // workspace 2 behind the blocker.
        assert_eq!(plain[0].gate_count(), 3);
        assert_eq!(plain[1].gate_count(), 2);
        let smart = extract_workspaces_with(
            &c,
            &fast,
            ExtractionOptions {
                commutation_aware: true,
                max_gates: None,
            },
        )
        .unwrap();
        assert_eq!(smart.len(), 2);
        assert_eq!(smart[0].circuit.gate_count(), 4, "two gates hoisted");
        assert_eq!(smart[1].circuit.gate_count(), 1);
    }

    #[test]
    fn commutation_respects_non_commuting_order() {
        // ry(q0) does NOT commute with the deferred zz(0,2): it must stay
        // behind it in workspace 2.
        let c = Circuit::from_gates(
            3,
            [
                Gate::zz(q(0), q(1), 90.0),
                Gate::zz(q(1), q(2), 90.0),
                Gate::zz(q(0), q(2), 90.0),
                Gate::ry(q(0), 90.0),
            ],
        )
        .unwrap();
        let fast = generate::chain(3);
        let smart = extract_workspaces_with(
            &c,
            &fast,
            ExtractionOptions {
                commutation_aware: true,
                max_gates: None,
            },
        )
        .unwrap();
        assert_eq!(smart.len(), 2);
        assert_eq!(smart[0].circuit.gate_count(), 2);
        let ws2: Vec<String> = smart[1].circuit.gates().map(ToString::to_string).collect();
        assert_eq!(ws2, vec!["ZZ(90) q0 q2", "Ry(90) q0"]);
    }

    #[test]
    fn max_gates_caps_workspaces() {
        let c = library::pseudo_cat(5); // 1 workspace normally
        let fast = generate::chain(5);
        let capped = extract_workspaces_with(
            &c,
            &fast,
            ExtractionOptions {
                commutation_aware: false,
                max_gates: Some(10),
            },
        )
        .unwrap();
        assert!(capped.len() >= 2, "cap must split the single workspace");
        for w in &capped {
            assert!(w.gate_count() <= 10);
        }
        // Ranges still tile the circuit.
        assert_eq!(capped[0].first_gate, 0);
        for pair in capped.windows(2) {
            assert_eq!(pair[0].last_gate, pair[1].first_gate);
        }
        assert_eq!(capped.last().unwrap().last_gate, c.gate_count());
    }

    #[test]
    fn commutation_preserves_per_qubit_gate_order_globally() {
        // Safety property: concatenating the extracted workspaces must
        // keep each qubit's own gate sequence when gates do not commute.
        let env = molecules::trans_crotonic_acid();
        let fast = env.fast_graph(Threshold::new(200.0));
        let c = library::qft(6);
        let smart = extract_workspaces_with(
            &c,
            &fast,
            ExtractionOptions {
                commutation_aware: true,
                max_gates: None,
            },
        )
        .unwrap();
        let total: usize = smart.iter().map(|w| w.circuit.gate_count()).sum();
        assert_eq!(total, c.gate_count(), "no gate lost or duplicated");
    }

    #[test]
    fn hidden_stages_recovered_on_lnn() {
        // Table 4's key claim: #subcircuits == #hidden stages.
        let staged = library::random::staged(8, 42);
        let env = molecules::lnn_chain_1khz(8);
        let fast = env.fast_graph(Threshold::new(11.0));
        let ws = extract_workspaces(&staged.circuit, &fast).unwrap();
        assert_eq!(ws.len(), staged.stage_count());
    }
}
