//! Circuit runtime calculation (§3).
//!
//! The paper defines the runtime of a placed circuit by a dynamic program
//! over per-qubit busy times: a two-qubit gate on nuclei `(a, b)` starts
//! when both are free and occupies them for `W(a, b) · T(G)`; a
//! single-qubit gate occupies its nucleus for `W(a, a) · T(G)`. The
//! overall runtime is the finish time of the busiest nucleus. This is the
//! *overlapped* model ("gates from the next level can start being executed
//! before execution of the current level has completed"); the paper also
//! supports strictly sequential levels, available here as
//! [`ExecutionModel::Leveled`].
//!
//! §6 adds one refinement used throughout the experiments: "it is not
//! necessary to use an existing interaction more than three times to
//! realize any two-qubit unitary" (Zhang–Vala–Sastry–Whaley), so a run of
//! consecutive couplings on the same pair is charged at most `3 · W`
//! ([`CostModel::reuse_cap`]).

use std::collections::HashMap;

use qcp_circuit::{Circuit, Gate, Time};
use qcp_env::{Environment, PhysicalQubit};

use crate::Placement;

/// How levels are sequenced when computing runtime.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum ExecutionModel {
    /// The paper's default: gates start as soon as their qubits are free,
    /// regardless of level boundaries.
    #[default]
    Overlapped,
    /// Levels execute strictly one after another (a global barrier between
    /// levels).
    Leveled,
}

/// Cost-model configuration for runtime evaluation.
#[derive(Clone, Copy, PartialEq, Debug)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct CostModel {
    /// Level sequencing.
    pub execution: ExecutionModel,
    /// Cap on the accumulated `T` of consecutive couplings on one pair
    /// (`Some(3.0)` per §6; `None` disables the optimization).
    pub reuse_cap: Option<f64>,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            execution: ExecutionModel::Overlapped,
            reuse_cap: Some(3.0),
        }
    }
}

impl CostModel {
    /// The paper's model: overlapped execution, reuse cap 3.
    pub fn overlapped() -> Self {
        CostModel::default()
    }

    /// Strictly sequential levels, reuse cap 3.
    pub fn leveled() -> Self {
        CostModel {
            execution: ExecutionModel::Leveled,
            reuse_cap: Some(3.0),
        }
    }

    /// Disables the interaction-reuse cap (keeps the execution model).
    #[must_use]
    pub fn without_reuse_cap(mut self) -> Self {
        self.reuse_cap = None;
        self
    }
}

/// A gate bound to physical qubits, ready for costing.
#[derive(Clone, Copy, PartialEq, Debug)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct PlacedGate {
    /// First (or only) nucleus.
    pub a: PhysicalQubit,
    /// Second nucleus for two-qubit gates.
    pub b: Option<PhysicalQubit>,
    /// Time weight `T(G)` in 90°-pulse units.
    pub weight: f64,
}

impl PlacedGate {
    /// A single-qubit gate of weight `weight` on nucleus `a`.
    pub fn one(a: PhysicalQubit, weight: f64) -> Self {
        PlacedGate { a, b: None, weight }
    }

    /// A two-qubit gate of weight `weight` on nuclei `a`, `b`.
    ///
    /// # Panics
    ///
    /// Panics if `a == b`.
    pub fn two(a: PhysicalQubit, b: PhysicalQubit, weight: f64) -> Self {
        assert!(a != b, "two-qubit gate needs distinct nuclei");
        PlacedGate {
            a,
            b: Some(b),
            weight,
        }
    }

    /// A SWAP (weight 3 — three maximal couplings) on nuclei `a`, `b`.
    ///
    /// # Panics
    ///
    /// Panics if `a == b`.
    pub fn swap(a: PhysicalQubit, b: PhysicalQubit) -> Self {
        PlacedGate::two(a, b, 3.0)
    }
}

/// A fully placed executable: levels of [`PlacedGate`]s over the nuclei of
/// one environment.
#[derive(Clone, Debug, Default, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Schedule {
    levels: Vec<Vec<PlacedGate>>,
}

impl Schedule {
    /// An empty schedule.
    pub fn new() -> Self {
        Schedule::default()
    }

    /// Binds a circuit to nuclei through a placement, level by level.
    ///
    /// # Panics
    ///
    /// Panics if the placement is narrower than the circuit.
    pub fn from_placed_circuit(circuit: &Circuit, placement: &Placement) -> Self {
        assert_placement_covers(circuit, placement);
        let mut s = Schedule::new();
        for level in circuit.levels() {
            let placed: Vec<PlacedGate> = level
                .gates()
                .iter()
                .map(|g| bind_gate(g, placement))
                .collect();
            s.levels.push(placed);
        }
        s
    }

    /// Appends one level of gates.
    pub fn push_level(&mut self, level: Vec<PlacedGate>) {
        self.levels.push(level);
    }

    /// Appends all levels of another schedule.
    pub fn extend(&mut self, other: &Schedule) {
        self.levels.extend(other.levels.iter().cloned());
    }

    /// The levels.
    pub fn levels(&self) -> &[Vec<PlacedGate>] {
        &self.levels
    }

    /// Total number of gates.
    pub fn gate_count(&self) -> usize {
        self.levels.iter().map(Vec::len).sum()
    }

    /// Computes the runtime on `env` under `model`, starting from idle
    /// nuclei.
    pub fn runtime(&self, env: &Environment, model: &CostModel) -> Time {
        let mut engine = CostEngine::new(env, *model);
        engine.apply_schedule(self);
        engine.makespan()
    }
}

/// Incremental runtime evaluator — the paper's `Time[1..n]` array with the
/// reuse-cap bookkeeping. Forkable, so the placer can score candidate
/// continuations cheaply.
#[derive(Clone, Debug)]
pub struct CostEngine<'a> {
    env: &'a Environment,
    model: CostModel,
    times: Vec<f64>,
    /// Last coupling partner of each nucleus, used for the reuse cap.
    last_pair: Vec<Option<(u32, u32)>>,
    /// Accumulated `T` of the live run on each pair.
    runs: HashMap<(u32, u32), f64>,
}

impl<'a> CostEngine<'a> {
    /// A fresh engine over idle nuclei.
    pub fn new(env: &'a Environment, model: CostModel) -> Self {
        CostEngine {
            env,
            model,
            times: vec![0.0; env.qubit_count()],
            last_pair: vec![None; env.qubit_count()],
            runs: HashMap::new(),
        }
    }

    /// Busy-until time of each nucleus, in delay units.
    pub fn times(&self) -> &[f64] {
        &self.times
    }

    /// Rewinds this engine to the exact state of `other`, reusing this
    /// engine's allocations.
    ///
    /// This is the cheap half of the fork-arena pattern: the placer keeps
    /// one (or two, with lookahead) scratch engines alive and resets them
    /// per candidate instead of cloning a fresh `CostEngine` — `Vec` and
    /// `HashMap` buffers are reused across thousands of scoring calls.
    ///
    /// # Panics
    ///
    /// Panics if the engines target different environments.
    pub fn copy_from(&mut self, other: &CostEngine<'a>) {
        assert!(
            std::ptr::eq(self.env, other.env),
            "fork arena engines must share an environment"
        );
        self.model = other.model;
        self.times.clone_from(&other.times);
        self.last_pair.clone_from(&other.last_pair);
        self.runs.clone_from(&other.runs);
    }

    /// Applies a circuit bound to nuclei through `placement`, level by
    /// level, without materializing an intermediate [`Schedule`].
    ///
    /// # Panics
    ///
    /// Panics if the placement is narrower than the circuit.
    pub fn apply_placed_circuit(&mut self, circuit: &Circuit, placement: &Placement) {
        assert_placement_covers(circuit, placement);
        for level in circuit.levels() {
            self.level_barrier();
            for g in level.gates() {
                let _ = self.apply_gate(&bind_gate(g, placement));
            }
        }
    }

    /// Applies levels of SWAP gates (weight 3 each) without materializing
    /// an intermediate [`Schedule`].
    pub fn apply_swap_levels(&mut self, levels: &[Vec<(PhysicalQubit, PhysicalQubit)>]) {
        for level in levels {
            self.level_barrier();
            for &(a, b) in level {
                let _ = self.apply_gate(&PlacedGate::swap(a, b));
            }
        }
    }

    /// The finish time of the busiest nucleus.
    pub fn makespan(&self) -> Time {
        Time::from_units(self.times.iter().copied().fold(0.0, f64::max))
    }

    /// Applies one gate (overlapped semantics; level barriers are the
    /// caller's job and [`apply_schedule`](CostEngine::apply_schedule)
    /// handles them). Returns the gate's `(start, finish)` instants in
    /// delay units, which [`Timeline`](crate::timeline::Timeline) records.
    pub fn apply_gate(&mut self, gate: &PlacedGate) -> (f64, f64) {
        match gate.b {
            None => {
                let i = gate.a.index();
                let start = self.times[i];
                self.times[i] = start + self.env.weight_units(gate.a, gate.a) * gate.weight;
                // A foreign single-qubit pulse interrupts any coupling run
                // only if it costs time (free Rz gates commute with the
                // drift Hamiltonian bookkeeping).
                if gate.weight > 0.0 {
                    self.last_pair[i] = None;
                }
                (start, self.times[i])
            }
            Some(b) => {
                let (i, j) = (gate.a.index(), b.index());
                let key = (i.min(j) as u32, i.max(j) as u32);
                let effective = match self.model.reuse_cap {
                    None => gate.weight,
                    Some(cap) => {
                        let continuing =
                            self.last_pair[i] == Some(key) && self.last_pair[j] == Some(key);
                        let prev = if continuing {
                            *self.runs.get(&key).unwrap_or(&0.0)
                        } else {
                            0.0
                        };
                        let total = prev + gate.weight;
                        self.runs.insert(key, total);
                        total.min(cap) - prev.min(cap)
                    }
                };
                let start = self.times[i].max(self.times[j]);
                let delay = self.env.weight_units(gate.a, b);
                // An uncoupled pair can never host a coupling gate — not
                // even a reuse-capped continuation whose `effective` is
                // 0: `∞ × 0` is NaN, which `f64::max` silently drops
                // from the makespan, making impossible placements look
                // free to the hill-climbing refiners.
                let finish = if delay.is_finite() {
                    start + delay * effective
                } else {
                    f64::INFINITY
                };
                self.times[i] = finish;
                self.times[j] = finish;
                self.last_pair[i] = Some(key);
                self.last_pair[j] = Some(key);
                (start, finish)
            }
        }
    }

    /// Synchronizes all nuclei to the current makespan — the inter-level
    /// barrier of [`ExecutionModel::Leveled`].
    pub fn barrier(&mut self) {
        let barrier = self.times.iter().copied().fold(0.0, f64::max);
        for t in &mut self.times {
            *t = barrier;
        }
    }

    /// The start-of-level barrier: a no-op under
    /// [`ExecutionModel::Overlapped`], a global [`barrier`](Self::barrier)
    /// under [`ExecutionModel::Leveled`]. Every level-applying path
    /// (schedules, placed circuits, swap levels) goes through this one
    /// rule.
    #[inline]
    fn level_barrier(&mut self) {
        if self.model.execution == ExecutionModel::Leveled {
            self.barrier();
        }
    }

    /// Applies a whole level, inserting the global barrier first when the
    /// model is [`ExecutionModel::Leveled`].
    pub fn apply_level(&mut self, level: &[PlacedGate]) {
        self.level_barrier();
        for g in level {
            let _ = self.apply_gate(g);
        }
    }

    /// Applies every level of a schedule.
    pub fn apply_schedule(&mut self, schedule: &Schedule) {
        for level in schedule.levels() {
            self.apply_level(level);
        }
    }
}

/// Binds one circuit gate to nuclei through `placement`.
fn bind_gate(g: &Gate, placement: &Placement) -> PlacedGate {
    let (a, b) = g.qubits();
    PlacedGate {
        a: placement.physical(a),
        b: b.map(|q| placement.physical(q)),
        weight: g.time_weight(),
    }
}

/// Panics unless `placement` is at least as wide as `circuit`.
fn assert_placement_covers(circuit: &Circuit, placement: &Placement) {
    assert!(
        placement.logical_count() >= circuit.qubit_count(),
        "placement covers {} qubits but the circuit needs {}",
        placement.logical_count(),
        circuit.qubit_count()
    );
}

/// Convenience: the runtime of `circuit` on `env` under `placement`.
pub fn placed_runtime(
    circuit: &Circuit,
    env: &Environment,
    placement: &Placement,
    model: &CostModel,
) -> Time {
    Schedule::from_placed_circuit(circuit, placement).runtime(env, model)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcp_circuit::library::qec3_encoder;
    use qcp_env::molecules::acetyl_chloride;

    fn p(i: usize) -> PhysicalQubit {
        PhysicalQubit::new(i)
    }

    /// Table 1: mapping a→M, b→C2, c→C1 costs 770 units; the optimum
    /// a→C2, b→C1, c→M costs 136. Nucleus order in the library molecule is
    /// M=0, C1=1, C2=2.
    #[test]
    fn table_1_exact_runtimes() {
        let env = acetyl_chloride();
        let circuit = qec3_encoder();
        let model = CostModel::overlapped();
        let bad = Placement::new(vec![p(0), p(2), p(1)], 3).unwrap();
        assert_eq!(placed_runtime(&circuit, &env, &bad, &model).units(), 770.0);
        let best = Placement::new(vec![p(2), p(1), p(0)], 3).unwrap();
        assert_eq!(placed_runtime(&circuit, &env, &best, &model).units(), 136.0);
    }

    /// The intermediate columns of Table 1 for the 770-unit mapping.
    #[test]
    fn table_1_trace() {
        let env = acetyl_chloride();
        let circuit = qec3_encoder();
        let placement = Placement::new(vec![p(0), p(2), p(1)], 3).unwrap();
        let mut engine = CostEngine::new(&env, CostModel::overlapped());
        let mut snapshots = Vec::new();
        for level in Schedule::from_placed_circuit(&circuit, &placement).levels() {
            engine.apply_level(level);
            if level.iter().any(|g| g.weight > 0.0) {
                // Columns of Table 1 are the costed gates only.
                snapshots.push(engine.times().to_vec());
            }
        }
        // time[] rows are (a→M=p0, b→C2=p2, c→C1=p1) in Table 1 order a,b,c.
        let abc = |s: &Vec<f64>| (s[0], s[2], s[1]);
        assert_eq!(abc(&snapshots[0]), (8.0, 0.0, 0.0)); // Ya90
        assert_eq!(abc(&snapshots[1]), (680.0, 680.0, 0.0)); // ZZab90
        assert_eq!(abc(&snapshots[2]), (680.0, 680.0, 8.0)); // Yc90
        assert_eq!(abc(&snapshots[3]), (680.0, 769.0, 769.0)); // ZZbc90
        assert_eq!(abc(&snapshots[4]), (680.0, 770.0, 769.0)); // Yb90
    }

    #[test]
    fn overlap_beats_leveled() {
        // Two independent couplings on disjoint pairs in different levels:
        // overlapped model lets them run in parallel only if levelization
        // put them together; leveled inserts barriers.
        let env = qcp_env::molecules::lnn_chain(4, 10.0);
        let mut s = Schedule::new();
        s.push_level(vec![PlacedGate::two(p(0), p(1), 1.0)]);
        s.push_level(vec![PlacedGate::two(p(2), p(3), 1.0)]);
        let over = s.runtime(&env, &CostModel::overlapped());
        let lev = s.runtime(&env, &CostModel::leveled());
        assert_eq!(over.units(), 10.0, "disjoint pairs overlap");
        assert_eq!(lev.units(), 20.0, "levels serialize");
    }

    #[test]
    fn uncoupled_pair_is_infinite_even_past_the_reuse_cap() {
        // Regression: once the reuse cap zeroed `effective`, a coupling
        // gate on an uncoupled pair cost `∞ × 0 = NaN`, which the
        // makespan's `f64::max` fold silently dropped — impossible
        // placements then looked *free* to fine tuning and annealing.
        let env = qcp_env::molecules::lnn_chain(3, 10.0); // 0–1, 1–2 only
        let mut s = Schedule::new();
        for _ in 0..5 {
            s.push_level(vec![PlacedGate::two(p(0), p(2), 1.0)]);
        }
        let capped = s.runtime(&env, &CostModel::overlapped()).units();
        assert!(capped.is_infinite(), "got {capped}");
        let uncapped = s
            .runtime(&env, &CostModel::overlapped().without_reuse_cap())
            .units();
        assert!(uncapped.is_infinite(), "got {uncapped}");
    }

    #[test]
    fn reuse_cap_limits_same_pair_runs() {
        let env = qcp_env::molecules::lnn_chain(2, 10.0);
        let mut s = Schedule::new();
        for _ in 0..5 {
            s.push_level(vec![PlacedGate::two(p(0), p(1), 1.0)]);
        }
        // Capped: 5 consecutive ZZ(90) on one pair = min(5,3)*10 = 30.
        assert_eq!(s.runtime(&env, &CostModel::overlapped()).units(), 30.0);
        // Uncapped: 50.
        assert_eq!(
            s.runtime(&env, &CostModel::overlapped().without_reuse_cap())
                .units(),
            50.0
        );
    }

    #[test]
    fn reuse_run_broken_by_other_partner() {
        let env = qcp_env::molecules::lnn_chain(3, 10.0);
        let mut s = Schedule::new();
        s.push_level(vec![PlacedGate::two(p(0), p(1), 3.0)]);
        s.push_level(vec![PlacedGate::two(p(1), p(2), 3.0)]);
        s.push_level(vec![PlacedGate::two(p(0), p(1), 3.0)]);
        // Each run is fresh: 3 * 10 * 3 = 90.
        assert_eq!(s.runtime(&env, &CostModel::overlapped()).units(), 90.0);
    }

    #[test]
    fn reuse_run_survives_free_rz() {
        let env = qcp_env::molecules::lnn_chain(2, 10.0);
        let mut s = Schedule::new();
        s.push_level(vec![PlacedGate::two(p(0), p(1), 2.0)]);
        s.push_level(vec![PlacedGate::one(p(0), 0.0)]); // free Rz
        s.push_level(vec![PlacedGate::two(p(0), p(1), 2.0)]);
        // Still one run: min(4, 3) * 10 = 30.
        assert_eq!(s.runtime(&env, &CostModel::overlapped()).units(), 30.0);
    }

    #[test]
    fn costed_pulse_breaks_reuse_run() {
        let env = qcp_env::molecules::lnn_chain(2, 10.0);
        let mut s = Schedule::new();
        s.push_level(vec![PlacedGate::two(p(0), p(1), 2.0)]);
        s.push_level(vec![PlacedGate::one(p(0), 1.0)]); // real pulse
        s.push_level(vec![PlacedGate::two(p(0), p(1), 2.0)]);
        // Two runs of 2 each + the pulse: 20 + 1*1 + 20 = 41.
        assert_eq!(s.runtime(&env, &CostModel::overlapped()).units(), 41.0);
    }

    #[test]
    fn swap_costs_three_couplings() {
        let env = qcp_env::molecules::lnn_chain(2, 10.0);
        let mut s = Schedule::new();
        s.push_level(vec![PlacedGate::swap(p(0), p(1))]);
        assert_eq!(s.runtime(&env, &CostModel::overlapped()).units(), 30.0);
    }

    #[test]
    fn empty_schedule_is_free() {
        let env = acetyl_chloride();
        assert!(Schedule::new()
            .runtime(&env, &CostModel::default())
            .is_zero());
    }

    #[test]
    fn engine_fork_scores_candidates_independently() {
        let env = qcp_env::molecules::lnn_chain(3, 10.0);
        let mut engine = CostEngine::new(&env, CostModel::overlapped());
        engine.apply_gate(&PlacedGate::two(p(0), p(1), 1.0));
        let fork = engine.clone();
        engine.apply_gate(&PlacedGate::two(p(1), p(2), 1.0));
        assert_eq!(engine.makespan().units(), 20.0);
        assert_eq!(fork.makespan().units(), 10.0);
    }
}
