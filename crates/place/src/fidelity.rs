//! Fidelity and refocusing diagnostics.
//!
//! The paper frames placement as timing optimization "under the natural
//! assumption that gate fidelities are inversely proportional to the
//! coupling strength/gate runtime, otherwise, a function of both may be
//! considered" (§1), and notes that unused drift couplings "get eliminated
//! via a technique called refocussing" (§2). This module quantifies both
//! costs for a timed placement:
//!
//! * [`ExposureReport`] — how long each nucleus sits idle (dephasing) and
//!   how long every *unused* coupling keeps evolving (needing refocusing
//!   pulses);
//! * [`decoherence_fidelity`] — a simple exponential-decay estimate of the
//!   experiment's fidelity from its makespan.

use qcp_circuit::Time;
use qcp_env::{Environment, PhysicalQubit};

use crate::timeline::{TimedGate, Timeline};

/// Idle/coupling exposure of one timed placement.
#[derive(Clone, Debug)]
pub struct ExposureReport {
    /// For each nucleus: total busy time (gates executing on it).
    pub busy: Vec<Time>,
    /// For each nucleus: makespan minus busy time.
    pub idle: Vec<Time>,
    /// For each unordered pair with a finite coupling: the time the pair
    /// spends *not* executing a joint gate — drift evolution that must be
    /// refocussed away. Entries are `(a, b, exposure)` with `a < b`.
    pub coupling_exposure: Vec<(PhysicalQubit, PhysicalQubit, Time)>,
    /// The experiment's makespan.
    pub makespan: Time,
}

impl ExposureReport {
    /// Computes the report for a timed schedule on `env`.
    pub fn from_timeline(timeline: &Timeline, env: &Environment) -> ExposureReport {
        let m = env.qubit_count();
        let makespan = timeline.makespan();
        let busy: Vec<Time> = (0..m)
            .map(|i| {
                timeline
                    .per_qubit(PhysicalQubit::new(i))
                    .iter()
                    .map(|e| e.duration())
                    .sum()
            })
            .collect();
        let idle: Vec<Time> = busy.iter().map(|&b| makespan - b).collect();

        let mut coupling_exposure = Vec::new();
        for i in 0..m {
            for j in i + 1..m {
                let (a, b) = (PhysicalQubit::new(i), PhysicalQubit::new(j));
                if !env.weight_units(a, b).is_finite() {
                    continue;
                }
                // Time this pair spends executing a *joint* gate.
                let joint: Time = timeline
                    .events()
                    .iter()
                    .filter(|e| (e.a == a && e.b == Some(b)) || (e.a == b && e.b == Some(a)))
                    .map(TimedGate::duration)
                    .sum();
                coupling_exposure.push((a, b, makespan - joint));
            }
        }
        ExposureReport {
            busy,
            idle,
            coupling_exposure,
            makespan,
        }
    }

    /// Total drift exposure across all couplings — the quantity a
    /// refocusing scheme must cancel.
    pub fn total_coupling_exposure(&self) -> Time {
        self.coupling_exposure.iter().map(|&(_, _, t)| t).sum()
    }

    /// Estimated number of refocusing π-pulses, assuming one pulse per
    /// `period` of exposure on each coupling (a coarse upper bound; real
    /// schemes share pulses across couplings).
    ///
    /// # Panics
    ///
    /// Panics if `period` is zero.
    pub fn refocusing_pulse_estimate(&self, period: Time) -> usize {
        assert!(!period.is_zero(), "refocusing period must be positive");
        self.coupling_exposure
            .iter()
            .map(|&(_, _, t)| (t.units() / period.units()).ceil() as usize)
            .sum()
    }

    /// The couplings with the largest exposure, descending.
    pub fn worst_couplings(&self, k: usize) -> Vec<(PhysicalQubit, PhysicalQubit, Time)> {
        let mut v = self.coupling_exposure.clone();
        v.sort_by(|x, y| y.2.total_cmp(&x.2));
        v.truncate(k);
        v
    }
}

/// Exponential-decay fidelity estimate: `exp(-active · makespan / t2)`
/// where `active` is the number of nuclei hosting logical qubits. The
/// inverse-proportionality assumption of §1 in its simplest usable form.
///
/// # Panics
///
/// Panics if `t2` is zero.
pub fn decoherence_fidelity(makespan: Time, active_qubits: usize, t2: Time) -> f64 {
    assert!(!t2.is_zero(), "decoherence time must be positive");
    (-(active_qubits as f64) * makespan.units() / t2.units()).exp()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::CostModel;
    use crate::{Placer, PlacerConfig};
    use qcp_circuit::library;
    use qcp_env::{molecules, Threshold};

    fn report_for_qec3() -> (ExposureReport, qcp_env::Environment) {
        let env = molecules::acetyl_chloride();
        let placer = Placer::new(&env, PlacerConfig::with_threshold(Threshold::new(100.0)));
        let outcome = placer.place(&library::qec3_encoder()).unwrap();
        let tl = Timeline::compute(&outcome.schedule, &env, &CostModel::overlapped());
        (ExposureReport::from_timeline(&tl, &env), env)
    }

    #[test]
    fn busy_plus_idle_equals_makespan() {
        let (report, env) = report_for_qec3();
        for v in env.qubits() {
            let total = report.busy[v.index()] + report.idle[v.index()];
            assert!((total.units() - report.makespan.units()).abs() < 1e-9);
        }
    }

    #[test]
    fn unused_coupling_is_exposed_for_the_whole_run() {
        let (report, env) = report_for_qec3();
        // The circuit uses M–C1 and C1–C2 under the optimal placement;
        // the slow M–C2 coupling is never used, so its exposure is the
        // whole makespan.
        let m = env.find_nucleus("M").unwrap();
        let c2 = env.find_nucleus("C2").unwrap();
        let (lo, hi) = if m < c2 { (m, c2) } else { (c2, m) };
        let entry = report
            .coupling_exposure
            .iter()
            .find(|&&(a, b, _)| a == lo && b == hi)
            .expect("pair present");
        assert_eq!(entry.2.units(), report.makespan.units());
    }

    #[test]
    fn used_couplings_have_reduced_exposure() {
        let (report, _) = report_for_qec3();
        let min = report
            .coupling_exposure
            .iter()
            .map(|&(_, _, t)| t.units())
            .fold(f64::INFINITY, f64::min);
        assert!(
            min < report.makespan.units(),
            "some coupling was actually used"
        );
    }

    #[test]
    fn pulse_estimate_scales_with_period() {
        let (report, _) = report_for_qec3();
        let fine = report.refocusing_pulse_estimate(Time::from_units(10.0));
        let coarse = report.refocusing_pulse_estimate(Time::from_units(100.0));
        assert!(fine > coarse);
        assert!(
            coarse >= report.coupling_exposure.len(),
            "at least one pulse per pair"
        );
    }

    #[test]
    fn worst_couplings_sorted() {
        let (report, _) = report_for_qec3();
        let worst = report.worst_couplings(3);
        for w in worst.windows(2) {
            assert!(w[0].2 >= w[1].2);
        }
    }

    #[test]
    fn fidelity_estimate_behaviour() {
        let t2 = Time::from_seconds(1.0);
        let fast = decoherence_fidelity(Time::from_units(136.0), 3, t2);
        let slow = decoherence_fidelity(Time::from_units(770.0), 3, t2);
        assert!(fast > slow, "better placements keep more fidelity");
        assert!(fast > 0.9 && fast < 1.0);
        assert!((decoherence_fidelity(Time::ZERO, 5, t2) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn placements_rank_identically_by_time_and_fidelity() {
        // §1's equivalence: minimizing runtime maximizes this fidelity.
        let env = molecules::acetyl_chloride();
        let circuit = library::qec3_encoder();
        let model = CostModel::overlapped();
        let t2 = Time::from_seconds(1.0);
        let mut scored: Vec<(f64, f64)> = Vec::new();
        for seed in 0..6 {
            let p = crate::baselines::random_placement(3, &env, seed).unwrap();
            let t = crate::cost::placed_runtime(&circuit, &env, &p, &model);
            scored.push((t.units(), decoherence_fidelity(t, 3, t2)));
        }
        scored.sort_by(|a, b| a.0.total_cmp(&b.0));
        for w in scored.windows(2) {
            assert!(w[0].1 >= w[1].1, "fidelity must fall as runtime grows");
        }
    }
}
