//! Fine tuning (§5.1): hill-climbing refinement of a placement.
//!
//! "For every qubit `q_i` from the circuit such that there exists a two
//! qubit gate … that operates on this qubit, try to map it to any of
//! `{v_1 … v_m}` and see if this new placement assignment is better than
//! the one provided by the initial matching. … Such an operation can be
//! repeated until no improvement can be found or for a set number of
//! iterations."

use qcp_circuit::Qubit;
use qcp_env::PhysicalQubit;

use crate::Placement;

/// Outcome of a fine-tuning run.
#[derive(Clone, Debug)]
pub struct FineTuneResult {
    /// The refined placement.
    pub placement: Placement,
    /// Its cost under the supplied objective.
    pub cost: f64,
    /// Number of accepted moves.
    pub moves: usize,
    /// Number of completed sweeps.
    pub rounds: usize,
}

/// Hill-climbs `initial` by single-qubit reassignments (moving a qubit to
/// a free nucleus, or exchanging assignments with the nucleus's current
/// occupant), scoring with `cost` (lower is better).
///
/// `movable` lists the qubits allowed to move — per the paper, the qubits
/// touched by two-qubit gates in the current workspace. `max_rounds`
/// bounds the number of full sweeps; the climb also stops as soon as a
/// sweep yields no improvement.
pub fn fine_tune(
    initial: Placement,
    movable: &[Qubit],
    mut cost: impl FnMut(&Placement) -> f64,
    max_rounds: usize,
) -> FineTuneResult {
    let mut current = initial;
    let mut best_cost = cost(&current);
    let mut moves = 0usize;
    let mut rounds = 0usize;
    let m = current.physical_count();

    for _ in 0..max_rounds {
        let mut improved = false;
        rounds += 1;
        for &q in movable {
            let mut best_move: Option<(PhysicalQubit, f64)> = None;
            for v in (0..m).map(PhysicalQubit::new) {
                if current.physical(q) == v {
                    continue;
                }
                let cand = current.with_move(q, v);
                let c = cost(&cand);
                if c + 1e-9 < best_move.map_or(best_cost, |(_, bc)| bc) {
                    best_move = Some((v, c));
                }
            }
            if let Some((v, c)) = best_move {
                current = current.with_move(q, v);
                best_cost = c;
                moves += 1;
                improved = true;
            }
        }
        if !improved {
            break;
        }
    }
    FineTuneResult {
        placement: current,
        cost: best_cost,
        moves,
        rounds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::{placed_runtime, CostModel};
    use qcp_circuit::library::qec3_encoder;
    use qcp_env::molecules::acetyl_chloride;

    fn q(i: usize) -> Qubit {
        Qubit::new(i)
    }
    fn p(i: usize) -> PhysicalQubit {
        PhysicalQubit::new(i)
    }

    #[test]
    fn climbs_from_worst_to_optimal_on_acetyl_chloride() {
        // Start from Table 1's 770-unit mapping; the optimum is 136.
        let env = acetyl_chloride();
        let circuit = qec3_encoder();
        let model = CostModel::overlapped();
        let start = Placement::new(vec![p(0), p(2), p(1)], 3).unwrap();
        let result = fine_tune(
            start,
            &[q(0), q(1), q(2)],
            |pl| placed_runtime(&circuit, &env, pl, &model).units(),
            10,
        );
        assert_eq!(
            result.cost, 136.0,
            "hill climbing must reach the optimum here"
        );
        assert!(result.moves >= 1);
    }

    #[test]
    fn zero_rounds_is_identity() {
        let env = acetyl_chloride();
        let circuit = qec3_encoder();
        let model = CostModel::overlapped();
        let start = Placement::new(vec![p(0), p(2), p(1)], 3).unwrap();
        let result = fine_tune(
            start.clone(),
            &[q(0), q(1), q(2)],
            |pl| placed_runtime(&circuit, &env, pl, &model).units(),
            0,
        );
        assert!(result.placement.same_assignment(&start));
        assert_eq!(result.moves, 0);
    }

    #[test]
    fn immovable_qubits_stay() {
        let env = acetyl_chloride();
        let circuit = qec3_encoder();
        let model = CostModel::overlapped();
        let start = Placement::new(vec![p(0), p(2), p(1)], 3).unwrap();
        let result = fine_tune(
            start.clone(),
            &[q(1)], // only b may move (and may drag its swap partner)
            |pl| placed_runtime(&circuit, &env, pl, &model).units(),
            5,
        );
        // Cost can only go down or stay.
        assert!(result.cost <= 770.0);
    }

    #[test]
    fn never_worsens() {
        let env = qcp_env::molecules::trans_crotonic_acid();
        let circuit = qcp_circuit::library::qec5_benchmark();
        let model = CostModel::overlapped();
        let start = Placement::identity(5, 7).unwrap();
        let base = placed_runtime(&circuit, &env, &start, &model).units();
        let result = fine_tune(
            start,
            &(0..5).map(q).collect::<Vec<_>>(),
            |pl| placed_runtime(&circuit, &env, pl, &model).units(),
            6,
        );
        assert!(result.cost <= base);
    }
}
