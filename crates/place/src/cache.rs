//! Canonicalization-keyed placement result cache.
//!
//! The paper's graph-monomorphism formulation (§5) is blind to qubit
//! labels: two circuits that differ only by a relabelling of their
//! qubits induce isomorphic interaction graphs, and a placement of one
//! is — after renaming — a placement of the other. Under serve or batch
//! traffic the same handful of interaction patterns (Bell/GHZ/QFT
//! variants) arrive over and over, so this module recognises repeats in
//! polynomial time and reuses their results:
//!
//! 1. [`CanonicalCircuit::of`] computes an **exact** canonical form of a
//!    circuit: a label-independent [`CanonicalFingerprint`] plus the
//!    canonical qubit order that witnesses it. Unlike pure
//!    Weisfeiler–Leman graph hashing (which conflates WL-equivalent
//!    non-isomorphic graphs), the circuit-level canonicalization below
//!    is collision-free by construction for relabelled circuits — see
//!    *Exactness* — so a fingerprint match plus witness remap can never
//!    hand one circuit a placement that is invalid for it.
//! 2. [`PlacementCache`] is a bounded, concurrency-safe map from
//!    [`CacheKey`] (canonical circuit × environment × full placer
//!    configuration, all value-derived) to a stored
//!    [`PlacementOutcome`] plus its inserting circuit's canonical
//!    order.
//! 3. On a hit, [`remap_outcome`] rewrites the stored outcome onto the
//!    requesting circuit's qubit labels through the two canonical
//!    orders. Physical-space data (SWAP schedules, the placed
//!    [`Schedule`](crate::Schedule), the runtime) is shared verbatim;
//!    only logical-space data (each stage's [`Placement`] and
//!    subcircuit) is renamed. The remapped outcome re-certifies under
//!    `qcp_verify` because renaming logical qubits consistently across
//!    circuit and placement leaves every physical event unchanged.
//!
//! # Exactness
//!
//! Each qubit is coloured by its WL colour in the interaction graph
//! *and* by its **role list**: the ordered sequence, over the circuit's
//! flat gate sequence, of `(gate position, role, gate kind)` entries in
//! which it participates (role: single-qubit operand, first/second
//! operand of an ordered two-qubit gate, or operand of a symmetric
//! gate). Relabelling a circuit permutes qubits but preserves gate
//! order, so role lists are relabelling-invariant. Qubits are sorted by
//! `(WL colour, role list, original index)`; the original-index
//! tie-break is harmless because two qubits with *identical* role lists
//! necessarily share every gate they touch, which forces all those
//! gates to be symmetric two-qubit gates on exactly that pair — their
//! transposition is then an automorphism of the circuit encoding (which
//! writes symmetric gates with sorted operands), so either order yields
//! the same fingerprint. Idle qubits (empty role lists) are likewise
//! interchangeable. The fingerprint hashes the full gate sequence in
//! canonical labels, so distinct canonical circuits collide only by a
//! 128-bit hash collision.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, PoisonError};

use qcp_circuit::{Circuit, Gate, Qubit};
use qcp_env::Environment;
use qcp_graph::canonical::{self, CanonicalFingerprint, FingerprintHasher};

use crate::placement::Placement;
use crate::placer::{PlacementOutcome, PlacerConfig, Stage};
use crate::strategy::Strategy;

/// A placement-problem cache key: 128-bit hash over the canonical
/// circuit, the environment's delay/coupling tables, and every
/// outcome-affecting [`PlacerConfig`] field. Derived *only* from values
/// (never from names or file paths), so equal keys mean equal problems
/// by construction and there is nothing to invalidate.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct CacheKey(u128);

impl CacheKey {
    /// The raw 128-bit key.
    pub fn as_u128(self) -> u128 {
        self.0
    }
}

impl std::fmt::Display for CacheKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

/// Collapses `-0.0` onto `0.0` before taking bit patterns, so the two
/// spellings of zero hash identically.
fn f64_bits(x: f64) -> u64 {
    if x == 0.0 { 0.0f64 } else { x }.to_bits()
}

/// The exact canonical form of a circuit (see the module docs).
#[derive(Clone, Debug)]
pub struct CanonicalCircuit {
    /// Label-independent fingerprint of the whole circuit.
    pub fingerprint: CanonicalFingerprint,
    /// Fingerprint of the interaction graph alone (coarser: ignores gate
    /// order and parameters).
    pub graph_fingerprint: CanonicalFingerprint,
    /// `order[i]` is the original qubit occupying canonical position `i`.
    pub order: Vec<Qubit>,
    /// Whether the interaction graph's canonicalization hit the
    /// individualization leaf budget before exhausting every branch. An
    /// exhausted form is deterministic for a *fixed* labelling but may
    /// differ between relabellings of the same circuit, so the
    /// fingerprint is not a sound sharing key: cache layers must treat
    /// the request as uncacheable (see
    /// [`execute_with`](crate::request::execute_with)).
    pub exhausted: bool,
}

/// A qubit's participation in one gate: `(flat gate position, role,
/// parameter hash)`. Roles: 0 = single-qubit operand, 1/2 = first or
/// second operand of an ordered two-qubit gate, 3 = operand of a
/// physically symmetric gate (`Zz`, `Swap`).
type RoleEntry = (u64, u8, u64);

/// Hashes a gate's kind and parameters — everything except its qubits.
fn gate_kind(gate: &Gate) -> u64 {
    let mut h = FingerprintHasher::new();
    match gate {
        Gate::Rx { angle, .. } => h.mix(1).mix(f64_bits(*angle)),
        Gate::Ry { angle, .. } => h.mix(2).mix(f64_bits(*angle)),
        Gate::Rz { angle, .. } => h.mix(3).mix(f64_bits(*angle)),
        Gate::Zz { angle, .. } => h.mix(4).mix(f64_bits(*angle)),
        Gate::Swap { .. } => h.mix(5),
        Gate::Custom1 { weight, name, .. } => {
            h.mix(6).mix(f64_bits(*weight)).mix_bytes(name.as_bytes())
        }
        Gate::Custom2 { weight, name, .. } => {
            h.mix(7).mix(f64_bits(*weight)).mix_bytes(name.as_bytes())
        }
    };
    h.finish().fold64()
}

/// Is the gate invariant under swapping its two operands? `Zz` commutes
/// by symmetry of the Ising coupling and `Swap` by definition;
/// `Custom2` is opaque and must be treated as ordered.
fn is_symmetric(gate: &Gate) -> bool {
    matches!(gate, Gate::Zz { .. } | Gate::Swap { .. })
}

impl CanonicalCircuit {
    /// Canonicalizes `circuit`. Cost is the WL refinement on the
    /// interaction graph plus two passes over the gate list — linear up
    /// to the refinement's small polynomial factor.
    pub fn of(circuit: &Circuit) -> CanonicalCircuit {
        let n = circuit.qubit_count();
        let graph = circuit.interaction_graph();
        let graph_form = canonical::canonical_form(&graph);

        // Role lists: relabelling-invariant per-qubit gate traces.
        let colors = canonical::refine(&graph);
        let mut roles: Vec<Vec<RoleEntry>> = vec![Vec::new(); n];
        for (pos, gate) in circuit.gates().enumerate() {
            let kind = gate_kind(gate);
            let p = pos as u64;
            match gate.qubits() {
                (a, None) => roles[a.index()].push((p, 0, kind)),
                (a, Some(b)) if is_symmetric(gate) => {
                    roles[a.index()].push((p, 3, kind));
                    roles[b.index()].push((p, 3, kind));
                }
                (a, Some(b)) => {
                    roles[a.index()].push((p, 1, kind));
                    roles[b.index()].push((p, 2, kind));
                }
            }
        }

        // Canonical order: WL colour, then role list, then index (the
        // index tie-break is automorphism-safe; see the module docs).
        let mut order: Vec<Qubit> = (0..n).map(Qubit::new).collect();
        order.sort_by(|&a, &b| {
            let key_a = (colors[a.index()], &roles[a.index()], a.index());
            let key_b = (colors[b.index()], &roles[b.index()], b.index());
            key_a.cmp(&key_b)
        });
        let mut canonical_index = vec![0u64; n];
        for (i, q) in order.iter().enumerate() {
            canonical_index[q.index()] = i as u64;
        }

        // Fingerprint: the full gate sequence (with level boundaries) in
        // canonical labels, mixed with the graph fingerprint.
        let mut h = FingerprintHasher::new();
        h.mix(n as u64)
            .mix(circuit.gate_count() as u64)
            .mix(graph_form.fingerprint.fold64());
        for level in circuit.levels() {
            h.mix(leve_u64_marker());
            for gate in level.gates() {
                h.mix(gate_kind(gate));
                match gate.qubits() {
                    (a, None) => {
                        h.mix(canonical_index[a.index()]);
                    }
                    (a, Some(b)) => {
                        let (ca, cb) = (canonical_index[a.index()], canonical_index[b.index()]);
                        // Symmetric gates are written with sorted
                        // operands so an operand swap (or the
                        // transposition of a tied pair) cannot change
                        // the encoding.
                        if is_symmetric(gate) {
                            h.mix(ca.min(cb)).mix(ca.max(cb));
                        } else {
                            h.mix(ca).mix(cb);
                        }
                    }
                }
            }
        }
        CanonicalCircuit {
            fingerprint: h.finish(),
            graph_fingerprint: graph_form.fingerprint,
            order,
            exhausted: graph_form.exhausted,
        }
    }
}

/// Level-boundary marker mixed between levels of the fingerprint.
fn leve_u64_marker() -> u64 {
    0x4c45_5645_4c21_0000
}

/// Hashes everything about an environment that placement can observe:
/// qubit count, per-nucleus single-qubit delays, and the full coupling
/// table in weight units (`∞` for uncoupled pairs hashes as `∞`).
pub fn env_fingerprint(env: &Environment) -> u64 {
    let n = env.qubit_count();
    let mut h = FingerprintHasher::new();
    h.mix(n as u64);
    for v in 0..n {
        h.mix(f64_bits(
            env.single_qubit_delay(qcp_env::PhysicalQubit::new(v))
                .units(),
        ));
    }
    for a in 0..n {
        for b in (a + 1)..n {
            h.mix(f64_bits(env.weight_units(
                qcp_env::PhysicalQubit::new(a),
                qcp_env::PhysicalQubit::new(b),
            )));
        }
    }
    h.finish().fold64()
}

/// Hashes every [`PlacerConfig`] field that can change an outcome.
pub fn config_fingerprint(config: &PlacerConfig) -> u64 {
    let mut h = FingerprintHasher::new();
    h.mix(f64_bits(config.threshold.units()))
        .mix(config.max_candidates as u64)
        .mix(u64::from(config.lookahead))
        .mix(config.fine_tune_rounds as u64);
    h.mix(match config.cost_model.execution {
        crate::cost::ExecutionModel::Overlapped => 1,
        crate::cost::ExecutionModel::Leveled => 2,
    });
    match config.cost_model.reuse_cap {
        Some(cap) => h.mix(1).mix(f64_bits(cap)),
        None => h.mix(0),
    };
    h.mix(u64::from(config.router.leaf_override))
        .mix(u64::from(config.extraction.commutation_aware));
    match config.extraction.max_gates {
        Some(m) => h.mix(1).mix(m as u64),
        None => h.mix(0),
    };
    h.mix(match config.strategy {
        Strategy::Exact => 1,
        Strategy::Anneal => 2,
        Strategy::Hybrid => 3,
    });
    match config.budget.max_nodes {
        Some(nodes) => h.mix(1).mix(nodes),
        None => h.mix(0),
    };
    match config.budget.deadline {
        Some(d) => h.mix(1).mix(d.as_nanos() as u64),
        None => h.mix(0),
    };
    h.mix(config.anneal.iterations as u64)
        .mix(config.anneal.seed);
    h.finish().fold64()
}

/// Combines the three value-derived fingerprints into one key. Every
/// layer (CLI, batch, serve) obtains keys through
/// [`PlaceRequest::cache_key`](crate::request::PlaceRequest::cache_key),
/// which calls this — there is exactly one keying function.
pub fn cache_key(
    canonical: &CanonicalCircuit,
    env: &Environment,
    config: &PlacerConfig,
) -> CacheKey {
    let mut h = FingerprintHasher::new();
    h.mix(canonical.fingerprint.fold64())
        .mix(canonical.graph_fingerprint.fold64())
        .mix(env_fingerprint(env))
        .mix(config_fingerprint(config));
    CacheKey(h.finish().as_u128())
}

/// Rewrites `outcome` (placed for a circuit with canonical order
/// `stored_order`) onto the labels of a requesting circuit with
/// canonical order `request_order`.
///
/// Physical-space data is cloned verbatim; each stage's placement and
/// subcircuit are renamed through `map[stored qubit] = request qubit`
/// (qubits at the same canonical position correspond). Returns `None`
/// if the orders are inconsistent (different widths — impossible for
/// equal fingerprints — or a placement that fails validation), which
/// callers treat as a cache miss.
pub fn remap_outcome(
    outcome: &PlacementOutcome,
    stored_order: &[Qubit],
    request_order: &[Qubit],
) -> Option<PlacementOutcome> {
    if stored_order.len() != request_order.len() {
        return None;
    }
    let width = stored_order.len();
    if stored_order == request_order {
        return Some(outcome.clone());
    }
    let mut map: Vec<Qubit> = vec![Qubit::new(0); width];
    for (stored, requested) in stored_order.iter().zip(request_order) {
        if stored.index() >= width || requested.index() >= width {
            return None;
        }
        map[stored.index()] = *requested;
    }
    let mut stages = Vec::with_capacity(outcome.stages.len());
    for stage in &outcome.stages {
        let old = &stage.placement;
        let mut assignment = vec![qcp_env::PhysicalQubit::new(0); old.logical_count()];
        for logical in 0..old.logical_count() {
            let stored = Qubit::new(logical);
            assignment[map[logical].index()] = old.physical(stored);
        }
        let placement = Placement::new(assignment, old.physical_count()).ok()?;
        let subcircuit = stage.subcircuit.map_qubits(width, |q| map[q.index()]);
        stages.push(Stage {
            placement,
            swaps: stage.swaps.clone(),
            subcircuit,
        });
    }
    Some(PlacementOutcome {
        stages,
        schedule: outcome.schedule.clone(),
        runtime: outcome.runtime,
        resolution: outcome.resolution,
    })
}

/// One stored result: the outcome, the inserting circuit's canonical
/// order (the isomorphism witness), and an LRU tick.
struct CacheEntry {
    outcome: PlacementOutcome,
    order: Vec<Qubit>,
    last_used: u64,
}

struct CacheInner {
    map: HashMap<u128, CacheEntry>,
    tick: u64,
}

/// A bounded, concurrency-safe placement result cache.
///
/// Eviction is least-recently-used via a tick counter; the eviction
/// scan is `O(len)` but `len` is bounded by the configured capacity
/// (hundreds at most), so it is noise next to a placement. Capacity 0
/// disables the cache entirely: every lookup misses and inserts are
/// dropped. Counters are atomics so readers (stats endpoints) never
/// contend with the map lock.
pub struct PlacementCache {
    inner: Mutex<CacheInner>,
    capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    remapped: AtomicU64,
}

impl std::fmt::Debug for PlacementCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PlacementCache")
            .field("capacity", &self.capacity)
            .field("len", &self.len())
            .field("hits", &self.hits())
            .field("misses", &self.misses())
            .finish()
    }
}

impl PlacementCache {
    /// A cache holding at most `capacity` outcomes (0 disables caching).
    pub fn new(capacity: usize) -> PlacementCache {
        PlacementCache {
            inner: Mutex::new(CacheInner {
                map: HashMap::new(),
                tick: 0,
            }),
            capacity,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            remapped: AtomicU64::new(0),
        }
    }

    /// Configured capacity (0 = disabled).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of cached outcomes.
    pub fn len(&self) -> usize {
        self.lock().map.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Cache hits so far (includes remapped hits).
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Cache misses so far.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Hits that required a witness remap (the requester's labels
    /// differed from the inserting circuit's).
    pub fn remapped(&self) -> u64 {
        self.remapped.load(Ordering::Relaxed)
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, CacheInner> {
        // A panic while holding the lock cannot corrupt the map (all
        // mutations are single assignments); recover instead of
        // propagating poison.
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Looks up `key` and, on a hit, rewrites the stored outcome onto
    /// the labels witnessed by `request_order`. The boolean reports
    /// whether a (non-identity) remap happened.
    pub fn lookup(
        &self,
        key: CacheKey,
        request_order: &[Qubit],
    ) -> Option<(PlacementOutcome, bool)> {
        if self.capacity == 0 {
            self.misses.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        let mut inner = self.lock();
        inner.tick += 1;
        let tick = inner.tick;
        let result = match inner.map.get_mut(&key.as_u128()) {
            Some(entry) => {
                entry.last_used = tick;
                remap_outcome(&entry.outcome, &entry.order, request_order)
                    .map(|outcome| (outcome, entry.order != request_order))
            }
            None => None,
        };
        drop(inner);
        match result {
            Some((outcome, was_remapped)) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                if was_remapped {
                    self.remapped.fetch_add(1, Ordering::Relaxed);
                }
                Some((outcome, was_remapped))
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Stores an outcome under `key` with its witness order, evicting
    /// the least-recently-used entry if at capacity. No-op when the
    /// cache is disabled.
    pub fn insert(&self, key: CacheKey, order: Vec<Qubit>, outcome: PlacementOutcome) {
        if self.capacity == 0 {
            return;
        }
        let mut inner = self.lock();
        inner.tick += 1;
        let tick = inner.tick;
        if inner.map.len() >= self.capacity && !inner.map.contains_key(&key.as_u128()) {
            if let Some(&oldest) = inner
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k)
            {
                inner.map.remove(&oldest);
            }
        }
        inner.map.insert(
            key.as_u128(),
            CacheEntry {
                outcome,
                order,
                last_used: tick,
            },
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcp_circuit::library;
    use qcp_env::{molecules, Threshold};

    fn permuted(circuit: &Circuit, perm: &[usize]) -> Circuit {
        circuit.map_qubits(circuit.qubit_count(), |q| Qubit::new(perm[q.index()]))
    }

    #[test]
    fn relabelled_circuits_share_fingerprints() {
        for circuit in [
            library::qft(4),
            library::qec3_encoder(),
            library::pseudo_cat(5),
        ] {
            let n = circuit.qubit_count();
            let base = CanonicalCircuit::of(&circuit);
            let reversed: Vec<usize> = (0..n).rev().collect();
            let rotated: Vec<usize> = (0..n).map(|i| (i + 1) % n).collect();
            for perm in [reversed, rotated] {
                let relabelled = CanonicalCircuit::of(&permuted(&circuit, &perm));
                assert_eq!(relabelled.fingerprint, base.fingerprint);
                assert_eq!(relabelled.graph_fingerprint, base.graph_fingerprint);
            }
        }
    }

    #[test]
    fn different_circuits_have_distinct_fingerprints() {
        let qft = CanonicalCircuit::of(&library::qft(4));
        let cat = CanonicalCircuit::of(&library::pseudo_cat(4));
        assert_ne!(qft.fingerprint, cat.fingerprint);
        // Same interaction graph, different angles → different problem.
        let mut a = Circuit::builder(2);
        a.gate(Gate::zz(Qubit::new(0), Qubit::new(1), 90.0));
        let mut b = Circuit::builder(2);
        b.gate(Gate::zz(Qubit::new(0), Qubit::new(1), 45.0));
        let (ca, cb) = (
            CanonicalCircuit::of(&a.build()),
            CanonicalCircuit::of(&b.build()),
        );
        assert_eq!(ca.graph_fingerprint, cb.graph_fingerprint);
        assert_ne!(ca.fingerprint, cb.fingerprint);
    }

    #[test]
    fn cache_round_trips_identity_and_remap() {
        let env = molecules::acetyl_chloride();
        let config = PlacerConfig::with_threshold(Threshold::new(100.0));
        let circuit = library::qec3_encoder();
        let canon = CanonicalCircuit::of(&circuit);
        let key = cache_key(&canon, &env, &config);

        let placer = crate::Placer::new(&env, config.clone());
        let outcome = placer.place(&circuit).expect("place");

        let cache = PlacementCache::new(8);
        assert!(cache.lookup(key, &canon.order).is_none());
        cache.insert(key, canon.order.clone(), outcome.clone());

        // Identity hit: same circuit back, no remap.
        let (hit, remapped) = cache.lookup(key, &canon.order).expect("hit");
        assert!(!remapped);
        assert_eq!(hit.runtime, outcome.runtime);
        assert_eq!(hit.stages[0].placement, outcome.stages[0].placement);

        // Relabelled hit: same key, remapped witness.
        let perm: Vec<usize> = (0..circuit.qubit_count()).rev().collect();
        let relabelled = permuted(&circuit, &perm);
        let canon_b = CanonicalCircuit::of(&relabelled);
        assert_eq!(cache_key(&canon_b, &env, &config), key);
        let (hit_b, remapped_b) = cache.lookup(key, &canon_b.order).expect("hit");
        assert!(remapped_b);
        assert_eq!(hit_b.runtime, outcome.runtime);
        // The remapped placement must place the *relabelled* circuit's
        // qubits on the same nuclei the original's images used.
        for (stored, requested) in canon.order.iter().zip(&canon_b.order) {
            assert_eq!(
                hit_b.stages[0].placement.physical(*requested),
                outcome.stages[0].placement.physical(*stored),
            );
        }
        assert_eq!(cache.hits(), 2);
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.remapped(), 1);
    }

    #[test]
    fn lru_eviction_is_bounded() {
        let env = molecules::acetyl_chloride();
        let config = PlacerConfig::with_threshold(Threshold::new(100.0));
        let placer = crate::Placer::new(&env, config.clone());
        let cache = PlacementCache::new(2);
        let circuits = [
            library::qec3_encoder(),
            library::pseudo_cat(3),
            library::qft(3),
        ];
        let mut keys = Vec::new();
        for circuit in &circuits {
            let canon = CanonicalCircuit::of(circuit);
            let key = cache_key(&canon, &env, &config);
            let outcome = placer.place(circuit).expect("place");
            cache.insert(key, canon.order.clone(), outcome);
            keys.push((key, canon.order));
        }
        assert_eq!(cache.len(), 2);
        // The first insert is the least recently used → evicted.
        assert!(cache.lookup(keys[0].0, &keys[0].1).is_none());
        assert!(cache.lookup(keys[2].0, &keys[2].1).is_some());
    }

    #[test]
    fn capacity_zero_disables() {
        let cache = PlacementCache::new(0);
        let env = molecules::acetyl_chloride();
        let config = PlacerConfig::with_threshold(Threshold::new(100.0));
        let circuit = library::qec3_encoder();
        let canon = CanonicalCircuit::of(&circuit);
        let key = cache_key(&canon, &env, &config);
        let outcome = crate::Placer::new(&env, config)
            .place(&circuit)
            .expect("place");
        cache.insert(key, canon.order.clone(), outcome);
        assert!(cache.lookup(key, &canon.order).is_none());
        assert_eq!(cache.len(), 0);
    }

    #[test]
    fn config_changes_change_the_key() {
        let env = molecules::acetyl_chloride();
        let circuit = library::qec3_encoder();
        let canon = CanonicalCircuit::of(&circuit);
        let base = PlacerConfig::with_threshold(Threshold::new(100.0));
        let key = cache_key(&canon, &env, &base);
        let mut other = base.clone();
        other.strategy = Strategy::Hybrid;
        assert_ne!(cache_key(&canon, &env, &other), key);
        let mut budgeted = base.clone();
        budgeted.budget = crate::SearchBudget::nodes(1_000);
        assert_ne!(cache_key(&canon, &env, &budgeted), key);
        // A different environment changes the key too.
        let other_env = molecules::trans_crotonic_acid();
        assert_ne!(cache_key(&canon, &other_env, &base), key);
    }
}
