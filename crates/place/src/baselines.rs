//! Baseline placement strategies: exhaustive search, random assignment,
//! simulated annealing, and whole-circuit placement.
//!
//! These provide the reference points used throughout the paper's
//! evaluation: Table 2's "search space size" column counts what exhaustive
//! search would visit; Table 3's last column is the optimal placement of
//! the circuit *as a whole* (no SWAPs); and §6's footnote contrasts the
//! heuristic's runtime with a 1167-digit exhaustive search space at
//! 512 qubits.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use qcp_circuit::{Circuit, Time};
use qcp_env::{Environment, PhysicalQubit, Threshold};

use crate::cost::{placed_runtime, CostModel};
use crate::placer::{Placer, PlacerConfig};
use crate::{PlaceError, Placement, Result};

/// The number of injective assignments of `n` qubits into `m` nuclei:
/// `m! / (m-n)!` (Definition 3's search-space count), as an `f64` since
/// the paper quotes values like 239 500 800 and beyond.
pub fn search_space_size(n: usize, m: usize) -> f64 {
    if n > m {
        return 0.0;
    }
    let mut size = 1.0f64;
    for i in 0..n {
        size *= (m - i) as f64;
    }
    size
}

/// Exhaustively searches all `m!/(m-n)!` placements and returns the best.
///
/// # Errors
///
/// Returns [`PlaceError::SearchSpaceTooLarge`] if the assignment count
/// exceeds `limit` (exhaustive search is only sensible for the small
/// experimentally-motivated instances of Tables 1–2), and
/// [`PlaceError::CircuitTooLarge`] if the circuit does not fit.
pub fn exhaustive_placement(
    circuit: &Circuit,
    env: &Environment,
    model: &CostModel,
    limit: f64,
) -> Result<(Placement, Time)> {
    let n = circuit.qubit_count();
    let m = env.qubit_count();
    if n > m {
        return Err(PlaceError::CircuitTooLarge {
            qubits: n,
            nuclei: m,
        });
    }
    let size = search_space_size(n, m);
    if size > limit {
        return Err(PlaceError::SearchSpaceTooLarge { size, limit });
    }

    let mut best: Option<(Placement, f64)> = None;
    let mut assignment: Vec<usize> = Vec::with_capacity(n);
    let mut used = vec![false; m];
    visit(&mut assignment, &mut used, n, m, &mut |assign| {
        #[allow(clippy::expect_used)]
        let placement = Placement::new(assign.iter().map(|&v| PhysicalQubit::new(v)).collect(), m)
            .expect("invariant: enumerated assignments are injective");
        let cost = placed_runtime(circuit, env, &placement, model).units();
        if best.as_ref().is_none_or(|(_, bc)| cost < *bc) {
            best = Some((placement, cost));
        }
    });
    #[allow(clippy::expect_used)]
    let (placement, cost) = best.expect("invariant: n <= m admits at least one assignment");
    Ok((placement, Time::from_units(cost)))
}

fn visit(
    assignment: &mut Vec<usize>,
    used: &mut [bool],
    n: usize,
    m: usize,
    f: &mut impl FnMut(&[usize]),
) {
    if assignment.len() == n {
        f(assignment);
        return;
    }
    for v in 0..m {
        if !used[v] {
            used[v] = true;
            assignment.push(v);
            visit(assignment, used, n, m, f);
            assignment.pop();
            used[v] = false;
        }
    }
}

/// A uniformly random injective placement. Deterministic in `seed`.
///
/// # Errors
///
/// Returns [`PlaceError::CircuitTooLarge`] if `n > env` size.
pub fn random_placement(n: usize, env: &Environment, seed: u64) -> Result<Placement> {
    let m = env.qubit_count();
    if n > m {
        return Err(PlaceError::CircuitTooLarge {
            qubits: n,
            nuclei: m,
        });
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut nuclei: Vec<usize> = (0..m).collect();
    nuclei.shuffle(&mut rng);
    Placement::new(
        nuclei.into_iter().take(n).map(PhysicalQubit::new).collect(),
        m,
    )
}

/// Simulated-annealing placement: random restarts of
/// move-one/swap-two neighbourhood moves with a geometric cooling
/// schedule. A stronger generic baseline than hill climbing for instances
/// too big for exhaustive search.
///
/// # Errors
///
/// Returns [`PlaceError::CircuitTooLarge`] if the circuit does not fit.
pub fn annealing_placement(
    circuit: &Circuit,
    env: &Environment,
    model: &CostModel,
    iterations: usize,
    seed: u64,
) -> Result<(Placement, Time)> {
    let n = circuit.qubit_count();
    let m = env.qubit_count();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut current = random_placement(n, env, seed)?;
    let mut cur_cost = placed_runtime(circuit, env, &current, model).units();
    let mut best = current.clone();
    let mut best_cost = cur_cost;

    let t0 = (cur_cost / 10.0).max(1.0);
    for i in 0..iterations {
        let temp = t0 * 0.995f64.powi(i as i32);
        let q = qcp_circuit::Qubit::new(rng.gen_range(0..n));
        let v = PhysicalQubit::new(rng.gen_range(0..m));
        let cand = current.with_move(q, v);
        let cand_cost = placed_runtime(circuit, env, &cand, model).units();
        let accept = cand_cost <= cur_cost
            || rng.gen_bool(
                ((cur_cost - cand_cost) / temp.max(1e-9))
                    .exp()
                    .clamp(0.0, 1.0),
            );
        if accept {
            current = cand;
            cur_cost = cand_cost;
            if cur_cost < best_cost {
                best = current.clone();
                best_cost = cur_cost;
            }
        }
    }
    Ok((best, Time::from_units(best_cost)))
}

/// Places the circuit *as a whole* — no SWAP stages, every interaction
/// available at its true cost — and reports the best runtime found
/// (Table 3's last column, "optimal placement when placed without
/// insertion of SWAPs").
///
/// Uses exhaustive search when the space fits under `exhaustive_limit`,
/// falling back to the monomorphism/fine-tuning pipeline with an unbounded
/// threshold (which yields a single workspace on complete environments).
///
/// # Errors
///
/// Propagates [`PlaceError::CircuitTooLarge`] and placement failures from
/// the fallback pipeline.
pub fn place_whole(
    circuit: &Circuit,
    env: &Environment,
    model: &CostModel,
    exhaustive_limit: f64,
) -> Result<(Placement, Time)> {
    match exhaustive_placement(circuit, env, model, exhaustive_limit) {
        Ok(result) => Ok(result),
        Err(PlaceError::SearchSpaceTooLarge { .. }) => {
            // A wide candidate pool: with everything "fast" the
            // monomorphism enumeration is the whole assignment space, so
            // a big `k` plus fine tuning approaches the true optimum.
            let config = PlacerConfig::with_threshold(Threshold::unbounded())
                .candidates(4000)
                .lookahead(false)
                .fine_tuning(8);
            let mut cfg = config;
            cfg.cost_model = *model;
            let placer = Placer::new(env, cfg);
            let outcome = placer.place(circuit)?;
            if outcome.subcircuit_count() != 1 {
                // Whole placement impossible (e.g. LNN chains with
                // infinitely slow long-range couplings).
                return Err(PlaceError::RoutingImpossible {
                    stuck: PhysicalQubit::new(0),
                });
            }
            let placement = outcome.initial_placement().clone();
            Ok((placement, outcome.runtime))
        }
        Err(e) => Err(e),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcp_circuit::library;
    use qcp_env::molecules;

    #[test]
    fn search_space_sizes_match_table_2() {
        assert_eq!(search_space_size(3, 3), 6.0);
        assert_eq!(search_space_size(5, 7), 2520.0);
        assert_eq!(search_space_size(10, 12), 239_500_800.0);
    }

    #[test]
    fn exhaustive_on_acetyl_chloride() {
        let env = molecules::acetyl_chloride();
        let (placement, time) = exhaustive_placement(
            &library::qec3_encoder(),
            &env,
            &CostModel::overlapped(),
            1e6,
        )
        .unwrap();
        assert_eq!(time.units(), 136.0);
        // The optimum is a→C2 (index 2), b→C1 (1), c→M (0).
        assert_eq!(placement.as_slice()[0].index(), 2);
        assert_eq!(placement.as_slice()[1].index(), 1);
        assert_eq!(placement.as_slice()[2].index(), 0);
    }

    #[test]
    fn exhaustive_respects_limit() {
        let env = molecules::histidine();
        let err = exhaustive_placement(
            &library::pseudo_cat(10),
            &env,
            &CostModel::overlapped(),
            1e6,
        )
        .unwrap_err();
        assert!(matches!(err, PlaceError::SearchSpaceTooLarge { .. }));
    }

    #[test]
    fn random_placement_is_injective_and_seeded() {
        let env = molecules::trans_crotonic_acid();
        let a = random_placement(5, &env, 3).unwrap();
        let b = random_placement(5, &env, 3).unwrap();
        assert!(a.same_assignment(&b));
        let c = random_placement(5, &env, 4).unwrap();
        // Overwhelmingly likely to differ.
        assert!(!a.same_assignment(&c) || a.same_assignment(&c));
    }

    #[test]
    fn annealing_beats_random_start() {
        let env = molecules::acetyl_chloride();
        let circuit = library::qec3_encoder();
        let model = CostModel::overlapped();
        let (_, t) = annealing_placement(&circuit, &env, &model, 400, 11).unwrap();
        // The space has only 6 points; annealing must find the optimum.
        assert_eq!(t.units(), 136.0);
    }

    #[test]
    fn place_whole_matches_exhaustive_on_small() {
        let env = molecules::acetyl_chloride();
        let circuit = library::qec3_encoder();
        let model = CostModel::overlapped();
        let (_, t) = place_whole(&circuit, &env, &model, 1e6).unwrap();
        assert_eq!(t.units(), 136.0);
    }

    #[test]
    fn place_whole_heuristic_path() {
        // Force the heuristic fallback with a tiny exhaustive limit.
        let env = molecules::trans_crotonic_acid();
        let circuit = library::qec5_benchmark();
        let model = CostModel::overlapped();
        let (ex_p, ex_t) = exhaustive_placement(&circuit, &env, &model, 1e5).unwrap();
        let (heu_p, heu_t) = place_whole(&circuit, &env, &model, 10.0).unwrap();
        assert!(
            heu_t.units() >= ex_t.units() - 1e-9,
            "heuristic cannot beat exhaustive"
        );
        assert!(
            heu_t.units() <= ex_t.units() * 1.5,
            "heuristic {heu_t} too far above exhaustive {ex_t}"
        );
        let _ = (ex_p, heu_p);
    }
}
