//! SWAP-permutation routing (§5.2 and §5.3).
//!
//! Between two consecutive subcircuit placements the machine state must be
//! permuted: the value at nucleus `v` has to reach nucleus `π(v)`, moving
//! only along *fast* interactions and only via SWAP gates, with
//! non-intersecting SWAPs allowed in parallel. The paper's algorithm:
//!
//! 1. cut the adjacency graph into two connected, balanced halves `G1`,
//!    `G2` (the crossing edges form the *communication channel*);
//! 2. colour each value white (destination in `G1`) or black (destination
//!    in `G2`); values with no destination — nuclei that host no logical
//!    qubit — are wildcards, coloured to balance the count;
//! 3. funnel black values toward the channel inside `G1` (the "air
//!    bubbles rise / water falls" picture) while white values funnel in
//!    `G2`, exchanging one pair across the channel whenever both ends are
//!    ready — our implementation, like the paper's, does **not** block the
//!    channel, and uses every channel edge in parallel;
//! 4. once the halves are colour-pure, recurse independently (the two
//!    sub-schedules run in parallel).
//!
//! The *leaf–target override* of §5.3 is implemented too: whenever a value
//! can be swapped directly into a leaf nucleus that is its final
//! destination, the swap is done eagerly and the leaf is excluded from the
//! rest of the stage (the paper reports 0–5% depth savings).
//!
//! For bounded-degree graphs the depth is `O(n)` (8n + O(1) for `s = 1/2`,
//! §5.2), which property tests in this crate check empirically.

use std::collections::HashSet;

use qcp_env::PhysicalQubit;
use qcp_graph::bisection::balanced_connected_bisection;
use qcp_graph::traversal::{connected_components, multi_source_distances, shortest_path};
use qcp_graph::{Graph, NodeId};

use crate::cost::{PlacedGate, Schedule};
use crate::{PlaceError, Result};

/// Router configuration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RouterConfig {
    /// Enables the leaf–target override heuristic (§5.3). On by default.
    pub leaf_override: bool,
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig {
            leaf_override: true,
        }
    }
}

/// A parallel SWAP schedule: levels of vertex-disjoint swaps along
/// adjacency-graph edges.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SwapSchedule {
    levels: Vec<Vec<(PhysicalQubit, PhysicalQubit)>>,
}

impl SwapSchedule {
    /// The swap levels, outermost first.
    pub fn levels(&self) -> &[Vec<(PhysicalQubit, PhysicalQubit)>] {
        &self.levels
    }

    /// Number of levels (the quantity §5.2 minimizes).
    pub fn depth(&self) -> usize {
        self.levels.len()
    }

    /// Total number of SWAP gates.
    pub fn swap_count(&self) -> usize {
        self.levels.iter().map(Vec::len).sum()
    }

    /// Returns `true` if no swaps are needed.
    pub fn is_empty(&self) -> bool {
        self.levels.is_empty()
    }

    /// Converts to a costed [`Schedule`] (each SWAP weighs three maximal
    /// couplings).
    pub fn to_schedule(&self) -> Schedule {
        let mut s = Schedule::new();
        for level in &self.levels {
            s.push_level(level.iter().map(|&(a, b)| PlacedGate::swap(a, b)).collect());
        }
        s
    }

    /// Simulates the schedule: returns `final_pos` where the value
    /// initially at vertex `v` ends at `final_pos[v]`.
    pub fn simulate(&self, n: usize) -> Vec<usize> {
        // token_at[v] = original home of the value now at v.
        let mut token_at: Vec<usize> = (0..n).collect();
        for level in &self.levels {
            for &(a, b) in level {
                token_at.swap(a.index(), b.index());
            }
        }
        let mut pos = vec![0usize; n];
        for (v, &t) in token_at.iter().enumerate() {
            pos[t] = v;
        }
        pos
    }
}

/// Routes the permutation `targets` on `graph`: the value at vertex `v`
/// must reach `targets[v]`; `None` marks a don't-care value. Returns a
/// parallel swap schedule along graph edges.
///
/// # Errors
///
/// * [`PlaceError::InvalidPlacement`] if `targets` has the wrong length or
///   repeats a destination;
/// * [`PlaceError::RoutingImpossible`] if a value's destination lies in a
///   different connected component.
pub fn route_permutation(
    graph: &Graph,
    targets: &[Option<usize>],
    config: &RouterConfig,
) -> Result<SwapSchedule> {
    let n = graph.node_count();
    if targets.len() != n {
        return Err(PlaceError::InvalidPlacement {
            message: format!("targets length {} != graph size {n}", targets.len()),
        });
    }
    let mut seen = vec![false; n];
    for t in targets.iter().flatten() {
        if *t >= n || seen[*t] {
            return Err(PlaceError::InvalidPlacement {
                message: format!("destination {t} repeated or out of range"),
            });
        }
        seen[*t] = true;
    }

    // Validate component-wise reachability, then route each component.
    let components = connected_components(graph);
    let mut comp_of = vec![usize::MAX; n];
    for (ci, comp) in components.iter().enumerate() {
        for &v in comp {
            comp_of[v.index()] = ci;
        }
    }
    for (v, t) in targets.iter().enumerate() {
        if let Some(t) = *t {
            if comp_of[v] != comp_of[t] {
                return Err(PlaceError::RoutingImpossible {
                    stuck: PhysicalQubit::new(v),
                });
            }
        }
    }

    let mut dest: Vec<Option<usize>> = targets.to_vec();
    let mut per_component: Vec<Vec<Vec<(usize, usize)>>> = Vec::new();
    for comp in &components {
        let active: Vec<usize> = comp.iter().map(|v| v.index()).collect();
        per_component.push(route_rec(graph, &active, &mut dest, config)?);
    }
    // Components are disjoint: run their schedules in parallel.
    let levels = merge_parallel(per_component);
    Ok(SwapSchedule {
        levels: levels
            .into_iter()
            .map(|lv| {
                lv.into_iter()
                    .map(|(a, b)| (PhysicalQubit::new(a), PhysicalQubit::new(b)))
                    .collect()
            })
            .collect(),
    })
}

/// Zips any number of vertex-disjoint level sequences into one.
fn merge_parallel(mut parts: Vec<Vec<Vec<(usize, usize)>>>) -> Vec<Vec<(usize, usize)>> {
    let depth = parts.iter().map(Vec::len).max().unwrap_or(0);
    let mut out = Vec::with_capacity(depth);
    for i in 0..depth {
        let mut level = Vec::new();
        for part in &mut parts {
            if i < part.len() {
                level.append(&mut part[i]);
            }
        }
        if !level.is_empty() {
            out.push(level);
        }
    }
    out
}

fn is_done(active: &[usize], dest: &[Option<usize>]) -> bool {
    active.iter().all(|&v| dest[v].is_none_or(|d| d == v))
}

fn route_rec(
    graph: &Graph,
    active: &[usize],
    dest: &mut Vec<Option<usize>>,
    config: &RouterConfig,
) -> Result<Vec<Vec<(usize, usize)>>> {
    if is_done(active, dest) {
        return Ok(Vec::new());
    }
    if active.len() < 2 {
        // A lone unsatisfied vertex cannot be fixed.
        return Err(PlaceError::RoutingImpossible {
            stuck: PhysicalQubit::new(active.first().copied().unwrap_or(0)),
        });
    }

    // Bisect the active induced subgraph.
    let active_ids: Vec<NodeId> = active.iter().map(|&v| NodeId::new(v)).collect();
    let (sub, back) = graph
        .induced(&active_ids)
        .map_err(|e| PlaceError::InvalidPlacement {
            message: format!("induced subgraph failed: {e}"),
        })?;
    let bisection =
        balanced_connected_bisection(&sub).map_err(|e| PlaceError::InvalidPlacement {
            message: format!("bisection failed: {e}"),
        })?;
    let left: Vec<usize> = bisection
        .left
        .iter()
        .map(|&v| back[v.index()].index())
        .collect();
    let right: Vec<usize> = bisection
        .right
        .iter()
        .map(|&v| back[v.index()].index())
        .collect();
    let channel: Vec<(usize, usize)> = bisection
        .channel
        .iter()
        .map(|&(a, b)| (back[a.index()].index(), back[b.index()].index()))
        .collect();

    let mut in_left = vec![false; graph.node_count()];
    for &v in &left {
        in_left[v] = true;
    }

    // Colour values: White = destination in the left half.
    // Wildcards are assigned to balance, preferring their current side so
    // they move as little as possible.
    let mut white = vec![false; graph.node_count()];
    let mut fixed_white = 0usize;
    let mut wild: Vec<usize> = Vec::new();
    for &v in active {
        match dest[v] {
            Some(d) => {
                if in_left[d] {
                    white[v] = true;
                    fixed_white += 1;
                }
            }
            None => wild.push(v),
        }
    }
    let mut need_white = left.len() - fixed_white.min(left.len());
    debug_assert!(
        fixed_white <= left.len(),
        "more fixed whites than room in the left half"
    );
    // Wildcards already in the left half take white first.
    wild.sort_unstable_by_key(|&v| (!in_left[v], v));
    for &v in &wild {
        if need_white > 0 {
            white[v] = true;
            need_white -= 1;
        }
    }

    // Exchange phase.
    let mut frozen: HashSet<usize> = HashSet::new();
    let mut levels: Vec<Vec<(usize, usize)>> = Vec::new();
    let max_iters = 8 * active.len() + 16; // safety margin over the 8n bound
    for _ in 0..max_iters {
        let misplaced = active
            .iter()
            .any(|&v| !frozen.contains(&v) && (white[v] != in_left[v]));
        if !misplaced {
            break;
        }
        let level = build_level(
            graph,
            active,
            &in_left,
            &channel,
            &mut white,
            dest,
            &mut frozen,
            config,
        );
        if level.is_empty() {
            return Err(PlaceError::RoutingImpossible {
                stuck: PhysicalQubit::new(
                    active
                        .iter()
                        .copied()
                        .find(|&v| white[v] != in_left[v])
                        .unwrap_or(active[0]),
                ),
            });
        }
        levels.push(level);
    }
    debug_assert!(
        active
            .iter()
            .all(|&v| frozen.contains(&v) || white[v] == in_left[v]),
        "exchange phase exceeded its iteration budget"
    );

    // Recurse on both halves (minus satisfied frozen leaves) in parallel.
    let remaining = |side: &[usize]| -> Vec<usize> {
        side.iter()
            .copied()
            .filter(|v| !frozen.contains(v))
            .collect()
    };
    let (la, lb) = (remaining(&left), remaining(&right));
    let sub_a = if la.is_empty() {
        Vec::new()
    } else {
        route_rec(graph, &la, dest, config)?
    };
    let sub_b = if lb.is_empty() {
        Vec::new()
    } else {
        route_rec(graph, &lb, dest, config)?
    };
    levels.extend(merge_parallel(vec![sub_a, sub_b]));
    Ok(levels)
}

/// Builds one parallel swap level and applies it to `white`/`dest`.
#[allow(clippy::too_many_arguments)]
fn build_level(
    graph: &Graph,
    active: &[usize],
    in_left: &[bool],
    channel: &[(usize, usize)],
    white: &mut [bool],
    dest: &mut Vec<Option<usize>>,
    frozen: &mut HashSet<usize>,
    config: &RouterConfig,
) -> Vec<(usize, usize)> {
    let mut used: HashSet<usize> = HashSet::new();
    let mut level: Vec<(usize, usize)> = Vec::new();
    let do_swap = |u: usize,
                   v: usize,
                   white: &mut [bool],
                   dest: &mut Vec<Option<usize>>,
                   used: &mut HashSet<usize>,
                   level: &mut Vec<(usize, usize)>| {
        dest.swap(u, v);
        white.swap(u, v);
        used.insert(u);
        used.insert(v);
        level.push((u, v));
    };

    let is_active: HashSet<usize> = active.iter().copied().collect();
    let channel_ends: HashSet<usize> = channel.iter().flat_map(|&(a, b)| [a, b]).collect();

    // Working degree (within active, excluding frozen) for leaf detection.
    let working_degree = |v: usize, frozen: &HashSet<usize>| -> usize {
        graph
            .neighbors(NodeId::new(v))
            .filter(|u| is_active.contains(&u.index()) && !frozen.contains(&u.index()))
            .count()
    };

    // 1. Leaf–target override (§5.3): deliver values straight into leaf
    //    destinations and retire the leaf.
    if config.leaf_override {
        for &v in active {
            if frozen.contains(&v) || used.contains(&v) {
                continue;
            }
            let Some(d) = dest[v] else { continue };
            if d == v || used.contains(&d) || frozen.contains(&d) {
                continue;
            }
            if !graph.has_edge(NodeId::new(v), NodeId::new(d)) {
                continue;
            }
            // The destination must be an active leaf, not a channel end
            // (freezing a channel endpoint could block the exchange), and
            // its current value must not itself be finalized there.
            if !is_active.contains(&d)
                || channel_ends.contains(&d)
                || working_degree(d, frozen) != 1
            {
                continue;
            }
            if dest[d] == Some(d) {
                continue;
            }
            do_swap(v, d, white, dest, &mut used, &mut level);
            frozen.insert(d);
        }
    }

    // 2. Cross-channel exchanges: black on the left end, white on the
    //    right end. (The channel is never blocked, and all channel edges
    //    work in parallel.)
    for &(a, b) in channel {
        if used.contains(&a) || used.contains(&b) || frozen.contains(&a) || frozen.contains(&b) {
            continue;
        }
        if !white[a] && white[b] {
            do_swap(a, b, white, dest, &mut used, &mut level);
        }
    }

    // 3. Funnel wrong-coloured values toward the channel on both sides.
    //    Distances are measured to a single *designated* channel edge
    //    (§5.2: "we suppose that the communication channel consists of a
    //    single edge, otherwise, choose a single edge") so both queues
    //    provably meet; the other channel edges still exchange
    //    opportunistically in step 2 above.
    let designated = channel.first().copied();
    let funnel = |side_is_left: bool,
                  white: &mut [bool],
                  dest: &mut Vec<Option<usize>>,
                  used: &mut HashSet<usize>,
                  level: &mut Vec<(usize, usize)>,
                  frozen: &HashSet<usize>| {
        let sources: Vec<NodeId> = designated
            .iter()
            .map(|&(a, b)| if side_is_left { a } else { b })
            .filter(|&v| !frozen.contains(&v))
            .map(NodeId::new)
            .collect();
        if sources.is_empty() {
            return;
        }
        let side: Vec<usize> = active
            .iter()
            .copied()
            .filter(|&v| in_left[v] == side_is_left && !frozen.contains(&v))
            .collect();
        let side_ids: Vec<NodeId> = side.iter().map(|&v| NodeId::new(v)).collect();
        let Ok((sub, back)) = graph.induced(&side_ids) else {
            return;
        };
        let local: std::collections::HashMap<usize, usize> =
            side.iter().enumerate().map(|(i, &v)| (v, i)).collect();
        let local_sources: Vec<NodeId> = sources
            .iter()
            .filter_map(|s| local.get(&s.index()).map(|&i| NodeId::new(i)))
            .collect();
        if local_sources.is_empty() {
            return;
        }
        let dist = multi_source_distances(&sub, &local_sources);
        // Wrong colour on this side: black-on-left or white-on-right.
        let mut wrong: Vec<usize> = side
            .iter()
            .copied()
            .filter(|&v| white[v] != in_left[v] && !used.contains(&v))
            .collect();
        wrong.sort_unstable_by_key(|&v| (dist[local[&v]], v));
        for v in wrong {
            if used.contains(&v) {
                continue;
            }
            let Some(dv) = dist[local[&v]] else { continue };
            if dv == 0 {
                continue; // already at the channel, waiting for the partner
            }
            // Step toward the channel through a right-coloured neighbour.
            let mut cands: Vec<usize> = sub
                .neighbors(NodeId::new(local[&v]))
                .map(|u| back[u.index()].index())
                .filter(|&u| {
                    !used.contains(&u)
                        && white[u] == in_left[u]
                        && dist[local[&u]].is_some_and(|du| du + 1 == dv)
                })
                .collect();
            cands.sort_unstable();
            if let Some(&u) = cands.first() {
                do_swap(v, u, white, dest, used, level);
            }
        }
    };
    funnel(true, white, dest, &mut used, &mut level, frozen);
    funnel(false, white, dest, &mut used, &mut level, frozen);

    level
}

/// A simple baseline router for comparison: completes the wildcard values
/// into a full permutation, then satisfies destinations one leaf of a
/// spanning tree at a time, moving each value along a shortest path (one
/// swap per level — no parallelism).
///
/// Guaranteed to terminate with `O(n·diameter)` swaps; the recursive
/// bisection router beats it on both depth and swap count, which the
/// ablation benchmark (`qcp-bench`, `ablation` binary) quantifies.
///
/// # Errors
///
/// Same failure conditions as [`route_permutation`].
pub fn route_sequential(graph: &Graph, targets: &[Option<usize>]) -> Result<SwapSchedule> {
    let n = graph.node_count();
    if targets.len() != n {
        return Err(PlaceError::InvalidPlacement {
            message: format!("targets length {} != graph size {n}", targets.len()),
        });
    }
    let components = connected_components(graph);
    let mut comp_of = vec![usize::MAX; n];
    for (ci, comp) in components.iter().enumerate() {
        for &v in comp {
            comp_of[v.index()] = ci;
        }
    }
    // Complete wildcards into a bijection per component.
    let mut dest: Vec<Option<usize>> = targets.to_vec();
    for comp in &components {
        let members: HashSet<usize> = comp.iter().map(|v| v.index()).collect();
        let mut taken: HashSet<usize> = HashSet::new();
        for &v in comp {
            if let Some(d) = dest[v.index()] {
                if !members.contains(&d) {
                    return Err(PlaceError::RoutingImpossible {
                        stuck: PhysicalQubit::new(v.index()),
                    });
                }
                taken.insert(d);
            }
        }
        let mut free: Vec<usize> = comp
            .iter()
            .map(|v| v.index())
            .filter(|d| !taken.contains(d))
            .collect();
        free.sort_unstable();
        for &v in comp {
            if dest[v.index()].is_none() {
                #[allow(clippy::expect_used)]
                let slot = free
                    .pop()
                    .expect("invariant: free slots match unassigned values per component");
                dest[v.index()] = Some(slot);
            }
        }
    }

    let mut levels: Vec<Vec<(usize, usize)>> = Vec::new();
    // Satisfy one destination at a time, shrinking the graph leaf-first.
    let mut alive: Vec<bool> = vec![true; n];
    let mut remaining: usize = n;
    while remaining > 0 {
        // Pick the largest-index leaf (or any vertex of degree <= 1) of
        // the alive induced subgraph.
        let alive_ids: Vec<NodeId> = (0..n).filter(|&v| alive[v]).map(NodeId::new).collect();
        let (sub, back) = graph
            .induced(&alive_ids)
            .map_err(|e| PlaceError::InvalidPlacement {
                message: format!("induced failed: {e}"),
            })?;
        // Spanning-tree leaf of each component: a vertex whose removal
        // keeps the rest connected. Use a BFS tree leaf.
        let mut leaf: Option<usize> = None;
        let mut visited = vec![false; sub.node_count()];
        for start in sub.nodes() {
            if visited[start.index()] {
                continue;
            }
            let tree = qcp_graph::spanning::RootedTree::bfs(&sub, start).map_err(|e| {
                PlaceError::InvalidPlacement {
                    message: format!("tree failed: {e}"),
                }
            })?;
            for &v in tree.nodes() {
                visited[v.index()] = true;
            }
            #[allow(clippy::expect_used)]
            let l = *tree
                .nodes()
                .last()
                .expect("invariant: BFS trees are non-empty");
            leaf = Some(back[l.index()].index());
            break;
        }
        #[allow(clippy::expect_used)]
        let d = leaf.expect("invariant: the alive set is non-empty until every target is routed");
        // Which value must end at d?
        let holder = (0..n).find(|&v| alive[v] && dest[v] == Some(d));
        if let Some(h) = holder {
            if h != d {
                #[allow(clippy::expect_used)]
                let (sh, sd) = (
                    alive_ids
                        .iter()
                        .position(|&x| x.index() == h)
                        .expect("invariant: holder is alive"),
                    alive_ids
                        .iter()
                        .position(|&x| x.index() == d)
                        .expect("invariant: destination is alive"),
                );
                let path = shortest_path(&sub, NodeId::new(sh), NodeId::new(sd)).ok_or(
                    PlaceError::RoutingImpossible {
                        stuck: PhysicalQubit::new(h),
                    },
                )?;
                for w in path.windows(2) {
                    let (a, b) = (back[w[0].index()].index(), back[w[1].index()].index());
                    dest.swap(a, b);
                    levels.push(vec![(a, b)]);
                }
            }
        }
        alive[d] = false;
        remaining -= 1;
    }
    Ok(SwapSchedule {
        levels: levels
            .into_iter()
            .map(|lv| {
                lv.into_iter()
                    .map(|(a, b)| (PhysicalQubit::new(a), PhysicalQubit::new(b)))
                    .collect()
            })
            .collect(),
    })
}

/// Checks that `schedule` realizes `targets` on `graph`: every swap uses a
/// graph edge, swaps within one level are vertex-disjoint, and every value
/// with a destination arrives.
pub fn verify_schedule(graph: &Graph, targets: &[Option<usize>], schedule: &SwapSchedule) -> bool {
    let n = graph.node_count();
    if targets.len() != n {
        return false;
    }
    for level in schedule.levels() {
        let mut used = HashSet::new();
        for &(a, b) in level {
            if !graph.has_edge(NodeId::new(a.index()), NodeId::new(b.index())) {
                return false;
            }
            if !used.insert(a.index()) || !used.insert(b.index()) {
                return false;
            }
        }
    }
    let pos = schedule.simulate(n);
    targets
        .iter()
        .enumerate()
        .all(|(v, t)| t.is_none_or(|d| pos[v] == d))
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcp_graph::generate;

    fn full_targets(perm: &[usize]) -> Vec<Option<usize>> {
        perm.iter().map(|&d| Some(d)).collect()
    }

    #[test]
    fn identity_needs_no_swaps() {
        let g = generate::chain(5);
        let t: Vec<Option<usize>> = (0..5).map(Some).collect();
        let s = route_permutation(&g, &t, &RouterConfig::default()).unwrap();
        assert!(s.is_empty());
        assert!(verify_schedule(&g, &t, &s));
    }

    #[test]
    fn adjacent_swap_on_chain() {
        let g = generate::chain(3);
        let t = full_targets(&[1, 0, 2]);
        let s = route_permutation(&g, &t, &RouterConfig::default()).unwrap();
        assert!(verify_schedule(&g, &t, &s));
        assert_eq!(s.swap_count(), 1);
    }

    #[test]
    fn full_reversal_on_chain() {
        // The worst-case permutation (n, 2, 3, …, n−1, 1)-style reversal.
        for n in 2..10 {
            let g = generate::chain(n);
            let perm: Vec<usize> = (0..n).rev().collect();
            let t = full_targets(&perm);
            let s = route_permutation(&g, &t, &RouterConfig::default()).unwrap();
            assert!(verify_schedule(&g, &t, &s), "reversal failed on n={n}");
            assert!(
                s.depth() <= 8 * n + 8,
                "depth {} exceeds linear bound for n={n}",
                s.depth()
            );
        }
    }

    #[test]
    fn asymptotic_witness_permutation() {
        // §5.2's witness: (n, 2, 3, …, n−1, 1) — exchange the chain ends.
        let n = 9;
        let g = generate::chain(n);
        let mut perm: Vec<usize> = (0..n).collect();
        perm.swap(0, n - 1);
        let t = full_targets(&perm);
        let s = route_permutation(&g, &t, &RouterConfig::default()).unwrap();
        assert!(verify_schedule(&g, &t, &s));
        // Moving a value across the whole chain needs at least n-1 swaps.
        assert!(s.swap_count() >= n - 1);
    }

    #[test]
    fn wildcards_are_dont_care() {
        let g = generate::chain(4);
        // Only one value is constrained: end to end.
        let mut t = vec![None; 4];
        t[0] = Some(3);
        let s = route_permutation(&g, &t, &RouterConfig::default()).unwrap();
        assert!(verify_schedule(&g, &t, &s));
    }

    #[test]
    fn routes_on_trees_grids_rings() {
        let graphs = vec![
            generate::star(7),
            generate::grid(3, 3),
            generate::ring(8),
            generate::caterpillar(4, 1),
        ];
        for g in graphs {
            let n = g.node_count();
            let perm: Vec<usize> = (0..n).rev().collect();
            let t = full_targets(&perm);
            let s = route_permutation(&g, &t, &RouterConfig::default()).unwrap();
            assert!(verify_schedule(&g, &t, &s), "failed on {g:?}");
        }
    }

    #[test]
    fn leaf_override_toggle_both_correct() {
        let g = generate::caterpillar(5, 2);
        let n = g.node_count();
        let perm: Vec<usize> = (1..n).chain([0]).collect();
        let t = full_targets(&perm);
        for cfg in [
            RouterConfig {
                leaf_override: true,
            },
            RouterConfig {
                leaf_override: false,
            },
        ] {
            let s = route_permutation(&g, &t, &cfg).unwrap();
            assert!(
                verify_schedule(&g, &t, &s),
                "leaf_override={}",
                cfg.leaf_override
            );
        }
    }

    #[test]
    fn cross_component_target_is_rejected() {
        let g = Graph::from_edges(4, [(0, 1), (2, 3)]).unwrap();
        let mut t = vec![None; 4];
        t[0] = Some(2);
        let err = route_permutation(&g, &t, &RouterConfig::default()).unwrap_err();
        assert!(matches!(err, PlaceError::RoutingImpossible { .. }));
    }

    #[test]
    fn within_component_routing_on_disconnected_graph() {
        let g = Graph::from_edges(4, [(0, 1), (2, 3)]).unwrap();
        let t = full_targets(&[1, 0, 3, 2]);
        let s = route_permutation(&g, &t, &RouterConfig::default()).unwrap();
        assert!(verify_schedule(&g, &t, &s));
        // Both component swaps fit in one parallel level.
        assert_eq!(s.depth(), 1);
        assert_eq!(s.swap_count(), 2);
    }

    #[test]
    fn duplicate_target_rejected() {
        let g = generate::chain(3);
        let t = vec![Some(1), Some(1), None];
        assert!(matches!(
            route_permutation(&g, &t, &RouterConfig::default()).unwrap_err(),
            PlaceError::InvalidPlacement { .. }
        ));
    }

    #[test]
    fn sequential_baseline_correct() {
        for (g, n) in [
            (generate::chain(6), 6),
            (generate::grid(2, 4), 8),
            (generate::ring(5), 5),
        ] {
            let perm: Vec<usize> = (0..n).rev().collect();
            let t = full_targets(&perm);
            let s = route_sequential(&g, &t).unwrap();
            assert!(verify_schedule(&g, &t, &s), "sequential failed on {g:?}");
        }
    }

    #[test]
    fn sequential_handles_wildcards() {
        let g = generate::chain(5);
        let mut t = vec![None; 5];
        t[1] = Some(4);
        let s = route_sequential(&g, &t).unwrap();
        assert!(verify_schedule(&g, &t, &s));
    }

    #[test]
    fn bisection_router_parallelism_beats_sequential_depth() {
        let g = generate::chain(10);
        let perm: Vec<usize> = (0..10).rev().collect();
        let t = full_targets(&perm);
        let par = route_permutation(&g, &t, &RouterConfig::default()).unwrap();
        let seq = route_sequential(&g, &t).unwrap();
        assert!(
            par.depth() < seq.depth(),
            "parallel depth {} not below sequential {}",
            par.depth(),
            seq.depth()
        );
    }

    #[test]
    fn schedule_to_costed_schedule() {
        let g = generate::chain(3);
        let t = full_targets(&[2, 1, 0]);
        let s = route_permutation(&g, &t, &RouterConfig::default()).unwrap();
        let costed = s.to_schedule();
        assert_eq!(costed.gate_count(), s.swap_count());
    }

    #[test]
    fn example_4_crotonic_permutation() {
        // Example 4: permute (M C1 H1 C2 C3 H2 C4) -> values move
        // M→C1, C1→C2, H1→C3, C2→C4, C3→H2, H2→H1, C4→M along the bond
        // graph of trans-crotonic acid.
        let env = qcp_env::molecules::trans_crotonic_acid();
        let g = env.bond_graph();
        // Indices: M=0, C1=1, H1=2, C2=3, C3=4, H2=5, C4=6.
        let t = full_targets(&[1, 3, 4, 6, 5, 2, 0]);
        let s = route_permutation(&g, &t, &RouterConfig::default()).unwrap();
        assert!(verify_schedule(&g, &t, &s));
        // The paper separates the halves in 3 steps and finishes the
        // sub-permutations in parallel; allow a small constant factor.
        assert!(s.depth() <= 10, "depth {}", s.depth());
    }
}
