//! Error type for placement.

use std::error::Error;
use std::fmt;

use qcp_circuit::Qubit;
use qcp_env::PhysicalQubit;

/// Errors returned by the placement pipeline.
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum PlaceError {
    /// The circuit has more logical qubits than the environment has nuclei.
    CircuitTooLarge {
        /// Circuit width.
        qubits: usize,
        /// Environment size.
        nuclei: usize,
    },
    /// The chosen threshold disallows every interaction, so no two-qubit
    /// gate can be executed at all — the paper's "N/A" outcome (Table 3,
    /// pentafluorobutadienyl molecule at thresholds 50 and 100).
    NoFastInteractions,
    /// A placement map was not injective or referenced unknown qubits.
    InvalidPlacement {
        /// Explanation of the defect.
        message: String,
    },
    /// The SWAP router could not realize a permutation (the routing graph
    /// does not connect the affected nuclei, even via fallback bridges).
    RoutingImpossible {
        /// A vertex whose token could not reach its destination.
        stuck: PhysicalQubit,
    },
    /// Exhaustive search was asked to explore more assignments than its
    /// configured limit (`m!/(m-n)!` grows fast; see Table 2's
    /// "search space size" column).
    SearchSpaceTooLarge {
        /// Number of assignments that would have to be visited.
        size: f64,
        /// The configured limit.
        limit: f64,
    },
    /// A logical qubit was missing from a placement.
    UnplacedQubit(Qubit),
    /// The exact search ran out of its [`SearchBudget`] (node cap or
    /// deadline) before committing a placement. The hybrid strategy
    /// catches this and falls back to the greedy/annealing heuristic;
    /// callers of the plain exact strategy see it directly.
    ///
    /// [`SearchBudget`]: crate::strategy::SearchBudget
    BudgetExhausted {
        /// Search nodes charged to the budget meter before it tripped.
        nodes: u64,
    },
}

impl fmt::Display for PlaceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlaceError::CircuitTooLarge { qubits, nuclei } => {
                write!(
                    f,
                    "circuit needs {qubits} qubits but the environment has only {nuclei}"
                )
            }
            PlaceError::NoFastInteractions => {
                write!(
                    f,
                    "threshold disallows all interactions; the computation cannot run"
                )
            }
            PlaceError::InvalidPlacement { message } => {
                write!(f, "invalid placement: {message}")
            }
            PlaceError::RoutingImpossible { stuck } => {
                write!(f, "no routing path can deliver the value stuck at {stuck}")
            }
            PlaceError::SearchSpaceTooLarge { size, limit } => {
                write!(
                    f,
                    "search space of {size:.3e} assignments exceeds the limit {limit:.3e}"
                )
            }
            PlaceError::UnplacedQubit(q) => write!(f, "logical qubit {q} has no placement"),
            PlaceError::BudgetExhausted { nodes } => {
                write!(
                    f,
                    "exact search exhausted its budget after {nodes} search node(s)"
                )
            }
        }
    }
}

impl Error for PlaceError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        let e = PlaceError::CircuitTooLarge {
            qubits: 10,
            nuclei: 7,
        };
        assert!(e.to_string().contains("10") && e.to_string().contains('7'));
        assert!(PlaceError::NoFastInteractions
            .to_string()
            .contains("cannot run"));
    }

    #[test]
    fn send_sync() {
        fn assert_traits<T: Error + Send + Sync>() {}
        assert_traits::<PlaceError>();
    }
}
