//! Error type for placement.

use std::error::Error;
use std::fmt;

use qcp_circuit::Qubit;
use qcp_env::PhysicalQubit;

/// Errors returned by the placement pipeline.
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum PlaceError {
    /// The circuit has more logical qubits than the environment has nuclei.
    CircuitTooLarge {
        /// Circuit width.
        qubits: usize,
        /// Environment size.
        nuclei: usize,
    },
    /// The chosen threshold disallows every interaction, so no two-qubit
    /// gate can be executed at all — the paper's "N/A" outcome (Table 3,
    /// pentafluorobutadienyl molecule at thresholds 50 and 100).
    NoFastInteractions,
    /// A placement map was not injective or referenced unknown qubits.
    InvalidPlacement {
        /// Explanation of the defect.
        message: String,
    },
    /// The SWAP router could not realize a permutation (the routing graph
    /// does not connect the affected nuclei, even via fallback bridges).
    RoutingImpossible {
        /// A vertex whose token could not reach its destination.
        stuck: PhysicalQubit,
    },
    /// Exhaustive search was asked to explore more assignments than its
    /// configured limit (`m!/(m-n)!` grows fast; see Table 2's
    /// "search space size" column).
    SearchSpaceTooLarge {
        /// Number of assignments that would have to be visited.
        size: f64,
        /// The configured limit.
        limit: f64,
    },
    /// A logical qubit was missing from a placement.
    UnplacedQubit(Qubit),
    /// The exact search ran out of its [`SearchBudget`] (node cap or
    /// deadline) before committing a placement. The hybrid strategy
    /// catches this and falls back to the greedy/annealing heuristic;
    /// callers of the plain exact strategy see it directly.
    ///
    /// [`SearchBudget`]: crate::strategy::SearchBudget
    BudgetExhausted {
        /// Search nodes charged to the budget meter before it tripped.
        nodes: u64,
    },
    /// A placement job panicked and the panic was contained at a worker
    /// boundary ([`crate::batch::BatchPlacer`] or a serving layer above
    /// it). The panic payload is preserved as text; the job that died
    /// tells the caller *which* request was poisoned without taking the
    /// process — or its siblings — down with it.
    Internal {
        /// The stringified panic payload (or invariant-breach report).
        message: String,
    },
    /// The placement completed but an attached independent certifier
    /// ([`crate::request::Certifier`]) rejected it. Carries every
    /// violation's rendered text so delivery surfaces can report them
    /// verbatim.
    VerificationFailed {
        /// Rendered violation lines, in certifier order.
        violations: Vec<String>,
    },
}

/// The coarse failure taxonomy shared by every delivery surface (CLI exit
/// codes, batch reports, and the `qcp serve` HTTP error bodies): every
/// [`PlaceError`] is an *input* problem, a *budget* problem, or an
/// *internal* defect. The CLI maps these to exit codes 2 / 3 / 5 and the
/// server to HTTP 400 / 504 / 500 — one vocabulary, documented in
/// GUIDE.md §9.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FailureClass {
    /// The request itself cannot be satisfied (circuit too large, no fast
    /// interactions, unroutable topology, malformed placement input).
    Input,
    /// A configured search limit tripped before an answer was committed
    /// (wall-clock/node budget, search-space cap).
    Budget,
    /// An invariant breach or contained panic — a bug, not a bad request.
    Internal,
    /// A completed placement failed independent certification
    /// (`qcp_verify`); the result exists but must not be trusted.
    Verification,
}

impl FailureClass {
    /// The stable wire token (`input`, `budget-exhausted`, `internal`)
    /// used in JSON error bodies.
    pub fn wire_code(self) -> &'static str {
        match self {
            FailureClass::Input => "input",
            FailureClass::Budget => "budget-exhausted",
            FailureClass::Internal => "internal",
            FailureClass::Verification => "verify-reject",
        }
    }

    /// The process exit code the CLI taxonomy assigns this class
    /// (2 input, 3 budget, 4 verification, 5 internal; 0 is success and
    /// 1 is reserved for usage errors outside the pipeline).
    pub fn exit_code(self) -> u8 {
        match self {
            FailureClass::Input => 2,
            FailureClass::Budget => 3,
            FailureClass::Verification => 4,
            FailureClass::Internal => 5,
        }
    }
}

impl PlaceError {
    /// Classifies this error for the shared CLI/server failure taxonomy.
    pub fn class(&self) -> FailureClass {
        match self {
            PlaceError::CircuitTooLarge { .. }
            | PlaceError::NoFastInteractions
            | PlaceError::RoutingImpossible { .. } => FailureClass::Input,
            PlaceError::SearchSpaceTooLarge { .. } | PlaceError::BudgetExhausted { .. } => {
                FailureClass::Budget
            }
            PlaceError::InvalidPlacement { .. }
            | PlaceError::UnplacedQubit(_)
            | PlaceError::Internal { .. } => FailureClass::Internal,
            PlaceError::VerificationFailed { .. } => FailureClass::Verification,
        }
    }

    /// Converts a caught panic payload (from `std::panic::catch_unwind`)
    /// into a [`PlaceError::Internal`], preserving `&str`/`String`
    /// payloads verbatim.
    pub fn from_panic(payload: &(dyn std::any::Any + Send)) -> Self {
        let message = if let Some(s) = payload.downcast_ref::<&str>() {
            (*s).to_string()
        } else if let Some(s) = payload.downcast_ref::<String>() {
            s.clone()
        } else {
            "placement worker panicked (non-string payload)".to_string()
        };
        PlaceError::Internal { message }
    }
}

impl fmt::Display for PlaceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlaceError::CircuitTooLarge { qubits, nuclei } => {
                write!(
                    f,
                    "circuit needs {qubits} qubits but the environment has only {nuclei}"
                )
            }
            PlaceError::NoFastInteractions => {
                write!(
                    f,
                    "threshold disallows all interactions; the computation cannot run"
                )
            }
            PlaceError::InvalidPlacement { message } => {
                write!(f, "invalid placement: {message}")
            }
            PlaceError::RoutingImpossible { stuck } => {
                write!(f, "no routing path can deliver the value stuck at {stuck}")
            }
            PlaceError::SearchSpaceTooLarge { size, limit } => {
                write!(
                    f,
                    "search space of {size:.3e} assignments exceeds the limit {limit:.3e}"
                )
            }
            PlaceError::UnplacedQubit(q) => write!(f, "logical qubit {q} has no placement"),
            PlaceError::BudgetExhausted { nodes } => {
                write!(
                    f,
                    "exact search exhausted its budget after {nodes} search node(s)"
                )
            }
            PlaceError::Internal { message } => {
                write!(f, "internal placement failure: {message}")
            }
            PlaceError::VerificationFailed { violations } => {
                write!(
                    f,
                    "placement failed verification with {} violation(s)",
                    violations.len()
                )
            }
        }
    }
}

impl Error for PlaceError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        let e = PlaceError::CircuitTooLarge {
            qubits: 10,
            nuclei: 7,
        };
        assert!(e.to_string().contains("10") && e.to_string().contains('7'));
        assert!(PlaceError::NoFastInteractions
            .to_string()
            .contains("cannot run"));
    }

    #[test]
    fn send_sync() {
        fn assert_traits<T: Error + Send + Sync>() {}
        assert_traits::<PlaceError>();
    }

    #[test]
    fn failure_classes_cover_the_taxonomy() {
        assert_eq!(PlaceError::NoFastInteractions.class(), FailureClass::Input);
        assert_eq!(
            PlaceError::BudgetExhausted { nodes: 7 }.class(),
            FailureClass::Budget
        );
        assert_eq!(
            PlaceError::Internal {
                message: "boom".into()
            }
            .class(),
            FailureClass::Internal
        );
        assert_eq!(FailureClass::Input.exit_code(), 2);
        assert_eq!(FailureClass::Budget.exit_code(), 3);
        assert_eq!(FailureClass::Internal.exit_code(), 5);
        assert_eq!(FailureClass::Budget.wire_code(), "budget-exhausted");
    }

    #[test]
    fn from_panic_preserves_string_payloads() {
        let caught = std::panic::catch_unwind(|| panic!("chaos: {}", 42)).unwrap_err();
        let e = PlaceError::from_panic(caught.as_ref());
        assert_eq!(
            e,
            PlaceError::Internal {
                message: "chaos: 42".into()
            }
        );
        assert!(e.to_string().contains("internal placement failure"));
        let caught = std::panic::catch_unwind(|| std::panic::panic_any(7u32)).unwrap_err();
        let e = PlaceError::from_panic(caught.as_ref());
        assert!(matches!(e, PlaceError::Internal { .. }));
    }
}
