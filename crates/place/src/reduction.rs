//! The NP-completeness reduction of §4: Hamiltonian cycle ⇔ zero-runtime
//! placement.
//!
//! Given a graph `H` on `m` vertices, build a physical environment on the
//! same vertex set whose couplings cost 0 where `H` has an edge and 1
//! where it does not (single-qubit gates are free), and a circuit of `m`
//! two-qubit gates `G(q_i, q_{(i mod m)+1})` with `T(G) = 1` closing a
//! cycle through all qubits. Gate `i` shares a qubit with gate `i+1`, so
//! the runtime is the *sum* of the gate costs, and a placement of runtime
//! zero exists **iff** the circuit's qubit cycle lands entirely on
//! zero-weight couplings — i.e. iff `H` has a Hamiltonian cycle.

use qcp_circuit::{Circuit, Gate, Qubit};
use qcp_env::Environment;
use qcp_graph::{Graph, NodeId};

/// Builds the §4 reduction instance for `H`.
///
/// Returns the environment (weight 0 on `H`-edges, 1 elsewhere, free
/// single-qubit gates) and the cycle circuit.
///
/// # Panics
///
/// Panics if `H` has fewer than 3 vertices (no cycle exists; the paper's
/// reduction presumes `m >= 3`).
pub fn reduction_instance(h: &Graph) -> (Environment, Circuit) {
    let m = h.node_count();
    assert!(m >= 3, "the reduction needs at least 3 vertices, got {m}");
    let mut b = Environment::builder("reduction");
    let nuclei: Vec<_> = (0..m).map(|i| b.nucleus(format!("v{i}"), 0.0)).collect();
    for i in 0..m {
        for j in i + 1..m {
            let w = if h.has_edge(NodeId::new(i), NodeId::new(j)) {
                0.0
            } else {
                1.0
            };
            // The i < j sweep visits each pair once; cannot fail.
            let _ = b.coupling(nuclei[i], nuclei[j], w);
        }
    }
    #[allow(clippy::expect_used)]
    let env = b.build().expect("invariant: the gadget has m >= 1 nuclei");

    let mut builder = Circuit::builder(m);
    for i in 0..m {
        builder.gate(Gate::custom2(
            Qubit::new(i),
            Qubit::new((i + 1) % m),
            1.0,
            "G",
        ));
    }
    (env, builder.build())
}

/// Decides Hamiltonicity of `H` by searching for a zero-runtime placement
/// of the reduction instance — a branch-and-bound walk over injective
/// assignments that prunes as soon as the partial runtime exceeds zero.
///
/// Exponential in the worst case (the problem is NP-complete); fine for
/// the instance sizes used in tests and benches.
pub fn hamiltonian_via_placement(h: &Graph) -> bool {
    let m = h.node_count();
    if m < 3 {
        return false;
    }
    // The circuit couples q_i with q_{i+1 mod m}; a zero-cost placement
    // maps that cycle onto zero-weight (= H) edges. Fix q_0 -> v_0 by
    // cycle symmetry? No: H need not be vertex-transitive, so q_0 ranges
    // over all vertices — but any rotation of a valid cycle is valid, so
    // fixing q_0 -> v_0 is safe.
    let mut assigned = vec![usize::MAX; m];
    let mut used = vec![false; m];
    assigned[0] = 0;
    used[0] = true;
    extend(h, &mut assigned, &mut used, 1)
}

fn extend(h: &Graph, assigned: &mut [usize], used: &mut [bool], i: usize) -> bool {
    let m = h.node_count();
    if i == m {
        // Close the cycle: gate (q_{m-1}, q_0) must be free too.
        return h.has_edge(NodeId::new(assigned[m - 1]), NodeId::new(assigned[0]));
    }
    for v in 0..m {
        if used[v] {
            continue;
        }
        // Gate (q_{i-1}, q_i) must land on a zero-weight coupling, i.e. an
        // edge of H — otherwise the partial runtime is already positive.
        if !h.has_edge(NodeId::new(assigned[i - 1]), NodeId::new(v)) {
            continue;
        }
        assigned[i] = v;
        used[v] = true;
        if extend(h, assigned, used, i + 1) {
            return true;
        }
        used[v] = false;
        assigned[i] = usize::MAX;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baselines::exhaustive_placement;
    use crate::cost::CostModel;
    use qcp_graph::generate;
    use qcp_graph::hamiltonian::has_hamiltonian_cycle;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn instance_shape() {
        let h = generate::ring(5);
        let (env, circuit) = reduction_instance(&h);
        assert_eq!(env.qubit_count(), 5);
        assert_eq!(circuit.qubit_count(), 5);
        assert_eq!(circuit.gate_count(), 5);
        assert!(circuit
            .gates()
            .all(|g| g.is_two_qubit() && g.time_weight() == 1.0));
        // H-edges are free, non-edges cost 1.
        let p = qcp_env::PhysicalQubit::new;
        assert_eq!(env.coupling(p(0), p(1)).units(), 0.0);
        assert_eq!(env.coupling(p(0), p(2)).units(), 1.0);
    }

    #[test]
    fn ring_reduces_to_zero_cost() {
        let h = generate::ring(6);
        let (env, circuit) = reduction_instance(&h);
        let (_, t) = exhaustive_placement(
            &circuit,
            &env,
            &CostModel::overlapped().without_reuse_cap(),
            1e6,
        )
        .unwrap();
        assert!(
            t.is_zero(),
            "ring is Hamiltonian, zero-cost placement must exist"
        );
        assert!(hamiltonian_via_placement(&h));
    }

    #[test]
    fn chain_like_graph_has_positive_cost() {
        // A star is not Hamiltonian: best placement has positive runtime.
        let h = generate::star(5);
        let (env, circuit) = reduction_instance(&h);
        let (_, t) = exhaustive_placement(
            &circuit,
            &env,
            &CostModel::overlapped().without_reuse_cap(),
            1e6,
        )
        .unwrap();
        assert!(t.units() > 0.0);
        assert!(!hamiltonian_via_placement(&h));
    }

    #[test]
    fn petersen_is_caught() {
        let h = qcp_graph::hamiltonian::petersen();
        assert!(!hamiltonian_via_placement(&h));
    }

    #[test]
    fn agrees_with_direct_solver_on_random_graphs() {
        let mut rng = StdRng::seed_from_u64(99);
        for n in 3..8 {
            for _ in 0..12 {
                let h = generate::gnp(n, 0.45, &mut rng);
                assert_eq!(
                    hamiltonian_via_placement(&h),
                    has_hamiltonian_cycle(&h),
                    "disagreement on {h:?}"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least 3")]
    fn tiny_graphs_rejected() {
        let _ = reduction_instance(&Graph::new(2));
    }
}
