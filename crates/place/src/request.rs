//! The unified placement entry point: [`PlaceRequest`] + [`execute`].
//!
//! Historically the CLI `place` command, [`BatchPlacer`], and the
//! `qcp serve` daemon each hand-rolled the same call sequence
//! (configure → place → optionally verify), which made it impossible to
//! guarantee they agreed on behaviour — in particular on *cache
//! keying*. This module replaces the three ad-hoc paths with one
//! value object and one executor:
//!
//! * [`PlaceRequest`] bundles everything a placement needs — circuit,
//!   environment, full [`PlacerConfig`], verification flag, and cache
//!   policy — behind a builder-style API.
//! * [`PlaceRequest::cache_key`] derives the result-cache key from the
//!   request's fields and nothing else, so CLI, batch, and serve can
//!   never disagree on keying (they all call this method verbatim).
//! * [`execute`] / [`execute_with`] run the request: consult an
//!   optional [`PlacementCache`], place on a miss, optionally certify
//!   through an attached [`Certifier`], and report the cache
//!   disposition alongside the outcome.
//!
//! The certifier is a trait rather than a direct `qcp_verify` call
//! because `qcp_verify` depends on this crate; delivery surfaces that
//! want verification (the CLI `--verify` flag, batch `--verify`) attach
//! `qcp_verify`'s adapter, everything else passes `None`.
//!
//! [`BatchPlacer`]: crate::batch::BatchPlacer

use std::time::{Duration, Instant};

use qcp_circuit::Circuit;
use qcp_env::Environment;

use crate::cache::{cache_key, CacheKey, CanonicalCircuit, PlacementCache};
use crate::error::PlaceError;
use crate::placer::{PlacementOutcome, Placer, PlacerConfig};
use crate::strategy::{SearchBudget, Strategy};

/// Whether a request may consult (and populate) the placement cache.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum CachePolicy {
    /// Look up the cache before placing and store the result after.
    #[default]
    Use,
    /// Skip the cache entirely (the result is neither read nor stored).
    Bypass,
}

/// What the cache did for one executed request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CacheDisposition {
    /// Served from the cache. `remapped` is true when the stored outcome
    /// was rewritten onto different qubit labels (an isomorphic, not
    /// identical, repeat).
    Hit {
        /// Whether a non-identity witness remap was applied.
        remapped: bool,
    },
    /// The cache was consulted but had no entry; the result was placed
    /// fresh (and stored).
    Miss,
    /// The cache was not consulted — no cache attached, the request's
    /// [`CachePolicy::Bypass`], or the request was uncacheable because
    /// its canonicalization was
    /// [exhausted](crate::CanonicalCircuit::exhausted).
    Bypass,
}

impl CacheDisposition {
    /// The stable wire token (`hit`, `miss`, `bypass`) used in serve's
    /// JSON responses and documented in GUIDE.md §8.
    pub fn wire(self) -> &'static str {
        match self {
            CacheDisposition::Hit { .. } => "hit",
            CacheDisposition::Miss => "miss",
            CacheDisposition::Bypass => "bypass",
        }
    }
}

/// Independent certification hook. Implemented by `qcp_verify`'s
/// adapter (`qcp_verify::PlacementCertifier`); the indirection exists
/// because `qcp_verify` depends on `qcp_place` and so cannot be called
/// from here directly.
pub trait Certifier {
    /// Certifies `outcome` against the request it answers. `Ok` carries
    /// a human-readable certificate summary; `Err` carries rendered
    /// violation lines.
    fn certify(
        &self,
        request: &PlaceRequest<'_>,
        outcome: &PlacementOutcome,
    ) -> Result<String, Vec<String>>;
}

/// One placement request: everything that determines the outcome, and
/// nothing else. Construct with [`PlaceRequest::new`] and refine with
/// the builder methods.
#[derive(Clone, Debug)]
pub struct PlaceRequest<'a> {
    circuit: &'a Circuit,
    environment: &'a Environment,
    config: PlacerConfig,
    verify: bool,
    cache_policy: CachePolicy,
}

impl<'a> PlaceRequest<'a> {
    /// A request with the default [`PlacerConfig`], no verification, and
    /// [`CachePolicy::Use`].
    pub fn new(circuit: &'a Circuit, environment: &'a Environment) -> PlaceRequest<'a> {
        PlaceRequest {
            circuit,
            environment,
            config: PlacerConfig::default(),
            verify: false,
            cache_policy: CachePolicy::default(),
        }
    }

    /// Replaces the whole placer configuration.
    pub fn config(mut self, config: PlacerConfig) -> Self {
        self.config = config;
        self
    }

    /// Sets the placement strategy.
    pub fn strategy(mut self, strategy: Strategy) -> Self {
        self.config.strategy = strategy;
        self
    }

    /// Sets the search budget.
    pub fn budget(mut self, budget: SearchBudget) -> Self {
        self.config.budget = budget;
        self
    }

    /// Requests independent certification of the outcome (including
    /// cache hits, whose remapped outcomes are re-certified). Executing
    /// a verifying request requires a [`Certifier`] — see
    /// [`execute_with`].
    pub fn verify(mut self, verify: bool) -> Self {
        self.verify = verify;
        self
    }

    /// Sets the cache policy.
    pub fn cache_policy(mut self, policy: CachePolicy) -> Self {
        self.cache_policy = policy;
        self
    }

    /// The circuit to place.
    pub fn circuit(&self) -> &'a Circuit {
        self.circuit
    }

    /// The target environment.
    pub fn environment(&self) -> &'a Environment {
        self.environment
    }

    /// The full placer configuration.
    pub fn placer_config(&self) -> &PlacerConfig {
        &self.config
    }

    /// Whether certification was requested.
    pub fn wants_verify(&self) -> bool {
        self.verify
    }

    /// The cache policy.
    pub fn policy(&self) -> CachePolicy {
        self.cache_policy
    }

    /// The circuit's exact canonical form (fingerprint + witness order).
    pub fn canonical(&self) -> CanonicalCircuit {
        CanonicalCircuit::of(self.circuit)
    }

    /// The result-cache key for this request, derived **only** from the
    /// request's own fields (canonical circuit × environment tables ×
    /// placer configuration). Every layer — CLI, batch, serve — keys the
    /// cache through this method, so they cannot disagree.
    ///
    /// A key is only *usable* when the canonicalization behind it is not
    /// [exhausted](CanonicalCircuit::exhausted) — check [`cacheable`]
    /// (as [`execute_with`] and batch dedup do) before sharing results
    /// under it.
    ///
    /// [`cacheable`]: PlaceRequest::cacheable
    pub fn cache_key(&self) -> CacheKey {
        cache_key(&self.canonical(), self.environment, &self.config)
    }

    /// Whether this request's canonical form is a sound sharing key.
    /// False when the interaction graph blew the canonicalization leaf
    /// budget: the certificate may then be labelling-dependent, so
    /// executing the request reports [`CacheDisposition::Bypass`] even
    /// with a cache attached.
    pub fn cacheable(&self) -> bool {
        !self.canonical().exhausted
    }
}

/// The result of executing a [`PlaceRequest`].
#[derive(Clone, Debug)]
pub struct PlaceReport {
    /// The placement outcome, already on the requesting circuit's qubit
    /// labels (cache hits are witness-remapped before being returned).
    pub outcome: PlacementOutcome,
    /// What the cache did for this request.
    pub cache: CacheDisposition,
    /// Wall-clock time spent inside the executor.
    pub elapsed: Duration,
    /// Certificate summary when the request asked for verification.
    pub certificate: Option<String>,
}

/// Executes a request with no cache and no certifier: the common path
/// for one-shot library use. Fails with [`PlaceError::Internal`] if the
/// request asks for verification (attach a certifier via
/// [`execute_with`]).
pub fn execute(request: &PlaceRequest<'_>) -> Result<PlaceReport, PlaceError> {
    execute_with(request, None, None)
}

/// Executes a request against an optional shared [`PlacementCache`] and
/// an optional [`Certifier`].
///
/// With a cache attached and [`CachePolicy::Use`]: the request's
/// canonical form is computed once, the cache consulted, and on a hit
/// the stored outcome is witness-remapped onto the request's labels. On
/// a miss the placement runs and the (unremapped) outcome is stored
/// with its witness. Verification, when requested, runs on whatever
/// outcome is about to be returned — fresh or remapped — so a cache can
/// never weaken the certificate.
pub fn execute_with(
    request: &PlaceRequest<'_>,
    cache: Option<&PlacementCache>,
    certifier: Option<&dyn Certifier>,
) -> Result<PlaceReport, PlaceError> {
    let start = Instant::now();
    if request.verify && certifier.is_none() {
        return Err(PlaceError::Internal {
            message: "request asks for verification but no certifier is attached".to_string(),
        });
    }
    let cache = match (request.cache_policy, cache) {
        (CachePolicy::Use, Some(cache)) if cache.capacity() > 0 => Some(cache),
        _ => None,
    };
    // An exhausted canonicalization (the individualization search hit
    // its leaf budget) can be labelling-dependent: relabellings of the
    // same circuit may fingerprint apart, or — worse — collide under a
    // witness that does not actually relate them. Such requests are
    // uncacheable: neither looked up nor stored, reported as `Bypass`.
    let canonical = cache
        .map(|_| request.canonical())
        .filter(|canon| !canon.exhausted);
    let cache = cache.filter(|_| canonical.is_some());
    let key = canonical
        .as_ref()
        .map(|canon| cache_key(canon, request.environment, &request.config));

    if let (Some(cache), Some(key), Some(canon)) = (cache, key, canonical.as_ref()) {
        if let Some((outcome, remapped)) = cache.lookup(key, &canon.order) {
            let certificate = certify_if_asked(request, &outcome, certifier)?;
            return Ok(PlaceReport {
                outcome,
                cache: CacheDisposition::Hit { remapped },
                elapsed: start.elapsed(),
                certificate,
            });
        }
    }

    let placer = Placer::new(request.environment, request.config.clone());
    let outcome = placer.place(request.circuit)?;
    let certificate = certify_if_asked(request, &outcome, certifier)?;
    let disposition = if let (Some(cache), Some(key), Some(canon)) = (cache, key, canonical) {
        cache.insert(key, canon.order, outcome.clone());
        CacheDisposition::Miss
    } else {
        CacheDisposition::Bypass
    };
    Ok(PlaceReport {
        outcome,
        cache: disposition,
        elapsed: start.elapsed(),
        certificate,
    })
}

fn certify_if_asked(
    request: &PlaceRequest<'_>,
    outcome: &PlacementOutcome,
    certifier: Option<&dyn Certifier>,
) -> Result<Option<String>, PlaceError> {
    match (request.verify, certifier) {
        (true, Some(certifier)) => match certifier.certify(request, outcome) {
            Ok(summary) => Ok(Some(summary)),
            Err(violations) => Err(PlaceError::VerificationFailed { violations }),
        },
        _ => Ok(None),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcp_circuit::{library, Qubit};
    use qcp_env::{molecules, Threshold};

    fn qec_request<'a>(circuit: &'a Circuit, env: &'a Environment) -> PlaceRequest<'a> {
        PlaceRequest::new(circuit, env).config(PlacerConfig::with_threshold(Threshold::new(100.0)))
    }

    #[test]
    fn execute_without_cache_bypasses() {
        let env = molecules::acetyl_chloride();
        let circuit = library::qec3_encoder();
        let report = execute(&qec_request(&circuit, &env)).expect("place");
        assert_eq!(report.cache, CacheDisposition::Bypass);
        assert_eq!(report.cache.wire(), "bypass");
        assert!(report.certificate.is_none());
        assert_eq!(report.outcome.runtime.to_string(), "0.0136 sec");
    }

    #[test]
    fn miss_then_hit_then_remapped_hit() {
        let env = molecules::acetyl_chloride();
        let circuit = library::qec3_encoder();
        let cache = PlacementCache::new(16);

        let first = execute_with(&qec_request(&circuit, &env), Some(&cache), None).expect("place");
        assert_eq!(first.cache, CacheDisposition::Miss);

        let second = execute_with(&qec_request(&circuit, &env), Some(&cache), None).expect("place");
        assert_eq!(second.cache, CacheDisposition::Hit { remapped: false });
        assert_eq!(second.outcome.runtime, first.outcome.runtime);

        let n = circuit.qubit_count();
        let relabelled = circuit.map_qubits(n, |q| Qubit::new(n - 1 - q.index()));
        let third =
            execute_with(&qec_request(&relabelled, &env), Some(&cache), None).expect("place");
        assert_eq!(third.cache, CacheDisposition::Hit { remapped: true });
        assert_eq!(third.outcome.runtime, first.outcome.runtime);
        assert_eq!(cache.hits(), 2);
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.remapped(), 1);
    }

    #[test]
    fn bypass_policy_skips_an_attached_cache() {
        let env = molecules::acetyl_chloride();
        let circuit = library::qec3_encoder();
        let cache = PlacementCache::new(16);
        let request = qec_request(&circuit, &env).cache_policy(CachePolicy::Bypass);
        let report = execute_with(&request, Some(&cache), None).expect("place");
        assert_eq!(report.cache, CacheDisposition::Bypass);
        assert_eq!(cache.hits() + cache.misses(), 0);
        assert!(cache.is_empty());
    }

    #[test]
    fn cache_key_is_stable_and_field_derived() {
        let env = molecules::acetyl_chloride();
        let circuit = library::qec3_encoder();
        let request = qec_request(&circuit, &env);
        assert_eq!(request.cache_key(), request.cache_key());
        // Changing any request field changes the key.
        let other = qec_request(&circuit, &env).strategy(Strategy::Hybrid);
        assert_ne!(other.cache_key(), request.cache_key());
        let budgeted = qec_request(&circuit, &env).budget(SearchBudget::nodes(500));
        assert_ne!(budgeted.cache_key(), request.cache_key());
        // Relabelling does NOT change the key (that is the point).
        let n = circuit.qubit_count();
        let relabelled = circuit.map_qubits(n, |q| Qubit::new(n - 1 - q.index()));
        assert_eq!(
            qec_request(&relabelled, &env).cache_key(),
            request.cache_key()
        );
    }

    /// A circuit whose interaction graph is `rings` disjoint rings of
    /// `len` qubits — WL-hard enough to blow the canonicalization leaf
    /// budget (see `qcp_graph::canonical`).
    fn ring_union_circuit(rings: usize, len: usize) -> Circuit {
        let mut b = Circuit::builder(rings * len);
        for r in 0..rings {
            let base = r * len;
            for i in 0..len {
                b.gate(qcp_circuit::Gate::zz(
                    Qubit::new(base + i),
                    Qubit::new(base + (i + 1) % len),
                    90.0,
                ));
            }
        }
        b.build()
    }

    #[test]
    fn exhausted_canonicalization_bypasses_the_cache() {
        use qcp_env::topologies::{self, Delays};
        let circuit = ring_union_circuit(3, 8);
        let env = topologies::grid(5, 5, Delays::default());
        let mut config =
            PlacerConfig::with_threshold(env.connectivity_threshold().expect("connected"));
        config.strategy = Strategy::Anneal;
        config.anneal.iterations = 50;
        let request = PlaceRequest::new(&circuit, &env).config(config);

        // The certificate is exhausted, hence not a sound sharing key.
        assert!(request.canonical().exhausted);
        assert!(!request.cacheable());

        // Even with a cache attached and CachePolicy::Use, the request
        // must neither consult nor populate the cache.
        let cache = PlacementCache::new(16);
        let first = execute_with(&request, Some(&cache), None).expect("place");
        assert_eq!(first.cache, CacheDisposition::Bypass);
        let second = execute_with(&request, Some(&cache), None).expect("place");
        assert_eq!(second.cache, CacheDisposition::Bypass);
        assert!(cache.is_empty());
        assert_eq!(cache.hits() + cache.misses(), 0);
    }

    #[test]
    fn verify_without_certifier_is_an_error() {
        let env = molecules::acetyl_chloride();
        let circuit = library::qec3_encoder();
        let request = qec_request(&circuit, &env).verify(true);
        let err = execute(&request).expect_err("must fail");
        assert!(matches!(err, PlaceError::Internal { .. }));
    }

    struct RejectAll;
    impl Certifier for RejectAll {
        fn certify(
            &self,
            _request: &PlaceRequest<'_>,
            _outcome: &PlacementOutcome,
        ) -> Result<String, Vec<String>> {
            Err(vec!["synthetic violation".to_string()])
        }
    }

    #[test]
    fn certifier_rejection_maps_to_verification_failed() {
        let env = molecules::acetyl_chloride();
        let circuit = library::qec3_encoder();
        let request = qec_request(&circuit, &env).verify(true);
        let err = execute_with(&request, None, Some(&RejectAll)).expect_err("must fail");
        match err {
            PlaceError::VerificationFailed { violations } => {
                assert_eq!(violations, vec!["synthetic violation".to_string()]);
            }
            other => panic!("wrong error: {other:?}"),
        }
        assert_eq!(
            crate::FailureClass::Verification.wire_code(),
            "verify-reject"
        );
        assert_eq!(crate::FailureClass::Verification.exit_code(), 4);
    }
}
