//! Placement maps (Definition 3): injective assignments of logical qubits
//! to physical qubits.

use std::fmt;

use qcp_circuit::Qubit;
use qcp_env::PhysicalQubit;

use crate::{PlaceError, Result};

/// An injective map from the `n` logical qubits of a circuit into the `m`
/// nuclei of a physical environment (`n <= m`).
///
/// `Placement` is *total*: every logical qubit has a position (the paper's
/// pipeline keeps even currently-idle qubits placed, since their values
/// must survive between subcircuits).
///
/// ```
/// use qcp_place::Placement;
/// use qcp_env::PhysicalQubit;
/// use qcp_circuit::Qubit;
///
/// // Example 3's optimal mapping a→C2, b→C1, c→M (indices 2, 1, 0).
/// let p = Placement::new(
///     vec![PhysicalQubit::new(2), PhysicalQubit::new(1), PhysicalQubit::new(0)],
///     3,
/// )?;
/// assert_eq!(p.physical(Qubit::new(0)), PhysicalQubit::new(2));
/// assert_eq!(p.logical_at(PhysicalQubit::new(0)), Some(Qubit::new(2)));
/// # Ok::<(), qcp_place::PlaceError>(())
/// ```
#[derive(Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Placement {
    to_phys: Vec<PhysicalQubit>,
    to_logical: Vec<Option<Qubit>>,
}

impl Placement {
    /// Creates a placement from the image list: logical qubit `i` maps to
    /// `map[i]`.
    ///
    /// # Errors
    ///
    /// Returns [`PlaceError::InvalidPlacement`] if the map targets a
    /// nucleus `>= env_size` or is not injective, and
    /// [`PlaceError::CircuitTooLarge`] if `map.len() > env_size`.
    pub fn new(map: Vec<PhysicalQubit>, env_size: usize) -> Result<Self> {
        if map.len() > env_size {
            return Err(PlaceError::CircuitTooLarge {
                qubits: map.len(),
                nuclei: env_size,
            });
        }
        let mut to_logical = vec![None; env_size];
        for (i, &v) in map.iter().enumerate() {
            if v.index() >= env_size {
                return Err(PlaceError::InvalidPlacement {
                    message: format!("target {v} out of range for {env_size} nuclei"),
                });
            }
            if let Some(q) = to_logical[v.index()] {
                return Err(PlaceError::InvalidPlacement {
                    message: format!("nucleus {v} hosts both {q} and q{i}"),
                });
            }
            to_logical[v.index()] = Some(Qubit::new(i));
        }
        Ok(Placement {
            to_phys: map,
            to_logical,
        })
    }

    /// The identity placement `q_i → p_i`.
    ///
    /// # Errors
    ///
    /// Returns [`PlaceError::CircuitTooLarge`] if `n > env_size`.
    pub fn identity(n: usize, env_size: usize) -> Result<Self> {
        Placement::new((0..n).map(PhysicalQubit::new).collect(), env_size)
    }

    /// Number of logical qubits.
    pub fn logical_count(&self) -> usize {
        self.to_phys.len()
    }

    /// Number of nuclei in the target environment.
    pub fn physical_count(&self) -> usize {
        self.to_logical.len()
    }

    /// Where logical qubit `q` lives.
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of range.
    #[inline]
    pub fn physical(&self, q: Qubit) -> PhysicalQubit {
        self.to_phys[q.index()]
    }

    /// Which logical qubit occupies nucleus `v`, if any.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[inline]
    pub fn logical_at(&self, v: PhysicalQubit) -> Option<Qubit> {
        self.to_logical[v.index()]
    }

    /// The image list (logical index → physical qubit).
    pub fn as_slice(&self) -> &[PhysicalQubit] {
        &self.to_phys
    }

    /// Returns a copy with logical qubit `q` moved to nucleus `v`. If `v`
    /// is occupied by another logical qubit, the two assignments are
    /// exchanged — the elementary move of the fine-tuning hill climber
    /// (§5.1).
    ///
    /// # Panics
    ///
    /// Panics if `q` or `v` is out of range.
    #[must_use]
    pub fn with_move(&self, q: Qubit, v: PhysicalQubit) -> Placement {
        let mut next = self.clone();
        let old = next.to_phys[q.index()];
        if old == v {
            return next;
        }
        if let Some(other) = next.to_logical[v.index()] {
            next.to_phys[other.index()] = old;
            next.to_logical[old.index()] = Some(other);
        } else {
            next.to_logical[old.index()] = None;
        }
        next.to_phys[q.index()] = v;
        next.to_logical[v.index()] = Some(q);
        next
    }

    /// The permutation of physical values needed to turn this placement
    /// into `other`: entry `v` is `Some(w)` when the value currently held
    /// at nucleus `v` must move to nucleus `w` (i.e. some logical qubit
    /// lives at `v` here and at `w` in `other`), `None` when nucleus `v`
    /// holds no logical value (a *don't care* for the router).
    ///
    /// # Panics
    ///
    /// Panics if the placements have different logical or physical sizes.
    pub fn permutation_to(&self, other: &Placement) -> Vec<Option<usize>> {
        assert_eq!(
            self.logical_count(),
            other.logical_count(),
            "logical width mismatch"
        );
        assert_eq!(
            self.physical_count(),
            other.physical_count(),
            "environment size mismatch"
        );
        let mut perm = vec![None; self.physical_count()];
        for i in 0..self.logical_count() {
            let q = Qubit::new(i);
            perm[self.physical(q).index()] = Some(other.physical(q).index());
        }
        perm
    }

    /// Returns `true` if the two placements agree on every logical qubit.
    pub fn same_assignment(&self, other: &Placement) -> bool {
        self.to_phys == other.to_phys
    }
}

impl fmt::Debug for Placement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Placement(")?;
        for (i, v) in self.to_phys.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "q{i}→{v}")?;
        }
        write!(f, ")")
    }
}

impl fmt::Display for Placement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(i: usize) -> Qubit {
        Qubit::new(i)
    }
    fn p(i: usize) -> PhysicalQubit {
        PhysicalQubit::new(i)
    }

    #[test]
    fn construction_and_lookup() {
        let pl = Placement::new(vec![p(2), p(0)], 3).unwrap();
        assert_eq!(pl.physical(q(0)), p(2));
        assert_eq!(pl.physical(q(1)), p(0));
        assert_eq!(pl.logical_at(p(2)), Some(q(0)));
        assert_eq!(pl.logical_at(p(1)), None);
        assert_eq!(pl.logical_count(), 2);
        assert_eq!(pl.physical_count(), 3);
    }

    #[test]
    fn rejects_non_injective() {
        let err = Placement::new(vec![p(1), p(1)], 3).unwrap_err();
        assert!(matches!(err, PlaceError::InvalidPlacement { .. }));
    }

    #[test]
    fn rejects_out_of_range_and_oversize() {
        assert!(matches!(
            Placement::new(vec![p(5)], 3).unwrap_err(),
            PlaceError::InvalidPlacement { .. }
        ));
        assert!(matches!(
            Placement::new(vec![p(0), p(1), p(2)], 2).unwrap_err(),
            PlaceError::CircuitTooLarge { .. }
        ));
    }

    #[test]
    fn move_to_free_nucleus() {
        let pl = Placement::new(vec![p(0), p(1)], 4).unwrap();
        let moved = pl.with_move(q(0), p(3));
        assert_eq!(moved.physical(q(0)), p(3));
        assert_eq!(moved.logical_at(p(0)), None);
        assert_eq!(moved.physical(q(1)), p(1));
    }

    #[test]
    fn move_swaps_occupied_nucleus() {
        let pl = Placement::new(vec![p(0), p(1)], 2).unwrap();
        let moved = pl.with_move(q(0), p(1));
        assert_eq!(moved.physical(q(0)), p(1));
        assert_eq!(moved.physical(q(1)), p(0));
        assert_eq!(moved.logical_at(p(0)), Some(q(1)));
    }

    #[test]
    fn move_to_self_is_identity() {
        let pl = Placement::new(vec![p(0), p(1)], 2).unwrap();
        assert!(pl.with_move(q(1), p(1)).same_assignment(&pl));
    }

    #[test]
    fn permutation_between_placements() {
        let a = Placement::new(vec![p(0), p(1)], 3).unwrap();
        let b = Placement::new(vec![p(2), p(1)], 3).unwrap();
        let perm = a.permutation_to(&b);
        assert_eq!(perm, vec![Some(2), Some(1), None]);
    }

    #[test]
    fn identity_matches_indices() {
        let pl = Placement::identity(3, 5).unwrap();
        for i in 0..3 {
            assert_eq!(pl.physical(q(i)), p(i));
        }
    }

    #[test]
    fn debug_format() {
        let pl = Placement::new(vec![p(2), p(1)], 3).unwrap();
        assert_eq!(format!("{pl:?}"), "Placement(q0→p2, q1→p1)");
    }
}
