//! Candidate placements for one workspace: monomorphism enumeration plus
//! completion to total placements (§5.1, §5.3).

use qcp_circuit::Qubit;
use qcp_env::PhysicalQubit;
use qcp_graph::traversal::bfs_order;
use qcp_graph::vf2::{self, MonomorphismFinder};
use qcp_graph::{Graph, NodeId};

use crate::{PlaceError, Placement, Result};

/// Enumerates up to `k` total placements whose restriction to the
/// workspace's interacting qubits is a monomorphism of `interaction` into
/// `fast` (the paper uses `k = 100`).
///
/// Qubits without two-qubit gates in the workspace are *completed*: they
/// keep their position from `previous` when it is still free, otherwise
/// they move to the nearest free nucleus (BFS over the fast graph), so the
/// permutation between consecutive stages stays as small as possible.
///
/// When the workspace has no two-qubit gates at all, the single candidate
/// is `previous` itself (or an identity-like assignment for the first
/// stage).
///
/// # Errors
///
/// Propagates placement-construction failures (which indicate an internal
/// inconsistency — enumerated monomorphisms are injective by construction).
pub fn candidate_placements(
    interaction: &Graph,
    fast: &Graph,
    previous: Option<&Placement>,
    k: usize,
) -> Result<Vec<Placement>> {
    candidate_placements_budgeted(
        interaction,
        fast,
        previous,
        k,
        &mut vf2::Budget::unlimited(),
    )
}

/// [`candidate_placements`] under a search budget: the monomorphism
/// enumeration charges the shared `meter` per visited search node and the
/// call fails with [`PlaceError::BudgetExhausted`] if the meter trips
/// before the enumeration finishes (exactness is all-or-nothing; the
/// anytime strategies catch the error and fall back).
///
/// # Errors
///
/// As [`candidate_placements`], plus [`PlaceError::BudgetExhausted`].
pub fn candidate_placements_budgeted(
    interaction: &Graph,
    fast: &Graph,
    previous: Option<&Placement>,
    k: usize,
    meter: &mut vf2::Budget,
) -> Result<Vec<Placement>> {
    candidate_placements_searched(
        interaction,
        fast,
        previous,
        k,
        meter,
        &SearchOptions::default(),
    )
}

/// Knobs for the monomorphism search behind candidate enumeration.
#[derive(Clone, Copy, Debug, Default)]
pub struct SearchOptions<'o> {
    /// Worker threads over the VF2 root candidates (`0`/`1` sequential).
    /// Results are bit-identical to sequential for node budgets.
    pub jobs: usize,
    /// Fast-graph node orbits from verified automorphisms: when set,
    /// only one VF2 root per orbit is explored. The caller is
    /// responsible for only passing orbits when symmetric candidates
    /// are genuinely interchangeable (first stage on a symmetric
    /// device, no prior placement breaking the symmetry).
    pub root_orbits: Option<&'o [usize]>,
}

/// [`candidate_placements_budgeted`] with explicit [`SearchOptions`]:
/// the enumeration runs on the root-parallel, optionally orbit-pruned
/// VF2 kernel. With default options this is exactly
/// [`candidate_placements_budgeted`] — same candidates, same budget
/// accounting.
///
/// # Errors
///
/// As [`candidate_placements_budgeted`].
pub fn candidate_placements_searched(
    interaction: &Graph,
    fast: &Graph,
    previous: Option<&Placement>,
    k: usize,
    meter: &mut vf2::Budget,
    options: &SearchOptions<'_>,
) -> Result<Vec<Placement>> {
    let n = interaction.node_count();
    let m = fast.node_count();

    let constrained: Vec<usize> = (0..n)
        .filter(|&i| interaction.degree(NodeId::new(i)) > 0)
        .collect();

    if constrained.is_empty() {
        let placement = match previous {
            Some(p) => p.clone(),
            None => Placement::identity(n, m)?,
        };
        return Ok(vec![placement]);
    }

    // Pattern graph over the constrained qubits only.
    let mut index = vec![usize::MAX; n];
    for (i, &q) in constrained.iter().enumerate() {
        index[q] = i;
    }
    let mut pattern = Graph::new(constrained.len());
    for (a, b, _) in interaction.edges() {
        // `Graph` stores simple edges, so each pair arrives exactly once.
        let _ = pattern.add_edge(
            NodeId::new(index[a.index()]),
            NodeId::new(index[b.index()]),
            1.0,
        );
    }

    // Enumerate monomorphisms on the root-decomposed kernel (parallel
    // across roots when `options.jobs > 1`, pruned to one root per
    // orbit when orbits are supplied), then complete each into a total
    // placement through reusable scratch buffers. The kernel's replay
    // merge guarantees the solution list and budget accounting match
    // the sequential search bit for bit.
    let parallel = vf2::ParallelOptions {
        jobs: options.jobs,
        root_orbits: options.root_orbits,
    };
    let (maps, run) = MonomorphismFinder::new(&pattern, fast)
        .limit(k)
        .collect_budgeted(meter, &parallel);
    if run.outcome == vf2::Outcome::BudgetExhausted {
        return Err(PlaceError::BudgetExhausted {
            nodes: meter.nodes_visited(),
        });
    }
    let mut scratch = CompletionScratch::new(n, m);
    let mut out = Vec::with_capacity(maps.len());
    for map in &maps {
        out.push(scratch.complete(&constrained, map, fast, previous)?);
    }
    Ok(out)
}

/// Reusable buffers for completing partial assignments into placements.
struct CompletionScratch {
    to_phys: Vec<Option<PhysicalQubit>>,
    taken: Vec<bool>,
}

impl CompletionScratch {
    fn new(n: usize, m: usize) -> Self {
        CompletionScratch {
            to_phys: vec![None; n],
            taken: vec![false; m],
        }
    }

    /// Completes a partial assignment (constrained qubits → fast-graph
    /// nodes) into a total placement.
    fn complete(
        &mut self,
        constrained: &[usize],
        map: &[NodeId],
        fast: &Graph,
        previous: Option<&Placement>,
    ) -> Result<Placement> {
        let m = self.taken.len();
        self.to_phys.fill(None);
        self.taken.fill(false);
        for (i, &q) in constrained.iter().enumerate() {
            let v = map[i].index();
            self.to_phys[q] = Some(PhysicalQubit::new(v));
            self.taken[v] = true;
        }
        // Free-nucleus list in BFS order from each qubit's previous home
        // keeps idle values near where they were (small swap stages).
        for (q, slot) in self.to_phys.iter_mut().enumerate() {
            if slot.is_some() {
                continue;
            }
            let prev_pos = previous.map(|p| p.physical(Qubit::new(q)).index());
            #[allow(clippy::expect_used)]
            let choice = match prev_pos {
                Some(home) if !self.taken[home] => home,
                Some(home) => bfs_order(fast, NodeId::new(home))
                    .into_iter()
                    .map(NodeId::index)
                    .find(|&v| !self.taken[v])
                    .or_else(|| (0..m).find(|&v| !self.taken[v]))
                    .expect("invariant: n <= m leaves a free nucleus"),
                None => (0..m)
                    .find(|&v| !self.taken[v])
                    .expect("invariant: n <= m leaves a free nucleus"),
            };
            *slot = Some(PhysicalQubit::new(choice));
            self.taken[choice] = true;
        }
        #[allow(clippy::expect_used)]
        let to_phys: Vec<PhysicalQubit> = self
            .to_phys
            .iter()
            .map(|v| v.expect("invariant: the loop above assigns every qubit"))
            .collect();
        Placement::new(to_phys, m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcp_graph::generate;

    fn q(i: usize) -> Qubit {
        Qubit::new(i)
    }
    fn p(i: usize) -> PhysicalQubit {
        PhysicalQubit::new(i)
    }

    fn interaction(n: usize, edges: &[(usize, usize)]) -> Graph {
        Graph::from_edges(n, edges.iter().copied()).unwrap()
    }

    #[test]
    fn simple_edge_into_chain() {
        let ig = interaction(2, &[(0, 1)]);
        let fast = generate::chain(3);
        let cands = candidate_placements(&ig, &fast, None, 100).unwrap();
        // Edge maps onto (0,1),(1,0),(1,2),(2,1); completion fills the rest.
        assert_eq!(cands.len(), 4);
        for c in &cands {
            assert_eq!(c.logical_count(), 2);
            assert_eq!(c.physical_count(), 3);
        }
    }

    #[test]
    fn limit_respected() {
        let ig = interaction(2, &[(0, 1)]);
        let fast = generate::complete(6);
        let cands = candidate_placements(&ig, &fast, None, 7).unwrap();
        assert_eq!(cands.len(), 7);
    }

    #[test]
    fn unconstrained_qubits_keep_previous_homes() {
        // 4 qubits, only (0,1) interact; q2, q3 idle.
        let ig = interaction(4, &[(0, 1)]);
        let fast = generate::chain(6);
        let prev = Placement::new(vec![p(4), p(5), p(2), p(3)], 6).unwrap();
        let cands = candidate_placements(&ig, &fast, Some(&prev), 100).unwrap();
        for c in &cands {
            // Idle qubits stay put whenever their nucleus is free.
            let (c2, c3) = (c.physical(q(2)), c.physical(q(3)));
            if c.logical_at(p(2)) == Some(q(2)) {
                assert_eq!(c2, p(2));
            }
            if c.logical_at(p(3)) == Some(q(3)) {
                assert_eq!(c3, p(3));
            }
        }
        // At least one candidate leaves both untouched (edge mapped away
        // from nuclei 2 and 3).
        assert!(cands
            .iter()
            .any(|c| c.physical(q(2)) == p(2) && c.physical(q(3)) == p(3)));
    }

    #[test]
    fn displaced_idle_qubit_moves_nearby() {
        // Idle q1 sits at nucleus 1; the edge (0,2) must take nuclei (1,2)
        // or (2,1) etc. When its home is taken it moves to a BFS-nearest
        // free nucleus.
        let ig = interaction(3, &[(0, 2)]);
        let fast = generate::chain(4);
        let prev = Placement::new(vec![p(0), p(1), p(2)], 4).unwrap();
        let cands = candidate_placements(&ig, &fast, Some(&prev), 100).unwrap();
        for c in &cands {
            // Everybody placed, injectively (Placement guarantees it) and
            // q1 is at most 2 hops from its old home.
            let moved = c.physical(q(1));
            let dist =
                qcp_graph::traversal::bfs_distances(&fast, NodeId::new(1))[moved.index()].unwrap();
            assert!(dist <= 2, "idle qubit flung {dist} hops away");
        }
    }

    #[test]
    fn no_interactions_returns_previous() {
        let ig = interaction(3, &[]);
        let fast = generate::chain(5);
        let prev = Placement::new(vec![p(4), p(0), p(2)], 5).unwrap();
        let cands = candidate_placements(&ig, &fast, Some(&prev), 100).unwrap();
        assert_eq!(cands.len(), 1);
        assert!(cands[0].same_assignment(&prev));
    }

    #[test]
    fn infeasible_pattern_gives_no_candidates() {
        let ig = interaction(3, &[(0, 1), (1, 2), (0, 2)]); // triangle
        let fast = generate::chain(5);
        let cands = candidate_placements(&ig, &fast, None, 100).unwrap();
        assert!(cands.is_empty());
    }

    #[test]
    fn candidates_are_valid_monomorphisms() {
        let ig = interaction(5, &[(0, 1), (1, 2), (1, 4)]);
        let fast = generate::caterpillar(4, 1);
        let cands = candidate_placements(&ig, &fast, None, 50).unwrap();
        assert!(!cands.is_empty());
        for c in &cands {
            for (a, b, _) in ig.edges() {
                let (va, vb) = (
                    c.physical(q(a.index())).index(),
                    c.physical(q(b.index())).index(),
                );
                assert!(
                    fast.has_edge(NodeId::new(va), NodeId::new(vb)),
                    "interaction ({a},{b}) not on a fast edge"
                );
            }
        }
    }
}
