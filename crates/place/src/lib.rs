//! Quantum circuit placement — the core contribution of
//! Maslov–Falconer–Mosca, *Quantum Circuit Placement* (DAC 2007 /
//! TCAD 2008).
//!
//! Given an abstract circuit and a physical environment (a molecule whose
//! qubit-to-qubit couplings have very different speeds), find an injective
//! assignment of logical qubits to nuclei minimizing the circuit's runtime
//! (Definition 3). The problem is NP-complete (§4, [`reduction`]), so the
//! crate implements the paper's heuristic pipeline:
//!
//! 1. [`workspace`] — split the circuit into maximal subcircuits whose
//!    interaction graphs embed into the *fast-interaction graph* of the
//!    environment;
//! 2. [`embed`] — enumerate up to `k` monomorphisms per subcircuit
//!    (via the VF2 implementation in `qcp_graph`);
//! 3. [`finetune`] — hill-climb each matching using the true delays;
//! 4. [`router`] — connect consecutive placements with linear-depth
//!    parallel SWAP stages (recursive bisection, "water and air bubbles",
//!    leaf–target override);
//! 5. [`placer`] — drive the stages greedily or with the depth-2 lookahead
//!    of §5.3, and cost everything with the runtime dynamic program of §3
//!    ([`cost`]).
//!
//! Reference strategies live in [`baselines`] (exhaustive search,
//! annealing, whole-circuit placement) and the §4 NP-completeness
//! reduction in [`reduction`]. For many independent requests at once —
//! N circuits × M environments — [`batch`] fans the work out across
//! worker threads with deterministic, worker-count-independent outcomes.
//!
//! The pipeline above is *exact* and all-or-nothing; [`strategy`] makes
//! placement **anytime**: a [`SearchBudget`] (node cap and/or deadline)
//! bounds the exact search, and the [`Hybrid`] strategy falls back to a
//! greedy + simulated-annealing heuristic — non-adjacent interactions
//! routed through the SWAP router — so every request gets a valid
//! placement within its budget.
//!
//! # Example
//!
//! ```
//! use qcp_circuit::library::qec3_encoder;
//! use qcp_env::{molecules, Threshold};
//! use qcp_place::{Placer, PlacerConfig};
//!
//! // Re-place the 3-qubit error-correction encoder on acetyl chloride.
//! let env = molecules::acetyl_chloride();
//! let placer = Placer::new(&env, PlacerConfig::with_threshold(Threshold::new(100.0)));
//! let outcome = placer.place(&qec3_encoder())?;
//! assert_eq!(outcome.runtime.to_string(), "0.0136 sec"); // Table 2, row 1
//! # Ok::<(), qcp_place::PlaceError>(())
//! ```

#![forbid(unsafe_code)]
// Unit tests may unwrap freely; library code must not (workspace lints).
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]
#![warn(missing_docs)]

pub mod baselines;
pub mod batch;
pub mod cache;
pub mod cost;
pub mod embed;
mod error;
pub mod fidelity;
pub mod finetune;
mod placement;
pub mod placer;
pub mod reduction;
pub mod request;
pub mod router;
pub mod strategy;
pub mod timeline;
pub mod workspace;

pub use batch::{BatchPlacer, BatchReport, BatchRequest, BatchResult};
pub use cache::{CacheKey, CanonicalCircuit, PlacementCache};
pub use cost::{CostModel, ExecutionModel, PlacedGate, Schedule};
pub use error::{FailureClass, PlaceError};
pub use placement::Placement;
pub use placer::{PlacementOutcome, Placer, PlacerConfig, Stage};
pub use request::{
    execute, execute_with, CacheDisposition, CachePolicy, Certifier, PlaceReport, PlaceRequest,
};
pub use router::{RouterConfig, SwapSchedule};
pub use strategy::{
    AnnealConfig, ExactVf2, GreedyAnneal, Hybrid, PlacementStrategy, Resolution, SearchBudget,
    Strategy,
};
pub use timeline::{TimedGate, Timeline};

/// Convenience result alias used throughout the crate.
pub type Result<T, E = PlaceError> = std::result::Result<T, E>;
