//! Parallel batch placement: N circuits × M environments through a pool
//! of worker threads.
//!
//! A single [`crate::Placer`] call is fast but single-threaded; serving
//! heavy traffic means running many independent placement requests at
//! once. [`BatchPlacer`] fans a request list out across
//! `std::thread::scope` workers (work-stealing over an atomic cursor, one
//! placer and cost-engine arena per in-flight request, no shared mutable
//! state) and collects per-request [`BatchResult`]s plus an aggregate
//! [`BatchReport`].
//!
//! Results are **deterministic**: the placement pipeline has no data
//! races to hide (each request is independent and the placer itself is
//! deterministic), and the report lists results in request order, so the
//! outcomes are bit-identical whatever the worker count — only the wall
//! clock changes. [`BatchReport::outcome_fingerprint`] condenses that
//! guarantee into one comparable hash.
//!
//! Jobs are **panic-isolated**: every placement runs under
//! `catch_unwind` on its worker, so one poisoned request (a placement
//! bug, a tripped debug assertion) surfaces as a per-job
//! [`PlaceError::Internal`] result while the other jobs — and the worker
//! thread itself — carry on. This is the same failure domain the
//! `qcp serve` daemon builds on.
//!
//! # Example
//!
//! ```
//! use qcp_circuit::library;
//! use qcp_env::{molecules, topologies, Threshold};
//! use qcp_place::batch::BatchPlacer;
//! use qcp_place::PlacerConfig;
//!
//! let circuits = [library::qec3_encoder(), library::qft(4)];
//! let envs = [
//!     molecules::trans_crotonic_acid(),
//!     topologies::grid(2, 3, topologies::Delays::default()),
//! ];
//! let report = BatchPlacer::cross_auto(&circuits, &envs, &PlacerConfig::default())
//!     .jobs(2)
//!     .run();
//! assert_eq!(report.results.len(), 4);
//! assert_eq!(report.failed(), 0);
//! // Same requests, one worker: identical outcomes.
//! let serial = BatchPlacer::cross_auto(&circuits, &envs, &PlacerConfig::default())
//!     .jobs(1)
//!     .run();
//! assert_eq!(report.outcome_fingerprint(), serial.outcome_fingerprint());
//! ```

use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use qcp_circuit::{Circuit, Time};
use qcp_env::Environment;

use crate::cache::{cache_key, remap_outcome, CanonicalCircuit};
use crate::request::PlaceRequest;
use crate::strategy::Resolution;
use crate::{PlaceError, PlacementOutcome, PlacerConfig};

/// One placement request: a circuit to run on an environment under a
/// placer configuration.
#[derive(Clone, Debug)]
pub struct BatchRequest {
    /// Display label carried into the result (e.g. `qft6@grid-8x8`).
    pub label: String,
    /// The circuit to place.
    pub circuit: Circuit,
    /// The target environment (molecule or synthesized device backend).
    pub environment: Environment,
    /// Placer configuration, including the fast-interaction threshold.
    pub config: PlacerConfig,
}

impl BatchRequest {
    /// Creates a request with an explicit label.
    pub fn new(
        label: impl Into<String>,
        circuit: Circuit,
        environment: Environment,
        config: PlacerConfig,
    ) -> Self {
        BatchRequest {
            label: label.into(),
            circuit,
            environment,
            config,
        }
    }
}

/// The outcome of one [`BatchRequest`], in request order within
/// [`BatchReport::results`].
#[derive(Clone, Debug)]
pub struct BatchResult {
    /// Index of the request this result answers.
    pub index: usize,
    /// Label copied from the request.
    pub label: String,
    /// The placement outcome, or the error the pipeline reported.
    pub outcome: Result<PlacementOutcome, PlaceError>,
    /// Wall-clock time this single request took on its worker.
    pub elapsed: Duration,
}

impl BatchResult {
    /// How the placement was obtained (`None` for failed requests) —
    /// exact, heuristic fallback, or budget-exhausted fallback.
    pub fn resolution(&self) -> Option<Resolution> {
        self.outcome.as_ref().ok().map(|o| o.resolution)
    }
}

/// A parallel batch-placement driver.
///
/// Build one with [`BatchPlacer::new`] (explicit requests) or
/// [`BatchPlacer::cross`] / [`BatchPlacer::cross_auto`] (the N × M
/// product of circuits and environments), choose a worker count with
/// [`jobs`](BatchPlacer::jobs), and call [`run`](BatchPlacer::run).
#[derive(Clone, Debug)]
pub struct BatchPlacer {
    requests: Vec<BatchRequest>,
    jobs: usize,
    dedup: bool,
}

impl BatchPlacer {
    /// A driver over an explicit request list.
    pub fn new(requests: Vec<BatchRequest>) -> Self {
        BatchPlacer {
            requests,
            jobs: 0,
            dedup: true,
        }
    }

    /// The N × M cross product: every circuit on every environment, all
    /// under `config` (circuit-major request order, labels
    /// `c<i>@<env name>`).
    pub fn cross(
        circuits: &[Circuit],
        environments: &[Environment],
        config: &PlacerConfig,
    ) -> Self {
        Self::cross_with(circuits, environments, |_| config.clone())
    }

    /// Like [`cross`](BatchPlacer::cross), but each environment gets its
    /// own connectivity threshold ([`Environment::connectivity_threshold`],
    /// the paper's automatic choice) in place of `base.threshold`;
    /// disconnected environments keep `base.threshold`.
    pub fn cross_auto(
        circuits: &[Circuit],
        environments: &[Environment],
        base: &PlacerConfig,
    ) -> Self {
        Self::cross_with(circuits, environments, |env| {
            let mut config = base.clone();
            if let Some(t) = env.connectivity_threshold() {
                config.threshold = t;
            }
            config
        })
    }

    /// Like [`cross`](BatchPlacer::cross), but with caller-supplied
    /// circuit names: labels become `<name>@<env name>`. This is the
    /// ingestion path for external circuit files (e.g. an OpenQASM corpus
    /// directory), where the file stem makes the batch report readable.
    pub fn cross_named(
        circuits: &[(String, Circuit)],
        environments: &[Environment],
        config: &PlacerConfig,
    ) -> Self {
        Self::cross_named_with(circuits, environments, |_| config.clone())
    }

    /// [`cross_named`](BatchPlacer::cross_named) with the per-environment
    /// automatic threshold of [`cross_auto`](BatchPlacer::cross_auto).
    pub fn cross_named_auto(
        circuits: &[(String, Circuit)],
        environments: &[Environment],
        base: &PlacerConfig,
    ) -> Self {
        Self::cross_named_with(circuits, environments, |env| {
            let mut config = base.clone();
            if let Some(t) = env.connectivity_threshold() {
                config.threshold = t;
            }
            config
        })
    }

    fn cross_with(
        circuits: &[Circuit],
        environments: &[Environment],
        config_for: impl FnMut(&Environment) -> PlacerConfig,
    ) -> Self {
        // Synthetic `c<i>` labels; circuits are only cloned per request.
        let named = circuits
            .iter()
            .enumerate()
            .map(|(ci, c)| (format!("c{ci}"), c));
        Self::cross_pairs_with(named, environments, config_for)
    }

    fn cross_named_with(
        circuits: &[(String, Circuit)],
        environments: &[Environment],
        config_for: impl FnMut(&Environment) -> PlacerConfig,
    ) -> Self {
        let named = circuits.iter().map(|(name, c)| (name.clone(), c));
        Self::cross_pairs_with(named, environments, config_for)
    }

    fn cross_pairs_with<'a>(
        circuits: impl IntoIterator<Item = (String, &'a Circuit)>,
        environments: &[Environment],
        mut config_for: impl FnMut(&Environment) -> PlacerConfig,
    ) -> Self {
        let configs: Vec<PlacerConfig> = environments.iter().map(&mut config_for).collect();
        let requests = circuits
            .into_iter()
            .flat_map(|(name, circuit)| {
                environments.iter().zip(&configs).map(move |(env, config)| {
                    BatchRequest::new(
                        format!("{name}@{}", env.name()),
                        circuit.clone(),
                        env.clone(),
                        config.clone(),
                    )
                })
            })
            .collect();
        BatchPlacer::new(requests)
    }

    /// Sets the worker count. `0` (the default) uses
    /// [`std::thread::available_parallelism`]; any value is additionally
    /// capped at the request count.
    #[must_use]
    pub fn jobs(mut self, jobs: usize) -> Self {
        self.jobs = jobs;
        self
    }

    /// Enables or disables cross-batch deduplication (on by default).
    ///
    /// With dedup on, requests sharing a [`PlaceRequest::cache_key`]
    /// (canonically identical circuit × same environment × same
    /// configuration) are placed once: the first occurrence is the
    /// *representative*, and every follower receives the
    /// representative's outcome rewritten onto its own qubit labels by
    /// the canonical witness remap. Grouping happens serially before
    /// any worker starts, so outcomes stay deterministic and
    /// worker-count independent. [`BatchReport::deduped`] counts the
    /// requests served by remap.
    #[must_use]
    pub fn dedup(mut self, dedup: bool) -> Self {
        self.dedup = dedup;
        self
    }

    /// The requests this driver will run, in result order.
    pub fn requests(&self) -> &[BatchRequest] {
        &self.requests
    }

    /// Places every request and aggregates the results.
    ///
    /// With more than one worker, requests are handed out over an atomic
    /// cursor (work stealing keeps the workers busy even when request
    /// costs are skewed); each request is placed exactly once, and the
    /// report lists results in request order regardless of which worker
    /// finished what when.
    pub fn run(&self) -> BatchReport {
        let n = self.requests.len();
        let started = Instant::now();

        // Cross-batch dedup (serial, before any worker starts): group
        // requests by the unified cache key; only group representatives
        // — first occurrence wins — are actually placed.
        let mut follower_of: Vec<Option<usize>> = vec![None; n];
        let mut canon: Vec<Option<CanonicalCircuit>> = vec![None; n];
        if self.dedup {
            let mut rep_for: HashMap<u128, usize> = HashMap::new();
            for (i, request) in self.requests.iter().enumerate() {
                let canonical = CanonicalCircuit::of(&request.circuit);
                // An exhausted canonicalization is not a sound sharing
                // key (its witness may be labelling-dependent): place
                // the request individually, never as a follower or a
                // representative.
                if canonical.exhausted {
                    continue;
                }
                let key = cache_key(&canonical, &request.environment, &request.config);
                canon[i] = Some(canonical);
                match rep_for.entry(key.as_u128()) {
                    Entry::Occupied(rep) => follower_of[i] = Some(*rep.get()),
                    Entry::Vacant(slot) => {
                        slot.insert(i);
                    }
                }
            }
        }
        let deduped = follower_of.iter().filter(|f| f.is_some()).count();
        let reps: Vec<usize> = (0..n).filter(|&i| follower_of[i].is_none()).collect();

        let jobs = match self.jobs {
            0 => std::thread::available_parallelism().map_or(1, usize::from),
            j => j,
        }
        .clamp(1, reps.len().max(1));

        let rep_results: Vec<BatchResult> = if jobs == 1 {
            // Exactly the sequential loop: no spawn overhead for --jobs 1.
            reps.iter()
                .map(|&i| place_one((i, &self.requests[i])))
                .collect()
        } else {
            let cursor = AtomicUsize::new(0);
            std::thread::scope(|scope| {
                let workers: Vec<_> = (0..jobs)
                    .map(|_| {
                        scope.spawn(|| {
                            let mut mine = Vec::new();
                            loop {
                                let slot = cursor.fetch_add(1, Ordering::Relaxed);
                                let Some(&i) = reps.get(slot) else {
                                    break;
                                };
                                mine.push(place_one((i, &self.requests[i])));
                            }
                            mine
                        })
                    })
                    .collect();
                #[allow(clippy::expect_used)]
                workers
                    .into_iter()
                    .flat_map(|w| w.join().expect("batch worker panicked"))
                    .collect::<Vec<_>>()
            })
        };

        // Scatter representative results, then serve every follower by
        // witness-remapping its representative's outcome — deterministic
        // and independent of worker scheduling.
        let mut slots: Vec<Option<BatchResult>> = (0..n).map(|_| None).collect();
        for result in rep_results {
            let index = result.index;
            slots[index] = Some(result);
        }
        for i in 0..n {
            let Some(rep) = follower_of[i] else { continue };
            let t0 = Instant::now();
            let outcome = match slots[rep].as_ref().map(|r| &r.outcome) {
                Some(Ok(outcome)) => {
                    let stored = canon[rep].as_ref().map(|c| c.order.as_slice());
                    let requested = canon[i].as_ref().map(|c| c.order.as_slice());
                    match (stored, requested) {
                        (Some(stored), Some(requested)) => {
                            remap_outcome(outcome, stored, requested).ok_or_else(|| {
                                PlaceError::Internal {
                                    message: "dedup witness remap failed".to_string(),
                                }
                            })
                        }
                        _ => Err(PlaceError::Internal {
                            message: "dedup lost a canonical witness".to_string(),
                        }),
                    }
                }
                Some(Err(e)) => Err(e.clone()),
                None => Err(PlaceError::Internal {
                    message: "dedup representative produced no result".to_string(),
                }),
            };
            #[cfg(debug_assertions)]
            if let Ok(o) = &outcome {
                // Re-check remapped outcomes exactly like fresh ones, so
                // a remap bug fails loudly at its origin in debug builds.
                let placer = crate::Placer::new(
                    &self.requests[i].environment,
                    self.requests[i].config.clone(),
                );
                crate::strategy::debug_check_outcome(&placer, &self.requests[i].circuit, o);
            }
            slots[i] = Some(BatchResult {
                index: i,
                label: self.requests[i].label.clone(),
                outcome,
                elapsed: t0.elapsed(),
            });
        }
        let mut results: Vec<BatchResult> = slots.into_iter().flatten().collect();
        debug_assert!(results.iter().enumerate().all(|(i, r)| r.index == i));
        results.shrink_to_fit();

        BatchReport {
            results,
            wall_time: started.elapsed(),
            jobs,
            deduped,
        }
    }
}

/// Test seam for the panic-isolation contract: a request whose label
/// matches the poisoned label panics inside the worker. Only compiled in
/// test builds; production placements never consult it.
#[cfg(test)]
static CHAOS_POISONED_LABEL: std::sync::Mutex<Option<String>> = std::sync::Mutex::new(None);

fn place_one((index, request): (usize, &BatchRequest)) -> BatchResult {
    let t0 = Instant::now();
    // Panic isolation: a poisoned request (a placement bug, a tripped
    // debug assertion, an adversarial circuit that finds a hole) must
    // cost exactly one result, not the whole batch. The unwind is caught
    // at the job boundary and surfaced as `PlaceError::Internal`; no
    // shared state crosses this boundary (each job owns its placer and
    // cost arenas), so the catch cannot observe broken invariants of its
    // siblings.
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        #[cfg(test)]
        {
            let poisoned = CHAOS_POISONED_LABEL
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            if poisoned.as_deref() == Some(request.label.as_str()) {
                panic!("chaos: poisoned batch request `{}`", request.label);
            }
        }
        // The unified executor — the same entry point the CLI and the
        // serve daemon use; nothing is shared between in-flight
        // placements (each executes its own placer and cost arenas).
        let place_request = PlaceRequest::new(&request.circuit, &request.environment)
            .config(request.config.clone());
        let outcome = crate::request::execute(&place_request).map(|report| report.outcome);
        // Debug builds re-check every successful outcome before it leaves
        // the worker, so a broken invariant fails this *request* loudly
        // and close to its origin instead of surfacing in aggregated
        // reports (the unwind is converted to a per-job Internal error).
        #[cfg(debug_assertions)]
        if let Ok(o) = &outcome {
            let placer = crate::Placer::new(&request.environment, request.config.clone());
            crate::strategy::debug_check_outcome(&placer, &request.circuit, o);
        }
        outcome
    }))
    .unwrap_or_else(|payload| Err(PlaceError::from_panic(payload.as_ref())));
    BatchResult {
        index,
        label: request.label.clone(),
        outcome,
        elapsed: t0.elapsed(),
    }
}

/// Aggregate view of a batch run; per-request detail stays available in
/// [`results`](BatchReport::results).
#[derive(Clone, Debug)]
pub struct BatchReport {
    /// Per-request results, in request order (independent of worker
    /// count and scheduling).
    pub results: Vec<BatchResult>,
    /// Wall-clock time of the whole batch.
    pub wall_time: Duration,
    /// Number of workers actually used.
    pub jobs: usize,
    /// Requests served by witness remap from a canonically identical
    /// representative instead of being placed (0 when dedup is off).
    pub deduped: usize,
}

impl BatchReport {
    /// Number of requests that produced a placement.
    pub fn succeeded(&self) -> usize {
        self.results.iter().filter(|r| r.outcome.is_ok()).count()
    }

    /// Number of requests that failed (their errors stay in
    /// [`results`](BatchReport::results)).
    pub fn failed(&self) -> usize {
        self.results.len() - self.succeeded()
    }

    /// Number of successful requests that resolved a particular way —
    /// the per-request strategy outcome (exact vs fallback vs
    /// budget-exhausted) instead of a collapsed success/failure count.
    pub fn resolved(&self, resolution: Resolution) -> usize {
        self.results
            .iter()
            .filter(|r| r.resolution() == Some(resolution))
            .count()
    }

    /// Sum of the placed circuits' physical runtimes.
    pub fn total_runtime(&self) -> Time {
        Time::from_units(
            self.results
                .iter()
                .filter_map(|r| r.outcome.as_ref().ok())
                .map(|o| o.runtime.units())
                .sum(),
        )
    }

    /// Total SWAP gates inserted across all successful placements.
    pub fn total_swaps(&self) -> usize {
        self.results
            .iter()
            .filter_map(|r| r.outcome.as_ref().ok())
            .map(PlacementOutcome::swap_count)
            .sum()
    }

    /// Sum of per-request placement times (the single-threaded work the
    /// batch represents; compare against [`wall_time`](BatchReport::wall_time)
    /// for the realized parallel speedup).
    pub fn cpu_time(&self) -> Duration {
        self.results.iter().map(|r| r.elapsed).sum()
    }

    /// Median per-request placement time (zero for an empty batch).
    pub fn median_elapsed(&self) -> Duration {
        let mut times: Vec<Duration> = self.results.iter().map(|r| r.elapsed).collect();
        if times.is_empty() {
            return Duration::ZERO;
        }
        times.sort_unstable();
        times[times.len() / 2]
    }

    /// Requests completed per wall-clock second.
    pub fn throughput(&self) -> f64 {
        self.results.len() as f64 / self.wall_time.as_secs_f64().max(1e-12)
    }

    /// An order-sensitive FNV-1a hash over every outcome: each result's
    /// success flag, strategy resolution, runtime bits, subcircuit count,
    /// swap count, and initial placement. Two runs of the same requests
    /// must produce equal fingerprints whatever their worker counts — the
    /// determinism contract the property tests pin down. An exact and a
    /// fallback placement that happen to coincide still fingerprint
    /// differently: how an answer was obtained is part of the outcome.
    pub fn outcome_fingerprint(&self) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        let mut mix = |x: u64| {
            h ^= x;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        };
        for r in &self.results {
            match &r.outcome {
                Ok(outcome) => {
                    mix(1);
                    mix(match outcome.resolution {
                        Resolution::Exact => 10,
                        Resolution::Fallback => 11,
                        Resolution::BudgetExhausted => 12,
                    });
                    mix(outcome.runtime.units().to_bits());
                    mix(outcome.subcircuit_count() as u64);
                    mix(outcome.swap_count() as u64);
                    for stage in &outcome.stages {
                        for v in stage.placement.as_slice() {
                            mix(v.index() as u64);
                        }
                    }
                }
                Err(e) => {
                    mix(2);
                    for byte in e.to_string().bytes() {
                        mix(u64::from(byte));
                    }
                }
            }
        }
        h
    }
}

impl fmt::Display for BatchReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "batch: {} request(s) on {} worker(s) in {:.3} s ({:.1} req/s, cpu {:.3} s)",
            self.results.len(),
            self.jobs,
            self.wall_time.as_secs_f64(),
            self.throughput(),
            self.cpu_time().as_secs_f64(),
        )?;
        writeln!(
            f,
            "  {} ok, {} failed | total physical runtime {} | {} swap(s) | median request {:.1} ms",
            self.succeeded(),
            self.failed(),
            self.total_runtime(),
            self.total_swaps(),
            self.median_elapsed().as_secs_f64() * 1e3,
        )?;
        writeln!(
            f,
            "  resolutions: {} exact, {} fallback, {} budget-exhausted",
            self.resolved(Resolution::Exact),
            self.resolved(Resolution::Fallback),
            self.resolved(Resolution::BudgetExhausted),
        )?;
        if self.deduped > 0 {
            writeln!(
                f,
                "  deduped: {} of {} request(s) served by witness remap",
                self.deduped,
                self.results.len(),
            )?;
        }
        for r in &self.results {
            match &r.outcome {
                Ok(o) => writeln!(
                    f,
                    "  [{:>3}] {}: runtime {}, {} stage(s), {} swap(s) [{}]",
                    r.index,
                    r.label,
                    o.runtime,
                    o.subcircuit_count(),
                    o.swap_count(),
                    o.resolution,
                )?,
                Err(e) => writeln!(f, "  [{:>3}] {}: FAILED: {e}", r.index, r.label)?,
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::{SearchBudget, Strategy};
    use qcp_circuit::library;
    use qcp_env::{molecules, topologies, Threshold};

    fn zoo() -> (Vec<Circuit>, Vec<Environment>) {
        let circuits = vec![
            library::qec3_encoder(),
            library::qft(4),
            library::pseudo_cat(5),
        ];
        let envs = vec![
            molecules::trans_crotonic_acid(),
            topologies::grid(2, 3, topologies::Delays::default()),
            topologies::heavy_hex(3, topologies::Delays::default()),
        ];
        (circuits, envs)
    }

    #[test]
    fn send_sync_bounds() {
        fn assert_traits<T: Send + Sync>() {}
        assert_traits::<BatchRequest>();
        assert_traits::<BatchPlacer>();
        assert_traits::<BatchReport>();
    }

    #[test]
    fn cross_builds_row_major_requests() {
        let (circuits, envs) = zoo();
        let batch = BatchPlacer::cross(&circuits, &envs, &PlacerConfig::default());
        assert_eq!(batch.requests().len(), 9);
        assert_eq!(batch.requests()[0].label, "c0@trans-crotonic acid");
        assert_eq!(batch.requests()[1].label, "c0@grid-2x3");
        assert_eq!(batch.requests()[3].label, "c1@trans-crotonic acid");
    }

    #[test]
    fn cross_named_uses_caller_labels() {
        let (circuits, envs) = zoo();
        let named: Vec<(String, Circuit)> = ["qec3", "qft4", "cat5"]
            .iter()
            .zip(circuits)
            .map(|(n, c)| (n.to_string(), c))
            .collect();
        let batch = BatchPlacer::cross_named(&named, &envs, &PlacerConfig::default());
        assert_eq!(batch.requests().len(), 9);
        assert_eq!(batch.requests()[0].label, "qec3@trans-crotonic acid");
        assert_eq!(batch.requests()[4].label, "qft4@grid-2x3");
        // Same requests through cross_named_auto: identical outcomes to
        // the anonymous cross_auto (labels differ, fingerprints match
        // because labels are not part of the outcome).
        let a = BatchPlacer::cross_named_auto(&named, &envs, &PlacerConfig::default()).run();
        let b = {
            let circuits: Vec<Circuit> = named.iter().map(|(_, c)| c.clone()).collect();
            BatchPlacer::cross_auto(&circuits, &envs, &PlacerConfig::default()).run()
        };
        assert_eq!(a.outcome_fingerprint(), b.outcome_fingerprint());
    }

    #[test]
    fn outcomes_identical_across_worker_counts() {
        let (circuits, envs) = zoo();
        let reports: Vec<BatchReport> = [1usize, 2, 8]
            .into_iter()
            .map(|j| {
                BatchPlacer::cross_auto(&circuits, &envs, &PlacerConfig::default())
                    .jobs(j)
                    .run()
            })
            .collect();
        assert_eq!(reports[0].failed(), 0);
        let fp = reports[0].outcome_fingerprint();
        for r in &reports[1..] {
            assert_eq!(r.outcome_fingerprint(), fp);
            assert_eq!(r.results.len(), reports[0].results.len());
            for (a, b) in reports[0].results.iter().zip(&r.results) {
                assert_eq!(a.index, b.index);
                assert_eq!(a.label, b.label);
            }
        }
    }

    #[test]
    fn failures_are_reported_not_fatal() {
        // qft(6) cannot fit acetyl chloride's 3 nuclei.
        let circuits = vec![library::qec3_encoder(), library::qft(6)];
        let envs = vec![molecules::acetyl_chloride()];
        let report = BatchPlacer::cross_auto(&circuits, &envs, &PlacerConfig::default())
            .jobs(4)
            .run();
        assert_eq!(report.succeeded(), 1);
        assert_eq!(report.failed(), 1);
        assert!(matches!(
            report.results[1].outcome,
            Err(PlaceError::CircuitTooLarge { .. })
        ));
        let text = report.to_string();
        assert!(text.contains("1 ok, 1 failed"), "{text}");
        assert!(text.contains("FAILED"), "{text}");
    }

    #[test]
    fn resolutions_surface_in_report_and_fingerprint() {
        let circuits = vec![library::qec3_encoder()];
        let envs = vec![topologies::grid(2, 3, topologies::Delays::default())];

        let exact = BatchPlacer::cross_auto(&circuits, &envs, &PlacerConfig::default()).run();
        assert_eq!(exact.resolved(Resolution::Exact), 1);
        assert_eq!(exact.results[0].resolution(), Some(Resolution::Exact));

        let anneal_cfg = PlacerConfig::default().strategy(Strategy::Anneal);
        let anneal = BatchPlacer::cross_auto(&circuits, &envs, &anneal_cfg).run();
        assert_eq!(anneal.resolved(Resolution::Fallback), 1);
        // The resolution is part of the fingerprint: the same requests
        // answered a different way are a different outcome.
        assert_ne!(exact.outcome_fingerprint(), anneal.outcome_fingerprint());

        let hybrid0 = PlacerConfig::default()
            .strategy(Strategy::Hybrid)
            .budget(SearchBudget::nodes(0));
        let report = BatchPlacer::cross_auto(&circuits, &envs, &hybrid0).run();
        assert_eq!(report.failed(), 0);
        assert_eq!(report.resolved(Resolution::BudgetExhausted), 1);
        let text = report.to_string();
        assert!(text.contains("1 budget-exhausted"), "{text}");
        assert!(text.contains("[budget-exhausted]"), "{text}");
    }

    #[test]
    fn one_poisoned_request_of_32_still_yields_31_results() {
        // 32 copies of a fast request; poison exactly one by label. The
        // poisoned job must come back as a per-request Internal error with
        // the panic payload preserved — and the other 31 as ordinary
        // successes, whatever the worker count.
        let circuit = library::qec3_encoder();
        let env = topologies::grid(2, 3, topologies::Delays::default());
        let config =
            PlacerConfig::with_threshold(env.connectivity_threshold().expect("grid connects"));
        let requests: Vec<BatchRequest> = (0..32)
            .map(|i| {
                BatchRequest::new(
                    format!("poison-test-{i}"),
                    circuit.clone(),
                    env.clone(),
                    config.clone(),
                )
            })
            .collect();
        *CHAOS_POISONED_LABEL
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner) =
            Some("poison-test-17".to_string());
        // Dedup off: the point is that every request runs (and exactly
        // one panics); with dedup on the 32 identical requests would
        // collapse to one placement and the seam would never fire.
        let report = BatchPlacer::new(requests).jobs(4).dedup(false).run();
        *CHAOS_POISONED_LABEL
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner) = None;

        assert_eq!(report.results.len(), 32);
        assert_eq!(report.succeeded(), 31);
        assert_eq!(report.failed(), 1);
        let failed = &report.results[17];
        assert_eq!(failed.label, "poison-test-17");
        match &failed.outcome {
            Err(PlaceError::Internal { message }) => {
                assert!(message.contains("poisoned batch request"), "{message}");
            }
            other => panic!("expected Internal, got {other:?}"),
        }
        // The report renders the failure without aborting.
        let text = report.to_string();
        assert!(text.contains("31 ok, 1 failed"), "{text}");
        assert!(
            text.contains("FAILED: internal placement failure"),
            "{text}"
        );
    }

    #[test]
    fn dedup_collapses_identical_requests_with_identical_outcomes() {
        // 32 copies of one request (zoo32-style repetition): dedup places
        // one representative and serves 31 followers by identity remap —
        // and the outcomes are fingerprint-identical to the dedup-off run.
        let circuit = library::qec3_encoder();
        let env = topologies::grid(2, 3, topologies::Delays::default());
        let config =
            PlacerConfig::with_threshold(env.connectivity_threshold().expect("grid connects"));
        let requests: Vec<BatchRequest> = (0..32)
            .map(|i| {
                BatchRequest::new(
                    format!("rep-{i}"),
                    circuit.clone(),
                    env.clone(),
                    config.clone(),
                )
            })
            .collect();
        let deduped = BatchPlacer::new(requests.clone()).jobs(4).run();
        assert_eq!(deduped.deduped, 31);
        assert_eq!(deduped.succeeded(), 32);
        let plain = BatchPlacer::new(requests).jobs(4).dedup(false).run();
        assert_eq!(plain.deduped, 0);
        assert_eq!(plain.outcome_fingerprint(), deduped.outcome_fingerprint());
        let text = deduped.to_string();
        assert!(text.contains("deduped: 31 of 32 request(s)"), "{text}");
        assert!(!plain.to_string().contains("deduped:"));
    }

    #[test]
    fn dedup_remaps_isomorphic_relabelled_requests() {
        let circuit = library::qec3_encoder();
        let n = circuit.qubit_count();
        let relabelled = circuit.map_qubits(n, |q| qcp_circuit::Qubit::new(n - 1 - q.index()));
        let env = molecules::acetyl_chloride();
        let config = PlacerConfig::with_threshold(Threshold::new(100.0));
        let requests = vec![
            BatchRequest::new("orig", circuit, env.clone(), config.clone()),
            BatchRequest::new("relabelled", relabelled.clone(), env, config),
        ];
        let report = BatchPlacer::new(requests).run();
        assert_eq!(report.deduped, 1);
        assert_eq!(report.succeeded(), 2);
        let a = report.results[0].outcome.as_ref().expect("orig ok");
        let b = report.results[1].outcome.as_ref().expect("relabelled ok");
        // Same physical answer, each on its own circuit's labels.
        assert_eq!(a.runtime, b.runtime);
        assert_eq!(
            b.stages[0].subcircuit.interaction_graph().edge_count(),
            relabelled.interaction_graph().edge_count()
        );
    }

    #[test]
    fn reported_jobs_count_workers_actually_spawned_after_dedup() {
        // 8 identical requests collapse to one representative under
        // dedup, so only one worker can ever have work: the report must
        // say 1, not echo the requested 8 (which would overstate
        // parallelism in logs and scaling_check pairing).
        let circuit = library::qec3_encoder();
        let env = topologies::grid(2, 3, topologies::Delays::default());
        let config =
            PlacerConfig::with_threshold(env.connectivity_threshold().expect("grid connects"));
        let requests: Vec<BatchRequest> = (0..8)
            .map(|i| {
                BatchRequest::new(
                    format!("rep-{i}"),
                    circuit.clone(),
                    env.clone(),
                    config.clone(),
                )
            })
            .collect();
        let deduped = BatchPlacer::new(requests.clone()).jobs(8).run();
        assert_eq!(deduped.deduped, 7);
        assert_eq!(deduped.jobs, 1, "jobs must count spawned workers");
        // Dedup off: all 8 groups exist, the full worker ask is honored.
        let plain = BatchPlacer::new(requests.clone())
            .jobs(8)
            .dedup(false)
            .run();
        assert_eq!(plain.jobs, 8);
        // A worker ask smaller than the group count passes through.
        let three = BatchPlacer::new(requests).jobs(3).dedup(false).run();
        assert_eq!(three.jobs, 3);
    }

    #[test]
    fn exhausted_canonicalizations_are_never_deduped() {
        // Three disjoint rings of 8 blow the canonicalization leaf
        // budget, so the fingerprint may be labelling-dependent: two
        // relabellings of the same circuit must both be placed
        // individually, never served from each other by witness remap.
        let mut b = Circuit::builder(24);
        for r in 0..3 {
            let base = r * 8;
            for i in 0..8 {
                b.gate(qcp_circuit::Gate::zz(
                    qcp_circuit::Qubit::new(base + i),
                    qcp_circuit::Qubit::new(base + (i + 1) % 8),
                    90.0,
                ));
            }
        }
        let circuit = b.build();
        assert!(crate::CanonicalCircuit::of(&circuit).exhausted);
        let relabelled = circuit.map_qubits(24, |q| qcp_circuit::Qubit::new(23 - q.index()));
        let env = topologies::grid(5, 5, topologies::Delays::default());
        let mut config =
            PlacerConfig::with_threshold(env.connectivity_threshold().expect("grid connects"));
        config.strategy = Strategy::Anneal;
        config.anneal.iterations = 50;
        let requests = vec![
            BatchRequest::new("orig", circuit, env.clone(), config.clone()),
            BatchRequest::new("relabelled", relabelled, env, config),
        ];
        let report = BatchPlacer::new(requests).run();
        assert_eq!(report.deduped, 0, "exhausted certificates must not dedup");
        assert_eq!(report.succeeded(), 2);
    }

    #[test]
    fn distinct_requests_are_not_deduped() {
        let (circuits, envs) = zoo();
        let report = BatchPlacer::cross_auto(&circuits, &envs, &PlacerConfig::default()).run();
        assert_eq!(report.deduped, 0);
        assert_eq!(report.failed(), 0);
    }

    #[test]
    fn empty_batch_is_fine() {
        let report = BatchPlacer::new(Vec::new()).jobs(4).run();
        assert_eq!(report.results.len(), 0);
        assert_eq!(report.failed(), 0);
        assert_eq!(report.median_elapsed(), Duration::ZERO);
        assert!(report.total_runtime().is_zero());
    }

    #[test]
    fn jobs_zero_is_auto_and_capped() {
        let circuits = vec![library::qec3_encoder()];
        let envs = vec![molecules::acetyl_chloride()];
        let mut batch = BatchPlacer::cross(
            &circuits,
            &envs,
            &PlacerConfig::with_threshold(Threshold::new(100.0)),
        );
        batch = batch.jobs(64);
        let report = batch.run();
        // One request: worker count is capped at 1 however many were asked.
        assert_eq!(report.jobs, 1);
        assert_eq!(report.succeeded(), 1);
    }

    #[test]
    fn aggregates_add_up() {
        let (circuits, envs) = zoo();
        let report = BatchPlacer::cross_auto(&circuits, &envs, &PlacerConfig::default())
            .jobs(2)
            .run();
        let manual_runtime: f64 = report
            .results
            .iter()
            .map(|r| r.outcome.as_ref().unwrap().runtime.units())
            .sum();
        assert_eq!(report.total_runtime().units(), manual_runtime);
        assert!(report.cpu_time() >= report.median_elapsed());
        assert!(report.throughput() > 0.0);
    }
}
