#![allow(clippy::unwrap_used, clippy::expect_used)]
//! Parallel-parity suite: exact search with `search_jobs = N` must be
//! **bit-identical** to the sequential search — same candidates in the
//! same order, same budget accounting, same outcome or error — for every
//! worker count. The kernel's deterministic replay merge and the
//! placer's schedule-independent metering make this a hard guarantee,
//! not a statistical one, so these tests compare full outcome
//! fingerprints (runtime bits, every stage placement, every swap count,
//! exhaustion node counts) across worker counts 1/2/4/8 over the QASM
//! corpus × grid/ring/heavy-hex — with and without tight node budgets.

use proptest::prelude::*;

use qcp_circuit::{qasm, Circuit};
use qcp_env::topologies::{self, Delays};
use qcp_env::Environment;
use qcp_place::{PlaceError, PlacementOutcome, Placer, PlacerConfig, SearchBudget, Strategy};

/// The committed 10-file QASM corpus, sorted for stable iteration.
fn corpus() -> Vec<(String, Circuit)> {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/../../tests/qasm");
    let mut paths: Vec<_> = std::fs::read_dir(dir)
        .expect("qasm corpus directory")
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|ext| ext == "qasm"))
        .collect();
    paths.sort();
    assert!(paths.len() >= 10, "expected the 10-file corpus at {dir}");
    paths
        .into_iter()
        .map(|p| {
            let name = p.file_stem().unwrap().to_string_lossy().into_owned();
            let text = std::fs::read_to_string(&p).expect("read corpus file");
            (name, qasm::parse(&text).expect("corpus parses").circuit)
        })
        .collect()
}

fn environments() -> Vec<Environment> {
    vec![
        topologies::grid(4, 4, Delays::default()),
        topologies::ring(16, Delays::default()),
        topologies::heavy_hex(3, Delays::default()),
    ]
}

fn place(
    circuit: &Circuit,
    env: &Environment,
    jobs: usize,
    budget: SearchBudget,
) -> Result<PlacementOutcome, PlaceError> {
    let config = PlacerConfig::with_threshold(env.connectivity_threshold().expect("connected"))
        .strategy(Strategy::Exact)
        .budget(budget)
        .search_jobs(jobs);
    Placer::new(env, config).place(circuit)
}

/// A complete textual fingerprint of an outcome (or error): any
/// divergence between worker counts — a different candidate winning, a
/// different exhaustion point, a different swap schedule — changes it.
fn fingerprint(result: &Result<PlacementOutcome, PlaceError>) -> String {
    match result {
        Ok(o) => {
            let mut s = format!(
                "ok runtime={:016x} resolution={:?} stages={}",
                o.runtime.units().to_bits(),
                o.resolution,
                o.stages.len(),
            );
            for stage in &o.stages {
                let placed: Vec<usize> = stage
                    .placement
                    .as_slice()
                    .iter()
                    .map(|p| p.index())
                    .collect();
                s.push_str(&format!(
                    " | placement={placed:?} swaps={:?} gates={}",
                    stage.swaps.levels(),
                    stage.subcircuit.gate_count(),
                ));
            }
            s
        }
        // The Debug form pins the exhaustion node count too: parallel
        // search must not merely fail the same way, it must fail at the
        // identical metered node.
        Err(e) => format!("err {e:?}"),
    }
}

#[test]
fn exact_parallel_matches_sequential_on_the_corpus() {
    for (name, circuit) in corpus() {
        for env in environments() {
            // The large cap lets every small circuit run to completion
            // (covering the full-search path) while bounding the
            // handful of adversarial corpus entries; the tight cap
            // forces mid-search exhaustion on everything.
            for budget in [SearchBudget::nodes(20_000), SearchBudget::nodes(2_000)] {
                let base = fingerprint(&place(&circuit, &env, 1, budget));
                for jobs in [2, 4, 8] {
                    let other = fingerprint(&place(&circuit, &env, jobs, budget));
                    assert_eq!(
                        other,
                        base,
                        "{name}@{}: jobs={jobs} diverged from sequential (budget {budget:?})",
                        env.name(),
                    );
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Budget exhaustion is deterministic: whatever node cap the budget
    /// lands on, every worker count trips it at the same metered node
    /// and reports the same error (or survives with the same outcome).
    #[test]
    fn budget_exhaustion_is_deterministic_across_worker_counts(
        file in 0usize..10,
        env_index in 0usize..3,
        nodes in 64u64..4_096,
    ) {
        let corpus = corpus();
        let envs = environments();
        let (name, circuit) = &corpus[file % corpus.len()];
        let env = &envs[env_index];
        let budget = SearchBudget::nodes(nodes);
        let base = fingerprint(&place(circuit, env, 1, budget));
        for jobs in [2, 4, 8] {
            let other = fingerprint(&place(circuit, env, jobs, budget));
            prop_assert_eq!(
                &other,
                &base,
                "{}@{}: jobs={} diverged at nodes={}",
                name,
                env.name(),
                jobs,
                nodes,
            );
        }
    }
}
