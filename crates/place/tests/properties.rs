#![allow(clippy::unwrap_used, clippy::expect_used)]
//! Property-based tests for the placement core.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use qcp_circuit::{Circuit, Gate, Qubit};
use qcp_env::topologies::{self, Delays};
use qcp_env::{molecules, Environment, PhysicalQubit};
use qcp_graph::{generate, NodeId};
use qcp_place::baselines::{exhaustive_placement, random_placement};
use qcp_place::batch::BatchPlacer;
use qcp_place::cost::{placed_runtime, CostModel};
use qcp_place::router::{route_permutation, route_sequential, verify_schedule, RouterConfig};
use qcp_place::{
    execute_with, CacheDisposition, CanonicalCircuit, PlaceError, PlaceRequest, Placement,
    PlacementCache, Placer, PlacerConfig, Resolution, SearchBudget, Strategy,
};

/// A random circuit in the NMR basis on `n` qubits.
fn random_circuit(n: usize, gates: usize, seed: u64) -> Circuit {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = Circuit::builder(n);
    for _ in 0..gates {
        match rng.gen_range(0..4) {
            0 => {
                b.gate(Gate::ry(Qubit::new(rng.gen_range(0..n)), 90.0));
            }
            1 => {
                b.gate(Gate::rz(Qubit::new(rng.gen_range(0..n)), 90.0));
            }
            _ => {
                let a = rng.gen_range(0..n);
                let mut c = rng.gen_range(0..n);
                while c == a {
                    c = rng.gen_range(0..n);
                }
                b.gate(Gate::zz(Qubit::new(a), Qubit::new(c), 90.0));
            }
        }
    }
    b.build()
}

fn random_env(n: usize, seed: u64) -> Environment {
    molecules::random_molecule(n, seed)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn router_realizes_random_permutations(
        seed in any::<u64>(),
        n in 3usize..14,
        extra in 0usize..6,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = generate::random_connected(n, extra, &mut rng);
        let perm = generate::random_permutation(n, &mut rng);
        let targets: Vec<Option<usize>> = perm.iter().map(|&d| Some(d)).collect();
        for cfg in [RouterConfig { leaf_override: true }, RouterConfig { leaf_override: false }] {
            let s = route_permutation(&g, &targets, &cfg).unwrap();
            prop_assert!(verify_schedule(&g, &targets, &s));
        }
        let s = route_sequential(&g, &targets).unwrap();
        prop_assert!(verify_schedule(&g, &targets, &s));
    }

    #[test]
    fn router_depth_linear_on_bounded_degree(seed in any::<u64>(), n in 4usize..24) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = generate::bounded_degree_tree(n, 3, &mut rng);
        let perm = generate::random_permutation(n, &mut rng);
        let targets: Vec<Option<usize>> = perm.iter().map(|&d| Some(d)).collect();
        let s = route_permutation(&g, &targets, &RouterConfig::default()).unwrap();
        prop_assert!(verify_schedule(&g, &targets, &s));
        // §5.2's 8n + const bound (generous constant for tiny n).
        prop_assert!(s.depth() <= 8 * n + 16, "depth {} on n={n}", s.depth());
    }

    #[test]
    fn router_partial_targets(seed in any::<u64>(), n in 3usize..12) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = generate::random_connected(n, 3, &mut rng);
        let perm = generate::random_permutation(n, &mut rng);
        // Constrain a random subset only.
        let targets: Vec<Option<usize>> = perm
            .iter()
            .map(|&d| if rng.gen_bool(0.5) { Some(d) } else { None })
            .collect();
        // Destinations must be distinct: perm is a bijection, so any
        // subset is injective.
        let s = route_permutation(&g, &targets, &RouterConfig::default()).unwrap();
        prop_assert!(verify_schedule(&g, &targets, &s));
    }

    #[test]
    fn runtime_invariant_under_nucleus_relabeling(seed in any::<u64>()) {
        // Relabeling the environment's nuclei and composing the placement
        // with the same relabeling leaves the runtime unchanged.
        let mut rng = StdRng::seed_from_u64(seed);
        let n = rng.gen_range(3..6);
        let m = rng.gen_range(n..8);
        let circuit = random_circuit(n, 20, seed ^ 1);
        let env = random_env(m, seed ^ 2);
        let placement = random_placement(n, &env, seed ^ 3).unwrap();
        let model = CostModel::overlapped();
        let base = placed_runtime(&circuit, &env, &placement, &model);

        // Random relabeling sigma of nuclei.
        let sigma = generate::random_permutation(m, &mut rng);
        let mut b = Environment::builder("relabeled");
        for i in 0..m {
            // Nucleus sigma[i] of the new env corresponds to old nucleus i:
            // build by inverse lookup.
            let old = sigma.iter().position(|&s| s == i).unwrap();
            b.nucleus(
                format!("n{i}"),
                env.single_qubit_delay(PhysicalQubit::new(old)).units(),
            );
        }
        for i in 0..m {
            for j in i + 1..m {
                let (oi, oj) = (
                    sigma.iter().position(|&s| s == i).unwrap(),
                    sigma.iter().position(|&s| s == j).unwrap(),
                );
                let w = env
                    .coupling(PhysicalQubit::new(oi), PhysicalQubit::new(oj))
                    .units();
                if w.is_finite() {
                    b.coupling(PhysicalQubit::new(i), PhysicalQubit::new(j), w).unwrap();
                }
            }
        }
        let env2 = b.build().unwrap();
        let mapped = Placement::new(
            (0..n)
                .map(|q| PhysicalQubit::new(sigma[placement.physical(Qubit::new(q)).index()]))
                .collect(),
            m,
        )
        .unwrap();
        let relabeled = placed_runtime(&circuit, &env2, &mapped, &model);
        prop_assert!((base.units() - relabeled.units()).abs() < 1e-6);
    }

    #[test]
    fn single_stage_heuristic_never_beats_exhaustive(seed in any::<u64>()) {
        // The exhaustive baseline places the circuit *as a whole*; the
        // staged heuristic may legitimately beat it by inserting SWAPs
        // (the paper's central finding). Only swap-free single-stage
        // outcomes are bounded below by the exhaustive optimum.
        let mut rng = StdRng::seed_from_u64(seed);
        let n = rng.gen_range(2..4usize);
        let m = rng.gen_range(n..6usize);
        let circuit = random_circuit(n, 12, seed ^ 5);
        let env = random_env(m, seed ^ 6);
        let model = CostModel::overlapped();
        let (_, best) = exhaustive_placement(&circuit, &env, &model, 1e6).unwrap();
        let t = env.connectivity_threshold().unwrap();
        let placer = Placer::new(&env, PlacerConfig::with_threshold(t).candidates(64));
        if let Ok(outcome) = placer.place(&circuit) {
            if outcome.subcircuit_count() == 1 {
                prop_assert!(
                    outcome.runtime.units() + 1e-9 >= best.units(),
                    "swap-free heuristic {} beat exhaustive {}",
                    outcome.runtime.units(),
                    best.units()
                );
            }
        }
    }

    #[test]
    fn placement_moves_preserve_injectivity(seed in any::<u64>(), n in 2usize..6, m in 6usize..10) {
        let mut rng = StdRng::seed_from_u64(seed);
        let env = random_env(m, seed);
        let mut placement = random_placement(n, &env, seed).unwrap();
        for _ in 0..40 {
            let q = Qubit::new(rng.gen_range(0..n));
            let v = PhysicalQubit::new(rng.gen_range(0..m));
            placement = placement.with_move(q, v);
            // Injectivity: every logical qubit's nucleus is distinct.
            let mut seen = vec![false; m];
            for i in 0..n {
                let vv = placement.physical(Qubit::new(i)).index();
                prop_assert!(!seen[vv]);
                seen[vv] = true;
                // Inverse is consistent.
                prop_assert_eq!(
                    placement.logical_at(PhysicalQubit::new(vv)),
                    Some(Qubit::new(i))
                );
            }
        }
    }

    #[test]
    fn placed_schedule_contains_all_gates(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = rng.gen_range(3..6usize);
        let circuit = random_circuit(n, 25, seed ^ 9);
        let env = random_env(n + 2, seed ^ 10);
        let t = env.connectivity_threshold().unwrap();
        let placer = Placer::new(
            &env,
            PlacerConfig::with_threshold(t).candidates(32).lookahead(false),
        );
        if let Ok(outcome) = placer.place(&circuit) {
            prop_assert_eq!(
                outcome.schedule.gate_count(),
                circuit.gate_count() + outcome.swap_count()
            );
            // Consecutive placements are connected by their swap stages.
            for pair in outcome.stages.windows(2) {
                let perm = pair[0].placement.permutation_to(&pair[1].placement);
                let pos = pair[1].swaps.simulate(env.qubit_count());
                for (v, d) in perm.iter().enumerate() {
                    if let Some(d) = d {
                        prop_assert_eq!(pos[v], *d);
                    }
                }
            }
        }
    }

    #[test]
    fn batch_outcomes_independent_of_worker_count(seed in any::<u64>()) {
        // The determinism contract: --jobs 1 and --jobs 8 (and anything
        // in between) must produce bit-identical outcomes, in the same
        // order, on the same request list.
        let mut rng = StdRng::seed_from_u64(seed);
        let circuits: Vec<Circuit> = (0..4)
            .map(|i| {
                let n = rng.gen_range(2..6usize);
                random_circuit(n, rng.gen_range(5..25), seed ^ i)
            })
            .collect();
        let envs = vec![
            random_env(6, seed ^ 11),
            topologies::grid(2, 3, Delays::default()),
            topologies::line(6, Delays::default()),
        ];
        let config = PlacerConfig::default().candidates(16);
        let serial = BatchPlacer::cross_auto(&circuits, &envs, &config).jobs(1).run();
        let parallel = BatchPlacer::cross_auto(&circuits, &envs, &config).jobs(8).run();
        prop_assert_eq!(serial.results.len(), 12);
        prop_assert_eq!(serial.outcome_fingerprint(), parallel.outcome_fingerprint());
        for (a, b) in serial.results.iter().zip(&parallel.results) {
            prop_assert_eq!(a.index, b.index);
            prop_assert_eq!(&a.label, &b.label);
            match (&a.outcome, &b.outcome) {
                (Ok(x), Ok(y)) => {
                    prop_assert_eq!(x.runtime.units(), y.runtime.units());
                    prop_assert_eq!(x.subcircuit_count(), y.subcircuit_count());
                    prop_assert_eq!(x.swap_count(), y.swap_count());
                    for (sx, sy) in x.stages.iter().zip(&y.stages) {
                        prop_assert!(sx.placement.same_assignment(&sy.placement));
                    }
                }
                (Err(x), Err(y)) => prop_assert_eq!(x, y),
                (x, y) => prop_assert!(false, "ok/err mismatch: {x:?} vs {y:?}"),
            }
        }
        // Aggregates agree too (wall time aside).
        prop_assert_eq!(serial.total_swaps(), parallel.total_swaps());
        prop_assert_eq!(
            serial.total_runtime().units(),
            parallel.total_runtime().units()
        );
    }

    #[test]
    fn zero_budget_exact_never_panics_and_always_exhausts(seed in any::<u64>()) {
        // The anytime contract's strict half: a 0-budget ExactVf2 never
        // panics and always reports BudgetExhausted, whatever the
        // circuit/environment pair looks like.
        let mut rng = StdRng::seed_from_u64(seed);
        let n = rng.gen_range(2..7usize);
        let circuit = random_circuit(n, rng.gen_range(1..30), seed ^ 31);
        let env = random_env(n + rng.gen_range(0..3usize), seed ^ 32);
        let t = env.connectivity_threshold().unwrap();
        let config = PlacerConfig::with_threshold(t)
            .strategy(Strategy::Exact)
            .budget(SearchBudget::nodes(0));
        let err = Placer::new(&env, config).place(&circuit).unwrap_err();
        prop_assert!(matches!(err, PlaceError::BudgetExhausted { .. }), "{err}");
    }

    #[test]
    fn zero_budget_hybrid_still_places(seed in any::<u64>()) {
        // ... and the anytime half: hybrid under the same empty budget
        // must still return a valid placement via the heuristic chain.
        let mut rng = StdRng::seed_from_u64(seed);
        let n = rng.gen_range(2..7usize);
        let circuit = random_circuit(n, rng.gen_range(1..30), seed ^ 41);
        let env = random_env(n + rng.gen_range(0..3usize), seed ^ 42);
        let t = env.connectivity_threshold().unwrap();
        let config = PlacerConfig::with_threshold(t)
            .strategy(Strategy::Hybrid)
            .budget(SearchBudget::nodes(0));
        let outcome = Placer::new(&env, config).place(&circuit).unwrap();
        prop_assert_eq!(outcome.resolution, Resolution::BudgetExhausted);
        prop_assert_eq!(
            outcome.schedule.gate_count(),
            circuit.gate_count() + outcome.swap_count()
        );
        // Every stage's interactions sit on fast couplings.
        let fast = env.fast_graph(t);
        for stage in &outcome.stages {
            for g in stage.subcircuit.gates() {
                if let Some((a, b)) = g.coupling() {
                    prop_assert!(fast.has_edge(
                        NodeId::new(stage.placement.physical(a).index()),
                        NodeId::new(stage.placement.physical(b).index()),
                    ));
                }
            }
        }
    }

    #[test]
    fn workspace_interactions_always_embed(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = rng.gen_range(3..7usize);
        let circuit = random_circuit(n, 30, seed ^ 21);
        let env = random_env(n + 1, seed ^ 22);
        let t = env.connectivity_threshold().unwrap();
        let fast = env.fast_graph(t);
        let ws = qcp_place::workspace::extract_workspaces(&circuit, &fast).unwrap();
        // Ranges tile the circuit.
        prop_assert_eq!(ws[0].first_gate, 0);
        prop_assert_eq!(ws.last().unwrap().last_gate, circuit.gate_count());
        for w in &ws {
            // Each workspace's interaction pattern embeds.
            let cands = qcp_place::embed::candidate_placements(&w.interaction, &fast, None, 1)
                .unwrap();
            prop_assert!(!cands.is_empty(), "workspace does not embed");
            // And the interaction graph matches the subcircuit's couplings.
            for g in w.circuit.gates() {
                if let Some((a, b)) = g.coupling() {
                    prop_assert!(w
                        .interaction
                        .has_edge(NodeId::new(a.index()), NodeId::new(b.index())));
                }
            }
        }
    }
}

/// The hybrid-equivalence half of the anytime contract: with an
/// unlimited budget, `Hybrid` must be bit-identical to `ExactVf2` on the
/// whole topology zoo (the exact attempt never exhausts, so the fallback
/// never runs).
#[test]
fn hybrid_with_unlimited_budget_is_bit_identical_to_exact_on_the_zoo() {
    let circuits = [
        qcp_circuit::library::qec3_encoder(),
        qcp_circuit::library::qft(4),
        qcp_circuit::library::pseudo_cat(5),
        qcp_circuit::library::qec5_benchmark(),
    ];
    let envs = [
        topologies::line(6, Delays::default()),
        topologies::ring(6, Delays::default()),
        topologies::grid(2, 3, Delays::default()),
        topologies::heavy_hex(3, Delays::default()),
        topologies::star(6, Delays::default()),
        molecules::trans_crotonic_acid(),
    ];
    let exact = BatchPlacer::cross_auto(&circuits, &envs, &PlacerConfig::default().candidates(30))
        .jobs(1)
        .run();
    let hybrid = BatchPlacer::cross_auto(
        &circuits,
        &envs,
        &PlacerConfig::default()
            .candidates(30)
            .strategy(Strategy::Hybrid),
    )
    .jobs(1)
    .run();
    assert_eq!(exact.results.len(), hybrid.results.len());
    assert_eq!(exact.outcome_fingerprint(), hybrid.outcome_fingerprint());
    for (a, b) in exact.results.iter().zip(&hybrid.results) {
        match (&a.outcome, &b.outcome) {
            (Ok(x), Ok(y)) => {
                assert_eq!(x.resolution, Resolution::Exact, "{}", a.label);
                assert_eq!(y.resolution, Resolution::Exact, "{}", b.label);
                assert_eq!(x.runtime.units(), y.runtime.units());
                assert_eq!(x.stages.len(), y.stages.len());
                for (sx, sy) in x.stages.iter().zip(&y.stages) {
                    assert!(sx.placement.same_assignment(&sy.placement));
                }
            }
            (Err(x), Err(y)) => assert_eq!(x, y),
            (x, y) => panic!("ok/err mismatch on {}: {x:?} vs {y:?}", a.label),
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    // Cache-keying soundness on whole circuits (not just interaction
    // graphs): relabelling the qubits of a random NMR-basis circuit by any
    // permutation never changes its exact canonical fingerprint, and the
    // canonical witness order is always a permutation of the qubits.
    #[test]
    fn canonical_circuit_fingerprint_is_relabeling_invariant(
        seed in any::<u64>(),
        n in 2usize..8,
        gates in 1usize..24,
    ) {
        let circuit = random_circuit(n, gates, seed);
        let base = CanonicalCircuit::of(&circuit);
        prop_assert_eq!(base.order.len(), n);
        let mut sorted: Vec<usize> = base.order.iter().map(|q| q.index()).collect();
        sorted.sort_unstable();
        prop_assert_eq!(sorted, (0..n).collect::<Vec<usize>>());

        let mut rng = StdRng::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15);
        for _ in 0..3 {
            let perm = generate::random_permutation(n, &mut rng);
            let relabelled = circuit.map_qubits(n, |q| Qubit::new(perm[q.index()]));
            let other = CanonicalCircuit::of(&relabelled);
            prop_assert_eq!(other.fingerprint, base.fingerprint);
            prop_assert_eq!(other.graph_fingerprint, base.graph_fingerprint);
        }
    }

    // Discrimination: appending one extra interaction (a near-miss, not a
    // relabelling) must move the circuit fingerprint.
    #[test]
    fn canonical_circuit_fingerprint_separates_appended_gates(
        seed in any::<u64>(),
        n in 2usize..8,
        gates in 1usize..16,
    ) {
        let circuit = random_circuit(n, gates, seed);
        let base = CanonicalCircuit::of(&circuit).fingerprint;
        let mut b = Circuit::builder(n);
        for gate in circuit.gates() {
            b.gate(gate.clone());
        }
        b.gate(Gate::zz(Qubit::new(0), Qubit::new(n - 1), 45.0));
        let extended = b.build();
        prop_assert_ne!(CanonicalCircuit::of(&extended).fingerprint, base);
    }

    // The unified executor agrees with itself across relabellings: an
    // isomorphic repeat is a remapped cache hit whose outcome matches the
    // cold placement gate-for-gate after the witness remap.
    #[test]
    fn cache_hits_reproduce_cold_outcomes_under_relabeling(
        seed in any::<u64>(),
        n in 3usize..6,
        gates in 2usize..12,
    ) {
        let circuit = random_circuit(n, gates, seed);
        let env = random_env(n + 2, seed ^ 1);
        let Some(threshold) = env.connectivity_threshold() else {
            return Ok(());
        };
        let config = PlacerConfig::with_threshold(threshold);
        let cache = PlacementCache::new(4);

        let cold = execute_with(
            &PlaceRequest::new(&circuit, &env).config(config.clone()),
            Some(&cache),
            None,
        );
        let Ok(cold) = cold else {
            return Ok(()); // some random circuits are legitimately unplaceable
        };
        prop_assert_eq!(cold.cache, CacheDisposition::Miss);

        let mut rng = StdRng::seed_from_u64(seed ^ 0xdead_beef);
        let perm = generate::random_permutation(n, &mut rng);
        let relabelled = circuit.map_qubits(n, |q| Qubit::new(perm[q.index()]));
        let warm = execute_with(
            &PlaceRequest::new(&relabelled, &env).config(config),
            Some(&cache),
            None,
        );
        let warm = warm.expect("isomorphic repeat of a placeable circuit places");
        prop_assert!(matches!(warm.cache, CacheDisposition::Hit { .. }), "{:?}", warm.cache);
        prop_assert_eq!(warm.outcome.runtime, cold.outcome.runtime);
        prop_assert_eq!(warm.outcome.stages.len(), cold.outcome.stages.len());
        prop_assert_eq!(warm.outcome.swap_count(), cold.outcome.swap_count());
    }
}
